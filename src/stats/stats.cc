#include "stats/stats.hh"

#include <iomanip>
#include <sstream>

namespace smt
{

void
StallStats::add(const StallStats &o)
{
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        fetchActive[t] += o.fetchActive[t];
        fetchIcacheMiss[t] += o.fetchIcacheMiss[t];
        fetchFrontEndFull[t] += o.fetchFrontEndFull[t];
        fetchNoTarget[t] += o.fetchNoTarget[t];
        fetchLostSelection[t] += o.fetchLostSelection[t];
        renameIQFull[t] += o.renameIQFull[t];
        renameNoRegisters[t] += o.renameNoRegisters[t];
        issueOperandWait[t] += o.issueOperandWait[t];
        issueFuBusy[t] += o.issueFuBusy[t];
    }
    issueNoCandidatesCycles += o.issueNoCandidatesCycles;
}

void
SimStats::add(const SimStats &o)
{
    cycles += o.cycles;
    committedInstructions += o.committedInstructions;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        committedPerThread[t] += o.committedPerThread[t];

    fetchedInstructions += o.fetchedInstructions;
    fetchedWrongPath += o.fetchedWrongPath;
    fetchCyclesIdle += o.fetchCyclesIdle;
    fetchBlockedIQFull += o.fetchBlockedIQFull;

    issuedInstructions += o.issuedInstructions;
    issuedWrongPath += o.issuedWrongPath;
    optimisticSquashes += o.optimisticSquashes;

    intIQFullCycles += o.intIQFullCycles;
    fpIQFullCycles += o.fpIQFullCycles;
    for (std::size_t b = 0; b < o.combinedQueuePopulation.buckets(); ++b) {
        const auto count = o.combinedQueuePopulation.bucket(b);
        if (count)
            combinedQueuePopulation.sample(b, count);
    }

    outOfRegistersCycles += o.outOfRegistersCycles;
    stalls.add(o.stalls);

    condBranches += o.condBranches;
    condBranchMispredicts += o.condBranchMispredicts;
    jumps += o.jumps;
    jumpMispredicts += o.jumpMispredicts;
    misfetches += o.misfetches;

    icache.add(o.icache);
    dcache.add(o.dcache);
    l2.add(o.l2);
    l3.add(o.l3);
    itlb.add(o.itlb);
    dtlb.add(o.dtlb);
}

std::string
SimStats::report() const
{
    std::ostringstream os;
    auto pct = [](double v) { return 100.0 * v; };
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "cycles                     " << cycles << '\n'
       << "committed instructions     " << committedInstructions << '\n'
       << "IPC                        " << ipc() << '\n'
       << "fetched (incl. wrong path) " << fetchedInstructions << '\n'
       << "wrong-path fetched         " << pct(wrongPathFetchedFraction())
       << "%\n"
       << "wrong-path issued          " << pct(wrongPathIssuedFraction())
       << "%\n"
       << "optimistic squashed        " << pct(optimisticSquashFraction())
       << "%\n"
       << "int IQ-full cycles         " << pct(intIQFullFraction()) << "%\n"
       << "fp  IQ-full cycles         " << pct(fpIQFullFraction()) << "%\n"
       << "out-of-registers cycles    " << pct(outOfRegistersFraction())
       << "%\n"
       << "avg queue population       " << avgQueuePopulation() << '\n'
       << "branch mispredict rate     " << pct(branchMispredictRate())
       << "%\n"
       << "jump mispredict rate       " << pct(jumpMispredictRate()) << "%\n"
       << "I-cache miss rate          " << pct(icache.missRate()) << "%  ("
       << icache.mpki(committedInstructions) << " MPKI)\n"
       << "D-cache miss rate          " << pct(dcache.missRate()) << "%  ("
       << dcache.mpki(committedInstructions) << " MPKI)\n"
       << "L2 miss rate               " << pct(l2.missRate()) << "%  ("
       << l2.mpki(committedInstructions) << " MPKI)\n"
       << "L3 miss rate               " << pct(l3.missRate()) << "%  ("
       << l3.mpki(committedInstructions) << " MPKI)\n"
       << "ITLB miss rate             " << pct(itlb.missRate()) << "%\n"
       << "DTLB miss rate             " << pct(dtlb.missRate()) << "%\n";
    return os.str();
}

std::string
SimStats::stallReport(unsigned numThreads) const
{
    std::ostringstream os;
    const StallStats &s = stalls;

    os << "stall-cause breakdown (slots; fetch columns partition the "
          "run's cycles per thread)\n";
    os << std::left << std::setw(7) << "thread";
    for (const char *col :
         {"fet.icache", "fet.fefull", "fet.notgt", "fet.lostsel",
          "ren.iqfull", "ren.noregs", "iss.opwait", "iss.fubusy",
          "stalled"})
        os << std::right << std::setw(12) << col;
    os << '\n';

    std::uint64_t grand = 0;
    for (unsigned t = 0; t < numThreads; ++t) {
        const std::uint64_t row = s.fetchStalled(t) + s.renameIQFull[t] +
                                  s.renameNoRegisters[t] +
                                  s.issueOperandWait[t] + s.issueFuBusy[t];
        grand += row;
        os << std::left << std::setw(7) << ("T" + std::to_string(t));
        for (std::uint64_t v :
             {s.fetchIcacheMiss[t], s.fetchFrontEndFull[t],
              s.fetchNoTarget[t], s.fetchLostSelection[t],
              s.renameIQFull[t], s.renameNoRegisters[t],
              s.issueOperandWait[t], s.issueFuBusy[t], row})
            os << std::right << std::setw(12) << v;
        os << '\n';
    }
    grand += s.issueNoCandidatesCycles;
    os << "issue idle cycles (no candidate in either queue)  "
       << s.issueNoCandidatesCycles << '\n';
    os << "total stalled slots                               " << grand
       << '\n';
    return os.str();
}

} // namespace smt
