#include "stats/stats.hh"

#include <sstream>

namespace smt
{

void
SimStats::add(const SimStats &o)
{
    cycles += o.cycles;
    committedInstructions += o.committedInstructions;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        committedPerThread[t] += o.committedPerThread[t];

    fetchedInstructions += o.fetchedInstructions;
    fetchedWrongPath += o.fetchedWrongPath;
    fetchCyclesIdle += o.fetchCyclesIdle;
    fetchBlockedIQFull += o.fetchBlockedIQFull;

    issuedInstructions += o.issuedInstructions;
    issuedWrongPath += o.issuedWrongPath;
    optimisticSquashes += o.optimisticSquashes;

    intIQFullCycles += o.intIQFullCycles;
    fpIQFullCycles += o.fpIQFullCycles;
    for (std::size_t b = 0; b < o.combinedQueuePopulation.buckets(); ++b) {
        const auto count = o.combinedQueuePopulation.bucket(b);
        if (count)
            combinedQueuePopulation.sample(b, count);
    }

    outOfRegistersCycles += o.outOfRegistersCycles;

    condBranches += o.condBranches;
    condBranchMispredicts += o.condBranchMispredicts;
    jumps += o.jumps;
    jumpMispredicts += o.jumpMispredicts;
    misfetches += o.misfetches;

    icache.add(o.icache);
    dcache.add(o.dcache);
    l2.add(o.l2);
    l3.add(o.l3);
    itlb.add(o.itlb);
    dtlb.add(o.dtlb);
}

std::string
SimStats::report() const
{
    std::ostringstream os;
    auto pct = [](double v) { return 100.0 * v; };
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "cycles                     " << cycles << '\n'
       << "committed instructions     " << committedInstructions << '\n'
       << "IPC                        " << ipc() << '\n'
       << "fetched (incl. wrong path) " << fetchedInstructions << '\n'
       << "wrong-path fetched         " << pct(wrongPathFetchedFraction())
       << "%\n"
       << "wrong-path issued          " << pct(wrongPathIssuedFraction())
       << "%\n"
       << "optimistic squashed        " << pct(optimisticSquashFraction())
       << "%\n"
       << "int IQ-full cycles         " << pct(intIQFullFraction()) << "%\n"
       << "fp  IQ-full cycles         " << pct(fpIQFullFraction()) << "%\n"
       << "out-of-registers cycles    " << pct(outOfRegistersFraction())
       << "%\n"
       << "avg queue population       " << avgQueuePopulation() << '\n'
       << "branch mispredict rate     " << pct(branchMispredictRate())
       << "%\n"
       << "jump mispredict rate       " << pct(jumpMispredictRate()) << "%\n"
       << "I-cache miss rate          " << pct(icache.missRate()) << "%  ("
       << icache.mpki(committedInstructions) << " MPKI)\n"
       << "D-cache miss rate          " << pct(dcache.missRate()) << "%  ("
       << dcache.mpki(committedInstructions) << " MPKI)\n"
       << "L2 miss rate               " << pct(l2.missRate()) << "%  ("
       << l2.mpki(committedInstructions) << " MPKI)\n"
       << "L3 miss rate               " << pct(l3.missRate()) << "%  ("
       << l3.mpki(committedInstructions) << " MPKI)\n"
       << "ITLB miss rate             " << pct(itlb.missRate()) << "%\n"
       << "DTLB miss rate             " << pct(dtlb.missRate()) << "%\n";
    return os.str();
}

} // namespace smt
