#include "stats/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace smt
{

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    smt_assert(header_.empty() || row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::render() const
{
    const std::size_t cols = header_.size();
    std::vector<std::size_t> width(cols, 0);
    for (std::size_t c = 0; c < cols; ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c == 0)
                os << std::left << std::setw(static_cast<int>(width[c]))
                   << row[c];
            else
                os << "  " << std::right
                   << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t c = 0; c < cols; ++c)
            total += width[c] + (c ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.empty()) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < cols; ++c)
                total += width[c] + (c ? 2 : 0);
            os << std::string(total, '-') << '\n';
        } else {
            emit(row);
        }
    }
    return os.str();
}

std::string
Table::renderCsv() const
{
    std::ostringstream os;
    os << "# " << title_ << '\n';
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_) {
        if (!row.empty())
            emit(row);
    }
    return os.str();
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os << std::setprecision(precision) << v;
    return os.str();
}

std::string
fmtPercent(double fraction, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os << std::setprecision(precision) << 100.0 * fraction << '%';
    return os.str();
}

} // namespace smt
