/**
 * @file
 * Text-table and CSV rendering used by the benchmark harness to print
 * paper-style rows (measured next to the paper's reference values).
 */

#ifndef SMT_STATS_TABLE_HH
#define SMT_STATS_TABLE_HH

#include <string>
#include <vector>

namespace smt
{

/** A simple left-aligned-first-column text table with a title. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Append a visual separator row. */
    void addSeparator();

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV (no separators, title as a comment line). */
    std::string renderCsv() const;

    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; ///< empty row = separator.
};

/** Format helpers for table cells. */
std::string fmtDouble(double v, int precision = 2);
std::string fmtPercent(double fraction, int precision = 1);

} // namespace smt

#endif // SMT_STATS_TABLE_HH
