/**
 * @file
 * Statistics collection for smtsim.
 *
 * SimStats is a plain aggregate of every counter the paper reports
 * (Tables 3, 4, 5 and the prose of Sections 4-7), with derived-metric
 * accessors (rates, ratios, MPKI). Counters are added by the pipeline and
 * memory models during simulation; benches and tests read the derived
 * metrics.
 */

#ifndef SMT_STATS_STATS_HH
#define SMT_STATS_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.hh"
#include "common/types.hh"

namespace smt
{

/** Counters for one cache level. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t bankConflicts = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t mshrMerges = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }

    /** Misses per thousand *useful committed* instructions. */
    double
    mpki(std::uint64_t committed) const
    {
        return committed ? 1000.0 * misses / committed : 0.0;
    }

    void
    add(const CacheStats &o)
    {
        accesses += o.accesses;
        misses += o.misses;
        bankConflicts += o.bankConflicts;
        writebacks += o.writebacks;
        mshrMerges += o.mshrMerges;
    }
};

/** Counters for one TLB. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }

    void
    add(const TlbStats &o)
    {
        accesses += o.accesses;
        misses += o.misses;
    }
};

/** Every simulation-level counter the paper's evaluation reports. */
struct SimStats
{
    // ---- Progress -------------------------------------------------------
    std::uint64_t cycles = 0;
    std::uint64_t committedInstructions = 0; ///< useful instructions only.
    std::array<std::uint64_t, kMaxThreads> committedPerThread{};

    // ---- Fetch ----------------------------------------------------------
    std::uint64_t fetchedInstructions = 0;   ///< includes wrong path.
    std::uint64_t fetchedWrongPath = 0;
    std::uint64_t fetchCyclesIdle = 0;       ///< no thread could fetch.
    std::uint64_t fetchBlockedIQFull = 0;    ///< fetch lost to IQ-full.

    // ---- Issue ----------------------------------------------------------
    std::uint64_t issuedInstructions = 0;    ///< includes useless issue.
    std::uint64_t issuedWrongPath = 0;
    std::uint64_t optimisticSquashes = 0;    ///< issued then squashed on a
                                             ///< D-cache miss/bank conflict.

    // ---- Queues ---------------------------------------------------------
    std::uint64_t intIQFullCycles = 0;
    std::uint64_t fpIQFullCycles = 0;
    Histogram combinedQueuePopulation{129};

    // ---- Renaming -------------------------------------------------------
    std::uint64_t outOfRegistersCycles = 0;

    // ---- Branches -------------------------------------------------------
    std::uint64_t condBranches = 0;          ///< committed.
    std::uint64_t condBranchMispredicts = 0;
    std::uint64_t jumps = 0;                 ///< committed indirect
                                             ///< jumps/returns.
    std::uint64_t jumpMispredicts = 0;
    std::uint64_t misfetches = 0;            ///< BTB-miss target delays.

    // ---- Memory ---------------------------------------------------------
    CacheStats icache;
    CacheStats dcache;
    CacheStats l2;
    CacheStats l3;
    TlbStats itlb;
    TlbStats dtlb;

    // ---- Derived metrics --------------------------------------------------
    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInstructions) / cycles
                      : 0.0;
    }

    double
    wrongPathFetchedFraction() const
    {
        return fetchedInstructions
                   ? static_cast<double>(fetchedWrongPath)
                         / fetchedInstructions
                   : 0.0;
    }

    double
    wrongPathIssuedFraction() const
    {
        return issuedInstructions
                   ? static_cast<double>(issuedWrongPath) / issuedInstructions
                   : 0.0;
    }

    double
    optimisticSquashFraction() const
    {
        return issuedInstructions
                   ? static_cast<double>(optimisticSquashes)
                         / issuedInstructions
                   : 0.0;
    }

    double
    uselessIssueFraction() const
    {
        return wrongPathIssuedFraction() + optimisticSquashFraction();
    }

    double
    intIQFullFraction() const
    {
        return cycles ? static_cast<double>(intIQFullCycles) / cycles : 0.0;
    }

    double
    fpIQFullFraction() const
    {
        return cycles ? static_cast<double>(fpIQFullCycles) / cycles : 0.0;
    }

    double
    outOfRegistersFraction() const
    {
        return cycles ? static_cast<double>(outOfRegistersCycles) / cycles
                      : 0.0;
    }

    double
    branchMispredictRate() const
    {
        return condBranches
                   ? static_cast<double>(condBranchMispredicts) / condBranches
                   : 0.0;
    }

    double
    jumpMispredictRate() const
    {
        return jumps ? static_cast<double>(jumpMispredicts) / jumps : 0.0;
    }

    double
    avgQueuePopulation() const
    {
        return combinedQueuePopulation.mean();
    }

    /** Accumulate another run's counters into this one. */
    void add(const SimStats &o);

    /** Multi-line human-readable dump (for examples and debugging). */
    std::string report() const;
};

} // namespace smt

#endif // SMT_STATS_STATS_HH
