/**
 * @file
 * Statistics collection for smtsim.
 *
 * SimStats is a plain aggregate of every counter the paper reports
 * (Tables 3, 4, 5 and the prose of Sections 4-7), with derived-metric
 * accessors (rates, ratios, MPKI). Counters are added by the pipeline and
 * memory models during simulation; benches and tests read the derived
 * metrics.
 */

#ifndef SMT_STATS_STATS_HH
#define SMT_STATS_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.hh"
#include "common/types.hh"

namespace smt
{

/** Counters for one cache level. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t bankConflicts = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t mshrMerges = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }

    /** Misses per thousand *useful committed* instructions. */
    double
    mpki(std::uint64_t committed) const
    {
        return committed ? 1000.0 * misses / committed : 0.0;
    }

    void
    add(const CacheStats &o)
    {
        accesses += o.accesses;
        misses += o.misses;
        bankConflicts += o.bankConflicts;
        writebacks += o.writebacks;
        mshrMerges += o.mshrMerges;
    }
};

/** Counters for one TLB. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }

    void
    add(const TlbStats &o)
    {
        accesses += o.accesses;
        misses += o.misses;
    }
};

/**
 * Per-thread, per-cause stall and lost-slot accounting — the lens the
 * paper uses to explain *why* a fetch or issue policy wins (lost fetch
 * slots, IQ-full backpressure, issue slots lost to operand waits).
 *
 * Fetch counters form a partition: every (cycle, thread) pair lands in
 * exactly one of fetchActive / fetchIcacheMiss / fetchFrontEndFull /
 * fetchNoTarget / fetchLostSelection, so per thread the five sum to
 * the run's cycle count. Rename counters record once per cycle that a
 * thread's rename blocked on that resource; issue counters record
 * per-candidate skip events.
 */
struct StallStats
{
    // ---- Fetch (one disposition per cycle per thread) -------------------
    /** The thread fetched at least one instruction this cycle. */
    std::array<std::uint64_t, kMaxThreads> fetchActive{};
    /** I-cache/ITLB miss pending or starting, or lost the bank. */
    std::array<std::uint64_t, kMaxThreads> fetchIcacheMiss{};
    /** Front-end/queue occupancy cap reached (IQ backpressure). */
    std::array<std::uint64_t, kMaxThreads> fetchFrontEndFull{};
    /** Fetch PC has no decoded target (awaiting misfetch resolution). */
    std::array<std::uint64_t, kMaxThreads> fetchNoTarget{};
    /** Fetchable, but lost the slot to higher-priority threads. */
    std::array<std::uint64_t, kMaxThreads> fetchLostSelection{};

    // ---- Rename/dispatch (once per blocked cycle per thread) ------------
    /** Rename blocked: the target instruction queue was full. */
    std::array<std::uint64_t, kMaxThreads> renameIQFull{};
    /** Rename blocked: no free physical register. */
    std::array<std::uint64_t, kMaxThreads> renameNoRegisters{};

    // ---- Issue (per skipped-candidate event) ----------------------------
    /** Candidate skipped: source operands not ready. */
    std::array<std::uint64_t, kMaxThreads> issueOperandWait{};
    /** Candidate skipped: no functional unit left this cycle. */
    std::array<std::uint64_t, kMaxThreads> issueFuBusy{};
    /** Cycles where neither queue offered a single candidate. */
    std::uint64_t issueNoCandidatesCycles = 0;

    /** Fetch cycles thread `t` stalled (everything but fetchActive). */
    std::uint64_t
    fetchStalled(unsigned t) const
    {
        return fetchIcacheMiss[t] + fetchFrontEndFull[t] +
               fetchNoTarget[t] + fetchLostSelection[t];
    }

    /** All stalled slots across threads and causes (report total). */
    std::uint64_t
    totalStalledSlots() const
    {
        std::uint64_t total = issueNoCandidatesCycles;
        for (unsigned t = 0; t < kMaxThreads; ++t)
            total += fetchStalled(t) + renameIQFull[t] +
                     renameNoRegisters[t] + issueOperandWait[t] +
                     issueFuBusy[t];
        return total;
    }

    void add(const StallStats &o);
};

/** Every simulation-level counter the paper's evaluation reports. */
struct SimStats
{
    // ---- Progress -------------------------------------------------------
    std::uint64_t cycles = 0;
    std::uint64_t committedInstructions = 0; ///< useful instructions only.
    std::array<std::uint64_t, kMaxThreads> committedPerThread{};

    // ---- Fetch ----------------------------------------------------------
    std::uint64_t fetchedInstructions = 0;   ///< includes wrong path.
    std::uint64_t fetchedWrongPath = 0;
    std::uint64_t fetchCyclesIdle = 0;       ///< no thread could fetch.
    std::uint64_t fetchBlockedIQFull = 0;    ///< fetch lost to IQ-full.

    // ---- Issue ----------------------------------------------------------
    std::uint64_t issuedInstructions = 0;    ///< includes useless issue.
    std::uint64_t issuedWrongPath = 0;
    std::uint64_t optimisticSquashes = 0;    ///< issued then squashed on a
                                             ///< D-cache miss/bank conflict.

    // ---- Queues ---------------------------------------------------------
    std::uint64_t intIQFullCycles = 0;
    std::uint64_t fpIQFullCycles = 0;
    Histogram combinedQueuePopulation{129};

    // ---- Renaming -------------------------------------------------------
    std::uint64_t outOfRegistersCycles = 0;

    // ---- Branches -------------------------------------------------------
    std::uint64_t condBranches = 0;          ///< committed.
    std::uint64_t condBranchMispredicts = 0;
    std::uint64_t jumps = 0;                 ///< committed indirect
                                             ///< jumps/returns.
    std::uint64_t jumpMispredicts = 0;
    std::uint64_t misfetches = 0;            ///< BTB-miss target delays.

    // ---- Memory ---------------------------------------------------------
    CacheStats icache;
    CacheStats dcache;
    CacheStats l2;
    CacheStats l3;
    TlbStats itlb;
    TlbStats dtlb;

    // ---- Per-thread, per-cause stall accounting -------------------------
    // (Last on purpose: 584 bytes of cold-ish arrays; keeping it after
    // the scalar counters preserves their cache-line packing.)
    StallStats stalls;

    // ---- Derived metrics --------------------------------------------------
    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInstructions) / cycles
                      : 0.0;
    }

    double
    wrongPathFetchedFraction() const
    {
        return fetchedInstructions
                   ? static_cast<double>(fetchedWrongPath)
                         / fetchedInstructions
                   : 0.0;
    }

    double
    wrongPathIssuedFraction() const
    {
        return issuedInstructions
                   ? static_cast<double>(issuedWrongPath) / issuedInstructions
                   : 0.0;
    }

    double
    optimisticSquashFraction() const
    {
        return issuedInstructions
                   ? static_cast<double>(optimisticSquashes)
                         / issuedInstructions
                   : 0.0;
    }

    double
    uselessIssueFraction() const
    {
        return wrongPathIssuedFraction() + optimisticSquashFraction();
    }

    double
    intIQFullFraction() const
    {
        return cycles ? static_cast<double>(intIQFullCycles) / cycles : 0.0;
    }

    double
    fpIQFullFraction() const
    {
        return cycles ? static_cast<double>(fpIQFullCycles) / cycles : 0.0;
    }

    double
    outOfRegistersFraction() const
    {
        return cycles ? static_cast<double>(outOfRegistersCycles) / cycles
                      : 0.0;
    }

    double
    branchMispredictRate() const
    {
        return condBranches
                   ? static_cast<double>(condBranchMispredicts) / condBranches
                   : 0.0;
    }

    double
    jumpMispredictRate() const
    {
        return jumps ? static_cast<double>(jumpMispredicts) / jumps : 0.0;
    }

    double
    avgQueuePopulation() const
    {
        return combinedQueuePopulation.mean();
    }

    /** Accumulate another run's counters into this one. */
    void add(const SimStats &o);

    /** Multi-line human-readable dump (for examples and debugging). */
    std::string report() const;

    /**
     * Per-thread stall-cause table (`--stall-report`): one row per
     * thread whose cause columns sum to the row total, row totals
     * summing to the printed total stalled slots.
     */
    std::string stallReport(unsigned numThreads) const;
};

} // namespace smt

#endif // SMT_STATS_STATS_HH
