#include "dist/ssh_launcher.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <thread>

#include "common/logging.hh"

namespace smt::dist
{

std::string
shellQuoteArg(const std::string &arg)
{
    // Single quotes pass everything literally; an embedded single
    // quote becomes '\'' (close, escaped quote, reopen).
    std::string quoted = "'";
    for (char c : arg) {
        if (c == '\'')
            quoted += "'\\''";
        else
            quoted += c;
    }
    quoted += "'";
    return quoted;
}

std::vector<std::string>
sshArgv(const std::string &ssh_program, const std::string &host,
        const std::vector<std::string> &argv, bool token_on_stdin,
        const std::string &trace_id)
{
    // The token never rides argv: the remote shell reads it off the
    // ssh channel's stdin into the environment first. IFS= and -r
    // keep the line byte-exact. The trace id is not a secret and sshd
    // strips foreign env vars, so it is exported in the command.
    std::string command;
    if (token_on_stdin)
        command += "IFS= read -r SMTSTORE_TOKEN; "
                   "export SMTSTORE_TOKEN; ";
    if (!trace_id.empty())
        command += "SMTSWEEP_TRACE_ID=" + shellQuoteArg(trace_id)
                   + "; export SMTSWEEP_TRACE_ID; ";
    command += "exec";
    for (const std::string &arg : argv) {
        command += ' ';
        command += shellQuoteArg(arg);
    }
    // BatchMode forbids password prompts (a coordinator cannot answer
    // them); the remote command is one quoted word.
    return {ssh_program, "-o", "BatchMode=yes", host, command};
}

std::vector<std::string>
parseHostList(const std::string &host_list)
{
    std::vector<std::string> hosts;
    std::size_t pos = 0;
    while (pos <= host_list.size()) {
        const std::size_t comma = host_list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? host_list.size() : comma;
        if (end > pos)
            hosts.push_back(host_list.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return hosts;
}

SshWorkerLauncher::SshWorkerLauncher(std::vector<std::string> hosts,
                                     std::string ssh_program)
    : hosts_(std::move(hosts)), sshProgram_(std::move(ssh_program))
{
    smt_assert(!hosts_.empty(), "SshWorkerLauncher needs hosts");
}

void
SshWorkerLauncher::setStoreToken(const std::string &token)
{
    storeToken_ = token;
}

void
SshWorkerLauncher::setTraceId(const std::string &trace_id)
{
    traceId_ = trace_id;
}

long
SshWorkerLauncher::launch(unsigned shard,
                          const std::vector<std::string> &argv)
{
    const std::string &host = hosts_[shard % hosts_.size()];
    const bool token_on_stdin = !storeToken_.empty();
    const std::vector<std::string> full =
        sshArgv(sshProgram_, host, argv, token_on_stdin, traceId_);

    std::vector<char *> cargv;
    cargv.reserve(full.size() + 1);
    for (const std::string &arg : full)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        smt_fatal("cannot create the capture pipe for shard %u", shard);
    int stdin_fds[2] = {-1, -1};
    if (token_on_stdin && ::pipe(stdin_fds) != 0)
        smt_fatal("cannot create the token pipe for shard %u", shard);

    const pid_t pid = ::fork();
    if (pid < 0)
        smt_fatal("cannot fork ssh for shard %u", shard);
    if (pid == 0) {
        ::close(pipe_fds[0]);
        ::dup2(pipe_fds[1], STDOUT_FILENO);
        ::dup2(pipe_fds[1], STDERR_FILENO);
        ::close(pipe_fds[1]);
        if (token_on_stdin) {
            ::close(stdin_fds[1]);
            ::dup2(stdin_fds[0], STDIN_FILENO);
            ::close(stdin_fds[0]);
        }
        ::execvp(cargv[0], cargv.data());
        std::fprintf(stderr, "smtsweep-dist: cannot exec %s\n", cargv[0]);
        ::_exit(127);
    }
    ::close(pipe_fds[1]);
    ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
    if (token_on_stdin) {
        // One line, written before the worker could possibly block on
        // output (a pipe holds far more than a token), then EOF. An
        // ssh child that died before reading must surface as a failed
        // write, not a SIGPIPE kill — ignore the signal only for the
        // duration of this write.
        struct sigaction ignore = {};
        struct sigaction saved = {};
        ignore.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore, &saved);
        ::close(stdin_fds[0]);
        const std::string line = storeToken_ + "\n";
        std::size_t off = 0;
        while (off < line.size()) {
            const ssize_t n = ::write(stdin_fds[1], line.data() + off,
                                      line.size() - off);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                smt_warn("shard %u: cannot deliver the store token "
                         "over ssh stdin",
                         shard);
                break;
            }
            off += static_cast<std::size_t>(n);
        }
        ::close(stdin_fds[1]);
        ::sigaction(SIGPIPE, &saved, nullptr);
    }

    Capture cap;
    cap.shard = shard;
    cap.fd = pipe_fds[0];
    captures_[pid] = std::move(cap);
    return pid;
}

void
SshWorkerLauncher::drain(Capture &cap)
{
    if (cap.fd < 0)
        return;
    char buf[8192];
    while (true) {
        const ssize_t n = ::read(cap.fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN: nothing more right now.
        }
        if (n == 0) { // writer closed: the worker is gone.
            ::close(cap.fd);
            cap.fd = -1;
            break;
        }
        cap.pending.append(buf, static_cast<std::size_t>(n));
    }

    std::size_t start = 0;
    while (true) {
        const std::size_t nl = cap.pending.find('\n', start);
        if (nl == std::string::npos)
            break;
        const std::string line = cap.pending.substr(start, nl - start);
        start = nl + 1;
        if (line.empty())
            continue;
        ProgressRecord rec;
        if (parseProgressLine(line, rec)) {
            cap.latest = rec;
            cap.hasLatest = true;
        } else {
            std::fprintf(stderr, "[shard %u] %s\n", cap.shard,
                         line.c_str());
        }
    }
    cap.pending.erase(0, start);
}

void
SshWorkerLauncher::closeCapture(Capture &cap)
{
    drain(cap);
    if (!cap.pending.empty()) { // a final line without its newline.
        std::fprintf(stderr, "[shard %u] %s\n", cap.shard,
                     cap.pending.c_str());
        cap.pending.clear();
    }
    if (cap.fd >= 0) {
        ::close(cap.fd);
        cap.fd = -1;
    }
}

bool
SshWorkerLauncher::poll(long handle, int &exit_code)
{
    auto it = captures_.find(handle);
    smt_assert(it != captures_.end(), "polling an unknown worker");
    Capture &cap = it->second;
    drain(cap);
    if (cap.exited) {
        exit_code = cap.exitCode;
        return true;
    }

    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(handle), &status,
                              WNOHANG);
    if (r == 0)
        return false;
    if (r < 0)
        cap.exitCode = 127; // already reaped (or never ours).
    else if (WIFEXITED(status))
        cap.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        cap.exitCode = 128 + WTERMSIG(status);
    else
        return false; // stopped/continued; keep polling.
    cap.exited = true;
    closeCapture(cap);
    exit_code = cap.exitCode;
    return true;
}

void
SshWorkerLauncher::wait(long handle, int &exit_code)
{
    // The pipe must keep draining while we wait, or a chatty worker
    // blocks on a full pipe and never exits; poll with short sleeps.
    while (!poll(handle, exit_code))
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

void
SshWorkerLauncher::terminate(long handle)
{
    ::kill(static_cast<pid_t>(handle), SIGTERM);
    int exit_code = 0;
    wait(handle, exit_code);
}

bool
SshWorkerLauncher::latestProgress(long handle, ProgressRecord &out)
{
    auto it = captures_.find(handle);
    if (it == captures_.end())
        return false;
    drain(it->second);
    if (!it->second.hasLatest)
        return false;
    out = it->second.latest;
    return true;
}

} // namespace smt::dist
