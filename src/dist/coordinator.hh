/**
 * @file
 * The multi-process sweep coordinator.
 *
 * Plans the shard partition (preferring observed point costs from the
 * store manifest over estimates), records the expected-work manifest
 * in the shared store, launches one `smtsweep --shard i/N` worker per
 * shard, monitors their heartbeats into a live stderr progress line
 * (with ETA), and finally merges the store back into a SweepOutcome —
 * a pure cache replay, so the merged result is bit-identical to a
 * serial run of the same experiment whichever store (local directory
 * or remote smtstore) backed it.
 *
 * Failure handling has two modes. With work stealing (the default),
 * a dead worker's unfinished digests are declared orphaned in the
 * store and surviving workers adopt them through the claim CAS — no
 * shard is ever relaunched, and anything still unfinished when the
 * last worker exits is recovered in-process before the merge. With
 * --no-steal, the classic per-shard relaunch (--retries) applies.
 *
 * Worker processes are started through the WorkerLauncher interface:
 * LocalProcessLauncher fork/execs on this host; SshWorkerLauncher
 * (dist/ssh_launcher.hh) runs them on a --hosts list and captures
 * their output. makeLauncher() picks by host list.
 */

#ifndef SMT_DIST_COORDINATOR_HH
#define SMT_DIST_COORDINATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "dist/progress.hh"
#include "dist/shard.hh"
#include "sweep/experiments.hh"
#include "sweep/json.hh"
#include "sweep/runner.hh"

namespace smt::dist
{

/** Starts and polls worker processes for the coordinator. */
class WorkerLauncher
{
  public:
    virtual ~WorkerLauncher() = default;

    /** Start the worker for `shard` with the given argv (argv[0] is
     *  the program). Returns an opaque handle. */
    virtual long launch(unsigned shard,
                        const std::vector<std::string> &argv) = 0;

    /**
     * Hand every future worker the store bearer token — through the
     * environment (local fork/exec) or the ssh stdin pipe (remote),
     * NEVER through argv, so the token is invisible to `ps` on every
     * host. Workers read it back from SMTSTORE_TOKEN.
     */
    virtual void setStoreToken(const std::string &token)
    {
        (void)token;
    }

    /**
     * Hand every future worker the sweep's trace id (SMTSWEEP_TRACE_ID
     * in its environment), so worker spans and store access logs join
     * the coordinator's trace. The local backend appends it to the
     * exec environment; the ssh backend exports it inside the remote
     * command (sshd drops foreign env vars by default — and unlike the
     * store token, a trace id is not a secret, so argv is fine).
     */
    virtual void setTraceId(const std::string &trace_id)
    {
        (void)trace_id;
    }

    /** Poll a worker; true once it has exited, filling `exit_code`
     *  (128+signal for a signalled death). */
    virtual bool poll(long handle, int &exit_code) = 0;

    /** Block until the worker exits (the monitor switches to this
     *  once every shard has reported terminal progress, so the loop
     *  ends promptly instead of polling idle workers). */
    virtual void wait(long handle, int &exit_code) = 0;

    /** Best-effort termination (another shard failed hard). */
    virtual void terminate(long handle) = 0;

    /** True when this launcher captures worker heartbeats itself
     *  (workers then heartbeat to stdout, not to progress files). */
    virtual bool capturesProgress() const { return false; }

    /** The newest captured heartbeat, when capturesProgress(). */
    virtual bool latestProgress(long handle, ProgressRecord &out)
    {
        (void)handle;
        (void)out;
        return false;
    }
};

/** fork/exec workers on this host (the token, if any, rides an
 *  SMTSTORE_TOKEN entry appended to the exec environment). */
class LocalProcessLauncher final : public WorkerLauncher
{
  public:
    long launch(unsigned shard,
                const std::vector<std::string> &argv) override;
    void setStoreToken(const std::string &token) override;
    void setTraceId(const std::string &trace_id) override;
    bool poll(long handle, int &exit_code) override;
    void wait(long handle, int &exit_code) override;
    void terminate(long handle) override;

  private:
    std::string tokenEnv_; ///< "SMTSTORE_TOKEN=<token>" or empty.
    std::string traceEnv_; ///< "SMTSWEEP_TRACE_ID=<id>" or empty.
};

/**
 * The launcher for a host list: empty means this host
 * (LocalProcessLauncher); "hostA,hostB,..." launches workers over ssh
 * (SshWorkerLauncher), `ssh_program` being the ssh binary to invoke
 * (injectable for tests).
 */
std::unique_ptr<WorkerLauncher> makeLauncher(const std::string &host_list,
                                             const std::string &ssh_program
                                             = "ssh");

struct DistOptions;

/**
 * The argv one worker shard is launched with (exposed so tests can
 * pin what the coordinator forwards — notably that a traced sweep
 * hands every worker a `--trace-out` of its own: without one, workers
 * emit no per-digest spans at all and the merged trace silently
 * reduces to coordinator-level events). `trace_out` is the worker's
 * trace file path, "" for an untraced sweep. The store token is
 * deliberately never part of this argv — it travels out of band
 * through the launcher (argv shows up in ps).
 */
std::vector<std::string>
workerShardArgs(const DistOptions &opts, const std::string &experiment,
                unsigned jobs, unsigned shard, bool captured_progress,
                const std::string &progress_base,
                const std::string &trace_out);

/** How to run a distributed sweep. */
struct DistOptions
{
    unsigned shards = 2;

    /** Relaunches allowed per failed shard (only without stealing). */
    unsigned retries = 1;

    /** Pool workers per worker process; 0 = cores / shards. */
    unsigned jobsPerWorker = 0;

    /** Worker binary (default: `smtsweep` beside this executable).
     *  With --hosts this is the path on the *remote* hosts. */
    std::string smtsweepPath;

    /** Remote host list ("hostA,hostB"); empty = local processes. */
    std::string hostList;

    /** ssh binary for the remote backend (tests inject a stub). */
    std::string sshProgram = "ssh";

    /** Orphan-aware work stealing (see file comment). */
    bool steal = true;

    /** Grace period a worker lingers for orphans (--steal-wait). */
    double stealWaitSeconds = 10.0;

    /** Live progress line on stderr. */
    bool showProgress = true;

    /** Measurement knobs + the shared store locator (cacheDir must be
     *  set — a directory or an http:// store URL); forwarded to every
     *  worker and used for the merge pass. */
    sweep::RunnerOptions ropts;
};

/** One shard's lifecycle as the coordinator saw it. */
struct ShardStatus
{
    unsigned shard = 0;
    unsigned attempts = 0;
    bool succeeded = false;
    std::size_t points = 0;
    std::size_t cacheHits = 0;
    std::size_t stolen = 0;
    double wallSeconds = 0.0;
};

/** A completed distributed sweep. */
struct DistOutcome
{
    sweep::SweepOutcome merged;
    std::vector<ShardStatus> shards;
    std::size_t workerCacheHits = 0;

    /** Digests declared orphaned after worker deaths (work stealing). */
    std::size_t orphansDeclared = 0;

    /** Orphans nobody adopted, measured by the coordinator itself. */
    std::size_t recoveredInProcess = 0;

    double wallSeconds = 0.0;
};

/**
 * Run `experiment` sharded opts.shards ways. Returns 0 on success
 * (outcome filled, merge verified all-hits), nonzero after a shard
 * failure the sweep could not absorb.
 */
int runDistributed(const sweep::NamedExperiment &experiment,
                   const DistOptions &opts, DistOutcome &outcome);

/** The machine-readable coordinator summary (BENCH_dist.json body). */
sweep::Json distArtifact(const std::string &experiment,
                         const DistOutcome &outcome);

/**
 * Audit a store against its manifest: per-digest done / in-progress /
 * orphaned / pending classification (the coordinator's view of a
 * sweep it did not run itself). `store_token` authenticates against a
 * token-protected remote store. Prints the human table to stdout;
 * per-digest lines when `verbose`. `json_path` additionally emits the
 * audit as JSON — "-" for stdout (replacing the table), else a file
 * path. Returns an exit code.
 */
int auditStore(const std::string &store_locator,
               const std::string &store_token, bool verbose,
               const std::string &json_path = "");

/** The audit document auditStore() emits (exposed for tests). */
sweep::Json auditArtifact(const std::string &store_locator,
                          const std::string &store_token, bool &ok);

} // namespace smt::dist

#endif // SMT_DIST_COORDINATOR_HH
