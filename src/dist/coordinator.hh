/**
 * @file
 * The multi-process sweep coordinator.
 *
 * Plans the shard partition, records the expected-work manifest in the
 * shared store, launches one `smtsweep --shard i/N` worker per shard,
 * monitors their heartbeat files into a live stderr progress line
 * (with ETA), relaunches failed shards, and finally merges the store
 * back into a SweepOutcome — a pure cache replay, so the merged result
 * is bit-identical to a serial run of the same experiment.
 *
 * Worker processes are started through the WorkerLauncher interface.
 * The local implementation fork/execs on this host; a remote backend
 * (ssh to a host list, a job scheduler) would implement the same
 * interface — see makeLauncher(), which currently accepts only the
 * local case.
 */

#ifndef SMT_DIST_COORDINATOR_HH
#define SMT_DIST_COORDINATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "sweep/experiments.hh"
#include "sweep/json.hh"
#include "sweep/runner.hh"

namespace smt::dist
{

/** Starts and polls worker processes for the coordinator. */
class WorkerLauncher
{
  public:
    virtual ~WorkerLauncher() = default;

    /** Start the worker for `shard` with the given argv (argv[0] is
     *  the program). Returns an opaque handle. */
    virtual long launch(unsigned shard,
                        const std::vector<std::string> &argv) = 0;

    /** Poll a worker; true once it has exited, filling `exit_code`
     *  (128+signal for a signalled death). */
    virtual bool poll(long handle, int &exit_code) = 0;

    /** Best-effort termination (another shard failed hard). */
    virtual void terminate(long handle) = 0;
};

/** fork/exec workers on this host. */
class LocalProcessLauncher final : public WorkerLauncher
{
  public:
    long launch(unsigned shard,
                const std::vector<std::string> &argv) override;
    bool poll(long handle, int &exit_code) override;
    void terminate(long handle) override;
};

/**
 * The launcher for a host list. An empty list means this host
 * (LocalProcessLauncher); a non-empty list is the remote backend's
 * slot, which is not implemented yet (fatal, pointing at ROADMAP).
 */
std::unique_ptr<WorkerLauncher> makeLauncher(const std::string &host_list);

/** How to run a distributed sweep. */
struct DistOptions
{
    unsigned shards = 2;

    /** Relaunches allowed per failed shard before giving up. */
    unsigned retries = 1;

    /** Pool workers per worker process; 0 = cores / shards. */
    unsigned jobsPerWorker = 0;

    /** Worker binary (default: `smtsweep` beside this executable). */
    std::string smtsweepPath;

    /** Remote host list hook (must be empty until the backend lands). */
    std::string hostList;

    /** Live progress line on stderr. */
    bool showProgress = true;

    /** Measurement knobs + the shared store (cacheDir must be set);
     *  forwarded to every worker and used for the merge pass. */
    sweep::RunnerOptions ropts;
};

/** One shard's lifecycle as the coordinator saw it. */
struct ShardStatus
{
    unsigned shard = 0;
    unsigned attempts = 0;
    bool succeeded = false;
    std::size_t points = 0;
    std::size_t cacheHits = 0;
    double wallSeconds = 0.0;
};

/** A completed distributed sweep. */
struct DistOutcome
{
    sweep::SweepOutcome merged;
    std::vector<ShardStatus> shards;
    std::size_t workerCacheHits = 0;
    double wallSeconds = 0.0;
};

/**
 * Run `experiment` sharded opts.shards ways. Returns 0 on success
 * (outcome filled, merge verified all-hits), nonzero after a shard
 * exhausts its retries.
 */
int runDistributed(const sweep::NamedExperiment &experiment,
                   const DistOptions &opts, DistOutcome &outcome);

/** The machine-readable coordinator summary (BENCH_dist.json body). */
sweep::Json distArtifact(const std::string &experiment,
                         const DistOutcome &outcome);

/**
 * Audit a store against its manifest: per-digest done / in-progress /
 * orphaned / pending classification (the coordinator's view of a
 * sweep it did not run itself). Returns an exit code; prints to
 * stdout, per-digest lines when `verbose`.
 */
int auditStore(const std::string &cache_dir, bool verbose);

} // namespace smt::dist

#endif // SMT_DIST_COORDINATOR_HH
