/**
 * @file
 * The remote worker backend: launch `smtsweep --shard i/N` on a host
 * list over ssh.
 *
 * Each worker is an ssh child process (`ssh -o BatchMode=yes HOST
 * 'exec smtsweep ...'`, hosts assigned round-robin from the --hosts
 * list) whose stdout+stderr the coordinator captures through a pipe.
 * Remote workers heartbeat to their stdout (`--progress-stdout`), so
 * the capture stream carries both progress records — parsed into the
 * same ProgressRecord the file-based path uses — and ordinary worker
 * output, which is forwarded to the coordinator's stderr prefixed
 * with its shard ("[shard 1] ..."). No agent, daemon, or shared
 * filesystem is required on the remote side beyond a reachable
 * `smtsweep` binary and the store URL.
 *
 * The ssh program itself is injectable (--ssh); tests substitute a
 * stub that runs the command locally, exercising the entire
 * pipe/capture/heartbeat path without an sshd.
 */

#ifndef SMT_DIST_SSH_LAUNCHER_HH
#define SMT_DIST_SSH_LAUNCHER_HH

#include <map>
#include <string>
#include <vector>

#include "dist/coordinator.hh"
#include "dist/progress.hh"

namespace smt::dist
{

/** Quote one argument for the remote POSIX shell ssh invokes. */
std::string shellQuoteArg(const std::string &arg);

/**
 * The local argv for one remote worker launch: ssh_program, options,
 * the host, and the quoted remote command. With `token_on_stdin` the
 * remote command first reads one line from its stdin into
 * SMTSTORE_TOKEN before exec'ing the worker — the launcher pipes the
 * store token through ssh's encrypted channel, so it never appears in
 * argv (ps) on either host. A non-empty `trace_id` is exported as
 * SMTSWEEP_TRACE_ID inside the remote command (sshd drops foreign env
 * vars; a trace id is not a secret, so the command line is fine), so
 * remote workers join the coordinator's trace instead of minting
 * their own ids.
 */
std::vector<std::string> sshArgv(const std::string &ssh_program,
                                 const std::string &host,
                                 const std::vector<std::string> &argv,
                                 bool token_on_stdin = false,
                                 const std::string &trace_id = "");

/** Parse "hostA,hostB,user@hostC" (empty names skipped). */
std::vector<std::string> parseHostList(const std::string &host_list);

class SshWorkerLauncher final : public WorkerLauncher
{
  public:
    explicit SshWorkerLauncher(std::vector<std::string> hosts,
                               std::string ssh_program = "ssh");

    long launch(unsigned shard,
                const std::vector<std::string> &argv) override;
    void setStoreToken(const std::string &token) override;
    void setTraceId(const std::string &trace_id) override;
    bool poll(long handle, int &exit_code) override;
    void wait(long handle, int &exit_code) override;
    void terminate(long handle) override;

    bool capturesProgress() const override { return true; }
    bool latestProgress(long handle, ProgressRecord &out) override;

    const std::vector<std::string> &hosts() const { return hosts_; }

  private:
    struct Capture
    {
        unsigned shard = 0;
        int fd = -1; ///< read end of the child's stdout+stderr pipe.
        std::string pending; ///< bytes short of a complete line.
        ProgressRecord latest;
        bool hasLatest = false;
        bool exited = false;
        int exitCode = 0;
    };

    /** Non-blocking drain of the capture pipe; forwards non-record
     *  lines, remembers the newest heartbeat. */
    void drain(Capture &cap);
    void closeCapture(Capture &cap);

    std::vector<std::string> hosts_;
    std::string sshProgram_;
    std::string storeToken_; ///< piped to each worker's stdin.
    std::string traceId_;    ///< exported in the remote command.
    std::map<long, Capture> captures_; ///< keyed by child pid.
};

} // namespace smt::dist

#endif // SMT_DIST_SSH_LAUNCHER_HH
