#include "dist/shard.hh"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/logging.hh"
#include "dist/progress.hh"
#include "sweep/digest.hh"

namespace smt::dist
{

double
estimatedPointCost(const sweep::SweepPoint &point)
{
    const MeasureOptions &opts = point.options;
    const double cycles =
        static_cast<double>(opts.warmupCycles + opts.cyclesPerRun);
    const double width = point.threads >= 1 ? point.threads : 1;
    return cycles * opts.runs * width;
}

ShardPlan
planShards(const std::vector<sweep::SweepPoint> &points,
           unsigned shard_count)
{
    smt_assert(shard_count >= 1, "cannot plan zero shards");

    ShardPlan plan;
    plan.shardCount = shard_count;
    plan.members.resize(shard_count);
    plan.cost.assign(shard_count, 0.0);

    // Collect unique digests with their cost. Duplicate points (same
    // digest) are one unit of work: the runner measures them once.
    struct Unit
    {
        std::string digest;
        double cost;
    };
    std::vector<Unit> units;
    std::set<std::string> seen;
    plan.digests.reserve(points.size());
    for (const sweep::SweepPoint &p : points) {
        std::string digest = sweep::measurementDigest(p.config, p.options);
        if (seen.insert(digest).second)
            units.push_back({digest, estimatedPointCost(p)});
        plan.digests.push_back(std::move(digest));
    }

    // LPT over the digest set: costliest first (ties by digest, so the
    // order — and hence the whole plan — is input-order independent),
    // each onto the least-loaded shard (ties to the lowest index).
    std::sort(units.begin(), units.end(), [](const Unit &a, const Unit &b) {
        if (a.cost != b.cost)
            return a.cost > b.cost;
        return a.digest < b.digest;
    });
    for (const Unit &u : units) {
        unsigned best = 0;
        for (unsigned s = 1; s < shard_count; ++s)
            if (plan.cost[s] < plan.cost[best])
                best = s;
        plan.shardOfDigest.emplace(u.digest, best);
        plan.cost[best] += u.cost;
    }

    plan.shardOf.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const unsigned shard = plan.shardOfDigest.at(plan.digests[i]);
        plan.shardOf.push_back(shard);
        plan.members[shard].push_back(i);
    }
    return plan;
}

ShardRunResult
runShard(const sweep::ExperimentSpec &spec,
         const sweep::RunnerOptions &ropts, unsigned shard_index,
         unsigned shard_count, const std::string &progress_path)
{
    smt_assert(shard_count >= 1 && shard_index < shard_count,
               "shard %u/%u out of range", shard_index, shard_count);
    if (ropts.cacheDir.empty())
        smt_fatal("a shard run needs a shared store (--cache-dir): its "
                  "results are merged from there, not printed");

    const auto start = std::chrono::steady_clock::now();

    const std::vector<sweep::SweepPoint> grid =
        spec.expand(ropts.measure);
    const ShardPlan plan = planShards(grid, shard_count);
    std::vector<sweep::SweepPoint> mine;
    mine.reserve(plan.members[shard_index].size());
    for (std::size_t idx : plan.members[shard_index])
        mine.push_back(grid[idx]);

    ProgressWriter writer(progress_path, shard_index, mine.size());
    sweep::RunnerOptions shard_opts = ropts;
    shard_opts.onProgress = [&](const sweep::RunProgress &p) {
        writer.update(p.pointsDone, p.cacheHits);
    };

    const std::vector<sweep::PointResult> results =
        sweep::runPoints(mine, shard_opts);

    ShardRunResult out;
    out.points = results.size();
    for (const sweep::PointResult &r : results) {
        if (r.cached)
            ++out.cacheHits;
        else
            ++out.cacheMisses;
    }
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start)
            .count();
    writer.finish(out.points, out.cacheHits);
    return out;
}

} // namespace smt::dist
