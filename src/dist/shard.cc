#include "dist/shard.hh"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "common/logging.hh"
#include "dist/progress.hh"
#include "sweep/digest.hh"
#include "sweep/result_store.hh"

namespace smt::dist
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - start)
        .count();
}

/**
 * The digest -> shard assignment a coordinator pinned in the store
 * manifest, provided it covers exactly this grid's digest set with the
 * same shard count (otherwise the manifest belongs to some other
 * sweep and the caller plans locally).
 */
bool
assignmentFromManifest(const sweep::Json &manifest,
                       const std::vector<std::string> &digests,
                       unsigned shard_count,
                       std::map<std::string, unsigned> &out)
{
    if (manifest.type() != sweep::Json::Type::Object
        || !manifest.has("points") || !manifest.has("shardCount")
        || manifest.at("shardCount").asUInt() != shard_count)
        return false;

    std::map<std::string, unsigned> assignment;
    const sweep::Json &points = manifest.at("points");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const sweep::Json &p = points[i];
        if (p.type() != sweep::Json::Type::Object || !p.has("digest")
            || !p.has("shard"))
            return false;
        const unsigned shard =
            static_cast<unsigned>(p.at("shard").asUInt());
        if (shard >= shard_count)
            return false;
        assignment[p.at("digest").asString()] = shard;
    }

    const std::set<std::string> ours(digests.begin(), digests.end());
    if (assignment.size() != ours.size())
        return false;
    for (const std::string &d : ours) {
        if (assignment.find(d) == assignment.end())
            return false;
    }
    out = std::move(assignment);
    return true;
}

} // namespace

double
estimatedPointCost(const sweep::SweepPoint &point)
{
    const MeasureOptions &opts = point.options;
    const double cycles =
        static_cast<double>(opts.warmupCycles + opts.cyclesPerRun);
    const double width = point.threads >= 1 ? point.threads : 1;
    return cycles * opts.runs * width;
}

CostHints
costHintsFromManifest(const sweep::Json &manifest)
{
    CostHints hints;
    if (manifest.type() != sweep::Json::Type::Object
        || !manifest.has("observedCosts"))
        return hints;
    const sweep::Json &costs = manifest.at("observedCosts");
    if (costs.type() != sweep::Json::Type::Object)
        return hints;
    for (const auto &[digest, seconds] : costs.items()) {
        if (seconds.isNumber() && seconds.asDouble() > 0.0)
            hints.emplace(digest, seconds.asDouble());
    }
    return hints;
}

ShardPlan
planShards(const std::vector<sweep::SweepPoint> &points,
           unsigned shard_count, const CostHints &observed)
{
    smt_assert(shard_count >= 1, "cannot plan zero shards");

    ShardPlan plan;
    plan.shardCount = shard_count;
    plan.members.resize(shard_count);
    plan.cost.assign(shard_count, 0.0);

    // Collect unique digests with their cost — observed wall time when
    // a previous sweep recorded one, the static estimate otherwise.
    // Duplicate points (same digest) are one unit of work: the runner
    // measures them once.
    struct Unit
    {
        std::string digest;
        double cost;
    };
    std::vector<Unit> units;
    std::set<std::string> seen;
    plan.digests.reserve(points.size());
    for (const sweep::SweepPoint &p : points) {
        std::string digest = sweep::measurementDigest(p.config, p.options);
        if (seen.insert(digest).second) {
            const auto hint = observed.find(digest);
            units.push_back({digest, hint != observed.end()
                                         ? hint->second
                                         : estimatedPointCost(p)});
        }
        plan.digests.push_back(std::move(digest));
    }

    // LPT over the digest set: costliest first (ties by digest, so the
    // order — and hence the whole plan — is input-order independent),
    // each onto the least-loaded shard (ties to the lowest index).
    std::sort(units.begin(), units.end(), [](const Unit &a, const Unit &b) {
        if (a.cost != b.cost)
            return a.cost > b.cost;
        return a.digest < b.digest;
    });
    for (const Unit &u : units) {
        unsigned best = 0;
        for (unsigned s = 1; s < shard_count; ++s)
            if (plan.cost[s] < plan.cost[best])
                best = s;
        plan.shardOfDigest.emplace(u.digest, best);
        plan.cost[best] += u.cost;
    }

    plan.shardOf.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const unsigned shard = plan.shardOfDigest.at(plan.digests[i]);
        plan.shardOf.push_back(shard);
        plan.members[shard].push_back(i);
    }
    return plan;
}

ShardRunResult
runShard(const sweep::ExperimentSpec &spec,
         const sweep::RunnerOptions &ropts,
         const ShardWorkerOptions &wopts)
{
    smt_assert(wopts.count >= 1 && wopts.index < wopts.count,
               "shard %u/%u out of range", wopts.index, wopts.count);
    if (ropts.cacheDir.empty())
        smt_fatal("a shard run needs a shared store (--cache-dir or "
                  "--store-url): its results are merged from there, "
                  "not printed");

    const auto start = std::chrono::steady_clock::now();
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openStore(ropts.cacheDir, ropts.storeToken);

    // Assignment: the coordinator's manifest when it matches this grid
    // (so every process of one sweep agrees by construction), else a
    // local plan seeded with whatever cost hints the manifest carries.
    const std::vector<sweep::SweepPoint> grid =
        spec.expand(ropts.measure);
    const std::optional<sweep::Json> manifest = store->readManifest();
    std::vector<std::string> digests;
    digests.reserve(grid.size());
    for (const sweep::SweepPoint &p : grid)
        digests.push_back(sweep::measurementDigest(p.config, p.options));

    std::map<std::string, unsigned> assignment;
    if (!manifest.has_value()
        || !assignmentFromManifest(*manifest, digests, wopts.count,
                                   assignment)) {
        const CostHints hints = manifest.has_value()
                                    ? costHintsFromManifest(*manifest)
                                    : CostHints{};
        assignment = planShards(grid, wopts.count, hints).shardOfDigest;
    }

    std::vector<sweep::SweepPoint> mine;
    std::vector<std::size_t> mine_indices;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (assignment.at(digests[i]) == wopts.index) {
            mine.push_back(grid[i]);
            mine_indices.push_back(i);
        }
    }

    std::unique_ptr<ProgressWriter> writer;
    if (wopts.progressToStdout)
        writer = std::make_unique<ProgressWriter>(stdout, wopts.index,
                                                  mine.size());
    else
        writer = std::make_unique<ProgressWriter>(wopts.progressPath,
                                                  wopts.index,
                                                  mine.size());

    ShardRunResult out;
    sweep::RunnerOptions shard_opts = ropts;
    shard_opts.onProgress = [&](const sweep::RunProgress &p) {
        writer->update(p.pointsDone, p.cacheHits);
    };

    const std::vector<sweep::PointResult> results =
        sweep::runPoints(mine, shard_opts);

    out.points = results.size();
    for (const sweep::PointResult &r : results) {
        if (r.cached)
            ++out.cacheHits;
        else
            ++out.cacheMisses;
    }

    // Work stealing: linger while unfinished work remains anywhere in
    // the grid, adopting orphaned digests through the store's claim
    // CAS. Adoption resets the grace period; a quiet grace period with
    // only live work left means the remaining shards have it covered.
    if (wopts.steal.enabled) {
        std::map<std::string, std::size_t> uniq; // digest -> grid idx
        for (std::size_t i = 0; i < grid.size(); ++i)
            uniq.emplace(digests[i], i);

        // Completion is permanent, so each poll learns the done set
        // from one bulk listing and pays a per-digest state probe
        // only for the (shrinking) unfinished tail — against a remote
        // store that is one round-trip per poll plus one per laggard,
        // not one per grid digest.
        std::set<std::string> done;
        auto last_activity = std::chrono::steady_clock::now();
        while (true) {
            for (std::string &d : store->storedDigests())
                done.insert(std::move(d));
            bool all_done = true;
            bool adopted = false;
            for (const auto &[digest, idx] : uniq) {
                if (done.count(digest))
                    continue;
                const sweep::WorkState state = store->state(digest);
                if (state == sweep::WorkState::Done)
                    continue;
                all_done = false;
                if (state != sweep::WorkState::Orphaned)
                    continue;
                const std::string expect =
                    store->readMarkerText(digest);
                if (expect.empty() || !store->tryAdopt(digest, expect))
                    continue; // a rival adopter beat us to it.
                if (ropts.verbose)
                    smt_inform("shard %u: adopted orphaned %s",
                               wopts.index, digest.c_str());
                sweep::RunnerOptions steal_opts = ropts;
                steal_opts.onProgress = nullptr;
                steal_opts.requireCached = false;
                sweep::runPoints({grid[idx]}, steal_opts);
                ++out.stolen;
                adopted = true;
                last_activity = std::chrono::steady_clock::now();
                writer->update(out.points, out.cacheHits, out.stolen);
            }
            if (all_done)
                break;
            if (!adopted) {
                if (secondsSince(last_activity)
                    > wopts.steal.waitSeconds)
                    break;
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    wopts.steal.pollSeconds));
            }
        }
    }

    out.wallSeconds = secondsSince(start);
    writer->finish(out.points, out.cacheHits, out.stolen);
    return out;
}

ShardRunResult
runShard(const sweep::ExperimentSpec &spec,
         const sweep::RunnerOptions &ropts, unsigned shard_index,
         unsigned shard_count, const std::string &progress_path)
{
    ShardWorkerOptions wopts;
    wopts.index = shard_index;
    wopts.count = shard_count;
    wopts.progressPath = progress_path;
    return runShard(spec, ropts, wopts);
}

} // namespace smt::dist
