/**
 * @file
 * The shard planner: deterministically partition an expanded sweep
 * grid into N disjoint shards of roughly equal simulation cost.
 *
 * The unit of work is the measurement digest — the same handle that
 * keys the result store — so the partition is a pure function of the
 * *set* of digests in the grid (plus an optional cost-hint snapshot):
 * stable under point reordering, across processes, and across hosts.
 * Every process of a distributed sweep (coordinator, each worker, the
 * merge pass) re-derives the same plan from the spec instead of
 * shipping assignments around; workers launched by a coordinator
 * additionally read the manifest it recorded, which pins both the
 * assignment and the cost hints it planned with.
 *
 * Planning is greedy LPT (longest processing time first): unique
 * digests sorted by descending cost — the observed wall time recorded
 * in the store manifest when a previous sweep measured that digest,
 * else the estimate (cycles x runs, scaled by thread count) — ties
 * broken by digest, each assigned to the least-loaded shard.
 * Duplicate points share their digest's shard, so no two shards ever
 * measure the same machine.
 */

#ifndef SMT_DIST_SHARD_HH
#define SMT_DIST_SHARD_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sweep/json.hh"
#include "sweep/runner.hh"
#include "sweep/spec.hh"

namespace smt::dist
{

/** Relative simulation cost of one grid point (the estimate used when
 *  no observed cost is on record). */
double estimatedPointCost(const sweep::SweepPoint &point);

/** Observed per-digest wall seconds, keyed as the planner wants them. */
using CostHints = std::map<std::string, double>;

/** The cost hints a coordinator recorded in a store manifest
 *  ("observedCosts"); empty when the manifest has none. */
CostHints costHintsFromManifest(const sweep::Json &manifest);

/** A deterministic partition of a grid into disjoint shards. */
struct ShardPlan
{
    unsigned shardCount = 0;

    /** Shard owning each input point (parallel to the input vector). */
    std::vector<unsigned> shardOf;

    /** Each input point's measurement digest (computed while
     *  planning; callers reuse it instead of re-hashing the grid). */
    std::vector<std::string> digests;

    /** Point indices per shard, in input order. */
    std::vector<std::vector<std::size_t>> members;

    /** Cost per shard (duplicates counted once). */
    std::vector<double> cost;

    /** The order-independent digest -> shard assignment. */
    std::map<std::string, unsigned> shardOfDigest;
};

/**
 * Partition `points` into `shard_count` disjoint shards. A digest with
 * an entry in `observed` is weighed by that observed wall time instead
 * of its estimate — the dynamic cost feedback loop. The plan is a pure
 * function of (digest set, observed snapshot).
 */
ShardPlan planShards(const std::vector<sweep::SweepPoint> &points,
                     unsigned shard_count,
                     const CostHints &observed = {});

/** How a worker lingers after its own shard to adopt orphaned work. */
struct StealOptions
{
    bool enabled = false;

    /** Keep polling for orphans this long after the last adoption
     *  (and after finishing the shard) before giving up while other
     *  shards still run. */
    double waitSeconds = 10.0;

    /** Store poll interval while lingering. */
    double pollSeconds = 0.2;
};

/** One worker's share of a shard run. */
struct ShardRunResult
{
    std::size_t points = 0;
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    std::size_t stolen = 0; ///< orphaned digests adopted and measured.
    double wallSeconds = 0.0;
};

/** The worker protocol's knobs (`smtsweep --shard i/N ...`). */
struct ShardWorkerOptions
{
    unsigned index = 0;
    unsigned count = 1;

    /** JSONL heartbeat file; empty = none (see progressToStdout). */
    std::string progressPath;

    /** Heartbeat to stdout instead — remote workers, whose stdout the
     *  coordinator captures through the ssh pipe. */
    bool progressToStdout = false;

    StealOptions steal;
};

/**
 * Run one shard of an experiment into the shared store
 * (ropts.cacheDir names it — a directory or a store URL). The
 * assignment comes from the store manifest when the coordinator
 * recorded one for this digest set, else from a local planShards() —
 * identical inputs yield identical plans in every worker. With
 * stealing enabled the worker lingers after its own slice and adopts
 * orphaned digests of dead shards through the store's claim CAS.
 */
ShardRunResult runShard(const sweep::ExperimentSpec &spec,
                        const sweep::RunnerOptions &ropts,
                        const ShardWorkerOptions &wopts);

/** Convenience overload (no stealing, optional progress file). */
ShardRunResult runShard(const sweep::ExperimentSpec &spec,
                        const sweep::RunnerOptions &ropts,
                        unsigned shard_index, unsigned shard_count,
                        const std::string &progress_path = {});

} // namespace smt::dist

#endif // SMT_DIST_SHARD_HH
