/**
 * @file
 * The shard planner: deterministically partition an expanded sweep
 * grid into N disjoint shards of roughly equal simulation cost.
 *
 * The unit of work is the measurement digest — the same handle that
 * keys the result store — so the partition is a pure function of the
 * *set* of digests in the grid: stable under point reordering, across
 * processes, and across hosts. Every process of a distributed sweep
 * (coordinator, each worker, the merge pass) re-derives the same plan
 * from the spec instead of shipping assignments around.
 *
 * Planning is greedy LPT (longest processing time first): unique
 * digests sorted by descending estimated cost (cycles x runs, scaled
 * by thread count — wider machines simulate more work per cycle),
 * ties broken by digest, each assigned to the least-loaded shard.
 * Duplicate points share their digest's shard, so no two shards ever
 * measure the same machine.
 */

#ifndef SMT_DIST_SHARD_HH
#define SMT_DIST_SHARD_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sweep/runner.hh"
#include "sweep/spec.hh"

namespace smt::dist
{

/** Relative simulation cost of one grid point. */
double estimatedPointCost(const sweep::SweepPoint &point);

/** A deterministic partition of a grid into disjoint shards. */
struct ShardPlan
{
    unsigned shardCount = 0;

    /** Shard owning each input point (parallel to the input vector). */
    std::vector<unsigned> shardOf;

    /** Each input point's measurement digest (computed while
     *  planning; callers reuse it instead of re-hashing the grid). */
    std::vector<std::string> digests;

    /** Point indices per shard, in input order. */
    std::vector<std::vector<std::size_t>> members;

    /** Estimated cost per shard (duplicates counted once). */
    std::vector<double> cost;

    /** The order-independent digest -> shard assignment. */
    std::map<std::string, unsigned> shardOfDigest;
};

/** Partition `points` into `shard_count` disjoint shards. */
ShardPlan planShards(const std::vector<sweep::SweepPoint> &points,
                     unsigned shard_count);

/** One worker's share of a shard run. */
struct ShardRunResult
{
    std::size_t points = 0;
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    double wallSeconds = 0.0;
};

/**
 * Run shard `shard_index` of `shard_count` of an experiment into the
 * shared store (ropts.cacheDir must name it). Expands and plans
 * locally — identical inputs yield identical plans in every worker.
 * `progress_path`, when non-empty, receives JSONL heartbeat records
 * a coordinator can aggregate (see dist/progress.hh).
 */
ShardRunResult runShard(const sweep::ExperimentSpec &spec,
                        const sweep::RunnerOptions &ropts,
                        unsigned shard_index, unsigned shard_count,
                        const std::string &progress_path = {});

} // namespace smt::dist

#endif // SMT_DIST_SHARD_HH
