/**
 * @file
 * Worker heartbeat records and their coordinator-side aggregation.
 *
 * Each worker appends one JSON line per settled point either to its
 * own progress file (`progress/shard-N.jsonl` under the progress
 * directory — local workers) or to its stdout (remote workers, whose
 * ssh pipe the coordinator captures): points done, cache hits, points
 * stolen from dead shards, wall seconds since the worker started, and
 * a final `finished` record. One writer per stream, flushed per line,
 * so a coordinator (or a human with tail -f) can watch a sweep
 * converge; a torn final line is simply ignored.
 *
 * The coordinator reads the latest record of every shard's stream and
 * folds them into a ProgressSummary: total points done, aggregate
 * cache hits, and an ETA extrapolated from the observed rate.
 */

#ifndef SMT_DIST_PROGRESS_HH
#define SMT_DIST_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace smt::dist
{

/** One heartbeat: a shard's position at a moment in time. */
struct ProgressRecord
{
    unsigned shard = 0;
    std::size_t pointsDone = 0;
    std::size_t pointsTotal = 0;
    std::size_t cacheHits = 0;
    std::size_t stolen = 0; ///< orphans adopted from dead shards.
    double wallSeconds = 0.0;
    bool finished = false;
};

/** Appends a shard's heartbeat records to one JSONL stream. */
class ProgressWriter
{
  public:
    /** Truncates `path` (a relaunched shard restarts its record
     *  stream); an empty path makes every call a no-op. */
    ProgressWriter(const std::string &path, unsigned shard,
                   std::size_t points_total);

    /** Heartbeats onto a borrowed stream (a remote worker's stdout,
     *  captured by the coordinator through the ssh pipe). */
    ProgressWriter(std::FILE *stream, unsigned shard,
                   std::size_t points_total);

    ~ProgressWriter();

    ProgressWriter(const ProgressWriter &) = delete;
    ProgressWriter &operator=(const ProgressWriter &) = delete;

    void update(std::size_t points_done, std::size_t cache_hits,
                std::size_t stolen = 0);
    void finish(std::size_t points_done, std::size_t cache_hits,
                std::size_t stolen = 0);

  private:
    void append(std::size_t points_done, std::size_t cache_hits,
                std::size_t stolen, bool finished);

    std::FILE *file_ = nullptr;
    bool owned_ = false;
    unsigned shard_;
    std::size_t pointsTotal_;
    std::chrono::steady_clock::time_point start_;
};

/** Parse one heartbeat line; false when `line` is not a record (torn
 *  tails, interleaved human output on a captured stream). */
bool parseProgressLine(const std::string &line, ProgressRecord &out);

/** The newest well-formed record of a progress file, if any. */
bool readLatestProgress(const std::string &path, ProgressRecord &out);

/** Every shard's latest position, folded together. */
struct ProgressSummary
{
    std::size_t pointsDone = 0;
    std::size_t pointsTotal = 0;
    std::size_t cacheHits = 0;
    std::size_t stolen = 0;
    unsigned shardsReporting = 0;
    unsigned shardsFinished = 0;

    /** Remaining seconds extrapolated from `elapsed`; < 0 while no
     *  point has settled yet (no rate to extrapolate from). */
    double etaSeconds(double elapsed_seconds) const;
};

ProgressSummary
aggregateProgress(const std::vector<ProgressRecord> &latest);

/** The per-shard progress file path under a progress directory. */
std::string progressPath(const std::string &store_dir, unsigned shard);

/** One-line human rendering ("12/16 points, 3 hits, 1/2 shards ..."). */
std::string renderProgressLine(const ProgressSummary &summary,
                               unsigned shard_count,
                               double elapsed_seconds);

} // namespace smt::dist

#endif // SMT_DIST_PROGRESS_HH
