#include "dist/progress.hh"

#include <cinttypes>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sweep/json.hh"

namespace smt::dist
{

ProgressWriter::ProgressWriter(const std::string &path, unsigned shard,
                               std::size_t points_total)
    : shard_(shard), pointsTotal_(points_total),
      start_(std::chrono::steady_clock::now())
{
    if (path.empty())
        return;
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
        smt_warn("cannot write progress file %s", path.c_str());
        return;
    }
    owned_ = true;
    append(0, 0, 0, false);
}

ProgressWriter::ProgressWriter(std::FILE *stream, unsigned shard,
                               std::size_t points_total)
    : file_(stream), owned_(false), shard_(shard),
      pointsTotal_(points_total),
      start_(std::chrono::steady_clock::now())
{
    if (file_ != nullptr)
        append(0, 0, 0, false);
}

ProgressWriter::~ProgressWriter()
{
    if (file_ != nullptr && owned_)
        std::fclose(file_);
}

void
ProgressWriter::update(std::size_t points_done, std::size_t cache_hits,
                       std::size_t stolen)
{
    append(points_done, cache_hits, stolen, false);
}

void
ProgressWriter::finish(std::size_t points_done, std::size_t cache_hits,
                       std::size_t stolen)
{
    append(points_done, cache_hits, stolen, true);
}

void
ProgressWriter::append(std::size_t points_done, std::size_t cache_hits,
                       std::size_t stolen, bool finished)
{
    if (file_ == nullptr)
        return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start_)
            .count();
    // One complete line per record, flushed, so readers never block on
    // a half-written record (a torn tail parses as garbage and is
    // skipped).
    std::fprintf(file_,
                 "{\"shard\":%u,\"done\":%zu,\"total\":%zu,\"hits\":%zu,"
                 "\"stolen\":%zu,\"wall\":%.3f,\"finished\":%s}\n",
                 shard_, points_done, pointsTotal_, cache_hits, stolen,
                 wall, finished ? "true" : "false");
    std::fflush(file_);
}

bool
parseProgressLine(const std::string &line, ProgressRecord &out)
{
    sweep::Json j;
    if (!sweep::Json::parse(line, j)
        || j.type() != sweep::Json::Type::Object || !j.has("done")
        || !j.has("total"))
        return false;
    ProgressRecord rec;
    rec.shard = j.has("shard")
                    ? static_cast<unsigned>(j.at("shard").asUInt())
                    : 0;
    rec.pointsDone = j.at("done").asUInt();
    rec.pointsTotal = j.at("total").asUInt();
    rec.cacheHits = j.has("hits") ? j.at("hits").asUInt() : 0;
    rec.stolen = j.has("stolen") ? j.at("stolen").asUInt() : 0;
    rec.wallSeconds = j.has("wall") ? j.at("wall").asDouble() : 0.0;
    rec.finished = j.has("finished") && j.at("finished").asBool();
    out = rec;
    return true;
}

bool
readLatestProgress(const std::string &path, ProgressRecord &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    // The coordinator polls several times a second for the lifetime of
    // a sweep, so read only a tail that is guaranteed to contain the
    // newest complete record (records are one short line each) rather
    // than re-parsing the whole ever-growing file. Seeking may land
    // mid-line; that fragment simply fails to parse and is skipped.
    constexpr std::streamoff kTailBytes = 4096;
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(size > kTailBytes ? size - kTailBytes : 0);

    bool found = false;
    std::string line;
    while (std::getline(in, line)) {
        ProgressRecord rec;
        if (!parseProgressLine(line, rec))
            continue;
        out = rec;
        found = true;
    }
    return found;
}

double
ProgressSummary::etaSeconds(double elapsed_seconds) const
{
    if (pointsDone == 0 || pointsTotal == 0)
        return -1.0;
    if (pointsDone >= pointsTotal)
        return 0.0;
    const double rate = static_cast<double>(pointsDone) / elapsed_seconds;
    if (rate <= 0.0)
        return -1.0;
    return static_cast<double>(pointsTotal - pointsDone) / rate;
}

ProgressSummary
aggregateProgress(const std::vector<ProgressRecord> &latest)
{
    ProgressSummary sum;
    for (const ProgressRecord &rec : latest) {
        sum.pointsDone += rec.pointsDone;
        sum.pointsTotal += rec.pointsTotal;
        sum.cacheHits += rec.cacheHits;
        sum.stolen += rec.stolen;
        ++sum.shardsReporting;
        if (rec.finished)
            ++sum.shardsFinished;
    }
    return sum;
}

std::string
progressPath(const std::string &store_dir, unsigned shard)
{
    return store_dir + "/progress/shard-" + std::to_string(shard)
           + ".jsonl";
}

std::string
renderProgressLine(const ProgressSummary &summary, unsigned shard_count,
                   double elapsed_seconds)
{
    std::ostringstream line;
    line << summary.pointsDone << "/" << summary.pointsTotal
         << " points, " << summary.cacheHits << " hits, ";
    if (summary.stolen > 0)
        line << summary.stolen << " stolen, ";
    line << summary.shardsFinished << "/" << shard_count
         << " shards done, ";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1fs elapsed", elapsed_seconds);
    line << buf;
    const double eta = summary.etaSeconds(elapsed_seconds);
    if (eta >= 0.0) {
        std::snprintf(buf, sizeof buf, ", eta %.1fs", eta);
        line << buf;
    }
    return line.str();
}

} // namespace smt::dist
