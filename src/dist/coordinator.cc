#include "dist/coordinator.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>

#include "common/logging.hh"
#include "dist/progress.hh"
#include "dist/shard.hh"
#include "sweep/digest.hh"
#include "sweep/result_store.hh"

namespace fs = std::filesystem;

namespace smt::dist
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - start)
        .count();
}

sweep::Json
makeManifest(const std::string &experiment,
             const std::vector<sweep::SweepPoint> &grid,
             const ShardPlan &plan)
{
    sweep::Json manifest = sweep::Json::object();
    manifest.set("schema", sweep::Json(sweep::kDigestSchema));
    manifest.set("experiment", sweep::Json(experiment));
    manifest.set("shardCount", sweep::Json(plan.shardCount));
    sweep::Json points = sweep::Json::array();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        sweep::Json p = sweep::Json::object();
        p.set("digest", sweep::Json(plan.digests[i]));
        p.set("shard", sweep::Json(plan.shardOf[i]));
        p.set("label", sweep::Json(grid[i].label));
        p.set("threads", sweep::Json(grid[i].threads));
        points.push(std::move(p));
    }
    manifest.set("points", std::move(points));
    return manifest;
}

} // namespace

long
LocalProcessLauncher::launch(unsigned shard,
                             const std::vector<std::string> &argv)
{
    // Build the exec vector before forking: the child must go straight
    // to execv without touching the heap.
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        smt_fatal("cannot fork worker for shard %u", shard);
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        // Reached only when exec failed; stdio may be shared with the
        // parent, so keep it to one write and a raw exit.
        std::fprintf(stderr, "smtsweep-dist: cannot exec %s\n", cargv[0]);
        ::_exit(127);
    }
    return pid;
}

bool
LocalProcessLauncher::poll(long handle, int &exit_code)
{
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(handle), &status, WNOHANG);
    if (r == 0)
        return false;
    if (r < 0) {
        // Already reaped (or never ours): treat as a failed exit.
        exit_code = 127;
        return true;
    }
    if (WIFEXITED(status))
        exit_code = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        exit_code = 128 + WTERMSIG(status);
    else
        return false; // stopped/continued; keep polling.
    return true;
}

void
LocalProcessLauncher::terminate(long handle)
{
    ::kill(static_cast<pid_t>(handle), SIGTERM);
    int status = 0;
    ::waitpid(static_cast<pid_t>(handle), &status, 0);
}

std::unique_ptr<WorkerLauncher>
makeLauncher(const std::string &host_list)
{
    if (!host_list.empty())
        smt_fatal("remote worker hosts (\"%s\") are not supported yet: "
                  "the WorkerLauncher backend for host lists is the "
                  "ROADMAP follow-on; run without --hosts for local "
                  "multi-process sharding",
                  host_list.c_str());
    return std::make_unique<LocalProcessLauncher>();
}

int
runDistributed(const sweep::NamedExperiment &experiment,
               const DistOptions &opts, DistOutcome &outcome)
{
    smt_assert(opts.shards >= 1, "need at least one shard");
    if (opts.ropts.cacheDir.empty())
        smt_fatal("a distributed sweep needs a shared store "
                  "(--cache-dir)");
    const std::string &name = experiment.spec.name;

    const auto start = std::chrono::steady_clock::now();

    // Plan and record the expected work before any worker starts, so
    // the store can be audited from the first heartbeat on.
    const std::vector<sweep::SweepPoint> grid =
        experiment.spec.expand(opts.ropts.measure);
    const ShardPlan plan = planShards(grid, opts.shards);
    {
        std::unique_ptr<sweep::ResultStore> store =
            sweep::openLocalStore(opts.ropts.cacheDir);
        store->writeManifest(makeManifest(name, grid, plan));
    }
    std::error_code ec;
    fs::create_directories(opts.ropts.cacheDir + "/progress", ec);
    if (ec)
        smt_fatal("cannot create %s/progress: %s",
                  opts.ropts.cacheDir.c_str(), ec.message().c_str());

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned jobs = opts.jobsPerWorker > 0
                              ? opts.jobsPerWorker
                              : std::max(1u, hw / opts.shards);

    auto workerArgs = [&](unsigned shard) {
        std::vector<std::string> argv = {
            opts.smtsweepPath,
            "--experiment", name,
            "--shard",
            std::to_string(shard) + "/" + std::to_string(opts.shards),
            "--cache-dir", opts.ropts.cacheDir,
            "--progress-file", progressPath(opts.ropts.cacheDir, shard),
            "--jobs", std::to_string(jobs),
            // Forward the measurement knobs explicitly so every worker
            // expands and plans the identical grid whatever its
            // environment says.
            "--cycles", std::to_string(opts.ropts.measure.cyclesPerRun),
            "--warmup", std::to_string(opts.ropts.measure.warmupCycles),
            "--runs", std::to_string(opts.ropts.measure.runs),
        };
        if (!opts.ropts.measure.parallel)
            argv.push_back("--serial");
        if (opts.ropts.verbose)
            argv.push_back("--verbose");
        return argv;
    };

    std::unique_ptr<WorkerLauncher> launcher = makeLauncher(opts.hostList);

    struct Worker
    {
        long handle = -1;
        bool running = false;
        unsigned attempts = 0;
        ShardStatus status;
        std::chrono::steady_clock::time_point launchedAt;
    };
    std::vector<Worker> workers(opts.shards);
    for (unsigned s = 0; s < opts.shards; ++s) {
        workers[s].status.shard = s;
        workers[s].handle = launcher->launch(s, workerArgs(s));
        workers[s].running = true;
        workers[s].attempts = 1;
        workers[s].launchedAt = start;
    }

    const bool live_tty = opts.showProgress && ::isatty(2) != 0;
    std::string last_logged;
    bool failed = false;
    unsigned running = opts.shards;

    while (running > 0) {
        for (Worker &w : workers) {
            if (!w.running)
                continue;
            int exit_code = 0;
            if (!launcher->poll(w.handle, exit_code))
                continue;
            w.running = false;
            --running;
            if (exit_code == 0) {
                w.status.succeeded = true;
                w.status.attempts = w.attempts;
                w.status.wallSeconds = secondsSince(w.launchedAt);
                continue;
            }
            if (w.attempts <= opts.retries) {
                smt_warn("shard %u/%u exited with code %d; relaunching "
                         "(attempt %u of %u)",
                         w.status.shard, opts.shards, exit_code,
                         w.attempts + 1, opts.retries + 1);
                w.handle = launcher->launch(w.status.shard,
                                            workerArgs(w.status.shard));
                w.running = true;
                ++w.attempts;
                w.launchedAt = std::chrono::steady_clock::now();
                ++running;
                continue;
            }
            smt_warn("shard %u/%u failed with code %d after %u attempts; "
                     "aborting the sweep",
                     w.status.shard, opts.shards, exit_code, w.attempts);
            w.status.attempts = w.attempts;
            failed = true;
        }
        if (failed)
            break;

        // Fold every shard's newest heartbeat into one status line.
        std::vector<ProgressRecord> latest;
        for (unsigned s = 0; s < opts.shards; ++s) {
            ProgressRecord rec;
            if (readLatestProgress(
                    progressPath(opts.ropts.cacheDir, s), rec))
                latest.push_back(rec);
        }
        const ProgressSummary summary = aggregateProgress(latest);
        const std::string line =
            renderProgressLine(summary, opts.shards, secondsSince(start));
        if (opts.showProgress) {
            if (live_tty) {
                std::fprintf(stderr, "\r[smtsweep-dist] %-70s",
                             line.c_str());
                std::fflush(stderr);
            } else {
                // Non-tty (CI logs): one line per state change, keyed
                // on progress rather than elapsed time.
                std::string key =
                    std::to_string(summary.pointsDone) + "/"
                    + std::to_string(summary.shardsFinished);
                if (key != last_logged) {
                    std::fprintf(stderr, "[smtsweep-dist] %s\n",
                                 line.c_str());
                    last_logged = std::move(key);
                }
            }
        }
        if (running > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    if (live_tty)
        std::fprintf(stderr, "\n");

    if (failed) {
        for (Worker &w : workers) {
            if (w.running)
                launcher->terminate(w.handle);
        }
        return 1;
    }

    // Collect final per-shard numbers from the heartbeat files.
    outcome.shards.clear();
    outcome.workerCacheHits = 0;
    for (Worker &w : workers) {
        ProgressRecord rec;
        if (readLatestProgress(
                progressPath(opts.ropts.cacheDir, w.status.shard), rec)) {
            w.status.points = rec.pointsTotal;
            w.status.cacheHits = rec.cacheHits;
        }
        outcome.workerCacheHits += w.status.cacheHits;
        outcome.shards.push_back(w.status);
    }

    // Merge: replay the whole grid from the shared store. Every point
    // must hit — a miss here means a worker lied about finishing — and
    // the replay is bit-identical to a serial run by construction.
    sweep::RunnerOptions merge_opts = opts.ropts;
    merge_opts.requireCached = true;
    merge_opts.onProgress = nullptr;
    outcome.merged = sweep::runSweep(experiment.spec, merge_opts);
    outcome.wallSeconds = secondsSince(start);
    return 0;
}

sweep::Json
distArtifact(const std::string &experiment, const DistOutcome &outcome)
{
    sweep::Json doc = sweep::Json::object();
    doc.set("schema", sweep::Json(sweep::kDigestSchema));
    doc.set("experiment", sweep::Json(experiment));
    doc.set("shards",
            sweep::Json(static_cast<std::uint64_t>(outcome.shards.size())));
    sweep::Json shard_list = sweep::Json::array();
    for (const ShardStatus &s : outcome.shards) {
        sweep::Json j = sweep::Json::object();
        j.set("shard", sweep::Json(s.shard));
        j.set("attempts", sweep::Json(s.attempts));
        j.set("points", sweep::Json(static_cast<std::uint64_t>(s.points)));
        j.set("cacheHits",
              sweep::Json(static_cast<std::uint64_t>(s.cacheHits)));
        j.set("wallSeconds", sweep::Json(s.wallSeconds));
        shard_list.push(std::move(j));
    }
    doc.set("workers", std::move(shard_list));
    doc.set("workerCacheHits",
            sweep::Json(static_cast<std::uint64_t>(outcome.workerCacheHits)));
    doc.set("mergeCacheHits", sweep::Json(outcome.merged.cacheHits));
    doc.set("mergeCacheMisses", sweep::Json(outcome.merged.cacheMisses));
    doc.set("wallSeconds", sweep::Json(outcome.wallSeconds));
    doc.set("merged", sweep::outcomeArtifact({outcome.merged}));
    return doc;
}

int
auditStore(const std::string &cache_dir, bool verbose)
{
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(cache_dir);
    const std::optional<sweep::Json> manifest = store->readManifest();
    if (!manifest.has_value()
        || manifest->type() != sweep::Json::Type::Object
        || !manifest->has("points")) {
        std::fprintf(stderr,
                     "no sweep manifest in %s (has a coordinator run "
                     "here?)\n",
                     store->description().c_str());
        return 2;
    }

    std::map<std::string, sweep::WorkState> states;
    const sweep::Json &points = manifest->at("points");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string &digest = points[i].at("digest").asString();
        if (states.find(digest) == states.end())
            states.emplace(digest, store->state(digest));
    }

    std::map<sweep::WorkState, std::size_t> counts;
    for (const auto &[digest, state] : states) {
        ++counts[state];
        if (verbose)
            std::printf("%s  %s\n", digest.c_str(),
                        sweep::toString(state));
    }
    std::printf("%s: experiment %s, %zu points (%zu unique), "
                "%zu done, %zu in-progress, %zu orphaned, %zu pending\n",
                store->description().c_str(),
                manifest->at("experiment").asString().c_str(),
                points.size(), states.size(),
                counts[sweep::WorkState::Done],
                counts[sweep::WorkState::InProgress],
                counts[sweep::WorkState::Orphaned],
                counts[sweep::WorkState::Pending]);
    return 0;
}

} // namespace smt::dist
