#include "dist/coordinator.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

extern char **environ;

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "common/logging.hh"
#include "dist/ssh_launcher.hh"
#include "sweep/digest.hh"
#include "sweep/remote_store.hh"
#include "sweep/result_store.hh"

namespace fs = std::filesystem;

namespace smt::dist
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - start)
        .count();
}

sweep::Json
makeManifest(const std::string &experiment,
             const std::vector<sweep::SweepPoint> &grid,
             const ShardPlan &plan, const CostHints &hints)
{
    sweep::Json manifest = sweep::Json::object();
    manifest.set("schema", sweep::Json(sweep::kDigestSchema));
    manifest.set("experiment", sweep::Json(experiment));
    manifest.set("shardCount", sweep::Json(plan.shardCount));
    sweep::Json points = sweep::Json::array();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        sweep::Json p = sweep::Json::object();
        p.set("digest", sweep::Json(plan.digests[i]));
        p.set("shard", sweep::Json(plan.shardOf[i]));
        p.set("label", sweep::Json(grid[i].label));
        p.set("threads", sweep::Json(grid[i].threads));
        points.push(std::move(p));
    }
    manifest.set("points", std::move(points));
    if (!hints.empty()) {
        // Pin the exact cost snapshot the plan was derived from, so a
        // worker re-planning from the manifest cannot diverge.
        sweep::Json costs = sweep::Json::object();
        for (const auto &[digest, seconds] : hints)
            costs.set(digest, sweep::Json(seconds));
        manifest.set("observedCosts", std::move(costs));
    }
    return manifest;
}

/** One status-line chunk from a /v1/stats snapshot: total requests
 *  served and the entry hit ratio — enough to see a hot or sick store
 *  at a glance. Empty when the snapshot has no counters. */
std::string
storeStatsBrief(const sweep::Json &stats)
{
    if (stats.type() != sweep::Json::Type::Object
        || !stats.has("counters"))
        return "";
    const sweep::Json &counters = stats.at("counters");
    if (counters.type() != sweep::Json::Type::Object)
        return "";
    std::uint64_t requests = 0, hits = 0, misses = 0;
    for (const auto &[key, value] : counters.items()) {
        if (value.type() != sweep::Json::Type::UInt)
            continue;
        if (key.rfind("store.requests.", 0) == 0)
            requests += value.asUInt();
        else if (key == "store.entries.hits")
            hits = value.asUInt();
        else if (key == "store.entries.misses")
            misses = value.asUInt();
    }
    char buf[96];
    if (hits + misses > 0)
        std::snprintf(buf, sizeof buf,
                      " | store %llu reqs %.0f%% hits",
                      static_cast<unsigned long long>(requests),
                      100.0 * hits / (hits + misses));
    else
        std::snprintf(buf, sizeof buf, " | store %llu reqs",
                      static_cast<unsigned long long>(requests));
    return buf;
}

/** Declare every unfinished digest of a dead worker's shard orphaned,
 *  so idle workers (and the audit) see abandoned, adoptable work. */
std::size_t
declareShardOrphans(sweep::ResultStore &store, const ShardPlan &plan,
                    unsigned shard)
{
    std::size_t declared = 0;
    for (const auto &[digest, owner] : plan.shardOfDigest) {
        if (owner != shard)
            continue;
        const sweep::WorkState state = store.state(digest);
        if (state == sweep::WorkState::Done)
            continue;
        store.markOrphaned(digest);
        ++declared;
    }
    return declared;
}

} // namespace

void
LocalProcessLauncher::setStoreToken(const std::string &token)
{
    tokenEnv_ = token.empty() ? "" : "SMTSTORE_TOKEN=" + token;
}

void
LocalProcessLauncher::setTraceId(const std::string &trace_id)
{
    traceEnv_ = trace_id.empty()
                    ? ""
                    : std::string(obs::kTraceEnvVar) + "=" + trace_id;
}

long
LocalProcessLauncher::launch(unsigned shard,
                             const std::vector<std::string> &argv)
{
    // Build the exec vectors before forking: the child must go
    // straight to execve without touching the heap. The token rides
    // the environment, never argv — argv is world-readable via ps.
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    std::vector<char *> cenv;
    for (char **e = environ; *e != nullptr; ++e) {
        if (!tokenEnv_.empty()
            && std::strncmp(*e, "SMTSTORE_TOKEN=", 15) == 0)
            continue;
        if (!traceEnv_.empty()
            && std::strncmp(*e, "SMTSWEEP_TRACE_ID=", 18) == 0)
            continue;
        cenv.push_back(*e);
    }
    if (!tokenEnv_.empty())
        cenv.push_back(const_cast<char *>(tokenEnv_.c_str()));
    if (!traceEnv_.empty())
        cenv.push_back(const_cast<char *>(traceEnv_.c_str()));
    cenv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        smt_fatal("cannot fork worker for shard %u", shard);
    if (pid == 0) {
        ::execve(cargv[0], cargv.data(), cenv.data());
        // Reached only when exec failed; stdio may be shared with the
        // parent, so keep it to one write and a raw exit.
        std::fprintf(stderr, "smtsweep-dist: cannot exec %s\n", cargv[0]);
        ::_exit(127);
    }
    return pid;
}

bool
LocalProcessLauncher::poll(long handle, int &exit_code)
{
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(handle), &status, WNOHANG);
    if (r == 0)
        return false;
    if (r < 0) {
        // Already reaped (or never ours): treat as a failed exit.
        exit_code = 127;
        return true;
    }
    if (WIFEXITED(status))
        exit_code = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        exit_code = 128 + WTERMSIG(status);
    else
        return false; // stopped/continued; keep polling.
    return true;
}

void
LocalProcessLauncher::wait(long handle, int &exit_code)
{
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(handle), &status, 0);
    if (r < 0) {
        exit_code = 127;
        return;
    }
    if (WIFEXITED(status))
        exit_code = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        exit_code = 128 + WTERMSIG(status);
    else
        exit_code = 127;
}

void
LocalProcessLauncher::terminate(long handle)
{
    ::kill(static_cast<pid_t>(handle), SIGTERM);
    int status = 0;
    ::waitpid(static_cast<pid_t>(handle), &status, 0);
}

std::vector<std::string>
workerShardArgs(const DistOptions &opts, const std::string &experiment,
                unsigned jobs, unsigned shard, bool captured_progress,
                const std::string &progress_base,
                const std::string &trace_out)
{
    const std::string &locator = opts.ropts.cacheDir;
    const bool remote_store = sweep::isRemoteStoreLocator(locator);
    std::vector<std::string> argv = {
        opts.smtsweepPath,
        "--experiment", experiment,
        "--shard",
        std::to_string(shard) + "/" + std::to_string(opts.shards),
        remote_store ? "--store-url" : "--cache-dir", locator,
        "--jobs", std::to_string(jobs),
        // Forward the measurement knobs explicitly so every worker
        // expands and plans the identical grid whatever its
        // environment says.
        "--cycles", std::to_string(opts.ropts.measure.cyclesPerRun),
        "--warmup", std::to_string(opts.ropts.measure.warmupCycles),
        "--runs", std::to_string(opts.ropts.measure.runs),
        "--marker-ttl",
        std::to_string(opts.ropts.markerTtlSeconds),
    };
    if (captured_progress)
        argv.push_back("--progress-stdout");
    else {
        argv.push_back("--progress-file");
        argv.push_back(progressPath(progress_base, shard));
    }
    if (!trace_out.empty()) {
        argv.push_back("--trace-out");
        argv.push_back(trace_out);
    }
    if (opts.steal) {
        argv.push_back("--steal");
        argv.push_back("--steal-wait");
        argv.push_back(std::to_string(opts.stealWaitSeconds));
    }
    if (!opts.ropts.measure.parallel)
        argv.push_back("--serial");
    if (opts.ropts.verbose)
        argv.push_back("--verbose");
    return argv;
}

std::unique_ptr<WorkerLauncher>
makeLauncher(const std::string &host_list, const std::string &ssh_program)
{
    if (host_list.empty())
        return std::make_unique<LocalProcessLauncher>();
    std::vector<std::string> hosts = parseHostList(host_list);
    if (hosts.empty())
        smt_fatal("--hosts \"%s\" names no hosts", host_list.c_str());
    return std::make_unique<SshWorkerLauncher>(std::move(hosts),
                                               ssh_program);
}

int
runDistributed(const sweep::NamedExperiment &experiment,
               const DistOptions &opts, DistOutcome &outcome)
{
    smt_assert(opts.shards >= 1, "need at least one shard");
    if (opts.ropts.cacheDir.empty())
        smt_fatal("a distributed sweep needs a shared store "
                  "(--cache-dir or --store-url)");
    const std::string &name = experiment.spec.name;
    const std::string &locator = opts.ropts.cacheDir;
    const bool remote_store = sweep::isRemoteStoreLocator(locator);

    const auto start = std::chrono::steady_clock::now();

    std::unique_ptr<sweep::ResultStore> store =
        sweep::openStore(locator, opts.ropts.storeToken);

    // The coordinator's trace id brackets the whole sweep: its own
    // store requests carry it, local workers inherit it through the
    // environment, and the coordinator emits the sweep-level spans
    // (start / worker exits / done) between the workers' per-digest
    // ones.
    obs::TraceWriter *const trace = opts.ropts.trace;
    if (trace != nullptr)
        store->setTraceContext(trace->traceId());
    const auto sweepSpan = [&](const char *event, sweep::Json fields) {
        if (trace != nullptr)
            trace->emit(event, std::move(fields));
    };

    // Plan and record the expected work before any worker starts, so
    // the store can be audited from the first heartbeat on. Observed
    // costs from a previous sweep over this store outrank estimates.
    const std::vector<sweep::SweepPoint> grid =
        experiment.spec.expand(opts.ropts.measure);
    CostHints hints;
    if (const std::optional<sweep::Json> previous = store->readManifest())
        hints = costHintsFromManifest(*previous);
    const ShardPlan plan = planShards(grid, opts.shards, hints);
    store->writeManifest(makeManifest(name, grid, plan, hints));

    std::unique_ptr<WorkerLauncher> launcher =
        makeLauncher(opts.hostList, opts.sshProgram);
    if (!opts.ropts.storeToken.empty())
        launcher->setStoreToken(opts.ropts.storeToken);
    if (trace != nullptr)
        launcher->setTraceId(trace->traceId());
    const bool captured_progress = launcher->capturesProgress();

    {
        sweep::Json f = sweep::Json::object();
        f.set("experiment", sweep::Json(name));
        f.set("shards", sweep::Json(opts.shards));
        f.set("points",
              sweep::Json(static_cast<std::uint64_t>(grid.size())));
        f.set("store", sweep::Json(store->description()));
        sweepSpan("sweep_start", std::move(f));
    }

    // File-based heartbeats need a local directory; a remote store has
    // no local one, so they live beside the working directory, keyed
    // by pid so concurrent sweeps in one cwd cannot clobber each
    // other's heartbeat streams.
    const std::string progress_base =
        remote_store ? ".smtsweep-dist-progress-"
                           + std::to_string(::getpid())
                     : locator;
    if (!captured_progress) {
        std::error_code ec;
        fs::create_directories(progress_base + "/progress", ec);
        if (ec)
            smt_fatal("cannot create %s/progress: %s",
                      progress_base.c_str(), ec.message().c_str());
        // Stale heartbeat files from a previous sweep over this store
        // all end `finished: true`; read before the fresh workers
        // truncate them, they would trip the terminal-state fast path
        // into blocking waits. Start from a clean slate.
        for (unsigned s = 0; s < opts.shards; ++s)
            fs::remove(progressPath(progress_base, s), ec);
    }

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned jobs = opts.jobsPerWorker > 0
                              ? opts.jobsPerWorker
                              : std::max(1u, hw / opts.shards);

    // A traced sweep hands every worker a --trace-out of its own —
    // workers emit the per-digest spans; without this the merged
    // trace holds only coordinator-level events. Local workers append
    // to the coordinator's own file (TraceWriter opens in append mode
    // and writes whole lines); remote workers get a per-shard path on
    // their host, and against a remote store they additionally flush
    // their spans to the server's capture (POST /v1/trace), which is
    // the path that actually merges them.
    auto workerTraceOut = [&](unsigned shard) -> std::string {
        if (trace == nullptr)
            return "";
        if (opts.hostList.empty())
            return trace->path();
        return trace->path() + ".shard" + std::to_string(shard);
    };
    auto workerArgs = [&](unsigned shard) {
        return workerShardArgs(opts, name, jobs, shard,
                               captured_progress, progress_base,
                               workerTraceOut(shard));
    };

    struct Worker
    {
        long handle = -1;
        bool running = false;
        unsigned attempts = 0;
        ShardStatus status;
        std::chrono::steady_clock::time_point launchedAt;
    };
    std::vector<Worker> workers(opts.shards);
    for (unsigned s = 0; s < opts.shards; ++s) {
        workers[s].status.shard = s;
        workers[s].handle = launcher->launch(s, workerArgs(s));
        workers[s].running = true;
        workers[s].attempts = 1;
        workers[s].launchedAt = start;
    }

    const bool live_tty = opts.showProgress && ::isatty(2) != 0;
    std::string last_logged;
    bool failed = false;
    unsigned running = opts.shards;
    outcome.orphansDeclared = 0;

    // Live store health: against a remote store, fold a /v1/stats
    // snapshot into the progress line every few seconds (every poll
    // would double the store's request load for no information gain).
    auto *const remote =
        dynamic_cast<sweep::RemoteResultStore *>(store.get());
    std::string store_suffix;
    unsigned ticks = 0;

    auto latestFor = [&](Worker &w, ProgressRecord &rec) {
        if (captured_progress)
            return launcher->latestProgress(w.handle, rec);
        return readLatestProgress(
            progressPath(progress_base, w.status.shard), rec);
    };

    auto onExit = [&](Worker &w, int exit_code) {
        w.running = false;
        --running;
        {
            sweep::Json f = sweep::Json::object();
            f.set("shard", sweep::Json(w.status.shard));
            f.set("exitCode", sweep::Json(
                                  static_cast<std::int64_t>(exit_code)));
            f.set("seconds", sweep::Json(secondsSince(w.launchedAt)));
            sweepSpan("worker_exit", std::move(f));
        }
        if (exit_code == 0) {
            w.status.succeeded = true;
            w.status.attempts = w.attempts;
            w.status.wallSeconds = secondsSince(w.launchedAt);
            return;
        }
        if (opts.steal) {
            // Work stealing replaces whole-shard relaunch: declare the
            // dead shard's unfinished digests orphaned; surviving
            // workers adopt them, and the recovery pass below sweeps
            // up anything nobody took.
            const std::size_t declared =
                declareShardOrphans(*store, plan, w.status.shard);
            outcome.orphansDeclared += declared;
            smt_warn("shard %u/%u exited with code %d; declared %zu "
                     "orphaned digest(s) for adoption instead of "
                     "relaunching",
                     w.status.shard, opts.shards, exit_code, declared);
            w.status.attempts = w.attempts;
            w.status.wallSeconds = secondsSince(w.launchedAt);
            return;
        }
        if (w.attempts <= opts.retries) {
            smt_warn("shard %u/%u exited with code %d; relaunching "
                     "(attempt %u of %u)",
                     w.status.shard, opts.shards, exit_code,
                     w.attempts + 1, opts.retries + 1);
            w.handle = launcher->launch(w.status.shard,
                                        workerArgs(w.status.shard));
            w.running = true;
            ++w.attempts;
            w.launchedAt = std::chrono::steady_clock::now();
            ++running;
            return;
        }
        smt_warn("shard %u/%u failed with code %d after %u attempts; "
                 "aborting the sweep",
                 w.status.shard, opts.shards, exit_code, w.attempts);
        w.status.attempts = w.attempts;
        failed = true;
    };

    while (running > 0) {
        for (Worker &w : workers) {
            if (!w.running)
                continue;
            int exit_code = 0;
            if (launcher->poll(w.handle, exit_code))
                onExit(w, exit_code);
        }
        if (failed)
            break;

        // Fold every shard's newest heartbeat into one status line.
        // One read per worker per tick; the records double as the
        // terminal-state check below.
        std::vector<ProgressRecord> latest;
        std::vector<bool> reported(workers.size(), false);
        std::vector<ProgressRecord> record(workers.size());
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (latestFor(workers[i], record[i])) {
                reported[i] = true;
                latest.push_back(record[i]);
            }
        }
        const ProgressSummary summary = aggregateProgress(latest);
        if (remote != nullptr && ticks++ % 20 == 0) {
            if (std::optional<sweep::Json> s = remote->stats())
                store_suffix = storeStatsBrief(*s);
        }
        const std::string line =
            renderProgressLine(summary, opts.shards, secondsSince(start))
            + store_suffix;
        if (opts.showProgress) {
            if (live_tty) {
                std::fprintf(stderr, "\r[smtsweep-dist] %-70s",
                             line.c_str());
                std::fflush(stderr);
            } else {
                // Non-tty (CI logs): one line per state change, keyed
                // on progress rather than elapsed time.
                std::string key =
                    std::to_string(summary.pointsDone) + "/"
                    + std::to_string(summary.shardsFinished) + "/"
                    + std::to_string(summary.stolen);
                if (key != last_logged) {
                    std::fprintf(stderr, "[smtsweep-dist] %s\n",
                                 line.c_str());
                    last_logged = std::move(key);
                }
            }
        }
        if (running == 0)
            break;

        // Once every still-running shard has reported terminal state,
        // stop polling: reap each worker with a blocking wait so the
        // coordinator exits as soon as they do.
        bool all_terminal = true;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (workers[i].running
                && (!reported[i] || !record[i].finished)) {
                all_terminal = false;
                break;
            }
        }
        if (all_terminal) {
            for (Worker &w : workers) {
                if (!w.running)
                    continue;
                int exit_code = 0;
                launcher->wait(w.handle, exit_code);
                onExit(w, exit_code);
            }
            continue;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    if (live_tty)
        std::fprintf(stderr, "\n");

    if (failed) {
        for (Worker &w : workers) {
            if (w.running)
                launcher->terminate(w.handle);
        }
        return 1;
    }

    // Collect final per-shard numbers from the heartbeat streams.
    outcome.shards.clear();
    outcome.workerCacheHits = 0;
    unsigned succeeded = 0;
    for (Worker &w : workers) {
        ProgressRecord rec;
        if (latestFor(w, rec)) {
            w.status.points = rec.pointsTotal;
            w.status.cacheHits = rec.cacheHits;
            w.status.stolen = rec.stolen;
        }
        if (w.status.succeeded)
            ++succeeded;
        outcome.workerCacheHits += w.status.cacheHits;
        outcome.shards.push_back(w.status);
    }

    // Stealing absorbs *partial* failure. If no worker at all
    // succeeded, the setup is broken (bad --smtsweep path, dead hosts,
    // unreachable store) — recovering the whole grid in-process would
    // just mask it as a slow local run, so fail loudly instead.
    if (succeeded == 0) {
        smt_warn("all %u worker(s) failed; not recovering — check the "
                 "worker binary, hosts, and store",
                 opts.shards);
        return 1;
    }

    // Recovery: anything still unfinished (orphans nobody adopted —
    // every adopter timed out or died) is measured right here, so the
    // merge below never depends on luck.
    std::vector<sweep::SweepPoint> leftovers;
    {
        std::set<std::string> seen;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (!seen.insert(plan.digests[i]).second)
                continue;
            if (store->state(plan.digests[i]) != sweep::WorkState::Done)
                leftovers.push_back(grid[i]);
        }
    }
    outcome.recoveredInProcess = leftovers.size();
    if (!leftovers.empty()) {
        smt_warn("recovering %zu unfinished point(s) in-process before "
                 "the merge",
                 leftovers.size());
        sweep::RunnerOptions recovery_opts = opts.ropts;
        recovery_opts.requireCached = false;
        recovery_opts.onProgress = nullptr;
        sweep::runPoints(leftovers, recovery_opts);
    }

    // Merge: replay the whole grid from the shared store. Every point
    // must hit — a miss here means a worker lied about finishing — and
    // the replay is bit-identical to a serial run by construction.
    sweep::RunnerOptions merge_opts = opts.ropts;
    merge_opts.requireCached = true;
    merge_opts.onProgress = nullptr;
    outcome.merged = sweep::runSweep(experiment.spec, merge_opts);

    // Dynamic cost feedback: record what each digest actually cost in
    // the manifest, so the next sweep over this store plans from
    // observation instead of estimate. One bulk fetch — not a round
    // trip per digest against a remote store.
    if (std::optional<sweep::Json> manifest = store->readManifest()) {
        const std::map<std::string, double> observed =
            store->observedCosts();
        sweep::Json costs = sweep::Json::object();
        for (const auto &[digest, shard] : plan.shardOfDigest) {
            (void)shard;
            const auto it = observed.find(digest);
            if (it != observed.end())
                costs.set(digest, sweep::Json(it->second));
        }
        manifest->set("observedCosts", std::move(costs));
        store->writeManifest(*manifest);
    }

    // The pid-keyed progress dir of a remote-store run is scratch.
    if (remote_store && !captured_progress) {
        std::error_code ec;
        fs::remove_all(progress_base, ec);
    }

    outcome.wallSeconds = secondsSince(start);
    {
        sweep::Json f = sweep::Json::object();
        f.set("experiment", sweep::Json(name));
        f.set("seconds", sweep::Json(outcome.wallSeconds));
        f.set("workerCacheHits",
              sweep::Json(static_cast<std::uint64_t>(
                  outcome.workerCacheHits)));
        f.set("orphansDeclared",
              sweep::Json(static_cast<std::uint64_t>(
                  outcome.orphansDeclared)));
        sweepSpan("sweep_done", std::move(f));
    }
    return 0;
}

sweep::Json
distArtifact(const std::string &experiment, const DistOutcome &outcome)
{
    sweep::Json doc = sweep::Json::object();
    doc.set("schema", sweep::Json(sweep::kDigestSchema));
    doc.set("experiment", sweep::Json(experiment));
    doc.set("shards",
            sweep::Json(static_cast<std::uint64_t>(outcome.shards.size())));
    sweep::Json shard_list = sweep::Json::array();
    for (const ShardStatus &s : outcome.shards) {
        sweep::Json j = sweep::Json::object();
        j.set("shard", sweep::Json(s.shard));
        j.set("attempts", sweep::Json(s.attempts));
        j.set("succeeded", sweep::Json(s.succeeded));
        j.set("points", sweep::Json(static_cast<std::uint64_t>(s.points)));
        j.set("cacheHits",
              sweep::Json(static_cast<std::uint64_t>(s.cacheHits)));
        j.set("stolen",
              sweep::Json(static_cast<std::uint64_t>(s.stolen)));
        j.set("wallSeconds", sweep::Json(s.wallSeconds));
        shard_list.push(std::move(j));
    }
    doc.set("workers", std::move(shard_list));
    doc.set("workerCacheHits",
            sweep::Json(static_cast<std::uint64_t>(outcome.workerCacheHits)));
    doc.set("orphansDeclared",
            sweep::Json(static_cast<std::uint64_t>(
                outcome.orphansDeclared)));
    doc.set("recoveredInProcess",
            sweep::Json(static_cast<std::uint64_t>(
                outcome.recoveredInProcess)));
    doc.set("mergeCacheHits", sweep::Json(outcome.merged.cacheHits));
    doc.set("mergeCacheMisses", sweep::Json(outcome.merged.cacheMisses));
    doc.set("wallSeconds", sweep::Json(outcome.wallSeconds));
    doc.set("merged", sweep::outcomeArtifact({outcome.merged}));
    return doc;
}

sweep::Json
auditArtifact(const std::string &store_locator,
              const std::string &store_token, bool &ok)
{
    ok = false;
    sweep::Json doc = sweep::Json::object();
    doc.set("schema", sweep::Json(sweep::kDigestSchema));

    std::unique_ptr<sweep::ResultStore> store =
        sweep::openStore(store_locator, store_token);
    doc.set("store", sweep::Json(store->description()));
    // A remote store also contributes its live /v1/stats snapshot, so
    // one audit artifact captures both the work ledger and the serving
    // side's health (best-effort: an old server without the route just
    // yields an audit without the snapshot).
    if (auto *remote =
            dynamic_cast<sweep::RemoteResultStore *>(store.get())) {
        if (std::optional<sweep::Json> stats = remote->stats())
            doc.set("storeStats", std::move(*stats));
    }
    const std::optional<sweep::Json> manifest = store->readManifest();
    if (!manifest.has_value()
        || manifest->type() != sweep::Json::Type::Object
        || !manifest->has("points")) {
        doc.set("error", sweep::Json("no sweep manifest recorded"));
        return doc;
    }
    doc.set("experiment", manifest->at("experiment"));

    const sweep::Json &points = manifest->at("points");
    std::map<std::string, sweep::WorkState> states;
    std::map<std::string, unsigned> shard_of;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string &digest = points[i].at("digest").asString();
        if (states.find(digest) == states.end()) {
            states.emplace(digest, store->state(digest));
            if (points[i].has("shard"))
                shard_of[digest] = static_cast<unsigned>(
                    points[i].at("shard").asUInt());
        }
    }

    std::map<sweep::WorkState, std::size_t> counts;
    sweep::Json digest_list = sweep::Json::array();
    for (const auto &[digest, state] : states) {
        ++counts[state];
        sweep::Json d = sweep::Json::object();
        d.set("digest", sweep::Json(digest));
        if (shard_of.count(digest))
            d.set("shard", sweep::Json(shard_of[digest]));
        d.set("state", sweep::Json(sweep::toString(state)));
        digest_list.push(std::move(d));
    }

    doc.set("points",
            sweep::Json(static_cast<std::uint64_t>(points.size())));
    doc.set("unique",
            sweep::Json(static_cast<std::uint64_t>(states.size())));
    sweep::Json count_doc = sweep::Json::object();
    count_doc.set("done", sweep::Json(static_cast<std::uint64_t>(
                              counts[sweep::WorkState::Done])));
    count_doc.set("inProgress",
                  sweep::Json(static_cast<std::uint64_t>(
                      counts[sweep::WorkState::InProgress])));
    count_doc.set("orphaned",
                  sweep::Json(static_cast<std::uint64_t>(
                      counts[sweep::WorkState::Orphaned])));
    count_doc.set("pending",
                  sweep::Json(static_cast<std::uint64_t>(
                      counts[sweep::WorkState::Pending])));
    doc.set("counts", std::move(count_doc));
    doc.set("digests", std::move(digest_list));
    ok = true;
    return doc;
}

int
auditStore(const std::string &store_locator,
           const std::string &store_token, bool verbose,
           const std::string &json_path)
{
    bool ok = false;
    const sweep::Json doc =
        auditArtifact(store_locator, store_token, ok);
    if (!ok) {
        std::fprintf(stderr,
                     "no sweep manifest in %s (has a coordinator run "
                     "here?)\n",
                     doc.at("store").asString().c_str());
        return 2;
    }

    if (json_path == "-") {
        std::printf("%s\n", doc.dump(2).c_str());
        return 0;
    }
    if (!json_path.empty())
        sweep::writeJsonFile(json_path, doc);

    const sweep::Json &digests = doc.at("digests");
    if (verbose) {
        for (std::size_t i = 0; i < digests.size(); ++i)
            std::printf("%s  %s\n",
                        digests[i].at("digest").asString().c_str(),
                        digests[i].at("state").asString().c_str());
    }
    const sweep::Json &counts = doc.at("counts");
    std::printf("%s: experiment %s, %llu points (%llu unique), "
                "%llu done, %llu in-progress, %llu orphaned, "
                "%llu pending\n",
                doc.at("store").asString().c_str(),
                doc.at("experiment").asString().c_str(),
                static_cast<unsigned long long>(
                    doc.at("points").asUInt()),
                static_cast<unsigned long long>(
                    doc.at("unique").asUInt()),
                static_cast<unsigned long long>(
                    counts.at("done").asUInt()),
                static_cast<unsigned long long>(
                    counts.at("inProgress").asUInt()),
                static_cast<unsigned long long>(
                    counts.at("orphaned").asUInt()),
                static_cast<unsigned long long>(
                    counts.at("pending").asUInt()));
    return 0;
}

} // namespace smt::dist
