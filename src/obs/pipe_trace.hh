/**
 * @file
 * The pipeline microscope: an opt-in per-instruction lifecycle
 * tracer hooked into the core's stage walk, plus a cycle-sampled
 * occupancy/stall timeline channel.
 *
 * Where the sweep trace (`obs/trace.hh`) records *measurements* —
 * one span per multi-thousand-cycle run — the pipetrace records what
 * happens *inside* one run: every fetch, decode, rename, issue,
 * completion, commit, and squash of every instruction whose fetch
 * falls inside a bounded cycle window, and (optionally) a periodic
 * sample of per-thread IQ occupancy, fetch/issue progress, and the
 * per-cause stall ledger. That is the per-cycle evidence the paper's
 * fetch-policy arguments are made of.
 *
 * Output is JSONL in the same shape the sweep-trace reader already
 * ingests (`ts`/`mono`/`event`/`trace` per line, extra fields
 * preserved), so `obs::TraceSet` parses pipe files unchanged and one
 * sink file can interleave the streams of many runs — each
 * `PipeTrace` mints its own 16-hex stream id, and `tools/smtpipe`
 * demultiplexes by it.
 *
 * Cost discipline: the hook is a single nullable pointer in
 * `PipelineState`. Stages hoist it into a local once per tick (the
 * same aliasing lesson as the stall tallies, see
 * `src/core/stages/issue.cc`) and test it before every call, so a
 * run without a tracer attached executes no pipetrace code beyond
 * those null checks — pinned by the simspeed gate and by the
 * cycle-identity tests in `tests/test_pipe.cpp`.
 */

#ifndef SMT_OBS_PIPE_TRACE_HH
#define SMT_OBS_PIPE_TRACE_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>

#include "common/types.hh"
#include "sweep/json.hh"

namespace smt
{
struct PipelineState;
class DynInst;
} // namespace smt

namespace smt::obs
{

/** What to trace. Deliberately *not* part of `MeasureOptions`: the
 *  microscope must never perturb a measurement digest. */
struct PipeTraceOptions
{
    /** First cycle of the admission window (absolute machine cycles,
     *  warmup included — `Simulator::warmup()` does not reset the
     *  cycle counter). An instruction is traced iff it was *fetched*
     *  inside the window; its later lifecycle events follow it out
     *  of the window so every traced instruction closes. */
    Cycle windowFirst = 0;
    /** Last admitted fetch cycle, inclusive. */
    Cycle windowLast = kCycleNever;
    /** Emit a `sample` timeline event every N cycles (cycles where
     *  `cycle % N == 0`, within the window); 0 disables sampling. */
    std::uint64_t samplePeriod = 0;
};

/**
 * A shared, thread-safe JSONL sink. Several `PipeTrace` streams —
 * one per measured run, possibly on pool threads — append whole
 * lines concurrently; each line is flushed as written (same crash
 * discipline as `TraceWriter`).
 */
class PipeTraceSink
{
  public:
    /** Opens `path` for append; fatal if it cannot be opened.
     *  "/dev/null" works and is what the simspeed A/B uses. */
    explicit PipeTraceSink(const std::string &path);
    ~PipeTraceSink();

    PipeTraceSink(const PipeTraceSink &) = delete;
    PipeTraceSink &operator=(const PipeTraceSink &) = delete;

    /** Append one line (newline added) and flush. */
    void write(const std::string &line);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *f_;
    std::mutex mu_;
};

/**
 * One run's pipetrace stream. Attach to a core via
 * `Simulator::attachPipeTrace()` (or `SmtCore::setPipeTrace()`)
 * before the run; call `finish()` (or destroy) after it. The stages
 * call the `on*` hooks as instructions move; the engine calls
 * `endCycle()` once per tick after the stage walk.
 *
 * Event catalog (every line also carries `ts`, `mono`, `event`, and
 * the stream's `trace` id):
 *
 *  - `pipe_start`: window/sample options + caller metadata
 *    (digest/label/run/threads when launched by the sweep runner).
 *  - `fetch`: `cyc`, `t`, `seq`, `pc`, `op`, `wp` (wrong-path).
 *  - `decode`, `rename`, `exec`, `commit`: `cyc`, `seq`.
 *  - `issue`: `cyc`, `seq`, `opt` (optimistically scheduled load).
 *  - `requeue`: `cyc`, `seq`, `cause` (`bank_conflict` |
 *    `stale_wakeup`) — the instruction returns to the queue.
 *  - `squash`: `cyc`, `seq`, `cause` (`mispredict` | `misfetch` |
 *    `drain`), `stage` (pipeline stage it died in; absent for
 *    `drain`).
 *  - `rename_blocked`: `cyc`, `t`, `cause` (`iq_full` | `no_regs`)
 *    — at most one per thread per cycle, mirroring the stall ledger.
 *  - `sample`: `cyc` plus per-thread arrays `iq` (IQ entries held),
 *    `fe` (front-end + queue occupancy, the ICOUNT metric),
 *    `fetched`/`issued` (cumulative instruction counts), scalar
 *    `intq`/`fpq` totals, and `stalls` (cumulative per-cause
 *    per-thread counters from the PR-7 ledger).
 *  - `pipe_done`: `cyc`, `traced`, `drained` — the closing line;
 *    its absence is how `smtpipe --check` detects a truncated file.
 */
class PipeTrace
{
  public:
    PipeTrace(PipeTraceSink &sink, const PipeTraceOptions &opts,
              sweep::Json meta = sweep::Json());
    ~PipeTrace();

    PipeTrace(const PipeTrace &) = delete;
    PipeTrace &operator=(const PipeTrace &) = delete;

    const std::string &streamId() const { return stream_; }
    const PipeTraceOptions &options() const { return opts_; }

    // ---- stage hooks -------------------------------------------------
    void onFetch(const PipelineState &st, const DynInst *inst);
    void onDecode(const PipelineState &st, const DynInst *inst);
    void onRename(const PipelineState &st, const DynInst *inst);
    void onRenameBlocked(const PipelineState &st, ThreadID tid,
                         const char *cause);
    void onIssue(const PipelineState &st, const DynInst *inst);
    void onExecComplete(const PipelineState &st, const DynInst *inst);
    void onRequeue(const PipelineState &st, const DynInst *inst,
                   const char *cause);
    void onCommit(const PipelineState &st, const DynInst *inst);
    void onSquash(const PipelineState &st, const DynInst *inst,
                  const char *cause);

    /** Called by the engine after the stage walk, once per tick:
     *  emits the `sample` timeline line when due. */
    void endCycle(const PipelineState &st);

    /** Close the stream: emit `drain` squashes for instructions
     *  still in flight (the run budget expired under them) and the
     *  `pipe_done` line. Idempotent; the destructor calls it. */
    void finish();

  private:
    bool inWindow(Cycle c) const
    {
        return c >= opts_.windowFirst && c <= opts_.windowLast;
    }
    bool traced(const DynInst *inst) const;
    void emit(const char *event, sweep::Json fields);
    void emitInstEvent(const char *event, Cycle cyc,
                       const DynInst *inst);

    PipeTraceSink &sink_;
    PipeTraceOptions opts_;
    std::string stream_;
    /** Seqs admitted at fetch and not yet committed/squashed. */
    std::set<InstSeqNum> live_;
    /** Cumulative per-thread progress, fed to `sample` lines;
     *  counted for *every* instruction, traced or not. */
    std::array<std::uint64_t, kMaxThreads> fetched_{};
    std::array<std::uint64_t, kMaxThreads> issued_{};
    Cycle lastCycle_ = 0;
    std::uint64_t tracedCount_ = 0;
    bool finished_ = false;
};

} // namespace smt::obs

#endif // SMT_OBS_PIPE_TRACE_HH
