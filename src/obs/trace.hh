/**
 * @file
 * Structured trace events: one JSON object per line (JSONL), each
 * carrying a wall-clock timestamp, an event name, and the trace id
 * that stitches a sweep's spans together across processes and hosts.
 *
 * The trace id is minted once per sweep (coordinator or tool entry
 * point), handed to local workers in the SMTSWEEP_TRACE_ID
 * environment variable, and rides every store request as the
 * `X-Smt-Trace` header so server-side access logs line up with
 * client-side spans.
 */

#ifndef SMT_OBS_TRACE_HH
#define SMT_OBS_TRACE_HH

#include <cstdio>
#include <mutex>
#include <string>

#include "sweep/json.hh"

namespace smt::obs
{

/** Wire/env names for trace-id propagation. */
inline constexpr const char *kTraceHeader = "X-Smt-Trace";
inline constexpr const char *kTraceEnvVar = "SMTSWEEP_TRACE_ID";

/** A fresh process-unique hex trace id (no RNG dependency). */
std::string newTraceId();

/** True when `id` is safe to use as a trace id everywhere one
 *  travels — headers, environment variables, and server-side file
 *  names (1..64 chars of [A-Za-z0-9_-], so no path traversal). */
bool validTraceId(const std::string &id);

/** Wall-clock seconds since the Unix epoch, to microseconds. */
double nowUnixSeconds();

/**
 * Monotonic seconds (steady clock, arbitrary epoch). Every trace
 * event carries both clocks: wall-clock `ts` places events across
 * hosts, monotonic `mono` + `dur_us` yield durations that survive
 * NTP steps and cross-host clock skew.
 */
double monoSeconds();

/**
 * A thread-safe JSONL appender. Construction opens (appends to) the
 * file; emit() serializes one event per line and flushes, so a trace
 * is readable while the sweep is still running and survives a crash
 * up to the last event.
 */
class TraceWriter
{
  public:
    /**
     * Opens `path` for append; fatal if the file cannot be opened.
     * An empty `trace_id` falls back to SMTSWEEP_TRACE_ID (a worker
     * joining its coordinator's trace) and then to a fresh id.
     */
    explicit TraceWriter(const std::string &path,
                         std::string trace_id = "");
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /**
     * Write `{"ts": ..., "mono": ..., "event": event, "trace":
     * traceId(), plus every key of `fields`}` as one line. `fields`
     * must be a JSON object (or null for no extra fields). Returns
     * the exact line written (without its newline), so a caller can
     * buffer spans for store-side ingest (`POST /v1/trace`) without
     * re-serializing — the server-side copy stays byte-identical to
     * the local one, which is what lets readers deduplicate.
     */
    std::string emit(const std::string &event, sweep::Json fields);

    const std::string &traceId() const { return trace_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string trace_;
    std::FILE *f_;
    std::mutex mu_;
};

} // namespace smt::obs

#endif // SMT_OBS_TRACE_HH
