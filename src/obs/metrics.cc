#include "obs/metrics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace smt::obs
{

LatencyHistogram::LatencyHistogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1])
{
    smt_assert(std::is_sorted(bounds_.begin(), bounds_.end()));
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
        counts_[b].store(0, std::memory_order_relaxed);
}

void
LatencyHistogram::observe(std::uint64_t sample)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), sample);
    const std::size_t bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t>
LatencyHistogram::counts() const
{
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
        out[b] = counts_[b].load(std::memory_order_relaxed);
    return out;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram &
Registry::histogram(const std::string &name,
                    std::vector<std::uint64_t> bounds)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<LatencyHistogram>(std::move(bounds));
    return *slot;
}

sweep::Json
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);

    sweep::Json counters = sweep::Json::object();
    for (const auto &[name, c] : counters_)
        counters.set(name, sweep::Json(c->value()));

    sweep::Json gauges = sweep::Json::object();
    for (const auto &[name, g] : gauges_)
        gauges.set(name, sweep::Json(g->value()));

    sweep::Json histograms = sweep::Json::object();
    for (const auto &[name, h] : histograms_) {
        sweep::Json bounds = sweep::Json::array();
        for (std::uint64_t b : h->bounds())
            bounds.push(sweep::Json(b));
        sweep::Json counts = sweep::Json::array();
        for (std::uint64_t c : h->counts())
            counts.push(sweep::Json(c));
        sweep::Json one = sweep::Json::object();
        one.set("bounds", std::move(bounds));
        one.set("counts", std::move(counts));
        one.set("sum", sweep::Json(h->sum()));
        one.set("samples", sweep::Json(h->samples()));
        histograms.set(name, std::move(one));
    }

    sweep::Json j = sweep::Json::object();
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

std::vector<std::uint64_t>
defaultLatencyBoundsUs()
{
    return {100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000};
}

} // namespace smt::obs
