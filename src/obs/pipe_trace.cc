#include "obs/pipe_trace.hh"

#include <utility>

#include "common/logging.hh"
#include "core/dyn_inst.hh"
#include "core/pipeline_state.hh"
#include "isa/static_inst.hh"
#include "obs/trace.hh"
#include "stats/stats.hh"

namespace smt::obs
{

namespace
{

const char *
stageName(InstStage s)
{
    switch (s) {
    case InstStage::Fetched:
        return "fetched";
    case InstStage::Decoded:
        return "decoded";
    case InstStage::InQueue:
        return "inqueue";
    case InstStage::Issued:
        return "issued";
    case InstStage::Executed:
        return "executed";
    }
    return "?";
}

/** Per-thread counter array → JSON array of numThreads entries. */
template <typename T>
sweep::Json
threadArray(const T &counts, unsigned threads)
{
    sweep::Json arr = sweep::Json::array();
    for (unsigned t = 0; t < threads; ++t)
        arr.push(sweep::Json(static_cast<std::uint64_t>(counts[t])));
    return arr;
}

} // namespace

// ---- PipeTraceSink -----------------------------------------------------

PipeTraceSink::PipeTraceSink(const std::string &path) : path_(path)
{
    f_ = std::fopen(path.c_str(), "a");
    if (f_ == nullptr)
        smt_fatal("cannot open pipetrace file %s", path.c_str());
}

PipeTraceSink::~PipeTraceSink()
{
    std::fclose(f_);
}

void
PipeTraceSink::write(const std::string &line)
{
    std::lock_guard<std::mutex> lk(mu_);
    std::fwrite(line.data(), 1, line.size(), f_);
    std::fputc('\n', f_);
    std::fflush(f_);
}

// ---- PipeTrace ---------------------------------------------------------

PipeTrace::PipeTrace(PipeTraceSink &sink, const PipeTraceOptions &opts,
                     sweep::Json meta)
    : sink_(sink), opts_(opts), stream_(newTraceId())
{
    sweep::Json fields = sweep::Json::object();
    fields.set("window_first", sweep::Json(opts_.windowFirst));
    if (opts_.windowLast != kCycleNever)
        fields.set("window_last", sweep::Json(opts_.windowLast));
    fields.set("sample_period", sweep::Json(opts_.samplePeriod));
    if (meta.type() == sweep::Json::Type::Object)
        for (const auto &[key, value] : meta.items())
            fields.set(key, value);
    emit("pipe_start", std::move(fields));
}

PipeTrace::~PipeTrace()
{
    finish();
}

bool
PipeTrace::traced(const DynInst *inst) const
{
    return live_.count(inst->seq) != 0;
}

void
PipeTrace::emit(const char *event, sweep::Json fields)
{
    sweep::Json line = sweep::Json::object();
    line.set("ts", sweep::Json(nowUnixSeconds()));
    line.set("mono", sweep::Json(monoSeconds()));
    line.set("event", sweep::Json(event));
    line.set("trace", sweep::Json(stream_));
    if (fields.type() == sweep::Json::Type::Object)
        for (const auto &[key, value] : fields.items())
            line.set(key, value);
    sink_.write(line.dump());
}

void
PipeTrace::emitInstEvent(const char *event, Cycle cyc,
                         const DynInst *inst)
{
    sweep::Json fields = sweep::Json::object();
    fields.set("cyc", sweep::Json(cyc));
    fields.set("seq", sweep::Json(inst->seq));
    emit(event, std::move(fields));
}

void
PipeTrace::onFetch(const PipelineState &st, const DynInst *inst)
{
    const Cycle cyc = st.cycle;
    lastCycle_ = cyc;
    ++fetched_[inst->tid];
    if (!inWindow(cyc))
        return;
    live_.insert(inst->seq);
    ++tracedCount_;

    sweep::Json fields = sweep::Json::object();
    fields.set("cyc", sweep::Json(cyc));
    fields.set("t", sweep::Json(std::uint64_t(inst->tid)));
    fields.set("seq", sweep::Json(inst->seq));
    fields.set("pc", sweep::Json(inst->pc));
    fields.set("op", sweep::Json(opClassName(inst->si->op)));
    if (inst->wrongPath)
        fields.set("wp", sweep::Json(true));
    emit("fetch", std::move(fields));
}

void
PipeTrace::onDecode(const PipelineState &st, const DynInst *inst)
{
    if (traced(inst))
        emitInstEvent("decode", st.cycle, inst);
}

void
PipeTrace::onRename(const PipelineState &st, const DynInst *inst)
{
    if (traced(inst))
        emitInstEvent("rename", st.cycle, inst);
}

void
PipeTrace::onRenameBlocked(const PipelineState &st, ThreadID tid,
                           const char *cause)
{
    if (!inWindow(st.cycle))
        return;
    sweep::Json fields = sweep::Json::object();
    fields.set("cyc", sweep::Json(st.cycle));
    fields.set("t", sweep::Json(std::uint64_t(tid)));
    fields.set("cause", sweep::Json(cause));
    emit("rename_blocked", std::move(fields));
}

void
PipeTrace::onIssue(const PipelineState &st, const DynInst *inst)
{
    ++issued_[inst->tid];
    if (!traced(inst))
        return;
    sweep::Json fields = sweep::Json::object();
    fields.set("cyc", sweep::Json(st.cycle));
    fields.set("seq", sweep::Json(inst->seq));
    if (inst->optimistic)
        fields.set("opt", sweep::Json(true));
    emit("issue", std::move(fields));
}

void
PipeTrace::onExecComplete(const PipelineState &st, const DynInst *inst)
{
    if (traced(inst))
        emitInstEvent("exec", st.cycle, inst);
}

void
PipeTrace::onRequeue(const PipelineState &st, const DynInst *inst,
                     const char *cause)
{
    if (!traced(inst))
        return;
    sweep::Json fields = sweep::Json::object();
    fields.set("cyc", sweep::Json(st.cycle));
    fields.set("seq", sweep::Json(inst->seq));
    fields.set("cause", sweep::Json(cause));
    emit("requeue", std::move(fields));
}

void
PipeTrace::onCommit(const PipelineState &st, const DynInst *inst)
{
    if (!traced(inst))
        return;
    live_.erase(inst->seq);
    emitInstEvent("commit", st.cycle, inst);
}

void
PipeTrace::onSquash(const PipelineState &st, const DynInst *inst,
                    const char *cause)
{
    if (!traced(inst))
        return;
    live_.erase(inst->seq);
    sweep::Json fields = sweep::Json::object();
    fields.set("cyc", sweep::Json(st.cycle));
    fields.set("seq", sweep::Json(inst->seq));
    fields.set("cause", sweep::Json(cause));
    fields.set("stage", sweep::Json(stageName(inst->stage)));
    emit("squash", std::move(fields));
}

void
PipeTrace::endCycle(const PipelineState &st)
{
    lastCycle_ = st.cycle;
    if (opts_.samplePeriod == 0 || !inWindow(st.cycle)
        || st.cycle % opts_.samplePeriod != 0)
        return;

    // Per-thread IQ residency: one pass over both queues.
    std::array<std::uint64_t, kMaxThreads> iq{};
    for (const InstructionQueue *q : {&st.intQueue, &st.fpQueue})
        for (std::size_t i = 0; i < q->size(); ++i)
            ++iq[q->at(i)->tid];

    const unsigned threads = st.numThreads;
    sweep::Json fields = sweep::Json::object();
    fields.set("cyc", sweep::Json(st.cycle));
    fields.set("iq", threadArray(iq, threads));
    fields.set("fe", threadArray(st.frontAndQueueCount, threads));
    fields.set("fetched", threadArray(fetched_, threads));
    fields.set("issued", threadArray(issued_, threads));
    fields.set("intq",
               sweep::Json(std::uint64_t(st.intQueue.size())));
    fields.set("fpq", sweep::Json(std::uint64_t(st.fpQueue.size())));

    // Cumulative stall ledger (PR-7 vocabulary). Deltas between
    // samples attribute lost slots per cause; note `warmup()` zeroes
    // these counters, so windows spanning the warmup boundary see
    // one negative delta (smtpipe clamps it).
    const StallStats &stalls = st.stats.stalls;
    sweep::Json sj = sweep::Json::object();
    sj.set("fetchActive", threadArray(stalls.fetchActive, threads));
    sj.set("fetchIcacheMiss",
           threadArray(stalls.fetchIcacheMiss, threads));
    sj.set("fetchFrontEndFull",
           threadArray(stalls.fetchFrontEndFull, threads));
    sj.set("fetchNoTarget",
           threadArray(stalls.fetchNoTarget, threads));
    sj.set("fetchLostSelection",
           threadArray(stalls.fetchLostSelection, threads));
    sj.set("renameIQFull", threadArray(stalls.renameIQFull, threads));
    sj.set("renameNoRegisters",
           threadArray(stalls.renameNoRegisters, threads));
    sj.set("issueOperandWait",
           threadArray(stalls.issueOperandWait, threads));
    sj.set("issueFuBusy", threadArray(stalls.issueFuBusy, threads));
    sj.set("issueNoCandidatesCycles",
           sweep::Json(stalls.issueNoCandidatesCycles));
    fields.set("stalls", std::move(sj));

    emit("sample", std::move(fields));
}

void
PipeTrace::finish()
{
    if (finished_)
        return;
    finished_ = true;

    // The run budget expired with these still in flight: close their
    // lifecycles so a *complete* file always balances (and a
    // truncated one detectably does not).
    const std::uint64_t drained = live_.size();
    for (InstSeqNum seq : live_) {
        sweep::Json fields = sweep::Json::object();
        fields.set("cyc", sweep::Json(lastCycle_));
        fields.set("seq", sweep::Json(seq));
        fields.set("cause", sweep::Json("drain"));
        emit("squash", std::move(fields));
    }
    live_.clear();

    sweep::Json fields = sweep::Json::object();
    fields.set("cyc", sweep::Json(lastCycle_));
    fields.set("traced", sweep::Json(tracedCount_));
    fields.set("drained", sweep::Json(drained));
    emit("pipe_done", std::move(fields));
}

} // namespace smt::obs
