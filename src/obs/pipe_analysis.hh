/**
 * @file
 * Pipetrace analysis: reconstruct per-instruction pipeline timelines
 * from the JSONL streams `obs::PipeTrace` writes, and render them as
 * stage-latency percentiles, per-thread slot shares, wrong-path
 * waste, IQ residency by op class, a human report, a machine-readable
 * summary (schema `smt-pipe-v1`), and a Chrome trace-event export
 * whose lanes are thread x pipeline stage.
 *
 * Input rides the same tolerant reader as sweep traces
 * (`obs::TraceSet`): a pipe file may interleave many runs' streams —
 * each `PipeTrace` mints its own trace id — plus foreign lines, torn
 * tails, and duplicates, none of which is fatal. The analyzer
 * demultiplexes by trace id and treats any id that carries pipe
 * events as one stream.
 */

#ifndef SMT_OBS_PIPE_ANALYSIS_HH
#define SMT_OBS_PIPE_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/trace_analysis.hh"
#include "sweep/json.hh"

namespace smt::obs
{

/** One traced instruction's reconstructed lifecycle. */
struct PipeInst
{
    InstSeqNum seq = 0;
    unsigned tid = 0;
    std::uint64_t pc = 0;
    std::string op;          ///< opClassName at fetch.
    bool wrongPath = false;
    bool optimistic = false; ///< issued on an unverified load wakeup.
    Cycle fetch = kCycleNever;
    Cycle decode = kCycleNever;
    Cycle rename = kCycleNever;
    Cycle issue = kCycleNever; ///< last issue (requeues re-issue).
    Cycle exec = kCycleNever;
    Cycle commit = kCycleNever;
    Cycle squash = kCycleNever;
    std::string squashCause; ///< mispredict | misfetch | drain.
    std::string squashStage; ///< stage it died in ("" for drain).
    unsigned requeues = 0;   ///< bank_conflict + stale_wakeup returns.

    bool committed() const { return commit != kCycleNever; }
    bool squashed() const { return squash != kCycleNever; }
    /** Every traced instruction must end in exactly one of these —
     *  the closure `smtpipe --check` gates on. */
    bool terminal() const { return committed() || squashed(); }
};

/** One `sample` timeline point (the `--pipe-sample` channel). */
struct PipeSample
{
    Cycle cyc = 0;
    std::vector<std::uint64_t> iq;      ///< per-thread IQ entries.
    std::vector<std::uint64_t> fe;      ///< per-thread front-end+IQ.
    std::vector<std::uint64_t> fetched; ///< cumulative per thread.
    std::vector<std::uint64_t> issued;  ///< cumulative per thread.
    std::uint64_t intq = 0;
    std::uint64_t fpq = 0;
    sweep::Json stalls; ///< cumulative stall-ledger arrays.
};

/** One run's stream, keyed by its trace id. */
struct PipeStream
{
    std::string id;
    bool hasStart = false;
    bool hasDone = false; ///< absent => truncated file.
    std::string label;    ///< runner meta, when present.
    std::string digest;
    std::uint64_t run = 0;
    unsigned threads = 0; ///< meta value, else max seen tid + 1.
    Cycle windowFirst = 0;
    Cycle windowLast = kCycleNever;
    std::uint64_t samplePeriod = 0;
    std::uint64_t drained = 0; ///< open lifecycles closed at finish().
    std::vector<PipeInst> insts;      ///< seq-ascending.
    std::vector<PipeSample> samples;  ///< cycle-ascending.
    std::uint64_t renameBlockedIqFull = 0;
    std::uint64_t renameBlockedNoRegs = 0;
    Cycle firstCycle = kCycleNever;
    Cycle lastCycle = 0;
};

/** Count/percentile summary of one latency population (cycles). */
struct LatencySummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Everything the analyzer derives from one corpus. */
struct PipeAnalysis
{
    std::vector<PipeStream> streams;

    // Aggregates over every stream.
    std::size_t instructions = 0;
    std::size_t committed = 0;
    std::size_t squashed = 0; ///< incl. drained.
    std::size_t open = 0;     ///< non-terminal — closure violations.
    std::size_t drained = 0;
    std::size_t wrongPathFetched = 0;
    std::size_t wrongPathIssued = 0;
    std::size_t requeues = 0;
    std::uint64_t renameBlockedIqFull = 0;
    std::uint64_t renameBlockedNoRegs = 0;
    std::size_t missingStart = 0; ///< streams without pipe_start.
    std::size_t missingDone = 0;  ///< streams without pipe_done.
    unsigned threads = 0;         ///< max across streams.

    /** Stage-to-stage transition latencies: fetchToDecode,
     *  decodeToRename, renameToIssue, issueToExec, execToCommit,
     *  fetchToCommit. */
    std::map<std::string, LatencySummary> stageLatency;

    /** rename->issue residency, split by op class. */
    std::map<std::string, LatencySummary> iqResidencyByOp;

    /** Per-thread shares of traced work, from the last sample of the
     *  stream with the most samples (empty without sampling). */
    std::vector<std::uint64_t> fetchSlots;
    std::vector<std::uint64_t> issueSlots;
};

/** Reconstruct streams and aggregates from an ingested corpus. */
PipeAnalysis analyzePipe(const TraceSet &set);

/** Machine-readable summary (schema "smt-pipe-v1"). */
sweep::Json pipeSummary(const PipeAnalysis &analysis,
                        const TraceSet &set);

/** Human-readable report. */
std::string pipeReport(const PipeAnalysis &analysis,
                       const TraceSet &set);

/**
 * Chrome trace-event export of one stream (the given trace id, or
 * the stream with the most instructions when empty): one Chrome
 * process per hardware thread, one lane group per pipeline stage
 * (front-end, decode wait, queue, exec pipe, ROB wait), spans fanned
 * out so overlapping instructions sit side by side, squashes as
 * instants. 1 simulated cycle = 1 µs.
 */
sweep::Json pipeChromeTrace(const PipeAnalysis &analysis,
                            const std::string &trace_id = "");

/**
 * The `--check` gate. Returns a non-empty list of human-readable
 * problems when: the corpus holds no pipe stream at all; a stream is
 * missing its `pipe_start` or `pipe_done` line (truncated file); or
 * any traced instruction never reached commit or squash.
 */
std::vector<std::string> checkPipe(const PipeAnalysis &analysis);

} // namespace smt::obs

#endif // SMT_OBS_PIPE_ANALYSIS_HH
