#include "obs/trace.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include <unistd.h>

#include "common/logging.hh"

namespace smt::obs
{

std::string
newTraceId()
{
    // pid + wall-clock nanoseconds + a process-local counter: unique
    // across the hosts of one sweep without an RNG or /dev/urandom.
    static std::atomic<std::uint64_t> seq{0};
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
    std::uint64_t h = 1469598103934665603ull; // FNV-1a over the parts.
    for (std::uint64_t part :
         {static_cast<std::uint64_t>(::getpid()), ns,
          seq.fetch_add(1, std::memory_order_relaxed)}) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (part >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
validTraceId(const std::string &id)
{
    if (id.empty() || id.size() > 64)
        return false;
    for (char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '_'
                        || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

double
nowUnixSeconds()
{
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(now)
               .count() /
           1e6;
}

double
monoSeconds()
{
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(now)
               .count() /
           1e6;
}

TraceWriter::TraceWriter(const std::string &path, std::string trace_id)
    : path_(path), trace_(std::move(trace_id))
{
    if (trace_.empty()) {
        const char *env = std::getenv(kTraceEnvVar);
        trace_ = (env != nullptr && *env != '\0') ? env : newTraceId();
    }
    f_ = std::fopen(path.c_str(), "a");
    if (f_ == nullptr)
        smt_fatal("cannot open trace file %s", path.c_str());
}

TraceWriter::~TraceWriter()
{
    std::fclose(f_);
}

std::string
TraceWriter::emit(const std::string &event, sweep::Json fields)
{
    sweep::Json line = sweep::Json::object();
    line.set("ts", sweep::Json(nowUnixSeconds()));
    line.set("mono", sweep::Json(monoSeconds()));
    line.set("event", sweep::Json(event));
    line.set("trace", sweep::Json(trace_));
    if (fields.type() == sweep::Json::Type::Object)
        for (const auto &[key, value] : fields.items())
            line.set(key, value);

    std::string text = line.dump();
    {
        std::lock_guard<std::mutex> lk(mu_);
        std::fwrite(text.data(), 1, text.size(), f_);
        std::fputc('\n', f_);
        std::fflush(f_);
    }
    return text;
}

} // namespace smt::obs
