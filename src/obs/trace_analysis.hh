/**
 * @file
 * Sweep-trace analysis: ingest JSONL trace spans (`--trace-out`,
 * server-side `/v1/trace` captures) and smtstore access logs
 * (`--access-log`), join them by trace id, and reconstruct what a
 * distributed sweep actually did — per-digest lifecycle state
 * machines, per-worker busy/idle ledgers, store latency percentiles,
 * and a Chrome trace-event export loadable in Perfetto.
 *
 * Readers are deliberately tolerant: trace files are appended to by
 * several processes and may be copied mid-write, so a malformed,
 * torn, or foreign line is counted and skipped, never an error, and
 * byte-identical duplicate lines (a worker's span appearing in both
 * its local file and the store's server-side capture) collapse to
 * one event.
 *
 * Timing uses both clocks every span carries: wall-clock `ts` places
 * events across hosts, while per-host monotonic `mono` + `dur_us`
 * yield durations immune to NTP steps and cross-host skew. A
 * worker's busy time is the *union* of its run intervals in its own
 * mono timeline (pool-parallel runs overlap; summing would exceed
 * wall time), so busy + idle always equals the worker's window — the
 * ledger closes by construction, and the test suite pins it.
 */

#ifndef SMT_OBS_TRACE_ANALYSIS_HH
#define SMT_OBS_TRACE_ANALYSIS_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sweep/json.hh"

namespace smt::obs
{

/** One parsed trace span (a `--trace-out` line). */
struct TraceEvent
{
    double ts = 0.0;     ///< wall-clock seconds (Unix epoch).
    double mono = -1.0;  ///< per-host monotonic seconds; -1 unknown.
    double durUs = -1.0; ///< span duration in µs; -1 unknown.
    std::string event;   ///< hit/queued/claimed/run/stored/sweep_*...
    std::string trace;   ///< the 16-hex sweep trace id.
    std::string digest;  ///< measurement digest ("" for sweep spans).
    std::string label;
    std::string host;
    std::uint64_t pid = 0;
    double seconds = -1.0; ///< run span: summed per-run wall seconds.
    sweep::Json fields;    ///< the full object (extra keys, export).
};

/** One smtstore access-log record (`--access-log` line). */
struct AccessRecord
{
    double ts = 0.0;
    std::string route; ///< /v1 resource kind (entries, claims, ...).
    std::string method;
    std::string target;
    std::string trace; ///< client's X-Smt-Trace id ("" when absent).
    int status = 0;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    double latencyUs = 0.0;
};

/**
 * The ingested corpus: every event and access record from every file
 * fed in, plus the reader's tally of what it had to skip. Files may
 * be fed in any order and either slot — each line is classified by
 * shape (an "event" key makes a span, a "route" + "status" pair an
 * access record), so handing a trace file to addAccessLog still
 * ingests it correctly.
 */
struct TraceSet
{
    std::vector<TraceEvent> events;
    std::vector<AccessRecord> access;

    std::size_t lines = 0;      ///< non-empty lines seen.
    std::size_t skipped = 0;    ///< malformed / torn / foreign lines.
    std::size_t duplicates = 0; ///< byte-identical repeats dropped.

    /** Ingest one JSONL file (trace spans and/or access records).
     *  False only when the file cannot be read (`error` says why);
     *  bad *lines* are tolerated and tallied. */
    bool addFile(const std::string &path, std::string *error = nullptr);

    /** Ingest already-loaded JSONL text (tests, server buffers). */
    void addText(const std::string &text);

  private:
    std::set<std::string> seen_; ///< raw lines, for deduplication.
};

/** One digest's reconstructed lifecycle. */
struct DigestTimeline
{
    std::string digest;
    std::string label;
    std::string worker; ///< "host/pid" that settled it ("" unknown).
    bool queued = false;
    bool claimed = false;
    bool run = false;
    bool stored = false;
    bool hit = false;
    double runSeconds = -1.0; ///< summed per-run seconds (run span).
    double runDurUs = -1.0;   ///< run span dur_us.
    double firstTs = 0.0;     ///< wall clock of its first event.
    double lastTs = 0.0;      ///< wall clock of its last event.

    /** "stored", "hit", or "" when the digest never finished. */
    std::string terminal() const;
};

/** One worker's closed busy/idle ledger, in its own mono timeline. */
struct WorkerLedger
{
    std::string worker; ///< "host/pid".
    std::string host;
    std::uint64_t pid = 0;
    std::size_t runs = 0;
    std::size_t hits = 0;
    double windowSeconds = 0.0; ///< first to last event, mono.
    double busySeconds = 0.0;   ///< union of run intervals, mono.
    double idleSeconds = 0.0;   ///< window - busy.
    double firstTs = 0.0;       ///< wall clock (cross-host ordering).
    double lastTs = 0.0;

    double utilization() const
    {
        return windowSeconds > 0.0 ? busySeconds / windowSeconds : 0.0;
    }
};

/** Store latency percentiles for one /v1 route (access records). */
struct RouteLatency
{
    std::string route;
    std::size_t count = 0;
    double p50Us = 0.0;
    double p90Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;
};

/** Everything the report, summary, and --check verdict derive from. */
struct TraceAnalysis
{
    std::string traceId; ///< the analyzed trace.
    std::size_t events = 0;
    std::size_t accessRecords = 0;
    double wallSeconds = 0.0; ///< first to last event, wall clock.

    std::string experiment; ///< from sweep_start, when present.
    bool hasSweepStart = false;
    bool hasSweepDone = false;
    double sweepSeconds = -1.0; ///< sweep_done's own wall figure.

    std::vector<DigestTimeline> digests;
    std::size_t terminalStored = 0;
    std::size_t terminalHit = 0;
    std::size_t nonTerminal = 0; ///< started but never finished.

    std::vector<WorkerLedger> workers;

    std::vector<RouteLatency> routes;
    std::size_t claimRequests = 0;
    std::size_t claimConflicts = 0; ///< 409s: lost CAS races.

    /** The straggler's digest chain: the run sequence of the worker
     *  whose last terminal event lands latest — the path that bounds
     *  the sweep's wall time. */
    std::vector<std::string> criticalPath;
    std::string criticalWorker;
};

/**
 * Analyze one trace id's events out of `set`. An empty `trace_id`
 * picks the id with the most events (the common case: one sweep per
 * file set).
 */
TraceAnalysis analyzeTrace(const TraceSet &set,
                           const std::string &trace_id = "");

/** The machine-readable summary ("smt-trace-v1"). A non-null
 *  `stalls` document (from `smtsweep --stall-report --json`) is
 *  embedded under "stalls". */
sweep::Json analysisSummary(const TraceAnalysis &analysis,
                            const TraceSet &set,
                            const sweep::Json *stalls = nullptr);

/** The human report: worker utilization timeline, straggler/skew
 *  table, store latency percentiles, claim contention, critical
 *  path, and any digests that never reached a terminal state. */
std::string analysisReport(const TraceAnalysis &analysis,
                           const TraceSet &set);

/**
 * Chrome trace-event-format export (load in Perfetto or
 * chrome://tracing): one process track per worker with its run spans
 * as complete ("X") events — overlapping pool-parallel runs fan out
 * into lanes — lifecycle instants, and a coordinator track for the
 * sweep-level spans. Timestamps are µs relative to the trace start.
 */
sweep::Json chromeTrace(const TraceSet &set,
                        const std::string &trace_id = "");

} // namespace smt::obs

#endif // SMT_OBS_TRACE_ANALYSIS_HH
