#include "obs/chrome_trace.hh"

#include <utility>

namespace smt::obs
{

namespace
{

sweep::Json
metaEvent(const char *kind, std::uint64_t pid, std::uint64_t tid,
          const std::string &name)
{
    sweep::Json m = sweep::Json::object();
    m.set("ph", sweep::Json("M"));
    m.set("name", sweep::Json(kind));
    m.set("pid", sweep::Json(pid));
    m.set("tid", sweep::Json(tid));
    sweep::Json args = sweep::Json::object();
    args.set("name", sweep::Json(name));
    m.set("args", std::move(args));
    return m;
}

} // namespace

void
ChromeTraceBuilder::processName(std::uint64_t pid,
                                const std::string &name)
{
    events_.push(metaEvent("process_name", pid, 0, name));
}

void
ChromeTraceBuilder::threadName(std::uint64_t pid, std::uint64_t tid,
                               const std::string &name)
{
    events_.push(metaEvent("thread_name", pid, tid, name));
}

std::uint64_t
ChromeTraceBuilder::lane(const std::string &group, double start_us,
                         double end_us)
{
    std::vector<double> &ends = lanes_[group];
    std::size_t lane = 0;
    for (; lane < ends.size(); ++lane) {
        if (ends[lane] <= start_us)
            break;
    }
    if (lane == ends.size())
        ends.push_back(-1.0);
    ends[lane] = end_us;
    return static_cast<std::uint64_t>(lane);
}

std::size_t
ChromeTraceBuilder::laneCount(const std::string &group) const
{
    const auto it = lanes_.find(group);
    return it == lanes_.end() ? 0 : it->second.size();
}

void
ChromeTraceBuilder::complete(std::uint64_t pid, std::uint64_t tid,
                             const std::string &name,
                             const std::string &cat, double ts_us,
                             double dur_us, sweep::Json args)
{
    sweep::Json x = sweep::Json::object();
    x.set("ph", sweep::Json("X"));
    x.set("name", sweep::Json(name));
    x.set("cat", sweep::Json(cat));
    x.set("pid", sweep::Json(pid));
    x.set("tid", sweep::Json(tid));
    x.set("ts", sweep::Json(ts_us));
    x.set("dur", sweep::Json(dur_us));
    if (!args.isNull())
        x.set("args", std::move(args));
    events_.push(std::move(x));
}

void
ChromeTraceBuilder::instant(std::uint64_t pid, std::uint64_t tid,
                            const std::string &name,
                            const std::string &cat, double ts_us,
                            sweep::Json args)
{
    sweep::Json i = sweep::Json::object();
    i.set("ph", sweep::Json("i"));
    i.set("name", sweep::Json(name));
    i.set("cat", sweep::Json(cat));
    i.set("pid", sweep::Json(pid));
    i.set("tid", sweep::Json(tid));
    i.set("ts", sweep::Json(ts_us));
    i.set("s", sweep::Json("t"));
    if (!args.isNull())
        i.set("args", std::move(args));
    events_.push(std::move(i));
}

sweep::Json
ChromeTraceBuilder::build()
{
    sweep::Json doc = sweep::Json::object();
    doc.set("displayTimeUnit", sweep::Json("ms"));
    doc.set("traceEvents", std::move(events_));
    events_ = sweep::Json::array();
    lanes_.clear();
    return doc;
}

} // namespace smt::obs
