#include "obs/pipe_analysis.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/chrome_trace.hh"

namespace smt::obs
{

namespace
{

/** Event names that mark a trace id as a pipetrace stream. */
bool
isPipeEvent(const std::string &event)
{
    return event == "pipe_start" || event == "pipe_done"
           || event == "fetch" || event == "decode"
           || event == "rename" || event == "rename_blocked"
           || event == "issue" || event == "exec"
           || event == "requeue" || event == "commit"
           || event == "squash" || event == "sample";
}

std::string
getString(const sweep::Json &j, const char *key)
{
    if (j.has(key) && j.at(key).type() == sweep::Json::Type::String)
        return j.at(key).asString();
    return "";
}

std::uint64_t
getUInt(const sweep::Json &j, const char *key, std::uint64_t fallback)
{
    if (j.has(key) && j.at(key).isNumber())
        return j.at(key).asUInt();
    return fallback;
}

std::vector<std::uint64_t>
getUIntArray(const sweep::Json &j, const char *key)
{
    std::vector<std::uint64_t> out;
    if (!j.has(key) || j.at(key).type() != sweep::Json::Type::Array)
        return out;
    const sweep::Json &arr = j.at(key);
    out.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i)
        out.push_back(arr[i].isNumber() ? arr[i].asUInt() : 0);
    return out;
}

/** Inclusive percentile of an ascending-sorted sample. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = std::ceil(p / 100.0 * sorted.size());
    std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

LatencySummary
summarize(std::vector<double> &values)
{
    LatencySummary s;
    s.count = values.size();
    if (values.empty())
        return s;
    std::sort(values.begin(), values.end());
    double sum = 0.0;
    for (double v : values)
        sum += v;
    s.mean = sum / static_cast<double>(values.size());
    s.p50 = percentile(values, 50.0);
    s.p90 = percentile(values, 90.0);
    s.p99 = percentile(values, 99.0);
    s.max = values.back();
    return s;
}

/** The cycle distance of a stage transition, when both ends exist. */
void
addTransition(std::map<std::string, std::vector<double>> &pops,
              const char *name, Cycle from, Cycle to)
{
    if (from == kCycleNever || to == kCycleNever || to < from)
        return;
    pops[name].push_back(static_cast<double>(to - from));
}

sweep::Json
latencyJson(const LatencySummary &s)
{
    sweep::Json j = sweep::Json::object();
    j.set("count", sweep::Json(static_cast<std::uint64_t>(s.count)));
    j.set("mean", sweep::Json(s.mean));
    j.set("p50", sweep::Json(s.p50));
    j.set("p90", sweep::Json(s.p90));
    j.set("p99", sweep::Json(s.p99));
    j.set("max", sweep::Json(s.max));
    return j;
}

const PipeStream *
pickStream(const PipeAnalysis &analysis, const std::string &trace_id)
{
    const PipeStream *best = nullptr;
    for (const PipeStream &s : analysis.streams) {
        if (!trace_id.empty()) {
            if (s.id == trace_id)
                return &s;
            continue;
        }
        if (best == nullptr || s.insts.size() > best->insts.size())
            best = &s;
    }
    return best;
}

} // namespace

PipeAnalysis
analyzePipe(const TraceSet &set)
{
    PipeAnalysis analysis;

    // Demultiplex by trace id; reconstruct lifecycles seq-keyed.
    std::map<std::string, PipeStream> streams;
    std::map<std::string, std::map<InstSeqNum, PipeInst>> insts;

    for (const TraceEvent &ev : set.events) {
        if (!isPipeEvent(ev.event))
            continue;
        PipeStream &s = streams[ev.trace];
        s.id = ev.trace;
        const sweep::Json &f = ev.fields;
        const Cycle cyc = getUInt(f, "cyc", 0);
        if (f.has("cyc")) {
            if (cyc < s.firstCycle)
                s.firstCycle = cyc;
            if (cyc > s.lastCycle)
                s.lastCycle = cyc;
        }

        if (ev.event == "pipe_start") {
            s.hasStart = true;
            s.label = getString(f, "label");
            s.digest = getString(f, "digest");
            s.run = getUInt(f, "run", 0);
            s.threads = static_cast<unsigned>(getUInt(f, "threads", 0));
            s.windowFirst = getUInt(f, "window_first", 0);
            s.windowLast = getUInt(f, "window_last", kCycleNever);
            s.samplePeriod = getUInt(f, "sample_period", 0);
            continue;
        }
        if (ev.event == "pipe_done") {
            s.hasDone = true;
            s.drained = getUInt(f, "drained", 0);
            continue;
        }
        if (ev.event == "rename_blocked") {
            const std::string cause = getString(f, "cause");
            if (cause == "iq_full")
                ++s.renameBlockedIqFull;
            else if (cause == "no_regs")
                ++s.renameBlockedNoRegs;
            continue;
        }
        if (ev.event == "sample") {
            PipeSample sample;
            sample.cyc = cyc;
            sample.iq = getUIntArray(f, "iq");
            sample.fe = getUIntArray(f, "fe");
            sample.fetched = getUIntArray(f, "fetched");
            sample.issued = getUIntArray(f, "issued");
            sample.intq = getUInt(f, "intq", 0);
            sample.fpq = getUInt(f, "fpq", 0);
            if (f.has("stalls"))
                sample.stalls = f.at("stalls");
            s.samples.push_back(std::move(sample));
            continue;
        }

        // Per-instruction lifecycle events.
        if (!f.has("seq"))
            continue;
        const InstSeqNum seq = getUInt(f, "seq", 0);
        PipeInst &inst = insts[ev.trace][seq];
        inst.seq = seq;
        if (ev.event == "fetch") {
            inst.tid = static_cast<unsigned>(getUInt(f, "t", 0));
            inst.pc = getUInt(f, "pc", 0);
            inst.op = getString(f, "op");
            inst.wrongPath = f.has("wp");
            inst.fetch = cyc;
        } else if (ev.event == "decode") {
            inst.decode = cyc;
        } else if (ev.event == "rename") {
            inst.rename = cyc;
        } else if (ev.event == "issue") {
            inst.issue = cyc;
            if (f.has("opt"))
                inst.optimistic = true;
        } else if (ev.event == "exec") {
            inst.exec = cyc;
        } else if (ev.event == "requeue") {
            ++inst.requeues;
        } else if (ev.event == "commit") {
            inst.commit = cyc;
        } else if (ev.event == "squash") {
            inst.squash = cyc;
            inst.squashCause = getString(f, "cause");
            inst.squashStage = getString(f, "stage");
        }
    }

    // Finalize streams: seq-sorted instructions, cycle-sorted samples,
    // thread counts, and the corpus-wide aggregates.
    std::map<std::string, std::vector<double>> latency_pops;
    std::map<std::string, std::vector<double>> residency_pops;

    for (auto &[id, s] : streams) {
        auto it = insts.find(id);
        if (it != insts.end()) {
            s.insts.reserve(it->second.size());
            for (auto &[seq, inst] : it->second)
                s.insts.push_back(std::move(inst));
        }
        std::sort(s.samples.begin(), s.samples.end(),
                  [](const PipeSample &a, const PipeSample &b) {
                      return a.cyc < b.cyc;
                  });

        unsigned max_tid = 0;
        for (const PipeInst &inst : s.insts)
            max_tid = std::max(max_tid, inst.tid);
        if (s.threads == 0)
            s.threads = max_tid + 1;
        for (const PipeSample &sample : s.samples)
            s.threads = std::max(
                s.threads, static_cast<unsigned>(sample.iq.size()));

        analysis.threads = std::max(analysis.threads, s.threads);
        analysis.instructions += s.insts.size();
        analysis.drained += s.drained;
        analysis.requeues += 0; // per-inst below.
        analysis.renameBlockedIqFull += s.renameBlockedIqFull;
        analysis.renameBlockedNoRegs += s.renameBlockedNoRegs;
        if (!s.hasStart)
            ++analysis.missingStart;
        if (!s.hasDone)
            ++analysis.missingDone;

        for (const PipeInst &inst : s.insts) {
            if (inst.committed())
                ++analysis.committed;
            else if (inst.squashed())
                ++analysis.squashed;
            else
                ++analysis.open;
            if (inst.wrongPath) {
                ++analysis.wrongPathFetched;
                if (inst.issue != kCycleNever)
                    ++analysis.wrongPathIssued;
            }
            analysis.requeues += inst.requeues;

            addTransition(latency_pops, "fetchToDecode", inst.fetch,
                          inst.decode);
            addTransition(latency_pops, "decodeToRename", inst.decode,
                          inst.rename);
            addTransition(latency_pops, "renameToIssue", inst.rename,
                          inst.issue);
            addTransition(latency_pops, "issueToExec", inst.issue,
                          inst.exec);
            addTransition(latency_pops, "execToCommit", inst.exec,
                          inst.commit);
            addTransition(latency_pops, "fetchToCommit", inst.fetch,
                          inst.commit);
            if (!inst.op.empty() && inst.rename != kCycleNever
                && inst.issue != kCycleNever && inst.issue >= inst.rename)
                residency_pops[inst.op].push_back(
                    static_cast<double>(inst.issue - inst.rename));
        }
    }

    for (auto &[name, values] : latency_pops)
        analysis.stageLatency[name] = summarize(values);
    for (auto &[name, values] : residency_pops)
        analysis.iqResidencyByOp[name] = summarize(values);

    analysis.streams.reserve(streams.size());
    for (auto &[id, s] : streams)
        analysis.streams.push_back(std::move(s));

    // Slot shares from the best-sampled stream's last sample.
    const PipeStream *sampled = nullptr;
    for (const PipeStream &s : analysis.streams) {
        if (!s.samples.empty()
            && (sampled == nullptr
                || s.samples.size() > sampled->samples.size()))
            sampled = &s;
    }
    if (sampled != nullptr) {
        analysis.fetchSlots = sampled->samples.back().fetched;
        analysis.issueSlots = sampled->samples.back().issued;
    }
    return analysis;
}

sweep::Json
pipeSummary(const PipeAnalysis &analysis, const TraceSet &set)
{
    sweep::Json doc = sweep::Json::object();
    doc.set("schema", sweep::Json("smt-pipe-v1"));

    sweep::Json reader = sweep::Json::object();
    reader.set("lines",
               sweep::Json(static_cast<std::uint64_t>(set.lines)));
    reader.set("skipped",
               sweep::Json(static_cast<std::uint64_t>(set.skipped)));
    reader.set("duplicates", sweep::Json(static_cast<std::uint64_t>(
                                 set.duplicates)));
    doc.set("reader", std::move(reader));

    doc.set("streams", sweep::Json(static_cast<std::uint64_t>(
                           analysis.streams.size())));
    doc.set("instructions", sweep::Json(static_cast<std::uint64_t>(
                                analysis.instructions)));
    doc.set("committed", sweep::Json(static_cast<std::uint64_t>(
                             analysis.committed)));
    doc.set("squashed", sweep::Json(static_cast<std::uint64_t>(
                            analysis.squashed)));
    doc.set("drained", sweep::Json(static_cast<std::uint64_t>(
                           analysis.drained)));
    doc.set("openInstructions",
            sweep::Json(static_cast<std::uint64_t>(analysis.open)));
    doc.set("threads", sweep::Json(analysis.threads));

    sweep::Json wp = sweep::Json::object();
    wp.set("fetched", sweep::Json(static_cast<std::uint64_t>(
                          analysis.wrongPathFetched)));
    wp.set("issued", sweep::Json(static_cast<std::uint64_t>(
                         analysis.wrongPathIssued)));
    wp.set("fetchedFraction",
           sweep::Json(analysis.instructions == 0
                           ? 0.0
                           : static_cast<double>(
                                 analysis.wrongPathFetched)
                                 / static_cast<double>(
                                     analysis.instructions)));
    doc.set("wrongPath", std::move(wp));

    doc.set("requeues", sweep::Json(static_cast<std::uint64_t>(
                            analysis.requeues)));
    sweep::Json rb = sweep::Json::object();
    rb.set("iqFull", sweep::Json(analysis.renameBlockedIqFull));
    rb.set("noRegs", sweep::Json(analysis.renameBlockedNoRegs));
    doc.set("renameBlocked", std::move(rb));

    sweep::Json lat = sweep::Json::object();
    for (const auto &[name, s] : analysis.stageLatency)
        lat.set(name, latencyJson(s));
    doc.set("stageLatency", std::move(lat));

    sweep::Json residency = sweep::Json::object();
    for (const auto &[name, s] : analysis.iqResidencyByOp)
        residency.set(name, latencyJson(s));
    doc.set("iqResidencyByOp", std::move(residency));

    sweep::Json fetch_slots = sweep::Json::array();
    for (std::uint64_t v : analysis.fetchSlots)
        fetch_slots.push(sweep::Json(v));
    doc.set("fetchSlots", std::move(fetch_slots));
    sweep::Json issue_slots = sweep::Json::array();
    for (std::uint64_t v : analysis.issueSlots)
        issue_slots.push(sweep::Json(v));
    doc.set("issueSlots", std::move(issue_slots));

    doc.set("missingStart", sweep::Json(static_cast<std::uint64_t>(
                                analysis.missingStart)));
    doc.set("missingDone", sweep::Json(static_cast<std::uint64_t>(
                               analysis.missingDone)));

    sweep::Json streams = sweep::Json::array();
    for (const PipeStream &s : analysis.streams) {
        sweep::Json j = sweep::Json::object();
        j.set("id", sweep::Json(s.id));
        if (!s.label.empty())
            j.set("label", sweep::Json(s.label));
        if (!s.digest.empty())
            j.set("digest", sweep::Json(s.digest));
        j.set("run", sweep::Json(s.run));
        j.set("threads", sweep::Json(s.threads));
        j.set("instructions", sweep::Json(static_cast<std::uint64_t>(
                                  s.insts.size())));
        j.set("samples", sweep::Json(static_cast<std::uint64_t>(
                             s.samples.size())));
        j.set("complete", sweep::Json(s.hasStart && s.hasDone));
        streams.push(std::move(j));
    }
    doc.set("streamsDetail", std::move(streams));
    return doc;
}

std::string
pipeReport(const PipeAnalysis &analysis, const TraceSet &set)
{
    std::string out;
    char buf[512];
    const auto add = [&out](const char *text) { out += text; };

    std::snprintf(buf, sizeof buf,
                  "pipetrace: %zu stream(s), %zu instruction(s), "
                  "%zu line(s) read (%zu skipped, %zu duplicate)\n",
                  analysis.streams.size(), analysis.instructions,
                  set.lines, set.skipped, set.duplicates);
    add(buf);

    for (const PipeStream &s : analysis.streams) {
        std::snprintf(
            buf, sizeof buf,
            "  %s%s%s run %llu: %zu inst, %zu sample(s), "
            "cycles %llu..%llu%s\n",
            s.id.c_str(), s.label.empty() ? "" : "  ",
            s.label.c_str(), static_cast<unsigned long long>(s.run),
            s.insts.size(), s.samples.size(),
            static_cast<unsigned long long>(
                s.firstCycle == kCycleNever ? 0 : s.firstCycle),
            static_cast<unsigned long long>(s.lastCycle),
            s.hasDone ? "" : "  [TRUNCATED]");
        add(buf);
    }

    std::snprintf(buf, sizeof buf,
                  "\nlifecycles: %zu committed, %zu squashed "
                  "(%zu drained at run end), %zu open\n",
                  analysis.committed, analysis.squashed,
                  analysis.drained, analysis.open);
    add(buf);
    std::snprintf(buf, sizeof buf,
                  "wrong path: %zu fetched, %zu issued (waste the "
                  "paper's Section 4 charges to fetch policy)\n",
                  analysis.wrongPathFetched, analysis.wrongPathIssued);
    add(buf);
    std::snprintf(buf, sizeof buf,
                  "requeues: %zu (bank conflicts + stale optimistic "
                  "wakeups); rename blocked: %llu iq_full, %llu "
                  "no_regs\n",
                  analysis.requeues,
                  static_cast<unsigned long long>(
                      analysis.renameBlockedIqFull),
                  static_cast<unsigned long long>(
                      analysis.renameBlockedNoRegs));
    add(buf);

    if (!analysis.stageLatency.empty()) {
        add("\nstage latency (cycles):\n");
        add("  transition        count    mean     p50     p90     "
            "p99     max\n");
        for (const auto &[name, s] : analysis.stageLatency) {
            std::snprintf(buf, sizeof buf,
                          "  %-15s %7zu %7.1f %7.0f %7.0f %7.0f "
                          "%7.0f\n",
                          name.c_str(), s.count, s.mean, s.p50, s.p90,
                          s.p99, s.max);
            add(buf);
        }
    }

    if (!analysis.iqResidencyByOp.empty()) {
        add("\nIQ residency by op class (rename -> issue, cycles):\n");
        for (const auto &[name, s] : analysis.iqResidencyByOp) {
            std::snprintf(buf, sizeof buf,
                          "  %-12s %7zu %7.1f %7.0f %7.0f %7.0f\n",
                          name.c_str(), s.count, s.mean, s.p50, s.p90,
                          s.max);
            add(buf);
        }
    }

    if (!analysis.fetchSlots.empty()) {
        add("\nper-thread progress at last sample "
            "(cumulative fetched/issued):\n");
        for (std::size_t t = 0; t < analysis.fetchSlots.size(); ++t) {
            const std::uint64_t issued =
                t < analysis.issueSlots.size() ? analysis.issueSlots[t]
                                               : 0;
            std::snprintf(
                buf, sizeof buf, "  T%zu  %10llu %10llu\n", t,
                static_cast<unsigned long long>(analysis.fetchSlots[t]),
                static_cast<unsigned long long>(issued));
            add(buf);
        }
    }

    return out;
}

sweep::Json
pipeChromeTrace(const PipeAnalysis &analysis,
                const std::string &trace_id)
{
    ChromeTraceBuilder chrome;
    const PipeStream *stream = pickStream(analysis, trace_id);
    if (stream == nullptr)
        return chrome.build();

    const Cycle t0 =
        stream->firstCycle == kCycleNever ? 0 : stream->firstCycle;
    const auto us = [t0](Cycle c) {
        return static_cast<double>(c - t0);
    };

    // Lanes: one Chrome process per hardware thread, one lane group
    // per pipeline stage; overlapping instructions fan out within the
    // group. 1 simulated cycle = 1 µs.
    struct StageSpan
    {
        const char *name;
        Cycle PipeInst::*from;
        Cycle PipeInst::*to;
    };
    static constexpr StageSpan kSpans[] = {
        {"frontend", &PipeInst::fetch, &PipeInst::decode},
        {"decode", &PipeInst::decode, &PipeInst::rename},
        {"queue", &PipeInst::rename, &PipeInst::issue},
        {"exec", &PipeInst::issue, &PipeInst::exec},
        {"rob", &PipeInst::exec, &PipeInst::commit},
    };
    constexpr std::uint64_t kLaneStride = 256;

    for (unsigned t = 0; t < stream->threads; ++t) {
        char name[32];
        std::snprintf(name, sizeof name, "thread %u", t);
        chrome.processName(t + 1, name);
    }

    // Spans must reach each lane group sorted by start; instructions
    // are seq-sorted, which is fetch-ordered, but later stages can
    // reorder, so collect and sort per (thread, stage).
    struct Span
    {
        double startUs;
        double durUs;
        const PipeInst *inst;
    };
    for (unsigned t = 0; t < stream->threads; ++t) {
        const std::uint64_t pid = t + 1;
        for (std::size_t si = 0; si < std::size(kSpans); ++si) {
            const StageSpan &sp = kSpans[si];
            std::vector<Span> spans;
            for (const PipeInst &inst : stream->insts) {
                if (inst.tid != t)
                    continue;
                Cycle from = inst.*(sp.from);
                Cycle to = inst.*(sp.to);
                // A squashed instruction's open segment closes at the
                // squash cycle.
                if (from != kCycleNever && to == kCycleNever
                    && inst.squash != kCycleNever
                    && inst.squash >= from)
                    to = inst.squash;
                if (from == kCycleNever || to == kCycleNever
                    || to < from)
                    continue;
                const double dur = to > from
                                       ? static_cast<double>(to - from)
                                       : 0.5;
                spans.push_back(Span{us(from), dur, &inst});
            }
            std::sort(spans.begin(), spans.end(),
                      [](const Span &a, const Span &b) {
                          return a.startUs < b.startUs;
                      });
            char group[48];
            std::snprintf(group, sizeof group, "t%u/%s", t, sp.name);
            for (const Span &span : spans) {
                const std::uint64_t lane = chrome.lane(
                    group, span.startUs, span.startUs + span.durUs);
                sweep::Json args = sweep::Json::object();
                args.set("seq", sweep::Json(span.inst->seq));
                args.set("pc", sweep::Json(span.inst->pc));
                if (span.inst->wrongPath)
                    args.set("wp", sweep::Json(true));
                chrome.complete(
                    pid, si * kLaneStride + lane,
                    span.inst->op.empty() ? "inst" : span.inst->op,
                    span.inst->squashed() ? "squashed" : sp.name,
                    span.startUs, span.durUs, std::move(args));
            }
            for (std::uint64_t lane = 0; lane < chrome.laneCount(group);
                 ++lane) {
                char lname[64];
                std::snprintf(lname, sizeof lname, "%s #%llu", sp.name,
                              static_cast<unsigned long long>(lane));
                chrome.threadName(pid, si * kLaneStride + lane, lname);
            }
        }
    }

    // Squashes as instants on the owning thread's track.
    for (const PipeInst &inst : stream->insts) {
        if (!inst.squashed() || inst.tid >= stream->threads)
            continue;
        sweep::Json args = sweep::Json::object();
        args.set("seq", sweep::Json(inst.seq));
        if (!inst.squashCause.empty())
            args.set("cause", sweep::Json(inst.squashCause));
        chrome.instant(inst.tid + 1, 0, "squash", "lifecycle",
                       us(inst.squash), std::move(args));
    }
    return chrome.build();
}

std::vector<std::string>
checkPipe(const PipeAnalysis &analysis)
{
    std::vector<std::string> problems;
    char buf[256];
    if (analysis.streams.empty()) {
        problems.emplace_back("no pipetrace stream found in the "
                              "corpus (no pipe events at all)");
        return problems;
    }
    for (const PipeStream &s : analysis.streams) {
        if (!s.hasStart) {
            std::snprintf(buf, sizeof buf,
                          "stream %s has no pipe_start line",
                          s.id.c_str());
            problems.emplace_back(buf);
        }
        if (!s.hasDone) {
            std::snprintf(buf, sizeof buf,
                          "stream %s has no pipe_done line "
                          "(truncated file?)",
                          s.id.c_str());
            problems.emplace_back(buf);
        }
        std::size_t open = 0;
        for (const PipeInst &inst : s.insts)
            if (!inst.terminal())
                ++open;
        if (open > 0) {
            std::snprintf(buf, sizeof buf,
                          "stream %s: %zu traced instruction(s) "
                          "never reached commit or squash",
                          s.id.c_str(), open);
            problems.emplace_back(buf);
        }
    }
    return problems;
}

} // namespace smt::obs
