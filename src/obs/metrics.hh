/**
 * @file
 * A dependency-free metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms, snapshotted to JSON on demand.
 *
 * The design keeps the hot path trivial: an instrument is registered
 * once (under the registry mutex) and the caller holds a stable
 * reference forever after; increments are single relaxed atomic adds
 * with no lookup, no lock, and no allocation. Snapshots walk the
 * registry under the mutex and render through the same `sweep::Json`
 * writer the result cache uses, so `/v1/stats` and BENCH_obs.json
 * serialize counters exactly (64-bit, insertion-ordered).
 */

#ifndef SMT_OBS_METRICS_HH
#define SMT_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sweep/json.hh"

namespace smt::obs
{

/** A monotonically increasing 64-bit event count. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** A signed instantaneous level (live connections, queue depth). */
class Gauge
{
  public:
    void
    add(std::int64_t n)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    void
    set(std::int64_t n)
    {
        v_.store(n, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * A histogram over fixed upper bounds chosen at registration.
 *
 * A sample lands in the first bucket whose bound it does not exceed;
 * samples above the last bound land in the implicit overflow bucket.
 * Bounds are in whatever unit the caller samples in (the store uses
 * microseconds for request latency).
 */
class LatencyHistogram
{
  public:
    explicit LatencyHistogram(std::vector<std::uint64_t> bounds);

    void observe(std::uint64_t sample);

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }
    /** Bucket counts; size() == bounds().size() + 1 (overflow last). */
    std::vector<std::uint64_t> counts() const;
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t
    samples() const
    {
        return samples_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<std::uint64_t> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> samples_{0};
};

/**
 * The process-wide instrument directory. Lookup allocates on first
 * use and returns a reference that stays valid for the registry's
 * lifetime, so callers resolve names once and increment lock-free.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** Bounds are fixed by the first registration of `name`. */
    LatencyHistogram &histogram(const std::string &name,
                                std::vector<std::uint64_t> bounds);

    /**
     * Render every instrument:
     * `{"counters": {...}, "gauges": {...}, "histograms":
     *   {name: {"bounds": [...], "counts": [...], "sum", "samples"}}}`.
     */
    sweep::Json snapshot() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/** Default latency bounds: 100us .. 1s, roughly half-decade steps. */
std::vector<std::uint64_t> defaultLatencyBoundsUs();

} // namespace smt::obs

#endif // SMT_OBS_METRICS_HH
