#include "obs/trace_analysis.hh"

#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace smt::obs
{

namespace
{

std::string
getString(const sweep::Json &j, const char *key)
{
    if (j.has(key) && j.at(key).type() == sweep::Json::Type::String)
        return j.at(key).asString();
    return "";
}

/** A numeric field as double; `fallback` when absent or non-numeric. */
double
getNumber(const sweep::Json &j, const char *key, double fallback)
{
    if (j.has(key) && j.at(key).isNumber())
        return j.at(key).asDouble();
    return fallback;
}

/** Classify and ingest one JSONL line; false when it is foreign. */
bool
classifyLine(const std::string &line, std::vector<TraceEvent> &events,
             std::vector<AccessRecord> &access)
{
    sweep::Json j;
    if (!sweep::Json::parse(line, j)
        || j.type() != sweep::Json::Type::Object)
        return false;

    // A trace span: {"ts", "event", "trace", ...}.
    if (j.has("event") && j.at("event").type() == sweep::Json::Type::String
        && j.has("trace")
        && j.at("trace").type() == sweep::Json::Type::String
        && j.has("ts") && j.at("ts").isNumber()) {
        TraceEvent ev;
        ev.ts = j.at("ts").asDouble();
        ev.mono = getNumber(j, "mono", -1.0);
        ev.durUs = getNumber(j, "dur_us", -1.0);
        ev.event = j.at("event").asString();
        ev.trace = j.at("trace").asString();
        ev.digest = getString(j, "digest");
        ev.label = getString(j, "label");
        ev.host = getString(j, "host");
        ev.pid = static_cast<std::uint64_t>(
            getNumber(j, "pid", 0.0));
        ev.seconds = getNumber(j, "seconds", -1.0);
        ev.fields = std::move(j);
        events.push_back(std::move(ev));
        return true;
    }

    // An access-log record: {"ts", "route", "method", "status", ...}.
    if (j.has("route") && j.at("route").type() == sweep::Json::Type::String
        && j.has("status") && j.at("status").isNumber()) {
        AccessRecord rec;
        rec.ts = getNumber(j, "ts", 0.0);
        rec.route = j.at("route").asString();
        rec.method = getString(j, "method");
        rec.target = getString(j, "target");
        rec.trace = getString(j, "trace");
        rec.status = static_cast<int>(j.at("status").asDouble());
        rec.bytesIn = static_cast<std::uint64_t>(
            getNumber(j, "bytes_in", 0.0));
        rec.bytesOut = static_cast<std::uint64_t>(
            getNumber(j, "bytes_out", 0.0));
        rec.latencyUs = getNumber(j, "latency_us", 0.0);
        access.push_back(std::move(rec));
        return true;
    }
    return false;
}

/** Inclusive percentile of an ascending-sorted sample. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = std::ceil(p / 100.0 * sorted.size());
    std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

/** The trace id to analyze: the requested one, else the id with the
 *  most spans in the corpus ("" when the corpus is empty). */
std::string
pickTraceId(const TraceSet &set, const std::string &requested)
{
    if (!requested.empty())
        return requested;
    std::map<std::string, std::size_t> counts;
    for (const TraceEvent &ev : set.events)
        ++counts[ev.trace];
    std::string best;
    std::size_t best_count = 0;
    for (const auto &[id, count] : counts) {
        if (count > best_count) {
            best = id;
            best_count = count;
        }
    }
    return best;
}

/** A run span's duration in seconds: dur_us when stamped, else the
 *  span's own "seconds" figure, else zero (an instant). */
double
runDurationSeconds(const TraceEvent &ev)
{
    if (ev.durUs >= 0.0)
        return ev.durUs / 1e6;
    if (ev.seconds >= 0.0)
        return ev.seconds;
    return 0.0;
}

/** Total length of the union of [start, end] intervals. */
double
intervalUnionSeconds(std::vector<std::pair<double, double>> intervals)
{
    std::sort(intervals.begin(), intervals.end());
    double total = 0.0, cur_start = 0.0, cur_end = 0.0;
    bool open = false;
    for (const auto &[start, end] : intervals) {
        if (end <= start)
            continue;
        if (!open || start > cur_end) {
            if (open)
                total += cur_end - cur_start;
            cur_start = start;
            cur_end = end;
            open = true;
        } else if (end > cur_end) {
            cur_end = end;
        }
    }
    if (open)
        total += cur_end - cur_start;
    return total;
}

std::string
workerKey(const TraceEvent &ev)
{
    return ev.host + "/" + std::to_string(ev.pid);
}

} // namespace

bool
TraceSet::addFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    addText(text.str());
    return true;
}

void
TraceSet::addText(const std::string &text)
{
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::size_t end = nl == std::string::npos ? text.size() : nl;
        std::string line = text.substr(pos, end - pos);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty()) {
            ++lines;
            if (!seen_.insert(line).second)
                ++duplicates;
            else if (!classifyLine(line, events, access))
                ++skipped;
        }
        if (nl == std::string::npos)
            break;
        pos = nl + 1;
    }
}

std::string
DigestTimeline::terminal() const
{
    if (stored)
        return "stored";
    if (hit)
        return "hit";
    return "";
}

TraceAnalysis
analyzeTrace(const TraceSet &set, const std::string &trace_id)
{
    TraceAnalysis out;
    out.traceId = pickTraceId(set, trace_id);

    struct WorkerScratch
    {
        std::vector<std::pair<double, double>> runIntervals; ///< mono.
        double monoMin = 0.0, monoMax = 0.0;
        bool hasMono = false;
        WorkerLedger ledger;
        std::vector<std::pair<double, std::string>> runOrder; ///< ts.
    };
    std::map<std::string, WorkerScratch> workers;
    std::map<std::string, DigestTimeline> digests;
    double ts_min = 0.0, ts_max = 0.0;
    bool any = false;

    for (const TraceEvent &ev : set.events) {
        if (ev.trace != out.traceId)
            continue;
        ++out.events;
        if (!any || ev.ts < ts_min)
            ts_min = ev.ts;
        if (!any || ev.ts > ts_max)
            ts_max = ev.ts;
        any = true;

        if (ev.event == "sweep_start") {
            out.hasSweepStart = true;
            out.experiment = getString(ev.fields, "experiment");
        } else if (ev.event == "sweep_done") {
            out.hasSweepDone = true;
            if (out.experiment.empty())
                out.experiment = getString(ev.fields, "experiment");
            out.sweepSeconds = getNumber(ev.fields, "seconds", -1.0);
        }

        if (!ev.digest.empty()) {
            DigestTimeline &d = digests[ev.digest];
            if (d.digest.empty()) {
                d.digest = ev.digest;
                d.firstTs = ev.ts;
                d.lastTs = ev.ts;
            }
            d.firstTs = std::min(d.firstTs, ev.ts);
            d.lastTs = std::max(d.lastTs, ev.ts);
            if (!ev.label.empty())
                d.label = ev.label;
            if (!ev.host.empty())
                d.worker = workerKey(ev);
            if (ev.event == "queued")
                d.queued = true;
            else if (ev.event == "claimed")
                d.claimed = true;
            else if (ev.event == "run") {
                d.run = true;
                d.runSeconds = ev.seconds;
                d.runDurUs = ev.durUs;
            } else if (ev.event == "stored")
                d.stored = true;
            else if (ev.event == "hit")
                d.hit = true;
        }

        if (!ev.host.empty()) {
            WorkerScratch &w = workers[workerKey(ev)];
            if (w.ledger.worker.empty()) {
                w.ledger.worker = workerKey(ev);
                w.ledger.host = ev.host;
                w.ledger.pid = ev.pid;
                w.ledger.firstTs = ev.ts;
                w.ledger.lastTs = ev.ts;
            }
            w.ledger.firstTs = std::min(w.ledger.firstTs, ev.ts);
            w.ledger.lastTs = std::max(w.ledger.lastTs, ev.ts);
            if (ev.event == "hit")
                ++w.ledger.hits;
            if (ev.mono >= 0.0) {
                // A span's mono stamps its *end*; a run span extends
                // back by its duration. The window covers both ends.
                double lo = ev.mono, hi = ev.mono;
                if (ev.event == "run") {
                    const double dur = runDurationSeconds(ev);
                    lo = ev.mono - dur;
                    w.runIntervals.emplace_back(lo, ev.mono);
                }
                if (!w.hasMono) {
                    w.monoMin = lo;
                    w.monoMax = hi;
                    w.hasMono = true;
                } else {
                    w.monoMin = std::min(w.monoMin, lo);
                    w.monoMax = std::max(w.monoMax, hi);
                }
            }
            if (ev.event == "run") {
                ++w.ledger.runs;
                w.runOrder.emplace_back(ev.ts, ev.digest);
            }
        }
    }
    out.wallSeconds = any ? ts_max - ts_min : 0.0;

    for (auto &[digest, timeline] : digests) {
        (void)digest;
        const std::string term = timeline.terminal();
        if (term == "stored")
            ++out.terminalStored;
        else if (term == "hit")
            ++out.terminalHit;
        else
            ++out.nonTerminal;
        out.digests.push_back(timeline);
    }

    for (auto &[key, w] : workers) {
        (void)key;
        if (w.hasMono) {
            w.ledger.windowSeconds = w.monoMax - w.monoMin;
            // Clamp run intervals into the window before the union:
            // a fallback duration (no dur_us, pool-overlapped
            // seconds) may reach before the worker's first event.
            for (auto &[lo, hi] : w.runIntervals) {
                lo = std::max(lo, w.monoMin);
                hi = std::min(hi, w.monoMax);
            }
            w.ledger.busySeconds = intervalUnionSeconds(w.runIntervals);
            w.ledger.idleSeconds =
                w.ledger.windowSeconds - w.ledger.busySeconds;
            if (w.ledger.idleSeconds < 0.0)
                w.ledger.idleSeconds = 0.0;
        }
        out.workers.push_back(w.ledger);
    }

    // The straggler: the worker with measurements whose last event
    // lands latest on the shared wall clock — its run chain bounds
    // the sweep.
    const WorkerScratch *straggler = nullptr;
    for (const auto &[key, w] : workers) {
        (void)key;
        if (w.ledger.runs == 0)
            continue;
        if (straggler == nullptr
            || w.ledger.lastTs > straggler->ledger.lastTs)
            straggler = &w;
    }
    if (straggler != nullptr) {
        out.criticalWorker = straggler->ledger.worker;
        std::vector<std::pair<double, std::string>> order =
            straggler->runOrder;
        std::sort(order.begin(), order.end());
        for (const auto &[ts, digest] : order) {
            (void)ts;
            out.criticalPath.push_back(digest);
        }
    }

    // Store-side joins: only records stamped with this trace id.
    std::map<std::string, std::vector<double>> latencies;
    for (const AccessRecord &rec : set.access) {
        if (rec.trace != out.traceId)
            continue;
        ++out.accessRecords;
        latencies[rec.route].push_back(rec.latencyUs);
        if (rec.route == "claims") {
            ++out.claimRequests;
            if (rec.status == 409)
                ++out.claimConflicts;
        }
    }
    for (auto &[route, samples] : latencies) {
        std::sort(samples.begin(), samples.end());
        RouteLatency lat;
        lat.route = route;
        lat.count = samples.size();
        lat.p50Us = percentile(samples, 50.0);
        lat.p90Us = percentile(samples, 90.0);
        lat.p99Us = percentile(samples, 99.0);
        lat.maxUs = samples.back();
        out.routes.push_back(std::move(lat));
    }
    return out;
}

sweep::Json
analysisSummary(const TraceAnalysis &analysis, const TraceSet &set,
                const sweep::Json *stalls)
{
    sweep::Json doc = sweep::Json::object();
    doc.set("schema", sweep::Json("smt-trace-v1"));
    doc.set("trace", sweep::Json(analysis.traceId));
    doc.set("events", sweep::Json(static_cast<std::uint64_t>(
                          analysis.events)));
    doc.set("accessRecords",
            sweep::Json(static_cast<std::uint64_t>(
                analysis.accessRecords)));
    doc.set("lines",
            sweep::Json(static_cast<std::uint64_t>(set.lines)));
    doc.set("skippedLines",
            sweep::Json(static_cast<std::uint64_t>(set.skipped)));
    doc.set("duplicateLines",
            sweep::Json(static_cast<std::uint64_t>(set.duplicates)));
    if (!analysis.experiment.empty())
        doc.set("experiment", sweep::Json(analysis.experiment));
    doc.set("wallSeconds", sweep::Json(analysis.wallSeconds));
    if (analysis.sweepSeconds >= 0.0)
        doc.set("sweepSeconds", sweep::Json(analysis.sweepSeconds));

    sweep::Json digests = sweep::Json::object();
    digests.set("total", sweep::Json(static_cast<std::uint64_t>(
                             analysis.digests.size())));
    digests.set("stored", sweep::Json(static_cast<std::uint64_t>(
                              analysis.terminalStored)));
    digests.set("hit", sweep::Json(static_cast<std::uint64_t>(
                           analysis.terminalHit)));
    digests.set("nonTerminal",
                sweep::Json(static_cast<std::uint64_t>(
                    analysis.nonTerminal)));
    sweep::Json non_terminal = sweep::Json::array();
    for (const DigestTimeline &d : analysis.digests) {
        if (d.terminal().empty())
            non_terminal.push(sweep::Json(d.digest));
    }
    digests.set("nonTerminalDigests", std::move(non_terminal));
    doc.set("digests", std::move(digests));

    sweep::Json workers = sweep::Json::array();
    for (const WorkerLedger &w : analysis.workers) {
        sweep::Json j = sweep::Json::object();
        j.set("worker", sweep::Json(w.worker));
        j.set("host", sweep::Json(w.host));
        j.set("pid", sweep::Json(w.pid));
        j.set("runs", sweep::Json(static_cast<std::uint64_t>(w.runs)));
        j.set("hits", sweep::Json(static_cast<std::uint64_t>(w.hits)));
        j.set("windowSeconds", sweep::Json(w.windowSeconds));
        j.set("busySeconds", sweep::Json(w.busySeconds));
        j.set("idleSeconds", sweep::Json(w.idleSeconds));
        j.set("utilization", sweep::Json(w.utilization()));
        workers.push(std::move(j));
    }
    doc.set("workers", std::move(workers));

    sweep::Json routes = sweep::Json::array();
    for (const RouteLatency &lat : analysis.routes) {
        sweep::Json j = sweep::Json::object();
        j.set("route", sweep::Json(lat.route));
        j.set("count",
              sweep::Json(static_cast<std::uint64_t>(lat.count)));
        j.set("p50Us", sweep::Json(lat.p50Us));
        j.set("p90Us", sweep::Json(lat.p90Us));
        j.set("p99Us", sweep::Json(lat.p99Us));
        j.set("maxUs", sweep::Json(lat.maxUs));
        routes.push(std::move(j));
    }
    doc.set("storeLatency", std::move(routes));

    sweep::Json claims = sweep::Json::object();
    claims.set("requests", sweep::Json(static_cast<std::uint64_t>(
                               analysis.claimRequests)));
    claims.set("conflicts", sweep::Json(static_cast<std::uint64_t>(
                                analysis.claimConflicts)));
    doc.set("claims", std::move(claims));

    sweep::Json critical = sweep::Json::object();
    critical.set("worker", sweep::Json(analysis.criticalWorker));
    sweep::Json chain = sweep::Json::array();
    for (const std::string &digest : analysis.criticalPath)
        chain.push(sweep::Json(digest));
    critical.set("digests", std::move(chain));
    doc.set("criticalPath", std::move(critical));

    if (stalls != nullptr)
        doc.set("stalls", *stalls);
    return doc;
}

std::string
analysisReport(const TraceAnalysis &analysis, const TraceSet &set)
{
    std::string out;
    char buf[256];
    const auto add = [&out](const char *text) { out += text; };

    std::snprintf(buf, sizeof buf,
                  "trace %s: %zu events, %zu access records "
                  "(%zu lines, %zu skipped, %zu duplicates)\n",
                  analysis.traceId.empty() ? "<none>"
                                           : analysis.traceId.c_str(),
                  analysis.events, analysis.accessRecords, set.lines,
                  set.skipped, set.duplicates);
    add(buf);
    if (!analysis.experiment.empty()) {
        std::snprintf(buf, sizeof buf,
                      "experiment %s, %.2fs wall (sweep_start %s, "
                      "sweep_done %s)\n",
                      analysis.experiment.c_str(), analysis.wallSeconds,
                      analysis.hasSweepStart ? "yes" : "no",
                      analysis.hasSweepDone ? "yes" : "no");
        add(buf);
    }
    std::snprintf(buf, sizeof buf,
                  "digests: %zu total, %zu stored, %zu hit, "
                  "%zu non-terminal\n",
                  analysis.digests.size(), analysis.terminalStored,
                  analysis.terminalHit, analysis.nonTerminal);
    add(buf);

    if (!analysis.workers.empty()) {
        add("\nworker utilization (mono-clock ledger: busy + idle = "
            "window)\n");
        add("  worker                        runs  hits   busy(s)  "
            "idle(s)  window(s)   util\n");
        for (const WorkerLedger &w : analysis.workers) {
            std::snprintf(buf, sizeof buf,
                          "  %-28s %5zu %5zu %9.3f %8.3f %10.3f %5.1f%%\n",
                          w.worker.c_str(), w.runs, w.hits,
                          w.busySeconds, w.idleSeconds, w.windowSeconds,
                          100.0 * w.utilization());
            add(buf);
        }

        // Straggler/skew: how unevenly the measurement work landed.
        double busy_min = -1.0, busy_max = 0.0;
        for (const WorkerLedger &w : analysis.workers) {
            if (w.runs == 0)
                continue;
            if (busy_min < 0.0 || w.busySeconds < busy_min)
                busy_min = w.busySeconds;
            busy_max = std::max(busy_max, w.busySeconds);
        }
        if (busy_min >= 0.0) {
            std::snprintf(buf, sizeof buf,
                          "skew: busiest worker %.3fs vs %.3fs "
                          "(spread %.3fs)\n",
                          busy_max, busy_min, busy_max - busy_min);
            add(buf);
        }
    }

    if (!analysis.routes.empty()) {
        add("\nstore latency by route (us)\n");
        add("  route        count      p50      p90      p99      max\n");
        for (const RouteLatency &lat : analysis.routes) {
            std::snprintf(buf, sizeof buf,
                          "  %-10s %7zu %8.0f %8.0f %8.0f %8.0f\n",
                          lat.route.c_str(), lat.count, lat.p50Us,
                          lat.p90Us, lat.p99Us, lat.maxUs);
            add(buf);
        }
        std::snprintf(buf, sizeof buf,
                      "claim contention: %zu claim request(s), "
                      "%zu conflict(s)\n",
                      analysis.claimRequests, analysis.claimConflicts);
        add(buf);
    }

    if (!analysis.criticalPath.empty()) {
        std::snprintf(buf, sizeof buf,
                      "\ncritical path: %zu measurement(s) on %s\n",
                      analysis.criticalPath.size(),
                      analysis.criticalWorker.c_str());
        add(buf);
        for (const std::string &digest : analysis.criticalPath) {
            std::snprintf(buf, sizeof buf, "  %s\n", digest.c_str());
            add(buf);
        }
    }

    if (analysis.nonTerminal > 0) {
        add("\nWARNING: digests that never reached a terminal state "
            "(stored/hit):\n");
        for (const DigestTimeline &d : analysis.digests) {
            if (!d.terminal().empty())
                continue;
            std::snprintf(buf, sizeof buf, "  %s%s%s\n",
                          d.digest.c_str(),
                          d.label.empty() ? "" : "  ",
                          d.label.c_str());
            add(buf);
        }
    }
    return out;
}

sweep::Json
chromeTrace(const TraceSet &set, const std::string &trace_id)
{
    const std::string id = pickTraceId(set, trace_id);

    // Stable worker → Chrome pid mapping (pid 0 is the coordinator
    // track for host-less sweep-level spans).
    std::map<std::string, std::uint64_t> worker_pid;
    double t0 = 0.0;
    bool any = false;
    for (const TraceEvent &ev : set.events) {
        if (ev.trace != id)
            continue;
        if (!any || ev.ts < t0)
            t0 = ev.ts;
        any = true;
        if (!ev.host.empty()) {
            const std::string key = workerKey(ev);
            if (worker_pid.find(key) == worker_pid.end())
                worker_pid.emplace(key, worker_pid.size() + 1);
        }
    }

    ChromeTraceBuilder chrome;
    chrome.processName(0, "coordinator");
    for (const auto &[key, pid] : worker_pid)
        chrome.processName(pid, key);

    // Runs first, sorted by start, so the per-worker lane allocator
    // sees them in order and pool-parallel runs that overlap in time
    // fan out side by side; instants afterwards.
    struct RunRef
    {
        double startUs = 0.0;
        double durUs = 0.0;
        const TraceEvent *ev = nullptr;
    };
    std::vector<RunRef> runs;
    for (const TraceEvent &ev : set.events) {
        if (ev.trace != id || ev.event != "run" || ev.host.empty())
            continue;
        RunRef ref;
        ref.durUs = runDurationSeconds(ev) * 1e6;
        ref.startUs = (ev.ts - t0) * 1e6 - ref.durUs;
        if (ref.startUs < 0.0)
            ref.startUs = 0.0;
        ref.ev = &ev;
        runs.push_back(ref);
    }
    std::sort(runs.begin(), runs.end(),
              [](const RunRef &a, const RunRef &b) {
                  return a.startUs < b.startUs;
              });
    for (const RunRef &ref : runs) {
        const TraceEvent &ev = *ref.ev;
        const std::uint64_t pid = worker_pid[workerKey(ev)];
        const std::uint64_t lane = chrome.lane(
            workerKey(ev), ref.startUs, ref.startUs + ref.durUs);
        sweep::Json args = sweep::Json::object();
        args.set("digest", sweep::Json(ev.digest));
        if (ev.seconds >= 0.0)
            args.set("seconds", sweep::Json(ev.seconds));
        chrome.complete(pid, lane,
                        ev.label.empty() ? ev.digest : ev.label,
                        "run", ref.startUs, ref.durUs,
                        std::move(args));
    }

    for (const TraceEvent &ev : set.events) {
        if (ev.trace != id || ev.event == "run")
            continue;
        sweep::Json args = sweep::Json::object();
        if (!ev.digest.empty())
            args.set("digest", sweep::Json(ev.digest));
        if (!ev.label.empty())
            args.set("label", sweep::Json(ev.label));
        chrome.instant(ev.host.empty() ? 0 : worker_pid[workerKey(ev)],
                       0, ev.event,
                       ev.host.empty() ? "sweep" : "lifecycle",
                       (ev.ts - t0) * 1e6, std::move(args));
    }

    return chrome.build();
}

} // namespace smt::obs
