/**
 * @file
 * A shared builder for Chrome trace-event JSON documents.
 *
 * Both offline analyzers (`smttrace` for sweep profiles, `smtpipe`
 * for pipeline microscopes) render their timelines as the trace-event
 * format understood by Perfetto and chrome://tracing. The builder
 * owns the mechanics those exports have in common:
 *
 *  - metadata events naming processes and threads;
 *  - complete ("X") spans and instant ("i") markers;
 *  - greedy lane allocation, so spans that overlap in time within one
 *    track fan out side by side instead of stacking (Chrome nests
 *    only properly-contained events).
 *
 * Callers decide what a "process" and a "thread" mean for their
 * domain (worker host/pid for sweeps, hardware thread x pipeline
 * stage for pipetraces) and feed spans in start order when they want
 * deterministic lane assignment.
 */

#ifndef SMT_OBS_CHROME_TRACE_HH
#define SMT_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sweep/json.hh"

namespace smt::obs
{

/** Incrementally builds one Chrome trace-event document. */
class ChromeTraceBuilder
{
  public:
    /** Emit a process_name metadata event for @p pid. */
    void processName(std::uint64_t pid, const std::string &name);

    /** Emit a thread_name metadata event for @p pid / @p tid. */
    void threadName(std::uint64_t pid, std::uint64_t tid,
                    const std::string &name);

    /**
     * Allocate a lane in @p group for a span covering
     * [@p start_us, @p end_us): the lowest-numbered lane whose last
     * span ended at or before @p start_us is reused, otherwise a new
     * lane opens. Feed spans sorted by start time for the compact
     * packing the analyzers' tests pin.
     */
    std::uint64_t lane(const std::string &group, double start_us,
                       double end_us);

    /** Number of lanes @p group has opened so far. */
    std::size_t laneCount(const std::string &group) const;

    /** Emit a complete ("X") span. Pass a null @p args to omit it. */
    void complete(std::uint64_t pid, std::uint64_t tid,
                  const std::string &name, const std::string &cat,
                  double ts_us, double dur_us,
                  sweep::Json args = sweep::Json());

    /** Emit a thread-scoped instant ("i") marker. */
    void instant(std::uint64_t pid, std::uint64_t tid,
                 const std::string &name, const std::string &cat,
                 double ts_us, sweep::Json args = sweep::Json());

    /** Number of events emitted so far. */
    std::size_t size() const { return events_.size(); }

    /**
     * Finish the document: `{"displayTimeUnit": "ms",
     * "traceEvents": [...]}` with events in emission order. The
     * builder is left empty.
     */
    sweep::Json build();

  private:
    sweep::Json events_ = sweep::Json::array();
    /** Per-group lane end times (µs), indexed by lane number. */
    std::map<std::string, std::vector<double>> lanes_;
};

} // namespace smt::obs

#endif // SMT_OBS_CHROME_TRACE_HH
