#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace smt
{

MemoryHierarchy::MemoryHierarchy(const SmtConfig &cfg, SimStats &stats)
    : cfg_(cfg), stats_(stats),
      itlb_(cfg.itlbEntries, cfg.pageBytes, stats.itlb),
      dtlb_(cfg.dtlbEntries, cfg.pageBytes, stats.dtlb),
      tlbMissPenalty_(2 * (cfg.icache.latencyToNext + cfg.l2.latencyToNext
                           + cfg.l3.latencyToNext))
{
    const bool inf = cfg.infiniteCacheBandwidth;
    // Memory behind L3: latency is L3's latencyToNext; occupancy is the
    // L3 fill time (Table 2's 8-cycle cache fill models the memory bus).
    l3_ = std::make_unique<BankedCache>(cfg.l3, nullptr,
                                        cfg.l3.latencyToNext,
                                        cfg.l3.fillCycles,
                                        /*reject_on_conflict=*/false, inf,
                                        stats.l3);
    l2_ = std::make_unique<BankedCache>(cfg.l2, l3_.get(), 0, 0,
                                        /*reject_on_conflict=*/false, inf,
                                        stats.l2);
    icache_ = std::make_unique<BankedCache>(cfg.icache, l2_.get(), 0, 0,
                                            /*reject_on_conflict=*/true,
                                            inf, stats.icache);
    dcache_ = std::make_unique<BankedCache>(cfg.dcache, l2_.get(), 0, 0,
                                            /*reject_on_conflict=*/true,
                                            inf, stats.dcache);
}

MemAccessResult
MemoryHierarchy::fetchAccess(ThreadID tid, Addr addr, Cycle now)
{
    MemAccessResult res;

    // A TLB miss costs two full memory accesses (Section 2.1). The
    // penalty is added to the completion time; the cache access itself
    // proceeds at `now` so bank/port arbitration stays in present time.
    const unsigned penalty =
        itlb_.translate(tid, addr) ? 0 : tlbMissPenalty_;

    const BankedCache::Result r = icache_->access(addr, now, false);
    if (r.conflict) {
        res.bankConflict = true;
        return res;
    }
    res.l1Hit = r.hit && penalty == 0;
    res.ready = r.ready + penalty;
    return res;
}

bool
MemoryHierarchy::icacheWouldHit(Addr addr) const
{
    return icache_->wouldHit(addr);
}

unsigned
MemoryHierarchy::icacheBank(Addr addr) const
{
    return static_cast<unsigned>((addr / cfg_.icache.lineBytes)
                                 % cfg_.icache.banks);
}

MemAccessResult
MemoryHierarchy::dataAccess(ThreadID tid, Addr addr, bool is_store,
                            Cycle now)
{
    MemAccessResult res;

    const unsigned penalty =
        dtlb_.translate(tid, addr) ? 0 : tlbMissPenalty_;

    const BankedCache::Result r = dcache_->access(addr, now, is_store);
    if (r.conflict) {
        res.bankConflict = true;
        return res;
    }
    res.l1Hit = r.hit && penalty == 0;
    res.ready = r.ready + penalty;

    if (!res.l1Hit && !is_store && tid < kMaxThreads)
        outstanding_[tid].push_back(res.ready);
    return res;
}

unsigned
MemoryHierarchy::outstandingDMisses(ThreadID tid, Cycle now)
{
    pruneMisses(tid, now);
    return static_cast<unsigned>(outstanding_[tid].size());
}

void
MemoryHierarchy::pruneMisses(ThreadID tid, Cycle now)
{
    auto &v = outstanding_[tid];
    v.erase(std::remove_if(v.begin(), v.end(),
                           [now](Cycle c) { return c <= now; }),
            v.end());
}

} // namespace smt
