#include "mem/tlb.hh"

#include "common/logging.hh"

namespace smt
{

namespace
{

unsigned
log2Exact(std::uint64_t v)
{
    unsigned s = 0;
    while ((1ull << s) < v)
        ++s;
    smt_assert((1ull << s) == v, "value must be a power of two");
    return s;
}

} // namespace

Tlb::Tlb(unsigned entries, unsigned page_bytes, TlbStats &stats)
    : pageShift_(log2Exact(page_bytes)), tags_(entries), stats_(stats)
{
    smt_assert(entries > 0);
}

bool
Tlb::translate(ThreadID tid, Addr vaddr)
{
    ++stats_.accesses;
    const Addr vpn = vaddr >> pageShift_;

    for (Entry &e : tags_) {
        if (e.valid && e.tid == tid && e.vpn == vpn) {
            e.lru = ++lruClock_;
            return true;
        }
    }

    Entry *victim = &tags_[0];
    for (Entry &e : tags_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }

    ++stats_.misses;
    victim->valid = true;
    victim->tid = tid;
    victim->vpn = vpn;
    victim->lru = ++lruClock_;
    return false;
}

} // namespace smt
