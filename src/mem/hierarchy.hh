/**
 * @file
 * MemoryHierarchy: the full Table 2 memory subsystem — I-cache, D-cache,
 * shared L2, shared L3, main memory, and the I/D TLBs — behind the two
 * entry points the core uses (instruction fetch and data access).
 *
 * It also tracks the per-thread outstanding D-cache miss counts that the
 * MISSCOUNT fetch policy consumes.
 */

#ifndef SMT_MEM_HIERARCHY_HH
#define SMT_MEM_HIERARCHY_HH

#include <array>
#include <memory>
#include <vector>

#include "config/config.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "stats/stats.hh"

namespace smt
{

/** Outcome of a core-initiated memory access. */
struct MemAccessResult
{
    bool l1Hit = false;
    bool bankConflict = false; ///< rejected at L1; the core retries.
    Cycle ready = 0;           ///< data-available cycle at the core.
};

/** The complete modelled memory subsystem. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const SmtConfig &cfg, SimStats &stats);

    /** Fetch a block for thread `tid` at `addr` (one I-cache access). */
    MemAccessResult fetchAccess(ThreadID tid, Addr addr, Cycle now);

    /** Would an I-cache access at `addr` hit? (ITAG early tag probe.) */
    bool icacheWouldHit(Addr addr) const;

    /** I-cache bank an address maps to (fetch-unit conflict checks). */
    unsigned icacheBank(Addr addr) const;

    /** Load/store access from the execute stage. */
    MemAccessResult dataAccess(ThreadID tid, Addr addr, bool is_store,
                               Cycle now);

    /** Outstanding D-cache misses for a thread at `now` (MISSCOUNT). */
    unsigned outstandingDMisses(ThreadID tid, Cycle now);

    /** Diagnostic access to the cache levels (calibration tooling). */
    BankedCache &l2Cache() { return *l2_; }
    BankedCache &dcacheLevel() { return *dcache_; }
    BankedCache &icacheLevel() { return *icache_; }

    /** The full memory-access latency used for TLB-miss penalties. */
    unsigned tlbMissPenalty() const { return tlbMissPenalty_; }

  private:
    void pruneMisses(ThreadID tid, Cycle now);

    const SmtConfig &cfg_;
    SimStats &stats_;

    std::unique_ptr<BankedCache> l3_;
    std::unique_ptr<BankedCache> l2_;
    std::unique_ptr<BankedCache> icache_;
    std::unique_ptr<BankedCache> dcache_;
    Tlb itlb_;
    Tlb dtlb_;

    unsigned tlbMissPenalty_;

    /** Data-ready cycles of outstanding D-misses, per thread. */
    std::array<std::vector<Cycle>, kMaxThreads> outstanding_;
};

} // namespace smt

#endif // SMT_MEM_HIERARCHY_HH
