#include "mem/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace smt
{

BankedCache::BankedCache(const CacheParams &params, BankedCache *next,
                         unsigned mem_latency, unsigned mem_occupancy,
                         bool reject_on_conflict, bool infinite_bandwidth,
                         CacheStats &stats)
    : params_(params), next_(next), memLatency_(mem_latency),
      memOccupancy_(mem_occupancy), rejectOnConflict_(reject_on_conflict),
      infiniteBandwidth_(infinite_bandwidth), stats_(stats)
{
    const std::uint64_t lines =
        params_.sizeBytes / params_.lineBytes;
    smt_assert(lines % params_.assoc == 0);
    sets_ = lines / params_.assoc;
    smt_assert((sets_ & (sets_ - 1)) == 0, "%s: sets must be 2^n",
               params_.name.c_str());
    lines_.resize(lines);
    smt_assert(sets_ % params_.banks == 0,
               "%s: sets must be a multiple of banks", params_.name.c_str());
    banks_.resize(params_.banks);
}

bool
BankedCache::bankBlockedAt(BankState &bank, Cycle now) const
{
    if (bank.busyUntil > now)
        return true;
    // Prune finished fills while we are here.
    std::erase_if(bank.fills, [now](const std::pair<Cycle, Cycle> &f) {
        return f.second <= now;
    });
    for (const auto &[start, end] : bank.fills) {
        if (start <= now && now < end)
            return true;
    }
    return false;
}

Cycle
BankedCache::bankQueueStart(const BankState &bank, Cycle now) const
{
    Cycle start = std::max(now, bank.busyUntil);
    bool moved = true;
    while (moved) {
        moved = false;
        for (const auto &[fs, fe] : bank.fills) {
            if (fs <= start && start < fe) {
                start = fe;
                moved = true;
            }
        }
    }
    return start;
}

std::size_t
BankedCache::setIndex(Addr line_addr) const
{
    // Modulo indexing. Since the set count is a multiple of the bank
    // count, bank = set % banks: consecutive lines land in consecutive
    // banks (the Sohi & Franklin interleaving) while the set mapping
    // stays the classic size/assoc modulus.
    return line_addr & (sets_ - 1);
}

unsigned
BankedCache::bankIndex(Addr line_addr) const
{
    return static_cast<unsigned>(line_addr % params_.banks);
}

BankedCache::Line *
BankedCache::findLine(Addr line_addr)
{
    const std::size_t set = setIndex(line_addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = lines_[set * params_.assoc + w];
        if (l.valid && l.tag == line_addr)
            return &l;
    }
    return nullptr;
}

const BankedCache::Line *
BankedCache::findLine(Addr line_addr) const
{
    return const_cast<BankedCache *>(this)->findLine(line_addr);
}

void
BankedCache::installLine(Addr line_addr, Cycle ready, bool dirty)
{
    const std::size_t set = setIndex(line_addr);
    Line *victim = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &cand = lines_[set * params_.assoc + w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (cand.lru < victim->lru)
            victim = &cand;
    }
    if (victim->valid && victim->dirty) {
        ++stats_.writebacks;
        if (next_ != nullptr) {
            next_->acceptWriteback(victim->tag * params_.lineBytes, ready);
        } else if (!infiniteBandwidth_) {
            memBusyUntil_ = std::max(memBusyUntil_, ready) + memOccupancy_;
        }
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->dirty = dirty;
    victim->lru = ++lruClock_;

    if (!infiniteBandwidth_) {
        // The fill occupies the destination bank only around its
        // arrival; the bank keeps serving other requests meanwhile.
        banks_[bankIndex(line_addr)].fills.emplace_back(
            ready, ready + params_.fillCycles);
    }
}

Cycle
BankedCache::missToBelow(Addr addr, Cycle now)
{
    const Cycle at_below = now + params_.latencyToNext;
    Cycle below_ready;
    if (next_ != nullptr) {
        below_ready = next_->access(addr, at_below, false).ready;
    } else {
        // Main memory: fixed latency plus a single occupied port.
        Cycle start = at_below;
        if (!infiniteBandwidth_) {
            start = std::max(start, memBusyUntil_);
            memBusyUntil_ = start + memOccupancy_;
        }
        below_ready = start + memLatency_;
    }
    return below_ready + params_.transferCycles;
}

BankedCache::Result
BankedCache::access(Addr addr, Cycle now, bool is_write)
{
    Result res;
    const Addr line_addr = lineAddr(addr);
    BankState &bank = banks_[bankIndex(line_addr)];

    // Port/bank arbitration.
    if (!infiniteBandwidth_) {
        if (portCycle_ != now) {
            portCycle_ = now;
            portUsed_ = 0;
        }
        const bool port_conflict = portUsed_ >= params_.accessesPerCycle;
        const bool bank_conflict = bankBlockedAt(bank, now);
        if (port_conflict || bank_conflict) {
            if (rejectOnConflict_) {
                res.conflict = true;
                ++stats_.bankConflicts;
                return res;
            }
            // Queue behind the conflict.
            now = bankQueueStart(bank, now);
            if (port_conflict)
                now = std::max(now, portCycle_ + 1);
        }
        ++portUsed_;
        bank.busyUntil = std::max(bank.busyUntil, now)
                         + params_.cyclesPerAccess;
    }

    ++stats_.accesses;

    // An outstanding miss on this line? Merge with it.
    if (auto it = mshr_.find(line_addr); it != mshr_.end()) {
        if (it->second > now) {
            ++stats_.mshrMerges;
            res.hit = false;
            res.ready = it->second;
            return res;
        }
        mshr_.erase(it);
    }

    Line *line = findLine(line_addr);
    if (line != nullptr) {
        line->lru = ++lruClock_;
        if (is_write)
            line->dirty = true;
        res.hit = true;
        res.ready = now;
        return res;
    }

    // Miss: fetch from below, install, track in the MSHR.
    ++stats_.misses;
    if (missLog != nullptr)
        missLog->push_back(addr);
    const Cycle ready = missToBelow(addr, now);
    installLine(line_addr, ready, is_write);
    if (mshr_.size() >= params_.mshrs) {
        // MSHR pressure: model as serialisation behind the oldest
        // outstanding miss (cheap approximation of a structural stall).
        Cycle oldest = kCycleNever;
        for (const auto &[la, rc] : mshr_)
            oldest = std::min(oldest, rc);
        mshr_.clear();
        res.ready = std::max(ready, oldest);
    } else {
        res.ready = ready;
    }
    mshr_.emplace(line_addr, res.ready);
    res.hit = false;
    return res;
}

bool
BankedCache::wouldHit(Addr addr) const
{
    const Addr line_addr = lineAddr(addr);
    if (auto it = mshr_.find(line_addr); it != mshr_.end()) {
        // Still in flight counts as a miss for fetch-thread selection.
        return false;
    }
    return findLine(line_addr) != nullptr;
}

void
BankedCache::acceptWriteback(Addr addr, Cycle when)
{
    if (infiniteBandwidth_)
        return;
    ++stats_.accesses;
    BankState &bank = banks_[bankIndex(lineAddr(addr))];
    bank.busyUntil = std::max(bank.busyUntil, when)
                     + params_.cyclesPerAccess;
}

} // namespace smt
