/**
 * @file
 * BankedCache: one level of the Table 2 hierarchy.
 *
 * The cache is interleaved into single-ported banks (the Sohi & Franklin
 * organisation the paper cites); it is lockup-free via an MSHR table that
 * merges requests to an outstanding line. Timing is computed
 * synchronously: an access returns the cycle its data will be available,
 * with queueing delays modelled by per-bank and per-port busy-until
 * clocks.
 *
 * Core-facing caches (L1 I/D) *reject* an access that loses a bank or
 * port conflict (the core retries, or in the paper's design squashes
 * optimistically issued dependents); lower levels instead queue the
 * access behind the conflict, adding latency.
 */

#ifndef SMT_MEM_CACHE_HH
#define SMT_MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "config/config.hh"
#include "stats/stats.hh"

namespace smt
{

/** One level of a cache hierarchy. */
class BankedCache
{
  public:
    /** Outcome of a timed access. */
    struct Result
    {
        bool hit = false;      ///< hit at *this* level.
        bool conflict = false; ///< rejected (core-facing caches only).
        Cycle ready = 0;       ///< cycle the data is available here.
    };

    /**
     * @param next the next level, or nullptr when misses go to memory.
     * @param mem_latency / mem_occupancy used when next == nullptr.
     * @param reject_on_conflict core-facing behaviour (see file header).
     */
    BankedCache(const CacheParams &params, BankedCache *next,
                unsigned mem_latency, unsigned mem_occupancy,
                bool reject_on_conflict, bool infinite_bandwidth,
                CacheStats &stats);

    /** Timed access (read or write-allocate write). */
    Result access(Addr addr, Cycle now, bool is_write);

    /**
     * Side-effect-free hit test for the ITAG early-tag-lookup scheme:
     * true when an access at `now` would hit (line present and no
     * outstanding miss on it).
     */
    bool wouldHit(Addr addr) const;

    /** Account a writeback arriving from the level above: occupies a
     *  bank but does not disturb tag state (lines are modelled as
     *  present at every level they pass through). */
    void acceptWriteback(Addr addr, Cycle when);

    const CacheParams &params() const { return params_; }

    /** Optional diagnostic: when set, miss line addresses are appended
     *  (used by calibration tooling and tests; no timing effect). */
    std::vector<Addr> *missLog = nullptr;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / params_.lineBytes; }
    std::size_t setIndex(Addr line_addr) const;
    unsigned bankIndex(Addr line_addr) const;

    /** Look up the line; returns the way or nullptr. */
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;

    /** Install a line, possibly evicting; returns dirty-victim flag. */
    void installLine(Addr line_addr, Cycle ready, bool dirty);

    /** Request the line from below; returns the data-ready cycle at this
     *  level (including our transfer time). */
    Cycle missToBelow(Addr addr, Cycle now);

    CacheParams params_;
    BankedCache *next_;
    unsigned memLatency_;
    unsigned memOccupancy_;
    bool rejectOnConflict_;
    bool infiniteBandwidth_;
    CacheStats &stats_;

    std::size_t sets_ = 0;
    std::vector<Line> lines_;
    std::uint64_t lruClock_ = 0;

    /**
     * Per-bank timing state. Accesses occupy the bank with a short
     * busy-until horizon; line fills occupy it for a bounded *interval*
     * in the future (a lockup-free bank keeps serving other requests
     * until the fill actually arrives).
     */
    struct BankState
    {
        Cycle busyUntil = 0;
        std::vector<std::pair<Cycle, Cycle>> fills; ///< [start, end).
    };

    bool bankBlockedAt(BankState &bank, Cycle now) const;
    Cycle bankQueueStart(const BankState &bank, Cycle now) const;

    std::vector<BankState> banks_;
    Cycle memBusyUntil_ = 0; ///< memory port (only when next_ == nullptr).

    /** Per-cycle port limiter: how many accesses started at curCycle_. */
    Cycle portCycle_ = kCycleNever;
    unsigned portUsed_ = 0;

    /** Outstanding misses: line address -> data-ready cycle. */
    std::unordered_map<Addr, Cycle> mshr_;
};

} // namespace smt

#endif // SMT_MEM_CACHE_HH
