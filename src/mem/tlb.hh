/**
 * @file
 * A fully-associative, LRU, software-filled TLB shared by all hardware
 * contexts (entries are ASN-tagged with the thread id). A TLB miss
 * requires two full memory accesses and no execution resources
 * (Section 2.1): it adds a fixed latency to the access and consumes
 * memory-port bandwidth, but never occupies a functional unit.
 */

#ifndef SMT_MEM_TLB_HH
#define SMT_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace smt
{

/** Fully-associative, thread-tagged TLB. */
class Tlb
{
  public:
    Tlb(unsigned entries, unsigned page_bytes, TlbStats &stats);

    /**
     * Translate; fills the entry on a miss.
     * @return true on hit, false on miss (the caller adds the
     *         miss penalty to its access time).
     */
    bool translate(ThreadID tid, Addr vaddr);

    unsigned entries() const { return static_cast<unsigned>(tags_.size()); }

  private:
    struct Entry
    {
        bool valid = false;
        ThreadID tid = 0;
        Addr vpn = 0;
        std::uint64_t lru = 0;
    };

    unsigned pageShift_;
    std::uint64_t lruClock_ = 0;
    std::vector<Entry> tags_;
    TlbStats &stats_;
};

} // namespace smt

#endif // SMT_MEM_TLB_HH
