/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Everything in smtsim that needs randomness (program generation, branch
 * behaviour, data-address streams) draws from an Rng seeded explicitly, so
 * a simulation is reproducible bit-for-bit from (config, seed).
 *
 * The generator is xoshiro256**, which is fast, has 256 bits of state and
 * excellent statistical quality — more than enough for driving synthetic
 * workloads.
 */

#ifndef SMT_COMMON_RNG_HH
#define SMT_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace smt
{

/** Deterministic xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        reseed(seed);
    }

    /** Re-initialise the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion, the canonical way to seed xoshiro.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        smt_assert(bound > 0);
        // Multiplicative range reduction (Lemire); bias is negligible for
        // the bounds used in workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next64()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        smt_assert(hi >= lo);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish positive integer with the given mean (>= 1).
     * Used for dependence distances and basic-block lengths.
     */
    unsigned
    geometric(double mean)
    {
        smt_assert(mean >= 1.0);
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        unsigned n = 1;
        // Cap the tail so a pathological draw cannot run away.
        while (n < 64 && !chance(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Stateless 64-bit mixing hash. Used to derive deterministic per-instance
 * pseudo-random values (e.g. wrong-path load addresses keyed by PC and
 * sequence number) without carrying generator state.
 */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace smt

#endif // SMT_COMMON_RNG_HH
