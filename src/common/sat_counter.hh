/**
 * @file
 * An n-bit saturating up/down counter, as used in branch predictors.
 */

#ifndef SMT_COMMON_SAT_COUNTER_HH
#define SMT_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace smt
{

/** An n-bit saturating counter (1 <= bits <= 8). */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 2, std::uint8_t initial = 0)
        : max_(static_cast<std::uint8_t>((1u << bits) - 1)), value_(initial)
    {
        smt_assert(bits >= 1 && bits <= 8);
        smt_assert(initial <= max_);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** True when the counter is in its upper half (e.g. predict taken). */
    bool isSet() const { return value_ > max_ / 2; }

    std::uint8_t value() const { return value_; }
    std::uint8_t max() const { return max_; }

    void
    set(std::uint8_t v)
    {
        smt_assert(v <= max_);
        value_ = v;
    }

  private:
    std::uint8_t max_;
    std::uint8_t value_;
};

} // namespace smt

#endif // SMT_COMMON_SAT_COUNTER_HH
