/**
 * @file
 * A dependency-free LZ77 codec for store-entry transfer compression.
 *
 * The wire protocol negotiates this as `Content-Encoding: x-smt-lz`
 * (see docs/PROTOCOL.md): result-cache entries are verbose JSON with
 * long repeated key paths, which an LZ window compresses several-fold
 * without pulling zlib into the build.
 *
 * Format "SLZ1": a 4-byte magic, the uncompressed size as a uvarint,
 * then a token stream — control bytes whose bits (LSB first) select
 * literal (one raw byte) or match (two bytes: a 12-bit backward offset
 * and a 4-bit length, encoding copies of 3..18 bytes from a 4 KiB
 * window). Decoding is bounds-checked everywhere; any malformed input
 * decodes to "nothing" rather than garbage, so a corrupt compressed
 * body is indistinguishable from a torn transfer — the safe failure
 * mode the store already treats as a cache miss.
 */

#ifndef SMT_COMMON_LZ_HH
#define SMT_COMMON_LZ_HH

#include <cstddef>
#include <optional>
#include <string>

namespace smt
{

/** The Content-Encoding token the store protocol negotiates. */
inline constexpr const char *kLzEncodingName = "x-smt-lz";

/** Compress `in` (any bytes, any size; "" compresses to a header). */
std::string lzCompress(const std::string &in);

/**
 * Decompress an lzCompress() stream. Empty optional when the input is
 * not a well-formed "SLZ1" stream, is truncated, declares a size above
 * `max_size`, or does not decode to exactly its declared size.
 */
std::optional<std::string> lzDecompress(const std::string &in,
                                        std::size_t max_size);

} // namespace smt

#endif // SMT_COMMON_LZ_HH
