/**
 * @file
 * A tiny fixed-bucket histogram used by the statistics package for
 * occupancy distributions (queue population, registers in use, ...).
 */

#ifndef SMT_COMMON_HISTOGRAM_HH
#define SMT_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace smt
{

/** Histogram over [0, buckets); samples beyond the top land in the last. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 64)
        : counts_(buckets, 0)
    {
        smt_assert(buckets > 0);
    }

    void
    sample(std::uint64_t value, std::uint64_t weight = 1)
    {
        const std::size_t idx =
            value < counts_.size() ? static_cast<std::size_t>(value)
                                   : counts_.size() - 1;
        counts_[idx] += weight;
        sum_ += value * weight;
        samples_ += weight;
    }

    std::uint64_t samples() const { return samples_; }
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean of all samples (0 when empty). */
    double
    mean() const
    {
        return samples_ == 0
                   ? 0.0
                   : static_cast<double>(sum_) / static_cast<double>(samples_);
    }

    std::uint64_t
    bucket(std::size_t idx) const
    {
        smt_assert(idx < counts_.size());
        return counts_[idx];
    }

    std::size_t buckets() const { return counts_.size(); }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        sum_ = 0;
        samples_ = 0;
    }

    /**
     * Overwrite the full state (bucket counts, raw sum, sample count).
     * Used by the sweep result cache to restore a histogram exactly:
     * replaying sample() per bucket would lose the true values of
     * samples that were clamped into the top bucket.
     */
    void
    restore(std::vector<std::uint64_t> counts, std::uint64_t sum,
            std::uint64_t samples)
    {
        smt_assert(!counts.empty());
        counts_ = std::move(counts);
        sum_ = sum;
        samples_ = samples;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t sum_ = 0;
    std::uint64_t samples_ = 0;
};

} // namespace smt

#endif // SMT_COMMON_HISTOGRAM_HH
