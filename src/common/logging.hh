/**
 * @file
 * Error and status reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — a simulator bug: a condition that must never occur regardless
 *            of user input. Aborts (so a debugger/core dump is useful).
 * fatal()  — a user error (bad configuration, impossible parameter
 *            combination). Exits with status 1.
 * warn()   — something suspicious but survivable.
 * inform() — plain status output.
 */

#ifndef SMT_COMMON_LOGGING_HH
#define SMT_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace smt
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace smt

#define smt_panic(...) ::smt::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define smt_fatal(...) ::smt::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define smt_warn(...) ::smt::warnImpl(__VA_ARGS__)
#define smt_inform(...) ::smt::informImpl(__VA_ARGS__)

/**
 * Assert a simulator invariant; compiled in all build types. Optional
 * printf-style arguments add context before the panic.
 */
#define smt_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            __VA_OPT__(::smt::warnImpl(__VA_ARGS__);)                       \
            ::smt::panicImpl(__FILE__, __LINE__,                            \
                             "assertion failed: %s", #cond);                \
        }                                                                   \
    } while (0)

#endif // SMT_COMMON_LOGGING_HH
