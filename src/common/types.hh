/**
 * @file
 * Fundamental scalar types shared by every smtsim module.
 *
 * The simulator is cycle-accurate: all timing is expressed in machine
 * cycles of type Cycle. Addresses are byte addresses in a flat 64-bit
 * space; each simulated thread owns disjoint code and data regions.
 */

#ifndef SMT_COMMON_TYPES_HH
#define SMT_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace smt
{

/** A machine cycle number (monotonically increasing from 0). */
using Cycle = std::uint64_t;

/** A byte address in the simulated flat address space. */
using Addr = std::uint64_t;

/** Hardware context (thread slot) identifier, 0-based. */
using ThreadID = std::uint8_t;

/** Dynamic instruction sequence number, unique per simulation. */
using InstSeqNum = std::uint64_t;

/** A logical (architectural) register index within one register file. */
using LogRegIndex = std::uint8_t;

/** A physical register index within one renamed register file. */
using PhysRegIndex = std::uint16_t;

/** Sentinel for "no register". */
constexpr LogRegIndex kNoLogReg = std::numeric_limits<LogRegIndex>::max();
constexpr PhysRegIndex kNoPhysReg = std::numeric_limits<PhysRegIndex>::max();

/** Sentinel cycle meaning "never" / "not scheduled". */
constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel address. */
constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Number of architectural registers per file (Alpha-like ISA). */
constexpr unsigned kLogRegsPerFile = 32;

/** Instruction size in bytes (fixed-width RISC encoding). */
constexpr unsigned kInstBytes = 4;

/** Maximum number of hardware contexts the structures are sized for. */
constexpr unsigned kMaxThreads = 8;

} // namespace smt

#endif // SMT_COMMON_TYPES_HH
