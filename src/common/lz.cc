#include "common/lz.hh"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace smt
{

namespace
{

constexpr char kMagic[4] = {'S', 'L', 'Z', '1'};
constexpr std::size_t kWindow = 4096;   // 12-bit offsets, 1..4095.
constexpr std::size_t kMinMatch = 3;    // shorter copies cost more
                                        // than literals.
constexpr std::size_t kMaxMatch = kMinMatch + 15; // 4-bit length field.

/** 3-byte rolling hash into the match-candidate table. */
inline std::uint32_t
hash3(const unsigned char *p)
{
    const std::uint32_t v = static_cast<std::uint32_t>(p[0])
                            | (static_cast<std::uint32_t>(p[1]) << 8)
                            | (static_cast<std::uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> 19; // 13-bit table index.
}

void
putUvarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

bool
getUvarint(const std::string &in, std::size_t &pos, std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= in.size())
            return false;
        const unsigned char byte =
            static_cast<unsigned char>(in[pos++]);
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return true;
    }
    return false; // more than 64 bits: malformed.
}

} // namespace

std::string
lzCompress(const std::string &in)
{
    std::string out;
    out.reserve(in.size() / 2 + 16);
    out.append(kMagic, sizeof kMagic);
    putUvarint(out, in.size());

    const unsigned char *data =
        reinterpret_cast<const unsigned char *>(in.data());
    const std::size_t n = in.size();

    // One candidate per 3-byte hash (the newest occurrence): cheap,
    // and plenty for the protocol's repetitive JSON bodies.
    std::size_t head[1u << 13];
    for (std::size_t &h : head)
        h = SIZE_MAX;

    std::size_t pos = 0;
    while (pos < n) {
        // Gather up to 8 tokens, then emit their control byte first.
        unsigned char control = 0;
        std::string tokens;
        for (unsigned bit = 0; bit < 8 && pos < n; ++bit) {
            std::size_t match_len = 0;
            std::size_t match_off = 0;
            if (pos + kMinMatch <= n) {
                const std::uint32_t h = hash3(data + pos);
                const std::size_t cand = head[h];
                head[h] = pos;
                if (cand != SIZE_MAX && cand < pos
                    && pos - cand < kWindow) {
                    const std::size_t limit =
                        std::min(kMaxMatch, n - pos);
                    std::size_t len = 0;
                    while (len < limit
                           && data[cand + len] == data[pos + len])
                        ++len;
                    if (len >= kMinMatch) {
                        match_len = len;
                        match_off = pos - cand;
                    }
                }
            }
            if (match_len > 0) {
                control |= static_cast<unsigned char>(1u << bit);
                const std::uint16_t word = static_cast<std::uint16_t>(
                    (match_off << 4)
                    | (match_len - kMinMatch));
                tokens.push_back(static_cast<char>(word & 0xff));
                tokens.push_back(static_cast<char>(word >> 8));
                pos += match_len;
            } else {
                tokens.push_back(static_cast<char>(data[pos]));
                ++pos;
            }
        }
        out.push_back(static_cast<char>(control));
        out += tokens;
    }
    return out;
}

std::optional<std::string>
lzDecompress(const std::string &in, std::size_t max_size)
{
    if (in.size() < sizeof kMagic
        || std::memcmp(in.data(), kMagic, sizeof kMagic) != 0)
        return std::nullopt;
    std::size_t pos = sizeof kMagic;
    std::uint64_t declared = 0;
    // An n-byte stream decodes to at most ~8.5n bytes (a 17-byte
    // token group — control byte + 8 two-byte matches — yields at
    // most 144), so a declared size beyond 9n is malformed on its
    // face. Rejecting it here keeps a tiny hostile header from
    // reserving max_size bytes before the stream is ever validated.
    if (!getUvarint(in, pos, declared) || declared > max_size
        || declared > in.size() * 9)
        return std::nullopt;

    std::string out;
    out.reserve(static_cast<std::size_t>(declared));
    while (out.size() < declared) {
        if (pos >= in.size())
            return std::nullopt; // truncated stream.
        const unsigned char control =
            static_cast<unsigned char>(in[pos++]);
        for (unsigned bit = 0; bit < 8 && out.size() < declared;
             ++bit) {
            if ((control & (1u << bit)) == 0) {
                if (pos >= in.size())
                    return std::nullopt;
                out.push_back(in[pos++]);
                continue;
            }
            if (pos + 2 > in.size())
                return std::nullopt;
            const std::uint16_t word = static_cast<std::uint16_t>(
                static_cast<unsigned char>(in[pos])
                | (static_cast<unsigned char>(in[pos + 1]) << 8));
            pos += 2;
            const std::size_t off = word >> 4;
            const std::size_t len = (word & 0xf) + kMinMatch;
            if (off == 0 || off > out.size()
                || out.size() + len > declared)
                return std::nullopt; // offset outside the window, or
                                     // a copy past the declared end.
            // Byte-at-a-time: matches may overlap their own output
            // (the classic run-length case).
            const std::size_t start = out.size() - off;
            for (std::size_t i = 0; i < len; ++i)
                out.push_back(out[start + i]);
        }
    }
    if (pos != in.size())
        return std::nullopt; // trailing garbage is corruption too.
    return out;
}

} // namespace smt
