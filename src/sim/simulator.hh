/**
 * @file
 * Simulator: assembles one complete machine — generated programs for
 * each hardware context, the memory hierarchy, the branch predictor, and
 * the SMT core — and runs it for a cycle or instruction budget.
 */

#ifndef SMT_SIM_SIMULATOR_HH
#define SMT_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "branch/predictor.hh"
#include "config/config.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "stats/stats.hh"
#include "workload/code_image.hh"
#include "workload/oracle.hh"
#include "workload/profile.hh"

namespace smt
{

/** One assembled machine instance. */
class Simulator
{
  public:
    /**
     * @param cfg machine configuration (cfg.numThreads contexts).
     * @param mix benchmark per context; size must equal cfg.numThreads.
     * @param seed_salt combined with cfg.seed so distinct runs of a data
     *        point see distinct program/oracle randomness.
     * @param dispatch engine choice for the core; ForceGeneric pins the
     *        virtual-dispatch engine (A/B tests and benchmarks — the
     *        two are cycle-identical).
     */
    Simulator(const SmtConfig &cfg, const std::vector<Benchmark> &mix,
              std::uint64_t seed_salt = 0,
              CoreDispatch dispatch = CoreDispatch::Auto);

    // The core holds references into this object: not copyable or
    // movable (construct in place; guaranteed elision covers factory
    // returns).
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Run until `max_cycles` have elapsed or `max_instructions` have
     * been committed (whichever comes first; 0 disables a limit, but at
     * least one limit must be set).
     */
    const SimStats &run(std::uint64_t max_cycles,
                        std::uint64_t max_instructions = 0);

    /** Run `cycles` then discard all statistics gathered so far.
     *  Note the *cycle counter* is not reset — pipetrace windows are
     *  absolute machine cycles and include warmup. */
    void warmup(std::uint64_t cycles);

    /** Attach a pipeline microscope for subsequent run()/warmup()
     *  cycles (nullptr detaches). Caller keeps ownership and must
     *  outlive the attachment. */
    void
    attachPipeTrace(obs::PipeTrace *pipe)
    {
        core_->setPipeTrace(pipe);
    }

    const SimStats &stats() const { return stats_; }
    SmtCore &core() { return *core_; }
    MemoryHierarchy &memory() { return *mem_; }
    const SmtConfig &config() const { return cfg_; }

  private:
    SmtConfig cfg_;
    SimStats stats_;
    std::vector<std::unique_ptr<CodeImage>> images_;
    std::vector<std::unique_ptr<ThreadProgram>> programs_;
    std::unique_ptr<MemoryHierarchy> mem_;
    std::unique_ptr<BranchPredictor> bp_;
    std::unique_ptr<SmtCore> core_;
};

} // namespace smt

#endif // SMT_SIM_SIMULATOR_HH
