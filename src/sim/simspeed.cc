#include "sim/simspeed.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "obs/pipe_trace.hh"
#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace smt::simspeed
{
namespace
{

ShapeSpec
shape(std::string name, SmtConfig cfg)
{
    ShapeSpec s;
    s.name = std::move(name);
    s.mix = mixForRun(cfg.numThreads, 0);
    s.cfg = std::move(cfg);
    return s;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

std::vector<ShapeSpec>
defaultShapes()
{
    std::vector<ShapeSpec> shapes;
    shapes.push_back(shape("icount28_t1", presets::icount28(1)));
    shapes.push_back(shape("icount28_t4", presets::icount28(4)));
    shapes.push_back(shape("icount28_t8", presets::icount28(8)));
    shapes.push_back(shape("rr18_t4", presets::baseSmt(4)));
    shapes.push_back(shape("rr18_t8", presets::baseSmt(8)));
    SmtConfig bigq = presets::icount28(8);
    bigq.intQueueEntries = 64;
    bigq.fpQueueEntries = 64;
    shapes.push_back(shape("bigq_icount28_t8", std::move(bigq)));
    return shapes;
}

ShapeResult
measureShape(const ShapeSpec &spec, const Options &opts)
{
    ShapeResult r;
    r.name = spec.name;
    r.threads = spec.cfg.numThreads;
    r.fetchPolicy = spec.cfg.resolvedFetchPolicyName();
    r.issuePolicy = spec.cfg.resolvedIssuePolicyName();

    // Best-of-N on fresh machines: each repeat re-runs the identical
    // deterministic simulation, so the fastest wall-clock is the least
    // noise-disturbed measurement of the same work.
    for (unsigned rep = 0; rep < std::max(1u, opts.repeats); ++rep) {
        Simulator sim(spec.cfg, spec.mix, /*seed_salt=*/0, opts.dispatch);
        sim.warmup(opts.warmupCycles);
        const auto t0 = std::chrono::steady_clock::now();
        sim.run(opts.measureCycles);
        const double secs = secondsSince(t0);
        if (rep == 0 || secs < r.seconds) {
            r.seconds = secs;
            r.cycles = sim.stats().cycles;
            r.instructions = sim.stats().committedInstructions;
            r.ipc = sim.stats().ipc();
        }
        r.engine = sim.core().engineKind();
    }
    r.cyclesPerSec =
        r.seconds > 0.0 ? static_cast<double>(r.cycles) / r.seconds : 0.0;

    if (opts.pipeAb) {
        // The "tracing on" arm: identical simulation, full admission
        // window, lines formatted and flushed — but to /dev/null, so
        // the ratio isolates the tracer's own cost from disk speed.
        obs::PipeTraceSink sink("/dev/null");
        double best = 0.0;
        std::uint64_t cycles = 0;
        for (unsigned rep = 0; rep < std::max(1u, opts.repeats); ++rep) {
            Simulator sim(spec.cfg, spec.mix, /*seed_salt=*/0,
                          opts.dispatch);
            obs::PipeTrace pipe(sink, obs::PipeTraceOptions{});
            sim.attachPipeTrace(&pipe);
            sim.warmup(opts.warmupCycles);
            const auto t0 = std::chrono::steady_clock::now();
            sim.run(opts.measureCycles);
            const double secs = secondsSince(t0);
            pipe.finish();
            if (rep == 0 || secs < best) {
                best = secs;
                cycles = sim.stats().cycles;
            }
        }
        r.cyclesPerSecPipeOn =
            best > 0.0 ? static_cast<double>(cycles) / best : 0.0;
    }

    if (opts.stageBreakdown) {
        // A separate instrumented pass: the two clock reads per stage
        // would distort the throughput number above.
        Simulator sim(spec.cfg, spec.mix, /*seed_salt=*/0, opts.dispatch);
        sim.warmup(opts.warmupCycles);
        StageTimes times;
        for (std::uint64_t c = 0; c < opts.measureCycles; ++c)
            sim.core().tickTimed(times);
        r.stageNs = times.ns;
    }
    return r;
}

std::vector<ShapeResult>
measureAll(const std::vector<ShapeSpec> &shapes, const Options &opts)
{
    std::vector<ShapeResult> results;
    results.reserve(shapes.size());
    for (const ShapeSpec &s : shapes)
        results.push_back(measureShape(s, opts));
    return results;
}

std::string
hostFingerprint()
{
    std::string cpu = "unknown";
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        const auto pos = line.find("model name");
        if (pos != std::string::npos) {
            const auto colon = line.find(':');
            if (colon != std::string::npos) {
                cpu = line.substr(colon + 1);
                while (!cpu.empty() && cpu.front() == ' ')
                    cpu.erase(cpu.begin());
            }
            break;
        }
    }
    return cpu + " / " +
           std::to_string(std::thread::hardware_concurrency()) + "hw";
}

sweep::Json
toJson(const std::vector<ShapeResult> &results, const Options &opts)
{
    sweep::Json doc = sweep::Json::object();
    doc.set("schema", sweep::Json("smt-simspeed-v1"));

    sweep::Json host = sweep::Json::object();
    host.set("fingerprint", sweep::Json(hostFingerprint()));
    host.set("hardware_threads",
             sweep::Json(static_cast<std::uint64_t>(
                 std::thread::hardware_concurrency())));
    doc.set("host", std::move(host));

    sweep::Json o = sweep::Json::object();
    o.set("warmup_cycles", sweep::Json(opts.warmupCycles));
    o.set("measure_cycles", sweep::Json(opts.measureCycles));
    o.set("repeats",
          sweep::Json(static_cast<std::uint64_t>(opts.repeats)));
    doc.set("options", std::move(o));

    sweep::Json shapes = sweep::Json::array();
    for (const ShapeResult &r : results) {
        sweep::Json s = sweep::Json::object();
        s.set("name", sweep::Json(r.name));
        s.set("threads",
              sweep::Json(static_cast<std::uint64_t>(r.threads)));
        s.set("fetch_policy", sweep::Json(r.fetchPolicy));
        s.set("issue_policy", sweep::Json(r.issuePolicy));
        s.set("engine", sweep::Json(r.engine));
        s.set("cycles", sweep::Json(r.cycles));
        s.set("instructions", sweep::Json(r.instructions));
        s.set("ipc", sweep::Json(r.ipc));
        s.set("seconds", sweep::Json(r.seconds));
        s.set("cycles_per_sec", sweep::Json(r.cyclesPerSec));
        if (r.cyclesPerSecPipeOn > 0.0) {
            s.set("cycles_per_sec_pipe_on",
                  sweep::Json(r.cyclesPerSecPipeOn));
            s.set("pipe_on_ratio",
                  sweep::Json(r.cyclesPerSec > 0.0
                                  ? r.cyclesPerSecPipeOn / r.cyclesPerSec
                                  : 0.0));
        }
        sweep::Json stages = sweep::Json::object();
        for (unsigned i = 0; i < StageTimes::kNumStages; ++i)
            stages.set(StageTimes::stageName(i),
                       sweep::Json(r.stageNs[i]));
        s.set("stage_ns", std::move(stages));
        shapes.push(std::move(s));
    }
    doc.set("shapes", std::move(shapes));
    return doc;
}

std::string
formatTable(const std::vector<ShapeResult> &results)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-20s %7s %-12s %11s %7s %s\n",
                  "shape", "threads", "engine", "cyc/sec", "IPC",
                  "hottest stage");
    out += line;
    for (const ShapeResult &r : results) {
        unsigned hot = 0;
        for (unsigned i = 1; i < StageTimes::kNumStages; ++i)
            if (r.stageNs[i] > r.stageNs[hot])
                hot = i;
        const std::uint64_t total =
            StageTimes{r.stageNs}.totalNs();
        std::snprintf(line, sizeof(line),
                      "%-20s %7u %-12s %11.0f %7.3f %s (%.0f%%)\n",
                      r.name.c_str(), r.threads, r.engine.c_str(),
                      r.cyclesPerSec, r.ipc,
                      StageTimes::stageName(hot),
                      total > 0 ? 100.0 * static_cast<double>(
                                              r.stageNs[hot]) /
                                      static_cast<double>(total)
                                : 0.0);
        out += line;
    }

    bool any_ab = false;
    for (const ShapeResult &r : results)
        any_ab = any_ab || r.cyclesPerSecPipeOn > 0.0;
    if (any_ab) {
        out += "\npipetrace A/B (off = gated number; on = full-window "
               "trace to /dev/null):\n";
        std::snprintf(line, sizeof(line), "%-20s %11s %11s %7s\n",
                      "shape", "off cyc/s", "on cyc/s", "on/off");
        out += line;
        for (const ShapeResult &r : results) {
            if (r.cyclesPerSecPipeOn <= 0.0)
                continue;
            std::snprintf(line, sizeof(line),
                          "%-20s %11.0f %11.0f %6.2fx\n",
                          r.name.c_str(), r.cyclesPerSec,
                          r.cyclesPerSecPipeOn,
                          r.cyclesPerSec > 0.0
                              ? r.cyclesPerSecPipeOn / r.cyclesPerSec
                              : 0.0);
            out += line;
        }
    }
    return out;
}

} // namespace smt::simspeed
