/**
 * @file
 * MixRunner: the paper's measurement methodology (Section 3). One data
 * point is the aggregate of 8 runs; run r assigns benchmark (r+t) mod 8
 * to thread t, so every benchmark visits every thread slot. Runs are
 * independent machines and execute in parallel worker threads.
 */

#ifndef SMT_SIM_MIX_RUNNER_HH
#define SMT_SIM_MIX_RUNNER_HH

#include <cstdint>

#include "config/config.hh"
#include "stats/stats.hh"

namespace smt
{

namespace obs
{
class PipeTrace;
} // namespace obs

/** One measured data point (the aggregate of the 8 rotation runs). */
struct DataPoint
{
    SimStats stats;

    double ipc() const { return stats.ipc(); }
};

/** Knobs for a data-point measurement. */
struct MeasureOptions
{
    std::uint64_t cyclesPerRun = 40000; ///< post-warmup measured cycles.
    std::uint64_t warmupCycles = 30000; ///< cold-start ramp, discarded.
    unsigned runs = 8;                  ///< rotation length.
    bool parallel = true;               ///< use worker threads.
};

/**
 * Measure one configuration (cfg.numThreads defines the mix width).
 * Parallel measurements schedule their rotation runs on the shared
 * sweep::ThreadPool.
 */
DataPoint measure(const SmtConfig &cfg, const MeasureOptions &opts);

/**
 * Simulate one rotation run of a data point (run r of opts.runs).
 * The unit of work the sweep engine schedules; measure() aggregates
 * runs 0..opts.runs-1 in run order.
 *
 * A non-null `pipe` attaches a pipeline microscope for the whole run
 * (warmup included — windows are absolute cycles). Tracing is
 * observation-only: the run's statistics are cycle-identical with and
 * without it, and `pipe` never enters the measurement digest.
 */
SimStats measureRun(const SmtConfig &cfg, unsigned run,
                    const MeasureOptions &opts,
                    obs::PipeTrace *pipe = nullptr);

/** Options honouring the SMTSIM_CYCLES / SMTSIM_WARMUP / SMTSIM_RUNS /
 *  SMTSIM_SERIAL environment overrides used by the bench harness. */
MeasureOptions defaultMeasureOptions();

} // namespace smt

#endif // SMT_SIM_MIX_RUNNER_HH
