#include "sim/mix_runner.hh"

#include <cstdlib>
#include <future>
#include <vector>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "sweep/thread_pool.hh"
#include "workload/mix.hh"

namespace smt
{

SimStats
measureRun(const SmtConfig &cfg, unsigned run, const MeasureOptions &opts,
           obs::PipeTrace *pipe)
{
    Simulator sim(cfg, mixForRun(cfg.numThreads, run),
                  /*seed_salt=*/mix64(run + 1));
    if (pipe != nullptr)
        sim.attachPipeTrace(pipe);
    if (opts.warmupCycles > 0)
        sim.warmup(opts.warmupCycles);
    return sim.run(opts.cyclesPerRun);
}

DataPoint
measure(const SmtConfig &cfg, const MeasureOptions &opts)
{
    smt_assert(opts.runs >= 1);
    DataPoint point;

    if (!opts.parallel || opts.runs == 1) {
        for (unsigned r = 0; r < opts.runs; ++r)
            point.stats.add(measureRun(cfg, r, opts));
        return point;
    }

    // Rotation runs ride the shared pool; aggregation stays in run
    // order, so parallel and serial measurements are bit-identical.
    sweep::ThreadPool &pool = sweep::ThreadPool::global();
    std::vector<std::future<SimStats>> futures;
    futures.reserve(opts.runs);
    for (unsigned r = 0; r < opts.runs; ++r) {
        futures.push_back(
            pool.submit([&cfg, r, &opts] { return measureRun(cfg, r, opts); }));
    }
    for (auto &f : futures)
        point.stats.add(pool.wait(std::move(f)));
    return point;
}

MeasureOptions
defaultMeasureOptions()
{
    MeasureOptions opts;
    if (const char *env = std::getenv("SMTSIM_CYCLES"); env != nullptr)
        opts.cyclesPerRun = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("SMTSIM_WARMUP"); env != nullptr)
        opts.warmupCycles = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("SMTSIM_RUNS"); env != nullptr) {
        const unsigned runs =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (runs >= 1)
            opts.runs = runs;
        else
            smt_warn("ignoring SMTSIM_RUNS=%s", env);
    }
    if (std::getenv("SMTSIM_SERIAL") != nullptr)
        opts.parallel = false;
    return opts;
}

} // namespace smt
