#include "sim/mix_runner.hh"

#include <cstdlib>
#include <future>
#include <vector>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace smt
{

namespace
{

SimStats
oneRun(const SmtConfig &cfg, unsigned run, const MeasureOptions &opts)
{
    Simulator sim(cfg, mixForRun(cfg.numThreads, run),
                  /*seed_salt=*/mix64(run + 1));
    if (opts.warmupCycles > 0)
        sim.warmup(opts.warmupCycles);
    return sim.run(opts.cyclesPerRun);
}

} // namespace

DataPoint
measure(const SmtConfig &cfg, const MeasureOptions &opts)
{
    smt_assert(opts.runs >= 1);
    DataPoint point;

    if (!opts.parallel || opts.runs == 1) {
        for (unsigned r = 0; r < opts.runs; ++r)
            point.stats.add(oneRun(cfg, r, opts));
        return point;
    }

    std::vector<std::future<SimStats>> futures;
    futures.reserve(opts.runs);
    for (unsigned r = 0; r < opts.runs; ++r) {
        futures.push_back(std::async(std::launch::async, oneRun, cfg, r,
                                     opts));
    }
    for (auto &f : futures)
        point.stats.add(f.get());
    return point;
}

MeasureOptions
defaultMeasureOptions()
{
    MeasureOptions opts;
    if (const char *env = std::getenv("SMTSIM_CYCLES"); env != nullptr)
        opts.cyclesPerRun = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("SMTSIM_WARMUP"); env != nullptr)
        opts.warmupCycles = std::strtoull(env, nullptr, 10);
    if (std::getenv("SMTSIM_SERIAL") != nullptr)
        opts.parallel = false;
    return opts;
}

} // namespace smt
