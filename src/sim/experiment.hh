/**
 * @file
 * Experiment helpers shared by the bench harness: thread-count sweeps
 * and tables that print measured values beside the paper's reference
 * numbers so each figure/table reproduction is self-checking.
 */

#ifndef SMT_SIM_EXPERIMENT_HH
#define SMT_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/mix_runner.hh"
#include "stats/table.hh"

namespace smt
{

/** A measured curve: IPC (and full stats) per thread count. */
struct ThreadSweep
{
    std::string label;
    std::vector<unsigned> threads;
    std::vector<DataPoint> points;

    double
    ipcAt(unsigned t) const
    {
        for (std::size_t i = 0; i < threads.size(); ++i)
            if (threads[i] == t)
                return points[i].ipc();
        // A typo'd thread count must not fabricate a 0-IPC data point.
        smt_fatal("sweep \"%s\" has no %u-thread data point",
                  label.c_str(), t);
    }

    double
    peakIpc() const
    {
        double best = 0.0;
        for (const DataPoint &p : points)
            best = std::max(best, p.ipc());
        return best;
    }
};

/**
 * Measure one configuration across thread counts. `mutate` receives a
 * config already set to the right thread count and applies the
 * experiment's knobs.
 */
ThreadSweep sweepThreads(
    const std::string &label, const std::vector<unsigned> &threads,
    const std::function<SmtConfig(unsigned)> &make_config,
    const MeasureOptions &opts);

/** The thread counts the paper's figures use. */
const std::vector<unsigned> &paperThreadCounts();

/** Render several sweeps as an IPC-per-thread-count table. */
Table ipcTable(const std::string &title,
               const std::vector<ThreadSweep> &sweeps);

/** Append a "paper reports" annotation row list to stdout. */
void printPaperNote(const std::string &note);

} // namespace smt

#endif // SMT_SIM_EXPERIMENT_HH
