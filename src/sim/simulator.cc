#include "sim/simulator.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace smt
{

Simulator::Simulator(const SmtConfig &cfg,
                     const std::vector<Benchmark> &mix,
                     std::uint64_t seed_salt, CoreDispatch dispatch)
    : cfg_(cfg)
{
    cfg_.validate();
    smt_assert(mix.size() == cfg_.numThreads,
               "mix size %zu != numThreads %u", mix.size(),
               cfg_.numThreads);

    mem_ = std::make_unique<MemoryHierarchy>(cfg_, stats_);
    bp_ = std::make_unique<BranchPredictor>(cfg_);

    std::vector<ThreadProgram *> raw;
    for (unsigned t = 0; t < cfg_.numThreads; ++t) {
        const ThreadID tid = static_cast<ThreadID>(t);
        const BenchmarkProfile &prof = benchmarkProfile(mix[t]);
        const std::uint64_t image_seed =
            cfg_.seed ^ mix64(static_cast<std::uint64_t>(mix[t]) + 101);
        images_.push_back(generateProgram(prof, image_seed,
                                          AddressLayout::codeBase(tid),
                                          AddressLayout::dataBase(tid),
                                          AddressLayout::stackBase(tid)));
        const std::uint64_t oracle_seed =
            cfg_.seed ^ seed_salt ^ mix64((t + 1) * 7919);
        programs_.push_back(std::make_unique<ThreadProgram>(*images_.back(),
                                                            oracle_seed));
        raw.push_back(programs_.back().get());
    }

    core_ = std::make_unique<SmtCore>(cfg_, *mem_, *bp_, std::move(raw),
                                      stats_, dispatch);
}

const SimStats &
Simulator::run(std::uint64_t max_cycles, std::uint64_t max_instructions)
{
    smt_assert(max_cycles > 0 || max_instructions > 0,
               "at least one run limit must be set");
    const Cycle stop_cycle =
        max_cycles > 0 ? core_->cycle() + max_cycles : kCycleNever;
    const std::uint64_t stop_insts =
        max_instructions > 0
            ? stats_.committedInstructions + max_instructions
            : std::numeric_limits<std::uint64_t>::max();
    while (core_->cycle() < stop_cycle &&
           stats_.committedInstructions < stop_insts) {
        core_->tick();
    }
    return stats_;
}

void
Simulator::warmup(std::uint64_t cycles)
{
    run(cycles);
    stats_ = SimStats{};
}

} // namespace smt
