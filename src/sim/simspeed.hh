/**
 * @file
 * Simspeed: how fast does the *simulator* run, in simulated cycles per
 * wall-clock second?
 *
 * This is a meta-benchmark of the implementation, not a result of the
 * paper: it exists so hot-path changes (policy devirtualization, the
 * SoA pipeline scans) are measured, and so CI can refuse a silent
 * slowdown. One library feeds both front ends — `smtsweep
 * --bench-simspeed` (no external dependencies) and the google-benchmark
 * harness in bench/ — and both emit the same BENCH_simspeed.json
 * ("smt-simspeed-v1"):
 *
 *   {
 *     "schema": "smt-simspeed-v1",
 *     "host": { "cpu": ..., "hardware_threads": ... },
 *     "options": { warmup/measure cycle counts, repeats },
 *     "shapes": [ { "name", "threads", policies, "engine",
 *                   "cycles_per_sec", "ipc", "stage_ns": {...} }, ... ]
 *   }
 *
 * scripts/check-simspeed.sh compares `cycles_per_sec` per shape against
 * a committed baseline (skipping on host mismatch — wall-clock numbers
 * do not transfer between machines).
 */

#ifndef SMT_SIM_SIMSPEED_HH
#define SMT_SIM_SIMSPEED_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "config/config.hh"
#include "core/core.hh"
#include "sweep/json.hh"
#include "workload/profile.hh"

namespace smt::simspeed
{

/** One machine shape the benchmark sweeps. */
struct ShapeSpec
{
    std::string name; ///< stable key, e.g. "icount28_t4".
    SmtConfig cfg;
    std::vector<Benchmark> mix;
};

/** Measurement knobs. */
struct Options
{
    std::uint64_t warmupCycles = 2000;
    std::uint64_t measureCycles = 20000;
    unsigned repeats = 3; ///< best-of-N wall-clock (noise rejection).
    bool stageBreakdown = true;
    CoreDispatch dispatch = CoreDispatch::Auto;

    /** A/B the pipeline microscope (`--pipe-ab`): also measure each
     *  shape with a full-window `obs::PipeTrace` streaming to
     *  /dev/null, so the cost of tracing *on* is a printed ratio —
     *  and the gated `cycles_per_sec` (hook compiled in but off)
     *  stays the headline number. */
    bool pipeAb = false;
};

/** One shape's measurement. */
struct ShapeResult
{
    std::string name;
    unsigned threads = 0;
    std::string fetchPolicy;
    std::string issuePolicy;
    std::string engine; ///< "specialized" or "generic".

    std::uint64_t cycles = 0;       ///< simulated cycles measured.
    std::uint64_t instructions = 0; ///< committed in the window.
    double ipc = 0.0;
    double seconds = 0.0;      ///< best repeat's wall-clock.
    double cyclesPerSec = 0.0; ///< cycles / seconds (the gated metric).

    /** Throughput with a full-window pipetrace attached (to
     *  /dev/null); 0 when the A/B pass was not requested. Never
     *  gated — tracing is allowed to cost what it costs. */
    double cyclesPerSecPipeOn = 0.0;

    /** Wall-clock per stage over one tickTimed() pass (not part of the
     *  throughput number above, which times plain tick()). */
    std::array<std::uint64_t, StageTimes::kNumStages> stageNs{};
};

/** The default shape set: the ICOUNT.2.8 machine of Section 5 at 1, 4,
 *  and 8 threads, the RR.1.8 base machine at 4 and 8, and the
 *  large-queue configuration at 8. */
std::vector<ShapeSpec> defaultShapes();

/** Measure one shape. */
ShapeResult measureShape(const ShapeSpec &shape, const Options &opts);

/** Measure every shape (in order). */
std::vector<ShapeResult> measureAll(const std::vector<ShapeSpec> &shapes,
                                    const Options &opts);

/** "cpu model / hardware threads" — guards baseline comparisons. */
std::string hostFingerprint();

/** Render results as the "smt-simspeed-v1" document. */
sweep::Json toJson(const std::vector<ShapeResult> &results,
                   const Options &opts);

/** One aligned human-readable table line per shape. */
std::string formatTable(const std::vector<ShapeResult> &results);

} // namespace smt::simspeed

#endif // SMT_SIM_SIMSPEED_HH
