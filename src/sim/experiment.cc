#include "sim/experiment.hh"

#include <cstdio>

namespace smt
{

ThreadSweep
sweepThreads(const std::string &label, const std::vector<unsigned> &threads,
             const std::function<SmtConfig(unsigned)> &make_config,
             const MeasureOptions &opts)
{
    ThreadSweep sweep;
    sweep.label = label;
    sweep.threads = threads;
    for (unsigned t : threads)
        sweep.points.push_back(measure(make_config(t), opts));
    return sweep;
}

const std::vector<unsigned> &
paperThreadCounts()
{
    static const std::vector<unsigned> counts = {1, 2, 4, 6, 8};
    return counts;
}

Table
ipcTable(const std::string &title, const std::vector<ThreadSweep> &sweeps)
{
    Table table(title);
    std::vector<std::string> header = {"scheme"};
    if (!sweeps.empty()) {
        for (unsigned t : sweeps.front().threads)
            header.push_back(std::to_string(t) + "T");
    }
    table.setHeader(std::move(header));
    for (const ThreadSweep &s : sweeps) {
        std::vector<std::string> row = {s.label};
        for (const DataPoint &p : s.points)
            row.push_back(fmtDouble(p.ipc(), 2));
        table.addRow(std::move(row));
    }
    return table;
}

void
printPaperNote(const std::string &note)
{
    std::printf("paper: %s\n", note.c_str());
}

} // namespace smt
