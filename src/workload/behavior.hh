/**
 * @file
 * Behaviour annotations attached to static instructions of a generated
 * program. The `annot` field of a StaticInst indexes one of these tables
 * in its CodeImage; the oracle (ThreadProgram) interprets them when it
 * executes the correct path.
 */

#ifndef SMT_WORKLOAD_BEHAVIOR_HH
#define SMT_WORKLOAD_BEHAVIOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace smt
{

/** How a conditional branch decides its direction. */
struct BranchBehavior
{
    enum class Kind : std::uint8_t
    {
        Biased,  ///< independent Bernoulli with takenProb.
        LoopBack ///< taken while the current loop entry has trips left.
    };

    Kind kind = Kind::Biased;
    double takenProb = 0.5; ///< for Biased.
    std::uint32_t minTrip = 1;  ///< for LoopBack: inclusive trip bounds.
    std::uint32_t maxTrip = 1;
};

/** How a load/store generates its effective addresses. */
struct MemBehavior
{
    enum class Kind : std::uint8_t
    {
        Stride, ///< sequential walk: base + (n * stride) % regionBytes.
        Random, ///< uniform within [base, base + regionBytes).
        Stack   ///< fixed hot address in the thread's stack page.
    };

    Kind kind = Kind::Stride;
    Addr regionOffset = 0;        ///< offset within the thread data segment.
    std::uint64_t regionBytes = 4096;
    std::uint32_t strideBytes = 8;
    /** Element reuse: the address advances every `repeat` executions
     *  (loops touch each element more than once). */
    std::uint32_t repeat = 1;
    /** For Random: fraction of accesses falling in a small hot subset
     *  (pointer-chasing locality); hotBytes = the subset size. */
    double hotFraction = 0.0;
    std::uint64_t hotBytes = 0;
};

/** Possible targets of an indirect jump (switch-style dispatch). */
struct IndirectBehavior
{
    std::vector<Addr> targets; ///< image-relative instruction addresses.
};

} // namespace smt

#endif // SMT_WORKLOAD_BEHAVIOR_HH
