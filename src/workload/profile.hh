/**
 * @file
 * BenchmarkProfile: the statistical parameters from which a synthetic
 * program is generated.
 *
 * The paper's workload is SPEC92 (alvinn, doduc, espresso, fpppp, ora,
 * tomcatv, xlisp) plus TeX; those binaries are proprietary, so smtsim
 * substitutes generated programs whose *statistical* properties (mix,
 * block sizes, branch predictability, footprints, dependence distances)
 * match published characterisations of each benchmark. DESIGN.md explains
 * why this preserves the paper's results.
 */

#ifndef SMT_WORKLOAD_PROFILE_HH
#define SMT_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace smt
{

/** Generation parameters for one synthetic benchmark. */
struct BenchmarkProfile
{
    std::string name = "generic";

    // ---- Code shape -----------------------------------------------------
    unsigned numFuncs = 12;        ///< functions besides main.
    unsigned blocksPerFunc = 40;   ///< structural budget per function.
    double avgBlockLen = 6.0;      ///< mean instructions per basic block.
    unsigned maxLoopDepth = 2;     ///< nesting limit.
    double loopFraction = 0.25;    ///< structural choice weights; the
    double diamondFraction = 0.35; ///< remainder generates plain blocks
    double callFraction = 0.08;    ///< and call sites.
    double indirectFraction = 0.0; ///< switch-style dispatch regions.
    unsigned indirectTargets = 8;  ///< arms per dispatch.
    std::uint32_t minTrip = 4;     ///< loop trip-count bounds.
    std::uint32_t maxTrip = 40;

    // ---- Branch predictability -------------------------------------------
    /** Fraction of non-loop branches that are data-dependent (hard). */
    double hardBranchFraction = 0.10;
    /** Taken probability of an easy branch (or 1 - that, mirrored). */
    double easyBias = 0.04;

    // ---- Instruction mix (within-block, non-control slots) ---------------
    double loadFrac = 0.26;
    double storeFrac = 0.12;
    double fpFrac = 0.0;   ///< FP compute fraction.
    double imulFrac = 0.01;
    double cmovFrac = 0.02;
    double fpLoadFrac = 0.0; ///< fraction of loads filling FP registers.

    // ---- Dependences -------------------------------------------------------
    /** Mean register dependence distance (higher = more ILP). */
    double depMean = 3.0;
    /** Probability a source reads a far (loop-invariant) register. */
    double farSrcFraction = 0.15;

    // ---- Memory behaviour --------------------------------------------------
    /**
     * Number of distinct strided regions ("arrays") in the program;
     * static memory instructions share them, which is what creates
     * temporal reuse and bounds the data footprint.
     */
    unsigned numStreams = 10;
    std::uint64_t streamRegionBytes = 64 * 1024; ///< per strided stream.
    std::uint64_t heapBytes = 512 * 1024;        ///< random-access heap.
    double randomFrac = 0.25;  ///< memory ops with random addresses.
    double stackFrac = 0.20;   ///< memory ops hitting the hot stack page.
    unsigned strideBytes = 8;
    /** log2 upper bound on per-instruction element reuse (repeat factor
     *  drawn from {1, 2, ..., 2^max}). */
    unsigned strideRepeatLog2Max = 1;
    /** Random-access locality: fraction of heap accesses inside a hot
     *  subset of `randomHotBytes`. */
    double randomHotFraction = 0.985;
    std::uint64_t randomHotBytes = 2 * 1024;

    /** Total data segment bytes needed (streams + heap), computed lazily
     *  by the generator; stored here for tests. */
    std::uint64_t dataFootprint() const;
};

/** The paper's eight workloads, in the order used by the mix rotation. */
enum class Benchmark : std::uint8_t
{
    Alvinn,
    Doduc,
    Espresso,
    Fpppp,
    Ora,
    Tomcatv,
    Xlisp,
    Tex,
    NumBenchmarks
};

constexpr unsigned kNumBenchmarks =
    static_cast<unsigned>(Benchmark::NumBenchmarks);

/** Profile for one of the paper's benchmarks. */
const BenchmarkProfile &benchmarkProfile(Benchmark b);

/** All eight, in rotation order. */
const std::vector<Benchmark> &allBenchmarks();

/** Name lookup ("alvinn", ...); fatal on unknown names. */
Benchmark benchmarkByName(const std::string &name);

const char *benchmarkName(Benchmark b);

} // namespace smt

#endif // SMT_WORKLOAD_PROFILE_HH
