/**
 * @file
 * CodeImage: the static program produced by the workload generator.
 *
 * A code image is a contiguous array of StaticInsts; instruction i lives
 * at address base + 4*i. Control-flow targets are absolute addresses
 * inside the image, so the front end can fetch *any* path — including
 * wrong paths after a misprediction — exactly as a real I-cache would
 * deliver it.
 *
 * The image also owns the behaviour tables (branch bias, loop trip
 * ranges, memory access patterns, indirect-jump target sets) that the
 * per-thread oracle interprets.
 */

#ifndef SMT_WORKLOAD_CODE_IMAGE_HH
#define SMT_WORKLOAD_CODE_IMAGE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "isa/static_inst.hh"
#include "workload/behavior.hh"
#include "workload/profile.hh"

namespace smt
{

/** An immutable generated program plus its behaviour tables. */
class CodeImage
{
  public:
    CodeImage(BenchmarkProfile profile, Addr code_base, Addr data_base,
              Addr stack_base);

    // Non-copyable (threads keep pointers into it); movable is fine.
    CodeImage(const CodeImage &) = delete;
    CodeImage &operator=(const CodeImage &) = delete;

    /** The instruction at pc, or nullptr when pc is outside the image. */
    const StaticInst *
    at(Addr pc) const
    {
        if (pc < codeBase_ || pc >= codeBase_ + codeBytes())
            return nullptr;
        return &insts_[(pc - codeBase_) / kInstBytes];
    }

    /** True when pc addresses an instruction of this image. */
    bool
    contains(Addr pc) const
    {
        return pc >= codeBase_ && pc < codeBase_ + codeBytes() &&
               (pc - codeBase_) % kInstBytes == 0;
    }

    Addr entryPc() const { return entryPc_; }
    Addr codeBase() const { return codeBase_; }
    Addr dataBase() const { return dataBase_; }
    Addr stackBase() const { return stackBase_; }
    std::uint64_t codeBytes() const { return insts_.size() * kInstBytes; }
    std::size_t numInsts() const { return insts_.size(); }

    const BenchmarkProfile &profile() const { return profile_; }

    const BranchBehavior &
    branchBehavior(std::uint32_t annot) const
    {
        return branchTable_[annot];
    }

    const MemBehavior &
    memBehavior(std::uint32_t annot) const
    {
        return memTable_[annot];
    }

    const IndirectBehavior &
    indirectBehavior(std::uint32_t annot) const
    {
        return indirectTable_[annot];
    }

    /**
     * Deterministic effective address for a *wrong-path* memory
     * instruction: plausible (within the instruction's own region) but
     * decoupled from the correct-path stream.
     */
    Addr wrongPathMemAddr(const StaticInst &si, std::uint64_t salt) const;

    /** Effective address for a correct-path access of this static
     *  instruction, given its per-instruction instance count and a random
     *  draw (used by Random behaviours). */
    Addr memAddrFor(const StaticInst &si, std::uint64_t instance,
                    std::uint64_t random_draw) const;

    std::size_t numBranchBehaviors() const { return branchTable_.size(); }
    std::size_t numMemBehaviors() const { return memTable_.size(); }
    std::size_t numIndirectBehaviors() const { return indirectTable_.size(); }

    /**
     * Install the generated program. Called exactly once by the
     * generator; a second call is a bug.
     */
    void setProgram(std::vector<StaticInst> insts, Addr entry_pc,
                    std::vector<BranchBehavior> branch_table,
                    std::vector<MemBehavior> mem_table,
                    std::vector<IndirectBehavior> indirect_table);

  private:
    BenchmarkProfile profile_;
    Addr codeBase_;
    Addr dataBase_;
    Addr stackBase_;
    Addr entryPc_ = 0;

    std::vector<StaticInst> insts_;
    std::vector<BranchBehavior> branchTable_;
    std::vector<MemBehavior> memTable_;
    std::vector<IndirectBehavior> indirectTable_;
};

/**
 * Generate a program for `profile`, deterministically from `seed`, at
 * the given base addresses.
 */
std::unique_ptr<CodeImage> generateProgram(const BenchmarkProfile &profile,
                                           std::uint64_t seed,
                                           Addr code_base, Addr data_base,
                                           Addr stack_base);

/** Standard per-thread address layout used by the simulator. */
struct AddressLayout
{
    static Addr codeBase(ThreadID tid);
    static Addr dataBase(ThreadID tid);
    static Addr stackBase(ThreadID tid);
};

} // namespace smt

#endif // SMT_WORKLOAD_CODE_IMAGE_HH
