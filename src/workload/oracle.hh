/**
 * @file
 * ThreadProgram: the per-thread architectural oracle.
 *
 * The oracle interprets a CodeImage along the *correct* execution path
 * only, producing an append-only stream of OracleEntry records: the
 * actual direction/target of every control instruction and the effective
 * address of every memory access. The core's front end consumes stream
 * entries when it fetches on the correct path; after a squash it simply
 * rewinds its cursor (the stream itself is never regenerated, so the
 * architectural execution is independent of microarchitectural events).
 */

#ifndef SMT_WORKLOAD_ORACLE_HH
#define SMT_WORKLOAD_ORACLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "isa/static_inst.hh"
#include "workload/code_image.hh"

namespace smt
{

/** One correct-path dynamic instruction. */
struct OracleEntry
{
    Addr pc = 0;
    const StaticInst *si = nullptr;
    bool taken = false;   ///< control outcome (true for all jumps/calls).
    Addr nextPc = 0;      ///< the correct next PC.
    Addr memAddr = 0;     ///< effective address for loads/stores.
};

/** The correct-path instruction stream of one thread. */
class ThreadProgram
{
  public:
    ThreadProgram(const CodeImage &image, std::uint64_t seed);

    /** The entry with the given absolute stream index (generates lazily).
     *  Indices start at 0 with the first instruction of main().
     *  Returned by value: the backing ring relocates when it grows, so
     *  references into it would not survive the next entryAt() call. */
    OracleEntry entryAt(std::uint64_t idx);

    /** Discard entries with index < idx (they can never be re-fetched:
     *  only call with the index following the last *committed* one). */
    void retireBefore(std::uint64_t idx);

    /** First still-buffered index. */
    std::uint64_t baseIndex() const { return base_; }

    /** One past the last generated index. */
    std::uint64_t
    headIndex() const
    {
        return base_ + count_;
    }

    Addr entryPc() const { return image_.entryPc(); }
    const CodeImage &image() const { return image_; }

  private:
    void step();

    /** Grow the circular buffer (relinearizing the live entries). */
    void growRing();

    const OracleEntry &
    ringAt(std::uint64_t idx) const
    {
        return buf_[(head_ + (idx - base_)) & (buf_.size() - 1)];
    }

    const CodeImage &image_;
    Rng rng_;

    Addr pc_;
    std::vector<Addr> callStack_;
    std::unordered_map<std::uint32_t, std::uint64_t> loopTripsLeft_;
    std::unordered_map<std::uint32_t, std::uint64_t> memInstance_;

    // Circular buffer of live entries [base_, base_ + count_). The
    // capacity is a power of two and only ever grows, so once the
    // in-flight window hits its high-water mark the oracle allocates
    // nothing more (a deque here churns a block allocation every
    // ~few-hundred instructions, on the fetch hot path).
    std::vector<OracleEntry> buf_;
    std::size_t head_ = 0;  ///< buffer offset of entry base_.
    std::size_t count_ = 0; ///< live entries.
    std::uint64_t base_ = 0;
};

} // namespace smt

#endif // SMT_WORKLOAD_ORACLE_HH
