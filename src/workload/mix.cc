#include "workload/mix.hh"

#include "common/logging.hh"

namespace smt
{

std::vector<Benchmark>
mixForRun(unsigned num_threads, unsigned run)
{
    smt_assert(num_threads >= 1);
    const auto &all = allBenchmarks();
    std::vector<Benchmark> mix;
    mix.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t)
        mix.push_back(all[(run + t) % all.size()]);
    return mix;
}

} // namespace smt
