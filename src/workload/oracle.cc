#include "workload/oracle.hh"

#include "common/logging.hh"

namespace smt
{

namespace
{

/** A stuck pipeline would otherwise grow the ring without bound; this
 *  cap turns a liveness bug into a loud failure. */
constexpr std::size_t kMaxLiveEntries = 1u << 21;

} // namespace

ThreadProgram::ThreadProgram(const CodeImage &image, std::uint64_t seed)
    : image_(image), rng_(seed ^ mix64(0x4f5241434cull /* "ORACL" */)),
      pc_(image.entryPc())
{
}

OracleEntry
ThreadProgram::entryAt(std::uint64_t idx)
{
    smt_assert(idx >= base_, "stream index %llu already retired (base %llu)",
               static_cast<unsigned long long>(idx),
               static_cast<unsigned long long>(base_));
    while (headIndex() <= idx) {
        smt_assert(count_ < kMaxLiveEntries,
                   "oracle ring overflow: pipeline liveness bug?");
        step();
    }
    return ringAt(idx);
}

void
ThreadProgram::retireBefore(std::uint64_t idx)
{
    while (base_ < idx && count_ > 0) {
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
        ++base_;
    }
}

void
ThreadProgram::growRing()
{
    const std::size_t cap = buf_.empty() ? 1024 : buf_.size() * 2;
    std::vector<OracleEntry> next(cap);
    for (std::size_t i = 0; i < count_; ++i)
        next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    buf_ = std::move(next);
    head_ = 0;
}

void
ThreadProgram::step()
{
    const StaticInst *si = image_.at(pc_);
    smt_assert(si != nullptr, "oracle walked out of the code image");

    OracleEntry e;
    e.pc = pc_;
    e.si = si;
    e.taken = false;
    e.nextPc = pc_ + kInstBytes;

    switch (si->op) {
      case OpClass::CondBranch: {
        const BranchBehavior &bb = image_.branchBehavior(si->annot);
        if (bb.kind == BranchBehavior::Kind::LoopBack) {
            auto it = loopTripsLeft_.find(si->annot);
            if (it == loopTripsLeft_.end()) {
                const std::uint64_t trips =
                    rng_.range(bb.minTrip, bb.maxTrip);
                it = loopTripsLeft_.emplace(si->annot, trips).first;
            }
            smt_assert(it->second >= 1);
            --it->second;
            e.taken = it->second > 0;
            if (!e.taken)
                loopTripsLeft_.erase(it);
        } else {
            e.taken = rng_.chance(bb.takenProb);
        }
        if (e.taken)
            e.nextPc = si->target;
        break;
      }
      case OpClass::Jump:
        e.taken = true;
        e.nextPc = si->target;
        break;
      case OpClass::Call:
        e.taken = true;
        e.nextPc = si->target;
        callStack_.push_back(pc_ + kInstBytes);
        break;
      case OpClass::Return:
        e.taken = true;
        smt_assert(!callStack_.empty(), "return with empty call stack");
        e.nextPc = callStack_.back();
        callStack_.pop_back();
        break;
      case OpClass::IndirectJump: {
        e.taken = true;
        const IndirectBehavior &ib = image_.indirectBehavior(si->annot);
        smt_assert(!ib.targets.empty());
        // Skewed dispatch: real switch statements have a dominant arm,
        // which is what makes a last-target BTB prediction useful.
        if (ib.targets.size() == 1 || rng_.chance(0.9))
            e.nextPc = ib.targets[0];
        else
            e.nextPc =
                ib.targets[1 + rng_.below(ib.targets.size() - 1)];
        break;
      }
      case OpClass::Load:
      case OpClass::Store: {
        const std::uint64_t instance = memInstance_[si->annot]++;
        e.memAddr = image_.memAddrFor(*si, instance, rng_.next64());
        break;
      }
      default:
        break;
    }

    pc_ = e.nextPc;
    if (count_ == buf_.size())
        growRing();
    buf_[(head_ + count_) & (buf_.size() - 1)] = e;
    ++count_;
}

} // namespace smt
