#include "workload/profile.hh"

#include <array>

#include "common/logging.hh"

namespace smt
{

std::uint64_t
BenchmarkProfile::dataFootprint() const
{
    // Streams are allocated per static memory instruction; a generous
    // upper bound is used by tests only (the generator computes the real
    // layout).
    return heapBytes + 64 * streamRegionBytes;
}

namespace
{

/**
 * The profiles below encode published qualitative characterisations of
 * each SPEC92 benchmark (and TeX):
 *  - alvinn: FP neural-net training; long, very predictable loops over
 *    modest arrays.
 *  - doduc: FP Monte-Carlo; branchier than the other FP codes, moderate
 *    working set.
 *  - espresso: integer logic minimisation; small blocks, data-dependent
 *    branches, small hot working set.
 *  - fpppp: FP quantum chemistry; famously huge basic blocks, very high
 *    FP density, large ILP.
 *  - ora: FP ray tracing; predictable, compute-dominated.
 *  - tomcatv: FP vectorisable mesh generation; long strided streams over
 *    large arrays (memory bound).
 *  - xlisp: LISP interpreter; extremely branchy, call/return and
 *    pointer-chasing dominated, hard branches.
 *  - tex: typesetting; integer, moderately branchy, medium footprint.
 */
std::array<BenchmarkProfile, kNumBenchmarks>
makeProfiles()
{
    std::array<BenchmarkProfile, kNumBenchmarks> p;

    {
        BenchmarkProfile &b = p[static_cast<unsigned>(Benchmark::Alvinn)];
        b.name = "alvinn";
        b.numFuncs = 6;
        b.blocksPerFunc = 18;
        b.avgBlockLen = 9.0;
        b.maxLoopDepth = 3;
        b.loopFraction = 0.38;
        b.diamondFraction = 0.18;
        b.callFraction = 0.05;
        b.minTrip = 8;
        b.maxTrip = 48;
        b.hardBranchFraction = 0.06;
        b.loadFrac = 0.30;
        b.storeFrac = 0.10;
        b.fpFrac = 0.34;
        b.fpLoadFrac = 0.70;
        b.depMean = 2.2;
        b.streamRegionBytes = 2048;
        b.numStreams = 3;
        b.heapBytes = 256 * 1024;
        b.randomFrac = 0.08;
        b.stackFrac = 0.24;
        b.strideBytes = 8;
    }
    {
        BenchmarkProfile &b = p[static_cast<unsigned>(Benchmark::Doduc)];
        b.name = "doduc";
        b.numFuncs = 10;
        b.blocksPerFunc = 26;
        b.avgBlockLen = 7.0;
        b.maxLoopDepth = 2;
        b.loopFraction = 0.24;
        b.diamondFraction = 0.34;
        b.callFraction = 0.09;
        b.minTrip = 4;
        b.maxTrip = 32;
        b.hardBranchFraction = 0.12;
        b.loadFrac = 0.27;
        b.storeFrac = 0.11;
        b.fpFrac = 0.30;
        b.fpLoadFrac = 0.60;
        b.depMean = 2.0;
        b.streamRegionBytes = 2048;
        b.numStreams = 3;
        b.heapBytes = 192 * 1024;
        b.randomFrac = 0.15;
        b.stackFrac = 0.18;
        b.strideBytes = 8;
    }
    {
        BenchmarkProfile &b = p[static_cast<unsigned>(Benchmark::Espresso)];
        b.name = "espresso";
        b.numFuncs = 13;
        b.blocksPerFunc = 30;
        b.avgBlockLen = 4.4;
        b.maxLoopDepth = 2;
        b.loopFraction = 0.22;
        b.diamondFraction = 0.44;
        b.callFraction = 0.08;
        b.indirectFraction = 0.02;
        b.indirectTargets = 6;
        b.minTrip = 3;
        b.maxTrip = 24;
        b.hardBranchFraction = 0.13;
        b.loadFrac = 0.25;
        b.storeFrac = 0.08;
        b.fpFrac = 0.0;
        b.depMean = 1.8;
        b.streamRegionBytes = 2048;
        b.numStreams = 3;
        b.heapBytes = 192 * 1024;
        b.randomFrac = 0.20;
        b.stackFrac = 0.28;
        b.strideBytes = 8;
    }
    {
        BenchmarkProfile &b = p[static_cast<unsigned>(Benchmark::Fpppp)];
        b.name = "fpppp";
        b.numFuncs = 4;
        b.blocksPerFunc = 12;
        b.avgBlockLen = 34.0;
        b.maxLoopDepth = 2;
        b.loopFraction = 0.40;
        b.diamondFraction = 0.10;
        b.callFraction = 0.06;
        b.minTrip = 8;
        b.maxTrip = 48;
        b.hardBranchFraction = 0.05;
        b.loadFrac = 0.28;
        b.storeFrac = 0.14;
        b.fpFrac = 0.42;
        b.fpLoadFrac = 0.85;
        b.depMean = 2.8;
        b.streamRegionBytes = 3072;
        b.numStreams = 3;
        b.heapBytes = 320 * 1024;
        b.randomFrac = 0.10;
        b.stackFrac = 0.16;
        b.strideBytes = 16;
    }
    {
        BenchmarkProfile &b = p[static_cast<unsigned>(Benchmark::Ora)];
        b.name = "ora";
        b.numFuncs = 7;
        b.blocksPerFunc = 18;
        b.avgBlockLen = 8.0;
        b.maxLoopDepth = 2;
        b.loopFraction = 0.30;
        b.diamondFraction = 0.26;
        b.callFraction = 0.10;
        b.minTrip = 8;
        b.maxTrip = 64;
        b.hardBranchFraction = 0.06;
        b.loadFrac = 0.20;
        b.storeFrac = 0.08;
        b.fpFrac = 0.38;
        b.fpLoadFrac = 0.65;
        b.depMean = 2.2;
        b.streamRegionBytes = 2048;
        b.numStreams = 3;
        b.heapBytes = 128 * 1024;
        b.randomFrac = 0.10;
        b.stackFrac = 0.30;
        b.strideBytes = 8;
    }
    {
        BenchmarkProfile &b = p[static_cast<unsigned>(Benchmark::Tomcatv)];
        b.name = "tomcatv";
        b.numFuncs = 4;
        b.blocksPerFunc = 16;
        b.avgBlockLen = 12.0;
        b.maxLoopDepth = 3;
        b.loopFraction = 0.44;
        b.diamondFraction = 0.10;
        b.callFraction = 0.04;
        b.minTrip = 32;
        b.maxTrip = 128;
        b.hardBranchFraction = 0.03;
        b.loadFrac = 0.33;
        b.storeFrac = 0.14;
        b.fpFrac = 0.36;
        b.fpLoadFrac = 0.80;
        b.depMean = 2.4;
        b.streamRegionBytes = 16 * 1024;
        b.numStreams = 4;
        b.heapBytes = 512 * 1024;
        b.randomFrac = 0.05;
        b.stackFrac = 0.08;
        b.strideBytes = 8;
    }
    {
        BenchmarkProfile &b = p[static_cast<unsigned>(Benchmark::Xlisp)];
        b.name = "xlisp";
        b.numFuncs = 16;
        b.blocksPerFunc = 20;
        b.avgBlockLen = 4.0;
        b.maxLoopDepth = 1;
        b.loopFraction = 0.10;
        b.diamondFraction = 0.46;
        b.callFraction = 0.18;
        b.indirectFraction = 0.04;
        b.indirectTargets = 10;
        b.minTrip = 2;
        b.maxTrip = 12;
        b.hardBranchFraction = 0.16;
        b.loadFrac = 0.30;
        b.storeFrac = 0.12;
        b.fpFrac = 0.0;
        b.depMean = 1.7;
        b.streamRegionBytes = 2048;
        b.numStreams = 3;
        b.heapBytes = 256 * 1024;
        b.randomFrac = 0.35;
        b.stackFrac = 0.25;
        b.strideBytes = 8;
    }
    {
        BenchmarkProfile &b = p[static_cast<unsigned>(Benchmark::Tex)];
        b.name = "tex";
        b.numFuncs = 12;
        b.blocksPerFunc = 26;
        b.avgBlockLen = 5.2;
        b.maxLoopDepth = 2;
        b.loopFraction = 0.20;
        b.diamondFraction = 0.40;
        b.callFraction = 0.10;
        b.indirectFraction = 0.01;
        b.indirectTargets = 8;
        b.minTrip = 4;
        b.maxTrip = 28;
        b.hardBranchFraction = 0.10;
        b.loadFrac = 0.26;
        b.storeFrac = 0.11;
        b.fpFrac = 0.0;
        b.depMean = 1.9;
        b.streamRegionBytes = 2048;
        b.numStreams = 3;
        b.heapBytes = 256 * 1024;
        b.randomFrac = 0.18;
        b.stackFrac = 0.26;
        b.strideBytes = 8;
    }

    return p;
}

const std::array<BenchmarkProfile, kNumBenchmarks> &
profiles()
{
    static const auto table = makeProfiles();
    return table;
}

} // namespace

const BenchmarkProfile &
benchmarkProfile(Benchmark b)
{
    const auto idx = static_cast<unsigned>(b);
    smt_assert(idx < kNumBenchmarks);
    return profiles()[idx];
}

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> all = {
        Benchmark::Alvinn, Benchmark::Doduc, Benchmark::Espresso,
        Benchmark::Fpppp, Benchmark::Ora, Benchmark::Tomcatv,
        Benchmark::Xlisp, Benchmark::Tex,
    };
    return all;
}

Benchmark
benchmarkByName(const std::string &name)
{
    for (Benchmark b : allBenchmarks()) {
        if (benchmarkProfile(b).name == name)
            return b;
    }
    smt_fatal("unknown benchmark '%s'", name.c_str());
}

const char *
benchmarkName(Benchmark b)
{
    return benchmarkProfile(b).name.c_str();
}

} // namespace smt
