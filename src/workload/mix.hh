/**
 * @file
 * The paper's measurement methodology (Section 3): a data point is the
 * average of 8 runs; in run r, thread t executes benchmark (r + t) mod 8,
 * so every benchmark appears in every thread slot exactly once across
 * the 8 runs and thread-count comparisons are benchmark-balanced.
 */

#ifndef SMT_WORKLOAD_MIX_HH
#define SMT_WORKLOAD_MIX_HH

#include <vector>

#include "workload/profile.hh"

namespace smt
{

/** Number of runs composing one data point. */
constexpr unsigned kRunsPerDataPoint = 8;

/** The benchmark assigned to each thread slot for a given run. */
std::vector<Benchmark> mixForRun(unsigned num_threads, unsigned run);

} // namespace smt

#endif // SMT_WORKLOAD_MIX_HH
