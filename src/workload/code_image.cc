#include "workload/code_image.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace smt
{

CodeImage::CodeImage(BenchmarkProfile profile, Addr code_base,
                     Addr data_base, Addr stack_base)
    : profile_(std::move(profile)), codeBase_(code_base),
      dataBase_(data_base), stackBase_(stack_base)
{
}

void
CodeImage::setProgram(std::vector<StaticInst> insts, Addr entry_pc,
                      std::vector<BranchBehavior> branch_table,
                      std::vector<MemBehavior> mem_table,
                      std::vector<IndirectBehavior> indirect_table)
{
    smt_assert(insts_.empty());
    smt_assert(!insts.empty());
    insts_ = std::move(insts);
    entryPc_ = entry_pc;
    branchTable_ = std::move(branch_table);
    memTable_ = std::move(mem_table);
    indirectTable_ = std::move(indirect_table);
}

Addr
CodeImage::memAddrFor(const StaticInst &si, std::uint64_t instance,
                      std::uint64_t random_draw) const
{
    const MemBehavior &mb = memBehavior(si.annot);
    switch (mb.kind) {
      case MemBehavior::Kind::Stride: {
        // Each instruction walks its region coherently: the address
        // advances by the stride every `repeat` executions, wrapping at
        // the region end (short laps keep the walk cache-resident).
        const std::uint64_t element = instance / std::max(1u, mb.repeat);
        const Addr off = (element * mb.strideBytes) % mb.regionBytes;
        return dataBase_ + mb.regionOffset + off;
      }
      case MemBehavior::Kind::Random: {
        // Pointer-chasing locality: a slice of accesses stays inside a
        // small hot subset of the region; the rest roam uniformly.
        // All draws are 8-byte aligned.
        const double coin =
            static_cast<double>(random_draw & 0xFFFF) / 65536.0;
        if (mb.hotBytes > 0 && coin < mb.hotFraction) {
            // The hot subset is shared program-wide (the head of the
            // heap): pointer-chasing codes revisit the same hot nodes
            // from many different sites.
            const Addr off =
                ((random_draw >> 16) % (mb.hotBytes / 8)) * 8;
            return dataBase_ + mb.regionOffset + off;
        }
        const Addr off = ((random_draw >> 16) % (mb.regionBytes / 8)) * 8;
        return dataBase_ + mb.regionOffset + off;
      }
      case MemBehavior::Kind::Stack: {
        // A fixed hot location keyed by the behaviour id: stack frames
        // re-touch the same few cache lines.
        const Addr off = (mix64(si.annot * 0x9e37u + 17) % 2048) & ~7ull;
        return stackBase_ + off;
      }
    }
    smt_panic("bad mem behavior kind");
}

Addr
CodeImage::wrongPathMemAddr(const StaticInst &si, std::uint64_t salt) const
{
    const MemBehavior &mb = memBehavior(si.annot);
    if (mb.kind == MemBehavior::Kind::Stack)
        return memAddrFor(si, 0, 0);
    const Addr off = (mix64(salt ^ (si.annot * 0x517cc1b727220a95ull))
                      % (mb.regionBytes / 8)) * 8;
    return dataBase_ + mb.regionOffset + off;
}

Addr
AddressLayout::codeBase(ThreadID tid)
{
    // Segments are placed 16-256 MB apart (disjoint), with an ASLR-style
    // pseudo-random sub-offset within a 2 MB window. Without it, bases
    // that are multiples of a direct-mapped cache's size make every
    // thread's hot lines fight over identical sets in the 32 KB L1 and
    // the 2 MB L3 — a pathology real (OS-randomised) address spaces do
    // not exhibit.
    return 0x1000'0000ull + static_cast<Addr>(tid) * 0x100'0000ull +
           ((mix64(0xC0DE + tid * 4u) % 0x20'0000ull) & ~Addr{63});
}

Addr
AddressLayout::dataBase(ThreadID tid)
{
    return 0x8000'0000ull + static_cast<Addr>(tid) * 0x1000'0000ull +
           ((mix64(0xDA7A + tid * 4u) % 0x20'0000ull) & ~Addr{63});
}

Addr
AddressLayout::stackBase(ThreadID tid)
{
    return 0xF000'0000ull + static_cast<Addr>(tid) * 0x10'0000ull +
           ((mix64(0x57AC + tid * 4u) % 0x8'0000ull) & ~Addr{63});
}

} // namespace smt
