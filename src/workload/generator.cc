/**
 * @file
 * The synthetic-program generator.
 *
 * A program is a set of functions made of basic blocks. Functions are
 * generated in call order (function i may call only functions j > i, so
 * the call graph is acyclic and the return stack is bounded). main()
 * (function 0) is an infinite loop over calls to the other functions, so
 * a program never terminates — the simulator decides when to stop.
 *
 * Structure within a function is produced by a tiny recursive grammar:
 *   seq    := (plain | loop | diamond | call | dispatch)*
 *   loop   := header seq latch[cond back-edge -> header]
 *   diamond:= head[cond -> join] seq join
 *   dispatch := head[indirect -> arm_k] (arm[jump -> join])^K join
 * Blocks are laid out in creation order, which is also fall-through
 * order, so the only address patching needed is for explicit targets.
 */

#include "workload/code_image.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace smt
{

namespace
{

/** Mutable build-time view of a basic block. */
struct Block
{
    std::vector<StaticInst> insts;
};

/** A pending control-target fix-up: instruction -> block entry. */
struct Patch
{
    std::size_t block;
    std::size_t inst;
    std::size_t targetBlock;
};

/** A pending call-target fix-up: instruction -> function entry. */
struct CallPatch
{
    std::size_t block;
    std::size_t inst;
    unsigned calleeFunc;
};

class ProgramBuilder
{
  public:
    ProgramBuilder(const BenchmarkProfile &prof, Rng &rng)
        : prof_(prof), rng_(rng)
    {
    }

    void
    build(CodeImage &image)
    {
        // Data-segment layout: the random-access heap first, then the
        // program's fixed set of strided "arrays", which static memory
        // instructions share (that sharing is what creates temporal
        // locality).
        // The 13-line skew keeps stream bases from aliasing to the same
        // direct-mapped cache sets (region sizes are powers of two).
        constexpr Addr skew = 13 * 64;
        for (unsigned s = 0; s < std::max(1u, prof_.numStreams); ++s) {
            streamOffsets_.push_back(prof_.heapBytes +
                                     s * (prof_.streamRegionBytes + skew));
            // Stride and element-reuse are properties of the *array*
            // (region), shared by every instruction that touches it, so
            // the region advances as one coherent walk.
            streamStride_.push_back(
                prof_.strideBytes * (1u << rng_.below(2)));
            streamRepeat_.push_back(
                1u << rng_.below(prof_.strideRepeatLog2Max + 1));
        }

        funcEntry_.resize(prof_.numFuncs + 1);
        for (unsigned f = 0; f <= prof_.numFuncs; ++f) {
            currentFunc_ = f;
            funcEntry_[f] = blocks_.size();
            if (f == 0)
                genMain();
            else
                genFunction();
        }
        finalize(image);
    }

  private:
    // ---- Block plumbing ---------------------------------------------------
    std::size_t
    newBlock()
    {
        blocks_.emplace_back();
        return blocks_.size() - 1;
    }

    Block &cur() { return blocks_.back(); }

    // ---- Operand machinery -------------------------------------------------
    LogReg
    newDest(RegFile file)
    {
        const LogRegIndex idx =
            static_cast<LogRegIndex>(rng_.range(1, kLogRegsPerFile - 2));
        auto &recents = file == RegFile::Int ? intRecents_ : fpRecents_;
        recents.push_back(idx);
        if (recents.size() > 24)
            recents.erase(recents.begin());
        return {idx, file};
    }

    LogReg
    pickSrc(RegFile file)
    {
        auto &recents = file == RegFile::Int ? intRecents_ : fpRecents_;
        if (!recents.empty() && !rng_.chance(prof_.farSrcFraction)) {
            const unsigned d = rng_.geometric(prof_.depMean);
            if (d <= recents.size())
                return {recents[recents.size() - d], file};
        }
        // Far / loop-invariant source.
        return {static_cast<LogRegIndex>(rng_.range(0, kLogRegsPerFile - 1)),
                file};
    }

    // ---- Behaviour tables ---------------------------------------------------
    std::uint32_t
    newBiasedBranch()
    {
        BranchBehavior bb;
        bb.kind = BranchBehavior::Kind::Biased;
        if (rng_.chance(prof_.hardBranchFraction)) {
            bb.takenProb = rng_.uniform() * 0.5 + 0.25; // [0.25, 0.75)
        } else {
            const double p = prof_.easyBias;
            bb.takenProb = rng_.chance(0.5) ? p : 1.0 - p;
        }
        branchTable_.push_back(bb);
        return static_cast<std::uint32_t>(branchTable_.size() - 1);
    }

    std::uint32_t
    newLoopBranch()
    {
        BranchBehavior bb;
        bb.kind = BranchBehavior::Kind::LoopBack;
        bb.minTrip = prof_.minTrip;
        bb.maxTrip = prof_.maxTrip;
        branchTable_.push_back(bb);
        return static_cast<std::uint32_t>(branchTable_.size() - 1);
    }

    std::uint32_t
    newMemBehavior()
    {
        MemBehavior mb;
        const double r = rng_.uniform();
        if (r < prof_.stackFrac) {
            mb.kind = MemBehavior::Kind::Stack;
            mb.regionBytes = 2048;
        } else if (r < prof_.stackFrac + prof_.randomFrac) {
            mb.kind = MemBehavior::Kind::Random;
            mb.regionOffset = 0; // the shared heap.
            mb.regionBytes = prof_.heapBytes;
            mb.hotFraction = prof_.randomHotFraction;
            mb.hotBytes = std::min<std::uint64_t>(prof_.randomHotBytes,
                                                  prof_.heapBytes / 2);
        } else {
            mb.kind = MemBehavior::Kind::Stride;
            const std::size_t region = rng_.below(streamOffsets_.size());
            mb.regionOffset = streamOffsets_[region];
            mb.regionBytes = prof_.streamRegionBytes;
            mb.strideBytes = streamStride_[region];
            mb.repeat = streamRepeat_[region];
        }
        memTable_.push_back(mb);
        return static_cast<std::uint32_t>(memTable_.size() - 1);
    }

    // ---- Instruction emission ------------------------------------------------
    void
    emitBody(std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            cur().insts.push_back(makeBodyInst());
    }

    StaticInst
    makeBodyInst()
    {
        StaticInst si;
        const double r = rng_.uniform();
        double acc = prof_.loadFrac;
        if (r < acc) {
            si.op = OpClass::Load;
            const bool fp = rng_.chance(prof_.fpLoadFrac);
            si.dest = newDest(fp ? RegFile::Fp : RegFile::Int);
            si.src1 = pickSrc(RegFile::Int);
            si.annot = newMemBehavior();
            return si;
        }
        acc += prof_.storeFrac;
        if (r < acc) {
            si.op = OpClass::Store;
            si.src1 = pickSrc(RegFile::Int);
            const bool fp = rng_.chance(prof_.fpLoadFrac);
            si.src2 = pickSrc(fp ? RegFile::Fp : RegFile::Int);
            si.annot = newMemBehavior();
            return si;
        }
        acc += prof_.fpFrac;
        if (r < acc) {
            // FP divide is rare within the FP mix (~3%).
            if (rng_.chance(0.03))
                si.op = rng_.chance(0.5) ? OpClass::FpDiv
                                         : OpClass::FpDivLong;
            else
                si.op = OpClass::FpAlu;
            si.dest = newDest(RegFile::Fp);
            si.src1 = pickSrc(RegFile::Fp);
            si.src2 = pickSrc(RegFile::Fp);
            return si;
        }
        acc += prof_.imulFrac;
        if (r < acc) {
            si.op = rng_.chance(0.3) ? OpClass::IntMultLong
                                     : OpClass::IntMult;
            si.dest = newDest(RegFile::Int);
            si.src1 = pickSrc(RegFile::Int);
            si.src2 = pickSrc(RegFile::Int);
            return si;
        }
        acc += prof_.cmovFrac;
        if (r < acc) {
            si.op = OpClass::CondMove;
            si.dest = newDest(RegFile::Int);
            si.src1 = pickSrc(RegFile::Int);
            si.src2 = pickSrc(RegFile::Int);
            return si;
        }
        si.op = OpClass::IntAlu;
        si.dest = newDest(RegFile::Int);
        si.src1 = pickSrc(RegFile::Int);
        if (rng_.chance(0.6))
            si.src2 = pickSrc(RegFile::Int);
        return si;
    }

    std::size_t
    bodyLen()
    {
        return std::max<std::size_t>(1, rng_.geometric(prof_.avgBlockLen));
    }

    /** Emit compare + conditional branch ending the current block. */
    void
    endWithCondBranch(std::size_t target_block, std::uint32_t annot)
    {
        StaticInst cmp;
        cmp.op = OpClass::Compare;
        cmp.dest = newDest(RegFile::Int);
        cmp.src1 = pickSrc(RegFile::Int);
        cmp.src2 = pickSrc(RegFile::Int);
        cur().insts.push_back(cmp);

        StaticInst br;
        br.op = OpClass::CondBranch;
        br.src1 = cmp.dest;
        br.annot = annot;
        cur().insts.push_back(br);
        patches_.push_back({blocks_.size() - 1, cur().insts.size() - 1,
                            target_block});
    }

    void
    endWithJump(std::size_t target_block)
    {
        StaticInst j;
        j.op = OpClass::Jump;
        cur().insts.push_back(j);
        patches_.push_back({blocks_.size() - 1, cur().insts.size() - 1,
                            target_block});
    }

    void
    endWithCall(unsigned callee)
    {
        StaticInst c;
        c.op = OpClass::Call;
        cur().insts.push_back(c);
        callPatches_.push_back({blocks_.size() - 1, cur().insts.size() - 1,
                                callee});
    }

    void
    endWithReturn()
    {
        StaticInst r;
        r.op = OpClass::Return;
        r.src1 = pickSrc(RegFile::Int);
        cur().insts.push_back(r);
    }

    // ---- Structural grammar ---------------------------------------------------
    /**
     * Generate a sequence of structures totalling ~`budget` blocks;
     * control falls through past the last block created.
     */
    void
    genSeq(unsigned depth, unsigned budget)
    {
        unsigned used = 0;
        bool generated = false;
        while (used < budget || !generated) {
            generated = true;
            const unsigned left = budget > used ? budget - used : 1;
            const double r = rng_.uniform();
            double acc = prof_.loopFraction;
            if (r < acc && depth < prof_.maxLoopDepth && left >= 4) {
                used += genLoop(depth);
                continue;
            }
            acc += prof_.diamondFraction;
            if (r < acc && left >= 3) {
                used += genDiamond(depth);
                continue;
            }
            acc += prof_.callFraction;
            if (r < acc && currentFunc_ < prof_.numFuncs) {
                used += genCall();
                continue;
            }
            acc += prof_.indirectFraction;
            if (r < acc && left >= prof_.indirectTargets + 2) {
                used += genDispatch();
                continue;
            }
            newBlock();
            emitBody(bodyLen());
            used += 1;
        }
    }

    unsigned
    genLoop(unsigned depth)
    {
        const std::size_t header = newBlock();
        emitBody(std::max<std::size_t>(1, bodyLen() / 2));
        // Loop bodies get enough budget to contain diamonds (and nested
        // loops), so data-dependent branches execute per iteration.
        const unsigned body_budget = 2 + static_cast<unsigned>(
                                             rng_.below(4));
        genSeq(depth + 1, body_budget);
        newBlock(); // the latch.
        emitBody(bodyLen());
        endWithCondBranch(header, newLoopBranch());
        return body_budget + 2;
    }

    unsigned
    genDiamond(unsigned depth)
    {
        newBlock(); // the head.
        emitBody(bodyLen());
        const std::size_t patch_idx = patches_.size();
        endWithCondBranch(/*placeholder*/ 0, newBiasedBranch());
        const unsigned then_budget =
            1 + static_cast<unsigned>(rng_.below(2));
        genSeq(depth, then_budget);
        const std::size_t join = newBlock();
        emitBody(bodyLen());
        patches_[patch_idx].targetBlock = join;
        return then_budget + 2;
    }

    unsigned
    genCall()
    {
        newBlock();
        emitBody(std::max<std::size_t>(1, bodyLen() / 2));
        const unsigned callee = static_cast<unsigned>(
            rng_.range(currentFunc_ + 1, prof_.numFuncs));
        endWithCall(callee);
        return 1;
    }

    unsigned
    genDispatch()
    {
        newBlock();
        emitBody(std::max<std::size_t>(1, bodyLen() / 2));
        StaticInst ij;
        ij.op = OpClass::IndirectJump;
        ij.src1 = pickSrc(RegFile::Int);
        ij.annot = static_cast<std::uint32_t>(indirectTable_.size());
        cur().insts.push_back(ij);
        indirectTable_.emplace_back();
        indirectPatches_.push_back(
            {ij.annot, std::vector<std::size_t>{}});

        const unsigned arms = prof_.indirectTargets;
        const std::size_t join_patch_base = patches_.size();
        for (unsigned a = 0; a < arms; ++a) {
            const std::size_t arm = newBlock();
            indirectPatches_.back().second.push_back(arm);
            emitBody(std::max<std::size_t>(1, bodyLen() / 2));
            endWithJump(/*placeholder*/ 0);
        }
        const std::size_t join = newBlock();
        emitBody(bodyLen());
        for (std::size_t p = join_patch_base; p < patches_.size(); ++p)
            patches_[p].targetBlock = join;
        return arms + 2;
    }

    void
    genFunction()
    {
        // Every function is dominated by one function-level loop: the
        // body re-executes many times per call, which is what gives real
        // programs their instruction-cache locality (execution dwells in
        // a few KB of code at a time instead of sweeping the segment).
        const std::size_t header = newBlock();
        emitBody(std::max<std::size_t>(1, bodyLen() / 2));
        genSeq(1, prof_.blocksPerFunc);
        newBlock(); // the latch.
        emitBody(std::max<std::size_t>(1, bodyLen() / 2));
        endWithCondBranch(header, newLoopBranch());
        newBlock();
        emitBody(std::max<std::size_t>(1, bodyLen() / 2));
        endWithReturn();
    }

    void
    genMain()
    {
        // main: an endless loop whose body calls every other function,
        // with generated filler between calls.
        const std::size_t loop_head = newBlock();
        emitBody(bodyLen());
        for (unsigned f = 1; f <= prof_.numFuncs; ++f) {
            newBlock();
            emitBody(std::max<std::size_t>(1, bodyLen() / 2));
            endWithCall(f);
            if (rng_.chance(0.5))
                genSeq(0, 1 + static_cast<unsigned>(rng_.below(2)));
        }
        newBlock();
        emitBody(std::max<std::size_t>(1, bodyLen() / 2));
        endWithJump(loop_head);
    }

    // ---- Finalisation -----------------------------------------------------
    void
    finalize(CodeImage &image)
    {
        // Compute block entry addresses.
        std::vector<Addr> block_addr(blocks_.size());
        Addr pc = image.codeBase();
        for (std::size_t b = 0; b < blocks_.size(); ++b) {
            smt_assert(!blocks_[b].insts.empty());
            block_addr[b] = pc;
            pc += blocks_[b].insts.size() * kInstBytes;
        }

        for (const Patch &p : patches_)
            blocks_[p.block].insts[p.inst].target = block_addr[p.targetBlock];
        for (const CallPatch &p : callPatches_) {
            blocks_[p.block].insts[p.inst].target =
                block_addr[funcEntry_[p.calleeFunc]];
        }
        for (auto &[annot, arm_blocks] : indirectPatches_) {
            for (std::size_t arm : arm_blocks)
                indirectTable_[annot].targets.push_back(block_addr[arm]);
        }

        std::vector<StaticInst> flat;
        for (const Block &b : blocks_)
            for (const StaticInst &si : b.insts)
                flat.push_back(si);
        image.setProgram(std::move(flat), block_addr[funcEntry_[0]],
                         std::move(branchTable_), std::move(memTable_),
                         std::move(indirectTable_));
    }

    const BenchmarkProfile &prof_;
    Rng &rng_;

    std::vector<Block> blocks_;
    std::vector<Patch> patches_;
    std::vector<CallPatch> callPatches_;
    std::vector<std::pair<std::uint32_t, std::vector<std::size_t>>>
        indirectPatches_;
    std::vector<std::size_t> funcEntry_;
    unsigned currentFunc_ = 0;

    std::vector<LogRegIndex> intRecents_;
    std::vector<LogRegIndex> fpRecents_;

    std::vector<BranchBehavior> branchTable_;
    std::vector<MemBehavior> memTable_;
    std::vector<IndirectBehavior> indirectTable_;

    std::vector<Addr> streamOffsets_;
    std::vector<std::uint32_t> streamStride_;
    std::vector<std::uint32_t> streamRepeat_;
};

} // namespace

std::unique_ptr<CodeImage>
generateProgram(const BenchmarkProfile &profile, std::uint64_t seed,
                Addr code_base, Addr data_base, Addr stack_base)
{
    auto image = std::make_unique<CodeImage>(profile, code_base, data_base,
                                             stack_base);
    Rng rng(seed ^ mix64(0x5347454eull /* "NGES" */));
    ProgramBuilder builder(profile, rng);
    builder.build(*image);
    return image;
}

} // namespace smt
