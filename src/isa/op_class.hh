/**
 * @file
 * Instruction operation classes for the Alpha-like ISA modelled by smtsim.
 *
 * The classes mirror the latency rows of Table 1 in the paper plus the
 * control-flow kinds the front end must distinguish (conditional branches,
 * direct jumps/calls, returns, indirect jumps).
 */

#ifndef SMT_ISA_OP_CLASS_HH
#define SMT_ISA_OP_CLASS_HH

#include <cstdint>

namespace smt
{

/** Operation class; determines latency, functional unit, and queue. */
enum class OpClass : std::uint8_t
{
    IntAlu,      ///< "all other integer": latency 1.
    IntMult,     ///< integer multiply: latency 8 (16 for the long form).
    IntMultLong, ///< 64-bit integer multiply: latency 16.
    CondMove,    ///< conditional move: latency 2.
    Compare,     ///< compare: latency 0 (consumable in the same cycle).
    FpAlu,       ///< "all other FP": latency 4.
    FpDiv,       ///< FP divide: latency 17 (30 for the long form).
    FpDivLong,   ///< double-precision divide: latency 30.
    Load,        ///< memory load: latency 1 on a D-cache hit.
    Store,       ///< memory store.
    CondBranch,  ///< conditional branch (direction predicted by the PHT).
    Jump,        ///< unconditional direct jump.
    Call,        ///< direct call (pushes the return stack).
    Return,      ///< subroutine return (predicted by the return stack).
    IndirectJump, ///< indirect jump (target predicted by the BTB).
    NumOpClasses
};

constexpr unsigned kNumOpClasses =
    static_cast<unsigned>(OpClass::NumOpClasses);

/** True for any instruction that can redirect control flow. */
bool isControl(OpClass c);

/** True for conditional branches only. */
inline bool isCondBranch(OpClass c) { return c == OpClass::CondBranch; }

/** True for control transfers whose target must be predicted (BTB/RAS). */
bool isIndirectControl(OpClass c);

/** True for loads and stores. */
inline bool
isMemory(OpClass c)
{
    return c == OpClass::Load || c == OpClass::Store;
}

/** True when the op executes in the floating-point pipeline/queue. */
bool isFloatOp(OpClass c);

/** Short mnemonic for tracing. */
const char *opClassName(OpClass c);

} // namespace smt

#endif // SMT_ISA_OP_CLASS_HH
