/**
 * @file
 * StaticInst: one instruction of a generated code image.
 *
 * A static instruction is immutable once the workload generator has built
 * the program. Operand registers are logical (architectural) indices; the
 * rename stage maps them onto physical registers per thread. The `annot`
 * field is an opaque index into workload-side behaviour tables (branch
 * bias, load/store access pattern); the core never interprets it.
 */

#ifndef SMT_ISA_STATIC_INST_HH
#define SMT_ISA_STATIC_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/op_class.hh"

namespace smt
{

/** Identifies which register file an operand lives in. */
enum class RegFile : std::uint8_t { Int, Fp };

/** One logical register operand. */
struct LogReg
{
    LogRegIndex index = kNoLogReg;
    RegFile file = RegFile::Int;

    bool valid() const { return index != kNoLogReg; }

    static LogReg
    intReg(LogRegIndex i)
    {
        return {i, RegFile::Int};
    }

    static LogReg
    fpReg(LogRegIndex i)
    {
        return {i, RegFile::Fp};
    }

    static LogReg none() { return {}; }
};

/** An instruction of the static code image. */
struct StaticInst
{
    OpClass op = OpClass::IntAlu;
    LogReg dest;              ///< destination register, if any.
    LogReg src1;              ///< first source, if any.
    LogReg src2;              ///< second source, if any.
    Addr target = kNoAddr;    ///< taken target for direct control flow;
                              ///< callee entry for calls; kNoAddr for
                              ///< returns/indirect jumps.
    std::uint32_t annot = 0;  ///< workload behaviour-table index.

    bool isControl() const { return smt::isControl(op); }
    bool isCondBranch() const { return smt::isCondBranch(op); }
    bool isMemory() const { return smt::isMemory(op); }
    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }

    /** Instructions the fetch unit cannot resolve without the BTB/RAS. */
    bool
    needsTargetPrediction() const
    {
        return isIndirectControl(op);
    }

    /** Goes to the FP instruction queue? (Loads/stores go to the integer
     *  queue regardless of destination file — Section 2.1.) */
    bool
    usesFpQueue() const
    {
        return isFloatOp(op);
    }
};

} // namespace smt

#endif // SMT_ISA_STATIC_INST_HH
