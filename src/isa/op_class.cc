#include "isa/op_class.hh"

namespace smt
{

bool
isControl(OpClass c)
{
    switch (c) {
      case OpClass::CondBranch:
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Return:
      case OpClass::IndirectJump:
        return true;
      default:
        return false;
    }
}

bool
isIndirectControl(OpClass c)
{
    return c == OpClass::Return || c == OpClass::IndirectJump;
}

bool
isFloatOp(OpClass c)
{
    switch (c) {
      case OpClass::FpAlu:
      case OpClass::FpDiv:
      case OpClass::FpDivLong:
        return true;
      default:
        return false;
    }
}

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu: return "int";
      case OpClass::IntMult: return "imul";
      case OpClass::IntMultLong: return "imull";
      case OpClass::CondMove: return "cmov";
      case OpClass::Compare: return "cmp";
      case OpClass::FpAlu: return "fp";
      case OpClass::FpDiv: return "fdiv";
      case OpClass::FpDivLong: return "fdivl";
      case OpClass::Load: return "ld";
      case OpClass::Store: return "st";
      case OpClass::CondBranch: return "br";
      case OpClass::Jump: return "jmp";
      case OpClass::Call: return "call";
      case OpClass::Return: return "ret";
      case OpClass::IndirectJump: return "ijmp";
      case OpClass::NumOpClasses: break;
    }
    return "?";
}

} // namespace smt
