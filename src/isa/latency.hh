/**
 * @file
 * Execution latencies per operation class — Table 1 of the paper,
 * derived from the Alpha 21164.
 *
 * The latency is the number of cycles after issue before a dependent
 * instruction may issue (given the paper's predetermined-latency wakeup).
 * Loads use the D-cache model instead; the value here is the 1-cycle hit
 * assumption used for optimistic scheduling.
 */

#ifndef SMT_ISA_LATENCY_HH
#define SMT_ISA_LATENCY_HH

#include "isa/op_class.hh"

namespace smt
{

/** Result latency in cycles for an op class (Table 1). */
unsigned opLatency(OpClass c);

/** Cycles a fully pipelined functional unit is occupied per op (always 1,
 *  as the paper assumes completely pipelined units). */
unsigned opIssueOccupancy(OpClass c);

} // namespace smt

#endif // SMT_ISA_LATENCY_HH
