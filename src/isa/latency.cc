#include "isa/latency.hh"

#include "common/logging.hh"

namespace smt
{

unsigned
opLatency(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 8;
      case OpClass::IntMultLong: return 16;
      case OpClass::CondMove: return 2;
      case OpClass::Compare: return 0;
      case OpClass::FpAlu: return 4;
      case OpClass::FpDiv: return 17;
      case OpClass::FpDivLong: return 30;
      case OpClass::Load: return 1;     // D-cache hit (Table 1).
      case OpClass::Store: return 1;
      case OpClass::CondBranch: return 1;
      case OpClass::Jump: return 1;
      case OpClass::Call: return 1;
      case OpClass::Return: return 1;
      case OpClass::IndirectJump: return 1;
      case OpClass::NumOpClasses: break;
    }
    smt_panic("bad op class %u", static_cast<unsigned>(c));
}

unsigned
opIssueOccupancy(OpClass c)
{
    (void)c;
    // "We assume that all functional units are completely pipelined"
    // (Section 2.1), so each op occupies its unit for one cycle.
    return 1;
}

} // namespace smt
