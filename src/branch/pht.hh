/**
 * @file
 * Pattern history table: 2K x 2-bit counters indexed by the XOR of the
 * branch address's low bits with the (per-context) global history
 * register — the gshare organisation of McFarling cited in Section 2.1.
 * The table itself is shared by all threads; only the history registers
 * are per-context, so threads degrade each other through counter
 * aliasing exactly as the paper's Table 3 shows.
 */

#ifndef SMT_BRANCH_PHT_HH
#define SMT_BRANCH_PHT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "common/types.hh"

namespace smt
{

/** gshare pattern history table with per-context global history. */
class Pht
{
  public:
    /**
     * @param entries table size (power of two).
     * @param history_bits global-history length; shorter histories
     *        train much faster on loop-structured code (the counters
     *        are still spread over the whole table via the XOR).
     */
    explicit Pht(unsigned entries, unsigned history_bits = 6);

    /** Predicted direction for (thread, pc) under its current history. */
    bool predict(ThreadID tid, Addr pc) const;

    /**
     * Train the counter for a resolved branch using the history the
     * branch was predicted under.
     */
    void update(Addr pc, std::uint64_t history, bool taken);

    /** History register value for a thread (snapshot before a branch). */
    std::uint64_t history(ThreadID tid) const { return history_[tid]; }

    /** Speculatively shift a predicted outcome into a thread's history. */
    void pushHistory(ThreadID tid, bool taken);

    /** Restore a thread's history after a squash: the snapshot taken at
     *  the mispredicted branch, with the actual outcome appended. */
    void restoreHistory(ThreadID tid, std::uint64_t snapshot, bool taken);

    unsigned entries() const { return static_cast<unsigned>(table_.size()); }
    std::uint64_t historyMask() const { return historyMask_; }

  private:
    std::size_t index(Addr pc, std::uint64_t history) const;

    std::vector<SatCounter> table_;
    std::uint64_t mask_;
    std::uint64_t historyMask_;
    std::array<std::uint64_t, kMaxThreads> history_{};
};

} // namespace smt

#endif // SMT_BRANCH_PHT_HH
