/**
 * @file
 * Branch target buffer: 256 entries, 4-way set associative, LRU, with a
 * thread id in each entry "to avoid predicting phantom branches"
 * (Section 2).
 *
 * Entries are tagged with a *partial* tag (10 bits above the index),
 * like real BTBs. With thread ids disabled, instructions from different
 * threads can alias on (set, tag) and hit another thread's entry — a
 * phantom branch whose bogus target the front end must discover and
 * repair at decode.
 */

#ifndef SMT_BRANCH_BTB_HH
#define SMT_BRANCH_BTB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace smt
{

/** Set-associative branch target buffer. */
class Btb
{
  public:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        Addr target = 0;
        ThreadID tid = 0;
        bool isReturn = false;
        std::uint64_t lru = 0;
    };

    Btb(unsigned entries, unsigned assoc, bool thread_ids);

    /**
     * Probe for `pc`. Without thread ids, an entry installed by any
     * thread matches (phantom-branch hazard). Updates recency.
     * @return the matching entry or nullptr.
     */
    const Entry *lookup(ThreadID tid, Addr pc);

    /** Install or refresh the entry for a taken control instruction. */
    void update(ThreadID tid, Addr pc, Addr target, bool is_return);

    unsigned sets() const { return static_cast<unsigned>(sets_); }
    unsigned assoc() const { return assoc_; }

  private:
    Entry *lookupEntry(ThreadID tid, Addr pc);
    std::size_t index(Addr pc) const;
    std::uint32_t tagOf(Addr pc) const;

    unsigned assoc_;
    bool threadIds_;
    std::size_t sets_ = 0;
    std::uint64_t lruClock_ = 0;
    std::vector<Entry> table_;
};

} // namespace smt

#endif // SMT_BRANCH_BTB_HH
