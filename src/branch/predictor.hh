/**
 * @file
 * BranchPredictor: the decoupled BTB + PHT + return-stack organisation
 * of Section 2.1, behind one facade the fetch unit drives.
 *
 * Fetch-time flow for a control instruction at pc:
 *  - conditional branch: PHT gives the direction; if taken, the BTB must
 *    supply the target (a BTB miss on a predicted-taken branch is a
 *    *misfetch* repaired at decode for a 2-cycle penalty);
 *  - direct jump/call: target comes from the BTB (miss -> misfetch);
 *  - return: the per-context return stack supplies the target;
 *  - indirect jump: the BTB supplies the last seen target.
 *
 * A `perfect` mode (Section 7's branch-prediction probe) returns the
 * oracle outcome the caller passes in.
 */

#ifndef SMT_BRANCH_PREDICTOR_HH
#define SMT_BRANCH_PREDICTOR_HH

#include <vector>

#include "branch/btb.hh"
#include "branch/pht.hh"
#include "branch/ras.hh"
#include "config/config.hh"
#include "isa/static_inst.hh"

namespace smt
{

/** What the front end learned about one fetched control instruction. */
struct FetchPrediction
{
    bool predTaken = false;   ///< predicted direction (true for all
                              ///< unconditional transfers).
    Addr predTarget = kNoAddr; ///< predicted destination; kNoAddr means
                               ///< the target is unknown (misfetch: the
                               ///< front end continues at fall-through
                               ///< and decode repairs it).
    std::uint64_t historySnapshot = 0; ///< GHR before this branch.
    unsigned rasCheckpoint = 0;        ///< TOS before this instruction.
};

/** The complete branch prediction machinery of the modelled machine. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const SmtConfig &cfg);

    /**
     * Predict a control instruction at fetch.
     * @param actual_taken / actual_target oracle outcome, used only in
     *        perfect mode (pass anything for wrong-path fetches: perfect
     *        mode never fetches wrong paths).
     */
    FetchPrediction predict(ThreadID tid, Addr pc, const StaticInst &si,
                            bool actual_taken, Addr actual_target);

    /**
     * Resolve a conditional branch: train the PHT with the history it
     * was predicted under and (for taken branches) install the BTB
     * entry. Call at commit for correct-path branches.
     */
    void resolveCondBranch(ThreadID tid, Addr pc,
                           std::uint64_t history_snapshot, bool taken,
                           Addr target);

    /** Install/refresh a BTB entry (direct targets known at decode;
     *  indirect targets known at execute). */
    void updateTarget(ThreadID tid, Addr pc, Addr target, bool is_return);

    /** Repair a thread's global history after a squash. */
    void squashRepair(ThreadID tid, std::uint64_t history_snapshot,
                      bool actual_taken, unsigned ras_checkpoint);

    /**
     * Repair after a decode-stage misfetch redirect: dropped younger
     * instructions may have pushed the history/return stack. State is
     * restored to just after the redirecting instruction's own effect.
     */
    void misfetchRepair(ThreadID tid, const StaticInst &si, Addr pc,
                        std::uint64_t history_snapshot, bool pred_taken,
                        unsigned ras_checkpoint);

    bool perfect() const { return perfect_; }

    Pht &pht() { return pht_; }
    Btb &btb() { return btb_; }
    ReturnStack &ras(ThreadID tid) { return ras_[tid]; }

  private:
    bool perfect_;
    Btb btb_;
    Pht pht_;
    std::vector<ReturnStack> ras_;
};

} // namespace smt

#endif // SMT_BRANCH_PREDICTOR_HH
