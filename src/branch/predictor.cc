#include "branch/predictor.hh"

#include "common/logging.hh"

namespace smt
{

BranchPredictor::BranchPredictor(const SmtConfig &cfg)
    : perfect_(cfg.perfectBranchPrediction),
      btb_(cfg.btbEntries, cfg.btbAssoc, cfg.btbThreadIds),
      pht_(cfg.phtEntries, cfg.phtHistoryBits)
{
    ras_.reserve(kMaxThreads);
    for (unsigned t = 0; t < kMaxThreads; ++t)
        ras_.emplace_back(cfg.rasEntries);
}

FetchPrediction
BranchPredictor::predict(ThreadID tid, Addr pc, const StaticInst &si,
                         bool actual_taken, Addr actual_target)
{
    FetchPrediction fp;
    fp.historySnapshot = pht_.history(tid);
    fp.rasCheckpoint = ras_[tid].tosCheckpoint();

    if (perfect_) {
        fp.predTaken = actual_taken;
        fp.predTarget = actual_taken ? actual_target : kNoAddr;
        if (si.isCondBranch())
            pht_.pushHistory(tid, actual_taken);
        // Keep the RAS coherent anyway (harmless; unused for prediction).
        if (si.op == OpClass::Call)
            ras_[tid].push(pc + kInstBytes);
        else if (si.op == OpClass::Return)
            ras_[tid].pop();
        return fp;
    }

    switch (si.op) {
      case OpClass::CondBranch: {
        fp.predTaken = pht_.predict(tid, pc);
        pht_.pushHistory(tid, fp.predTaken);
        if (fp.predTaken) {
            const Btb::Entry *e = btb_.lookup(tid, pc);
            fp.predTarget = e != nullptr ? e->target : kNoAddr;
        }
        break;
      }
      case OpClass::Jump:
      case OpClass::Call: {
        fp.predTaken = true;
        const Btb::Entry *e = btb_.lookup(tid, pc);
        fp.predTarget = e != nullptr ? e->target : kNoAddr;
        if (si.op == OpClass::Call)
            ras_[tid].push(pc + kInstBytes);
        break;
      }
      case OpClass::Return: {
        fp.predTaken = true;
        fp.predTarget = ras_[tid].pop();
        if (fp.predTarget == 0)
            fp.predTarget = kNoAddr; // cold stack.
        break;
      }
      case OpClass::IndirectJump: {
        fp.predTaken = true;
        const Btb::Entry *e = btb_.lookup(tid, pc);
        fp.predTarget = e != nullptr ? e->target : kNoAddr;
        break;
      }
      default:
        smt_panic("predict() on a non-control instruction");
    }
    return fp;
}

void
BranchPredictor::resolveCondBranch(ThreadID tid, Addr pc,
                                   std::uint64_t history_snapshot,
                                   bool taken, Addr target)
{
    if (perfect_)
        return;
    pht_.update(pc, history_snapshot, taken);
    if (taken)
        btb_.update(tid, pc, target, false);
}

void
BranchPredictor::updateTarget(ThreadID tid, Addr pc, Addr target,
                              bool is_return)
{
    if (perfect_)
        return;
    btb_.update(tid, pc, target, is_return);
}

void
BranchPredictor::misfetchRepair(ThreadID tid, const StaticInst &si, Addr pc,
                                std::uint64_t history_snapshot,
                                bool pred_taken, unsigned ras_checkpoint)
{
    if (perfect_)
        return;
    if (si.isCondBranch()) {
        pht_.restoreHistory(tid, history_snapshot, pred_taken);
    } else {
        // Non-conditional transfers do not push history; just restore.
        pht_.restoreHistory(tid, history_snapshot >> 1,
                            history_snapshot & 1);
    }
    ras_[tid].restore(ras_checkpoint);
    if (si.op == OpClass::Call)
        ras_[tid].push(pc + kInstBytes);
    else if (si.op == OpClass::Return)
        ras_[tid].pop();
}

void
BranchPredictor::squashRepair(ThreadID tid, std::uint64_t history_snapshot,
                              bool actual_taken, unsigned ras_checkpoint)
{
    if (perfect_)
        return;
    pht_.restoreHistory(tid, history_snapshot, actual_taken);
    ras_[tid].restore(ras_checkpoint);
}

} // namespace smt
