#include "branch/pht.hh"

#include "common/logging.hh"

namespace smt
{

Pht::Pht(unsigned entries, unsigned history_bits)
    : table_(entries, SatCounter(2, 2 /* weakly taken: loop-friendly */)),
      mask_(entries - 1),
      historyMask_((std::uint64_t{1} << history_bits) - 1)
{
    smt_assert(entries > 0 && (entries & (entries - 1)) == 0,
               "PHT entries must be a power of two");
    smt_assert(history_bits >= 1 && history_bits <= 20);
}

std::size_t
Pht::index(Addr pc, std::uint64_t history) const
{
    return ((pc / kInstBytes) ^ history) & mask_;
}

bool
Pht::predict(ThreadID tid, Addr pc) const
{
    return table_[index(pc, history_[tid])].isSet();
}

void
Pht::update(Addr pc, std::uint64_t history, bool taken)
{
    SatCounter &ctr = table_[index(pc, history)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

void
Pht::pushHistory(ThreadID tid, bool taken)
{
    history_[tid] = ((history_[tid] << 1) | (taken ? 1 : 0)) & historyMask_;
}

void
Pht::restoreHistory(ThreadID tid, std::uint64_t snapshot, bool taken)
{
    history_[tid] = ((snapshot << 1) | (taken ? 1 : 0)) & historyMask_;
}

} // namespace smt
