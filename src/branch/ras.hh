/**
 * @file
 * Per-context return address stack: 12 entries (Section 2.1). The stack
 * is a circular buffer that silently wraps on overflow, like real
 * hardware; a simple top-of-stack pointer checkpoint supports squash
 * repair (contents corruption by wrong-path pushes/pops remains — also
 * like real hardware of the era).
 */

#ifndef SMT_BRANCH_RAS_HH
#define SMT_BRANCH_RAS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace smt
{

/** A circular return-address stack for one hardware context. */
class ReturnStack
{
  public:
    explicit ReturnStack(unsigned entries = 12)
        : stack_(entries, 0)
    {
    }

    /** Push a return address (on fetching a call). */
    void
    push(Addr return_pc)
    {
        tos_ = (tos_ + 1) % stack_.size();
        stack_[tos_] = return_pc;
    }

    /** Predicted target for a return; pops. Returns 0 when empty-ish
     *  (a wrapped stack can't detect emptiness — hardware doesn't). */
    Addr
    pop()
    {
        const Addr top = stack_[tos_];
        tos_ = (tos_ + stack_.size() - 1) % stack_.size();
        return top;
    }

    /** Checkpoint of the TOS pointer, stored with each branch. */
    unsigned tosCheckpoint() const { return tos_; }

    /** Restore the TOS pointer after a squash. */
    void restore(unsigned checkpoint) { tos_ = checkpoint; }

    unsigned entries() const { return static_cast<unsigned>(stack_.size()); }

  private:
    std::vector<Addr> stack_;
    unsigned tos_ = 0;
};

} // namespace smt

#endif // SMT_BRANCH_RAS_HH
