#include "branch/btb.hh"

#include "common/logging.hh"

namespace smt
{

namespace
{

constexpr unsigned kTagBits = 10;

} // namespace

Btb::Btb(unsigned entries, unsigned assoc, bool thread_ids)
    : assoc_(assoc), threadIds_(thread_ids)
{
    smt_assert(entries > 0 && assoc > 0 && entries % assoc == 0);
    sets_ = entries / assoc;
    smt_assert((sets_ & (sets_ - 1)) == 0, "BTB set count must be 2^n");
    table_.resize(entries);
}

std::size_t
Btb::index(Addr pc) const
{
    return (pc / kInstBytes) & (sets_ - 1);
}

std::uint32_t
Btb::tagOf(Addr pc) const
{
    return static_cast<std::uint32_t>((pc / kInstBytes / sets_)
                                      & ((1u << kTagBits) - 1));
}

Btb::Entry *
Btb::lookupEntry(ThreadID tid, Addr pc)
{
    const std::size_t set = index(pc);
    const std::uint32_t tag = tagOf(pc);
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = table_[set * assoc_ + w];
        if (e.valid && e.tag == tag && (!threadIds_ || e.tid == tid))
            return &e;
    }
    return nullptr;
}

const Btb::Entry *
Btb::lookup(ThreadID tid, Addr pc)
{
    Entry *e = lookupEntry(tid, pc);
    if (e == nullptr)
        return nullptr;
    e->lru = ++lruClock_;
    return e;
}

void
Btb::update(ThreadID tid, Addr pc, Addr target, bool is_return)
{
    Entry *e = lookupEntry(tid, pc);
    if (e == nullptr) {
        // Victimise the LRU way of the set.
        const std::size_t set = index(pc);
        e = &table_[set * assoc_];
        for (unsigned w = 1; w < assoc_; ++w) {
            Entry &cand = table_[set * assoc_ + w];
            if (!cand.valid) {
                e = &cand;
                break;
            }
            if (cand.lru < e->lru)
                e = &cand;
        }
        e->valid = true;
        e->tag = tagOf(pc);
        e->tid = tid;
    }
    e->target = target;
    e->isReturn = is_return;
    e->lru = ++lruClock_;
}

} // namespace smt
