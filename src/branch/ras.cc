// ReturnStack is header-only; this translation unit exists so the
// branch library always has at least one object per component and to
// host any future out-of-line growth.
#include "branch/ras.hh"
