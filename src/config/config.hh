/**
 * @file
 * SmtConfig: every architectural knob evaluated in Tullsen et al. (ISCA'96),
 * with defaults matching the paper's base SMT machine (Section 2).
 *
 * Each experiment in the paper is expressible as a small mutation of the
 * default-constructed config; named presets for the paper's machines live
 * in config.cc.
 */

#ifndef SMT_CONFIG_CONFIG_HH
#define SMT_CONFIG_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace smt
{

/** Thread-selection priority policy for the fetch unit (Section 5.2). */
enum class FetchPolicy : std::uint8_t
{
    RoundRobin, ///< RR: rotate over threads not blocked on an I-cache miss.
    BrCount,    ///< fewest unresolved branches in decode/rename/IQ.
    MissCount,  ///< fewest outstanding D-cache misses.
    ICount,     ///< fewest instructions in decode/rename/IQ.
    IQPosn,     ///< instructions farthest from the IQ heads.
};

/** Instruction-selection priority policy for issue (Section 6). */
enum class IssuePolicy : std::uint8_t
{
    OldestFirst, ///< deepest-in-queue first (default).
    OptLast,     ///< optimistically-issued loads' dependents last.
    SpecLast,    ///< instructions behind an unresolved same-thread branch
                 ///< last.
    BranchFirst, ///< branches as early as possible.
};

/** Speculation restrictions explored in Section 7. */
enum class SpeculationMode : std::uint8_t
{
    Full,            ///< normal operation: fully speculative issue.
    NoPassBranch,    ///< instructions may not issue before an earlier
                     ///< unresolved branch of the same thread.
    NoWrongPathIssue ///< guarantee no wrong-path issue: delay issue until
                     ///< 4 cycles after the preceding branch issued.
};

/** Geometry and timing of one cache level (Table 2). */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 1;            ///< 1 = direct mapped.
    unsigned lineBytes = 64;
    unsigned banks = 8;
    unsigned accessesPerCycle = 1; ///< per-bank issue rate numerator.
    unsigned cyclesPerAccess = 1;  ///< per-bank occupancy per access.
    unsigned transferCycles = 1;   ///< time on the bus from the level below.
    unsigned fillCycles = 2;       ///< bank busy time when a fill arrives.
    unsigned latencyToNext = 6;    ///< request latency to the next level.
    unsigned mshrs = 32;           ///< outstanding-miss capacity.
};

/** The complete machine configuration. */
struct SmtConfig
{
    // ---- Threads and widths -------------------------------------------
    unsigned numThreads = 8;       ///< hardware contexts.
    unsigned fetchWidth = 8;       ///< max total instructions fetched/cycle.
    unsigned fetchThreads = 1;     ///< num1 in alg.num1.num2.
    unsigned fetchPerThread = 8;   ///< num2 in alg.num1.num2.
    unsigned decodeWidth = 8;
    unsigned renameWidth = 8;
    unsigned commitWidth = 8;      ///< shared, retirement in order per
                                   ///< thread.

    // ---- Fetch / issue policy ------------------------------------------
    FetchPolicy fetchPolicy = FetchPolicy::RoundRobin;
    IssuePolicy issuePolicy = IssuePolicy::OldestFirst;
    /**
     * Registry-name overrides. When non-empty these select the fetch /
     * issue policy by PolicyRegistry name (e.g. "ICOUNT+MISSCOUNT"),
     * reaching policies that have no enum value; when empty, the enums
     * above select one of the paper's policies.
     */
    std::string fetchPolicyName;
    std::string issuePolicyName;
    SpeculationMode speculation = SpeculationMode::Full;
    bool itagEarlyLookup = false;  ///< ITAG: probe I-cache tags a cycle
                                   ///< early; adds one front-end stage.

    // ---- Instruction queues (Section 2.1 / BIGQ of Section 5.3) --------
    unsigned intQueueEntries = 32;
    unsigned fpQueueEntries = 32;
    unsigned iqSearchWindow = 32;  ///< entries eligible for issue search;
                                   ///< BIGQ doubles entries, keeps this 32.

    // ---- Functional units ----------------------------------------------
    unsigned intUnits = 6;
    unsigned loadStoreUnits = 4;   ///< subset of the integer units.
    unsigned fpUnits = 3;
    bool infiniteFunctionalUnits = false; ///< Section 7 bottleneck probe.

    // ---- Register files --------------------------------------------------
    /**
     * Renaming registers per file beyond the architectural 32 per thread.
     * Physical registers per file = 32 * numThreads + excessRegisters,
     * unless totalPhysRegisters overrides the sum (Figure 7).
     */
    unsigned excessRegisters = 100;
    /** When nonzero: fix the total per-file physical registers (Fig. 7). */
    unsigned totalPhysRegisters = 0;

    // ---- Pipeline ---------------------------------------------------------
    /**
     * True models the SMT pipeline of Figure 2(b): two register-read
     * stages and an extra register-write stage. False models the
     * conventional superscalar pipeline of Figure 2(a).
     */
    bool longRegisterPipeline = true;

    // ---- Branch prediction ----------------------------------------------
    unsigned btbEntries = 256;
    unsigned btbAssoc = 4;
    bool btbThreadIds = true;      ///< tag entries with thread ids to avoid
                                   ///< phantom branches (Section 2).
    unsigned phtEntries = 2048;    ///< 2K x 2-bit pattern history table.
    unsigned phtHistoryBits = 6;   ///< global-history length for gshare.
    unsigned rasEntries = 12;      ///< per-context return stack.
    bool perfectBranchPrediction = false; ///< Section 7 probe.

    // ---- Memory hierarchy (Table 2) --------------------------------------
    CacheParams icache{"ICache", 32 * 1024, 1, 64, 8, 4, 1, 1, 2, 6, 32};
    CacheParams dcache{"DCache", 32 * 1024, 1, 64, 8, 4, 1, 1, 2, 6, 32};
    CacheParams l2{"L2", 256 * 1024, 4, 64, 8, 1, 1, 1, 2, 12, 32};
    CacheParams l3{"L3", 2 * 1024 * 1024, 1, 64, 1, 1, 4, 4, 8, 62, 32};
    bool infiniteCacheBandwidth = false; ///< latencies kept, no bank/bus
                                         ///< conflicts (Section 7 probe).

    unsigned itlbEntries = 64;
    unsigned dtlbEntries = 64;
    unsigned pageBytes = 8 * 1024;

    /** Bits of address used for memory disambiguation (Section 2.1). */
    unsigned disambiguationBits = 10;

    // ---- Simulation control ----------------------------------------------
    std::uint64_t seed = 1;

    // ---- Derived quantities ----------------------------------------------
    /** Physical registers per file implied by this config. */
    unsigned
    physRegsPerFile() const
    {
        if (totalPhysRegisters != 0)
            return totalPhysRegisters;
        return kLogRegsPerFile * numThreads + excessRegisters;
    }

    /** The registry name of the selected fetch policy. */
    std::string resolvedFetchPolicyName() const;

    /** The registry name of the selected issue policy. */
    std::string resolvedIssuePolicyName() const;

    /** A human-readable fetch-scheme label, e.g. "ICOUNT.2.8". */
    std::string fetchSchemeName() const;

    /** Abort with a description if the configuration is inconsistent. */
    void validate() const;
};

/** Named machine presets used throughout tests, examples, and benches. */
namespace presets
{

/** The base SMT machine of Section 2 (RR.1.8 fetch). */
SmtConfig baseSmt(unsigned threads);

/** The unmodified superscalar: one thread, short register pipeline. */
SmtConfig unmodifiedSuperscalar();

/**
 * The improved machine of Section 7: ICOUNT.2.8 fetch with the base
 * hardware sizes.
 */
SmtConfig icount28(unsigned threads);

/** Set the fetch partitioning scheme (num1 x num2, total width 8). */
void setFetchPartition(SmtConfig &cfg, unsigned threads_per_cycle,
                       unsigned width_per_thread);

} // namespace presets

/** Short display names for the policies. */
const char *toString(FetchPolicy p);
const char *toString(IssuePolicy p);
const char *toString(SpeculationMode m);

} // namespace smt

#endif // SMT_CONFIG_CONFIG_HH
