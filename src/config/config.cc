#include "config/config.hh"

#include <sstream>

#include "common/logging.hh"
#include "policy/registry.hh"

namespace smt
{

const char *
toString(FetchPolicy p)
{
    switch (p) {
      case FetchPolicy::RoundRobin: return "RR";
      case FetchPolicy::BrCount: return "BRCOUNT";
      case FetchPolicy::MissCount: return "MISSCOUNT";
      case FetchPolicy::ICount: return "ICOUNT";
      case FetchPolicy::IQPosn: return "IQPOSN";
    }
    return "?";
}

const char *
toString(IssuePolicy p)
{
    switch (p) {
      case IssuePolicy::OldestFirst: return "OLDEST_FIRST";
      case IssuePolicy::OptLast: return "OPT_LAST";
      case IssuePolicy::SpecLast: return "SPEC_LAST";
      case IssuePolicy::BranchFirst: return "BRANCH_FIRST";
    }
    return "?";
}

const char *
toString(SpeculationMode m)
{
    switch (m) {
      case SpeculationMode::Full: return "full";
      case SpeculationMode::NoPassBranch: return "no-pass-branch";
      case SpeculationMode::NoWrongPathIssue: return "no-wrong-path-issue";
    }
    return "?";
}

std::string
SmtConfig::resolvedFetchPolicyName() const
{
    return fetchPolicyName.empty() ? toString(fetchPolicy)
                                   : fetchPolicyName;
}

std::string
SmtConfig::resolvedIssuePolicyName() const
{
    return issuePolicyName.empty() ? toString(issuePolicy)
                                   : issuePolicyName;
}

std::string
SmtConfig::fetchSchemeName() const
{
    std::ostringstream os;
    os << resolvedFetchPolicyName() << '.' << fetchThreads << '.'
       << fetchPerThread;
    return os.str();
}

void
SmtConfig::validate() const
{
    if (numThreads < 1 || numThreads > kMaxThreads)
        smt_fatal("numThreads must be in [1, %u], got %u", kMaxThreads,
                  numThreads);
    // fetchThreads may exceed numThreads (e.g. a 2.8 scheme run with one
    // thread); the fetch unit clamps to the live thread count.
    if (fetchThreads < 1 || fetchThreads > kMaxThreads)
        smt_fatal("fetchThreads (%u) must be in [1, %u]", fetchThreads,
                  kMaxThreads);
    if (fetchPerThread < 1 || fetchPerThread > fetchWidth)
        smt_fatal("fetchPerThread (%u) must be in [1, fetchWidth=%u]",
                  fetchPerThread, fetchWidth);
    if (iqSearchWindow > intQueueEntries || iqSearchWindow > fpQueueEntries)
        smt_fatal("iqSearchWindow (%u) exceeds a queue size", iqSearchWindow);
    if (loadStoreUnits > intUnits)
        smt_fatal("loadStoreUnits (%u) must not exceed intUnits (%u)",
                  loadStoreUnits, intUnits);
    const unsigned min_regs = kLogRegsPerFile * numThreads + 1;
    if (physRegsPerFile() < min_regs)
        smt_fatal("%u physical registers per file cannot hold %u "
                  "architectural registers plus renaming space",
                  physRegsPerFile(), min_regs - 1);
    for (const CacheParams *cp : {&icache, &dcache, &l2, &l3}) {
        if (cp->sizeBytes == 0 || cp->lineBytes == 0 || cp->banks == 0)
            smt_fatal("%s: zero size, line, or banks", cp->name.c_str());
        if (cp->sizeBytes % (cp->lineBytes * cp->assoc * cp->banks) != 0)
            smt_fatal("%s: size must be divisible by line*assoc*banks",
                      cp->name.c_str());
    }
    if (pageBytes == 0 || (pageBytes & (pageBytes - 1)) != 0)
        smt_fatal("pageBytes must be a power of two");
    const auto &registry = policy::PolicyRegistry::instance();
    if (!registry.hasFetchPolicy(resolvedFetchPolicyName()))
        smt_fatal("unregistered fetch policy \"%s\"",
                  resolvedFetchPolicyName().c_str());
    if (!registry.hasIssuePolicy(resolvedIssuePolicyName()))
        smt_fatal("unregistered issue policy \"%s\"",
                  resolvedIssuePolicyName().c_str());
}

namespace presets
{

SmtConfig
baseSmt(unsigned threads)
{
    SmtConfig cfg;
    cfg.numThreads = threads;
    cfg.fetchPolicy = FetchPolicy::RoundRobin;
    cfg.fetchThreads = 1;
    cfg.fetchPerThread = 8;
    return cfg;
}

SmtConfig
unmodifiedSuperscalar()
{
    SmtConfig cfg;
    cfg.numThreads = 1;
    cfg.longRegisterPipeline = false;
    return cfg;
}

SmtConfig
icount28(unsigned threads)
{
    SmtConfig cfg = baseSmt(threads);
    cfg.fetchPolicy = FetchPolicy::ICount;
    setFetchPartition(cfg, 2, 8);
    return cfg;
}

void
setFetchPartition(SmtConfig &cfg, unsigned threads_per_cycle,
                  unsigned width_per_thread)
{
    cfg.fetchThreads = threads_per_cycle;
    cfg.fetchPerThread = width_per_thread;
}

} // namespace presets

} // namespace smt
