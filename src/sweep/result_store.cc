#include "sweep/result_store.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sweep/remote_store.hh"

namespace fs = std::filesystem;

namespace smt::sweep
{

namespace
{

std::string
thisHost()
{
    char name[256] = {};
    if (::gethostname(name, sizeof name - 1) != 0)
        return "unknown";
    return name;
}

std::optional<Json>
readJsonFile(const std::string &path)
{
    Json j;
    if (!Json::readFile(path, j))
        return std::nullopt;
    return j;
}


/** True when `pid` is known dead on this host. A marker we cannot
 *  probe (foreign host, permission error) is presumed alive. */
bool
pidIsDead(long pid)
{
    if (pid <= 0)
        return true;
    return ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
}

/** Wall-clock seconds since the Unix epoch — marker deadlines compare
 *  *across hosts*, so this must be the system clock, not steady. */
double
epochSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

double
markerSkewSlackSeconds()
{
    if (const char *env = std::getenv("SMTSWEEP_MARKER_SLACK");
        env != nullptr) {
        char *end = nullptr;
        const double slack = std::strtod(env, &end);
        if (end != env && slack >= 0.0)
            return slack;
    }
    return 10.0;
}

Json
makeSelfMarker(double ttl_seconds)
{
    Json marker = Json::object();
    marker.set("pid", Json(static_cast<std::uint64_t>(::getpid())));
    marker.set("host", Json(thisHost()));
    marker.set("deadline", Json(epochSeconds() + ttl_seconds));
    return marker;
}

bool
sameMarkerOwner(const std::string &marker_text, const Json &marker)
{
    // Markers cross the wire from peers we do not control: nothing
    // here may be fatal on a type-confused field (asUInt/asString
    // abort), only false.
    Json current;
    if (!Json::parse(marker_text, current)
        || current.type() != Json::Type::Object || !current.has("pid")
        || !current.has("host") || marker.type() != Json::Type::Object
        || !marker.has("pid") || !marker.has("host"))
        return false;
    const Json &a_host = current.at("host");
    const Json &b_host = marker.at("host");
    return current.at("pid").isNumber() && marker.at("pid").isNumber()
           && current.at("pid").asDouble()
                  == marker.at("pid").asDouble()
           && a_host.type() == Json::Type::String
           && b_host.type() == Json::Type::String
           && a_host.asString() == b_host.asString();
}

WorkState
classifyMarkerText(const std::string &marker_text,
                   const std::string &local_host)
{
    if (marker_text.empty())
        return WorkState::Pending;
    // A marker that exists but is malformed is a writer that crashed
    // mid-write: orphaned, not pending. Field reads must stay
    // non-fatal whatever a peer wrote (asUInt aborts on a negative
    // pid, asString on a non-string host), so go through asDouble and
    // explicit type checks.
    Json marker;
    if (!Json::parse(marker_text, marker)
        || marker.type() != Json::Type::Object || !marker.has("pid")
        || !marker.at("pid").isNumber())
        return WorkState::Orphaned;

    const double pid = marker.at("pid").asDouble();
    if (pid <= 0)
        return WorkState::Orphaned; // a declared orphan (any host).

    // The TTL lease: an expired deadline (past the clock-skew slack)
    // is a dead worker, whatever host wrote the marker — the one
    // death signal that needs no coordinator and no pid probe.
    if (marker.has("deadline") && marker.at("deadline").isNumber()
        && epochSeconds() > marker.at("deadline").asDouble()
                                + markerSkewSlackSeconds())
        return WorkState::Orphaned;

    const std::string host =
        marker.has("host")
                && marker.at("host").type() == Json::Type::String
            ? marker.at("host").asString()
            : "unknown";
    if (host == local_host && pidIsDead(static_cast<long>(pid)))
        return WorkState::Orphaned;
    return WorkState::InProgress;
}

const char *
toString(WorkState state)
{
    switch (state) {
    case WorkState::Done:
        return "done";
    case WorkState::InProgress:
        return "in-progress";
    case WorkState::Orphaned:
        return "orphaned";
    case WorkState::Pending:
        return "pending";
    }
    smt_panic("invalid WorkState %d", static_cast<int>(state));
}

LocalDirStore::LocalDirStore(const std::string &dir) : cache_(dir) {}

std::string
LocalDirStore::markerPath(const std::string &digest) const
{
    return cache_.dir() + "/" + digest + ".inprogress";
}

std::string
LocalDirStore::manifestPath() const
{
    return cache_.dir() + "/sweep-manifest.json";
}

std::optional<SimStats>
LocalDirStore::lookup(const std::string &digest) const
{
    return cache_.lookup(digest);
}

void
LocalDirStore::store(const std::string &digest, const SmtConfig &cfg,
                     const MeasureOptions &opts, const SimStats &stats,
                     double measure_seconds)
{
    cache_.store(digest, cfg, opts, stats, measure_seconds);
    clearInProgress(digest);
}

std::optional<double>
LocalDirStore::observedCost(const std::string &digest) const
{
    return cache_.observedCost(digest);
}

std::map<std::string, double>
LocalDirStore::observedCosts() const
{
    std::map<std::string, double> costs;
    for (const std::string &digest : cache_.listDigests()) {
        if (const std::optional<double> seconds =
                cache_.observedCost(digest))
            costs.emplace(digest, *seconds);
    }
    return costs;
}

void
LocalDirStore::writeMarker(const std::string &digest, const Json &marker)
{
    marker.writeFileAtomic(markerPath(digest));
}

void
LocalDirStore::markInProgress(const std::string &digest,
                              double ttl_seconds)
{
    writeMarker(digest, makeSelfMarker(ttl_seconds));
}

void
LocalDirStore::clearInProgress(const std::string &digest)
{
    std::error_code ec;
    fs::remove(markerPath(digest), ec);
}

void
LocalDirStore::markOrphaned(const std::string &digest)
{
    if (cache_.lookup(digest).has_value())
        return; // finished after all: nothing to declare.
    // pid 0 can never be a live worker, so every observer — any host,
    // any process — classifies this marker as Orphaned.
    Json marker = Json::object();
    marker.set("pid", Json(static_cast<std::uint64_t>(0)));
    marker.set("host", Json(thisHost()));
    writeMarker(digest, marker);
}

std::string
LocalDirStore::readMarkerText(const std::string &digest) const
{
    return readFileBytes(markerPath(digest)).value_or("");
}

bool
LocalDirStore::tryAdopt(const std::string &digest,
                        const std::string &expected_marker)
{
    // The claim lock serializes racing adopters of one digest: O_EXCL
    // creation is the atomic step, the marker rewrite happens inside
    // it. A crash while holding the lock leaks it — that digest then
    // stays unadoptable until the coordinator's recovery pass, which
    // measures leftovers itself; advisory is good enough here.
    const std::string lock_path = markerPath(digest) + ".lock";
    const int fd =
        ::open(lock_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false; // a rival adopter holds the claim.
    ::close(fd);

    bool won = false;
    if (!cache_.readEntryText(digest).has_value()) {
        const std::string current = readMarkerText(digest);
        // A marker already carrying this process's claim means an
        // earlier attempt won (matching the wire protocol's retry
        // semantics). Ownership is compared by {pid, host}, not exact
        // bytes — deadlines refresh, bytes don't stay put. The normal
        // CAS applies otherwise.
        const Json mine = makeSelfMarker();
        if (sameMarkerOwner(current, mine))
            won = true;
        else if (current == expected_marker) {
            writeMarker(digest, mine);
            won = true;
        }
    }
    std::error_code ec;
    fs::remove(lock_path, ec);
    return won;
}

WorkState
LocalDirStore::state(const std::string &digest) const
{
    if (cache_.lookup(digest).has_value())
        return WorkState::Done;
    // An existing-but-empty marker file is a torn write, which
    // classify() would read as Pending; check existence explicitly.
    const std::string marker_text = readMarkerText(digest);
    if (marker_text.empty()) {
        std::error_code ec;
        return fs::exists(markerPath(digest), ec) ? WorkState::Orphaned
                                                  : WorkState::Pending;
    }
    return classifyMarkerText(marker_text, thisHost());
}

std::vector<std::string>
LocalDirStore::storedDigests() const
{
    return cache_.listDigests();
}

void
LocalDirStore::writeManifest(const Json &manifest)
{
    manifest.writeFileAtomic(manifestPath());
}

std::optional<Json>
LocalDirStore::readManifest() const
{
    return readJsonFile(manifestPath());
}

std::string
LocalDirStore::description() const
{
    return "dir:" + cache_.dir();
}

MarkerHeartbeat::MarkerHeartbeat(ResultStore &store, double ttl_seconds)
    : store_(store), ttl_(ttl_seconds),
      thread_([this] { loop(); })
{
}

MarkerHeartbeat::~MarkerHeartbeat()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
MarkerHeartbeat::add(const std::string &digest)
{
    std::lock_guard<std::mutex> lock(mu_);
    live_.insert(digest);
}

void
MarkerHeartbeat::remove(const std::string &digest)
{
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(digest);
}

void
MarkerHeartbeat::loop()
{
    // Refresh three times per lease so one delayed beat (scheduling,
    // a slow store round trip) still lands inside the TTL + slack.
    const auto cadence = std::chrono::duration<double>(
        std::max(0.05, ttl_ / 3.0));
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        if (cv_.wait_for(lock, cadence, [this] { return stop_; }))
            return;
        if (live_.empty())
            continue;
        // Refresh while *holding* the lock: remove() cannot return
        // with a beat for its digest still in flight, so the caller's
        // remove-then-store sequence can never have its freshly
        // cleared marker resurrected by a posthumous refresh.
        const std::vector<std::string> live(live_.begin(),
                                            live_.end());
        store_.refreshMarkers(live, ttl_);
    }
}

std::string
resolveStoreToken(const std::string &token,
                  const std::string &token_file)
{
    auto trimmed = [](std::string text) {
        const char *ws = " \t\r\n";
        const std::size_t first = text.find_first_not_of(ws);
        if (first == std::string::npos)
            return std::string();
        const std::size_t last = text.find_last_not_of(ws);
        return text.substr(first, last - first + 1);
    };
    if (!token.empty())
        return token;
    if (!token_file.empty()) {
        const std::optional<std::string> bytes =
            readFileBytes(token_file);
        if (!bytes.has_value())
            smt_fatal("cannot read the token file %s",
                      token_file.c_str());
        // The documented contract is "the file's first line": later
        // lines (comments, a trailing key ceremony) must not leak
        // into the token — an embedded newline would corrupt the
        // Authorization header and disagree with what an ssh worker's
        // one-line read received.
        const std::string first_line =
            bytes->substr(0, bytes->find('\n'));
        const std::string file_token = trimmed(first_line);
        if (file_token.empty())
            smt_fatal("token file %s is empty", token_file.c_str());
        return file_token;
    }
    if (const char *env = std::getenv("SMTSTORE_TOKEN");
        env != nullptr)
        return trimmed(env);
    return "";
}

std::unique_ptr<ResultStore>
openLocalStore(const std::string &dir)
{
    return std::make_unique<LocalDirStore>(dir);
}

std::unique_ptr<ResultStore>
openStore(const std::string &locator, const std::string &token)
{
    if (isRemoteStoreLocator(locator))
        return openRemoteStore(locator, token);
    return openLocalStore(locator);
}

} // namespace smt::sweep
