#include "sweep/result_store.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sweep/remote_store.hh"

namespace fs = std::filesystem;

namespace smt::sweep
{

namespace
{

std::string
thisHost()
{
    char name[256] = {};
    if (::gethostname(name, sizeof name - 1) != 0)
        return "unknown";
    return name;
}

std::optional<Json>
readJsonFile(const std::string &path)
{
    Json j;
    if (!Json::readFile(path, j))
        return std::nullopt;
    return j;
}


/** True when `pid` is known dead on this host. A marker we cannot
 *  probe (foreign host, permission error) is presumed alive. */
bool
pidIsDead(long pid)
{
    if (pid <= 0)
        return true;
    return ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
}

} // namespace

Json
makeSelfMarker()
{
    Json marker = Json::object();
    marker.set("pid", Json(static_cast<std::uint64_t>(::getpid())));
    marker.set("host", Json(thisHost()));
    return marker;
}

const char *
toString(WorkState state)
{
    switch (state) {
    case WorkState::Done:
        return "done";
    case WorkState::InProgress:
        return "in-progress";
    case WorkState::Orphaned:
        return "orphaned";
    case WorkState::Pending:
        return "pending";
    }
    smt_panic("invalid WorkState %d", static_cast<int>(state));
}

LocalDirStore::LocalDirStore(const std::string &dir) : cache_(dir) {}

std::string
LocalDirStore::markerPath(const std::string &digest) const
{
    return cache_.dir() + "/" + digest + ".inprogress";
}

std::string
LocalDirStore::manifestPath() const
{
    return cache_.dir() + "/sweep-manifest.json";
}

std::optional<SimStats>
LocalDirStore::lookup(const std::string &digest) const
{
    return cache_.lookup(digest);
}

void
LocalDirStore::store(const std::string &digest, const SmtConfig &cfg,
                     const MeasureOptions &opts, const SimStats &stats,
                     double measure_seconds)
{
    cache_.store(digest, cfg, opts, stats, measure_seconds);
    clearInProgress(digest);
}

std::optional<double>
LocalDirStore::observedCost(const std::string &digest) const
{
    return cache_.observedCost(digest);
}

std::map<std::string, double>
LocalDirStore::observedCosts() const
{
    std::map<std::string, double> costs;
    for (const std::string &digest : cache_.listDigests()) {
        if (const std::optional<double> seconds =
                cache_.observedCost(digest))
            costs.emplace(digest, *seconds);
    }
    return costs;
}

void
LocalDirStore::writeMarker(const std::string &digest, const Json &marker)
{
    marker.writeFileAtomic(markerPath(digest));
}

void
LocalDirStore::markInProgress(const std::string &digest)
{
    writeMarker(digest, makeSelfMarker());
}

void
LocalDirStore::clearInProgress(const std::string &digest)
{
    std::error_code ec;
    fs::remove(markerPath(digest), ec);
}

void
LocalDirStore::markOrphaned(const std::string &digest)
{
    if (cache_.lookup(digest).has_value())
        return; // finished after all: nothing to declare.
    // pid 0 can never be a live worker, so every observer — any host,
    // any process — classifies this marker as Orphaned.
    Json marker = Json::object();
    marker.set("pid", Json(static_cast<std::uint64_t>(0)));
    marker.set("host", Json(thisHost()));
    writeMarker(digest, marker);
}

std::string
LocalDirStore::readMarkerText(const std::string &digest) const
{
    return readFileBytes(markerPath(digest)).value_or("");
}

bool
LocalDirStore::tryAdopt(const std::string &digest,
                        const std::string &expected_marker)
{
    // The claim lock serializes racing adopters of one digest: O_EXCL
    // creation is the atomic step, the marker rewrite happens inside
    // it. A crash while holding the lock leaks it — that digest then
    // stays unadoptable until the coordinator's recovery pass, which
    // measures leftovers itself; advisory is good enough here.
    const std::string lock_path = markerPath(digest) + ".lock";
    const int fd =
        ::open(lock_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false; // a rival adopter holds the claim.
    ::close(fd);

    bool won = false;
    if (!cache_.readEntryText(digest).has_value()) {
        const std::string current = readMarkerText(digest);
        // A marker already carrying this process's claim means an
        // earlier attempt won (matching the wire protocol's retry
        // semantics); the normal CAS applies otherwise.
        const Json mine = makeSelfMarker();
        if (current == mine.dump(2) + "\n")
            won = true;
        else if (current == expected_marker) {
            writeMarker(digest, mine);
            won = true;
        }
    }
    std::error_code ec;
    fs::remove(lock_path, ec);
    return won;
}

WorkState
LocalDirStore::state(const std::string &digest) const
{
    if (cache_.lookup(digest).has_value())
        return WorkState::Done;

    const std::string marker_path = markerPath(digest);
    std::error_code ec;
    if (!fs::exists(marker_path, ec))
        return WorkState::Pending;
    // A marker that exists but is malformed is a writer that crashed
    // mid-write: orphaned, not pending.
    const std::optional<Json> marker = readJsonFile(marker_path);
    if (!marker.has_value() || marker->type() != Json::Type::Object
        || !marker->has("pid"))
        return WorkState::Orphaned;

    const long pid = static_cast<long>(marker->at("pid").asUInt());
    if (pid <= 0)
        return WorkState::Orphaned; // a declared orphan (any host).
    const std::string host =
        marker->has("host") ? marker->at("host").asString() : "unknown";
    if (host == thisHost() && pidIsDead(pid))
        return WorkState::Orphaned;
    return WorkState::InProgress;
}

std::vector<std::string>
LocalDirStore::storedDigests() const
{
    return cache_.listDigests();
}

void
LocalDirStore::writeManifest(const Json &manifest)
{
    manifest.writeFileAtomic(manifestPath());
}

std::optional<Json>
LocalDirStore::readManifest() const
{
    return readJsonFile(manifestPath());
}

std::string
LocalDirStore::description() const
{
    return "dir:" + cache_.dir();
}

std::unique_ptr<ResultStore>
openLocalStore(const std::string &dir)
{
    return std::make_unique<LocalDirStore>(dir);
}

std::unique_ptr<ResultStore>
openStore(const std::string &locator)
{
    if (isRemoteStoreLocator(locator))
        return openRemoteStore(locator);
    return openLocalStore(locator);
}

} // namespace smt::sweep
