#include "sweep/result_store.hh"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace fs = std::filesystem;

namespace smt::sweep
{

namespace
{

std::string
thisHost()
{
    char name[256] = {};
    if (::gethostname(name, sizeof name - 1) != 0)
        return "unknown";
    return name;
}

std::optional<Json>
readJsonFile(const std::string &path)
{
    Json j;
    if (!Json::readFile(path, j))
        return std::nullopt;
    return j;
}

/** True when `pid` is known dead on this host. A marker we cannot
 *  probe (foreign host, permission error) is presumed alive. */
bool
pidIsDead(long pid)
{
    if (pid <= 0)
        return true;
    return ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
}

} // namespace

const char *
toString(WorkState state)
{
    switch (state) {
    case WorkState::Done:
        return "done";
    case WorkState::InProgress:
        return "in-progress";
    case WorkState::Orphaned:
        return "orphaned";
    case WorkState::Pending:
        return "pending";
    }
    smt_panic("invalid WorkState %d", static_cast<int>(state));
}

LocalDirStore::LocalDirStore(const std::string &dir) : cache_(dir) {}

std::string
LocalDirStore::markerPath(const std::string &digest) const
{
    return cache_.dir() + "/" + digest + ".inprogress";
}

std::string
LocalDirStore::manifestPath() const
{
    return cache_.dir() + "/sweep-manifest.json";
}

std::optional<SimStats>
LocalDirStore::lookup(const std::string &digest) const
{
    return cache_.lookup(digest);
}

void
LocalDirStore::store(const std::string &digest, const SmtConfig &cfg,
                     const MeasureOptions &opts, const SimStats &stats)
{
    cache_.store(digest, cfg, opts, stats);
    clearInProgress(digest);
}

void
LocalDirStore::markInProgress(const std::string &digest)
{
    Json marker = Json::object();
    marker.set("pid", Json(static_cast<std::uint64_t>(::getpid())));
    marker.set("host", Json(thisHost()));
    marker.writeFileAtomic(markerPath(digest));
}

void
LocalDirStore::clearInProgress(const std::string &digest)
{
    std::error_code ec;
    fs::remove(markerPath(digest), ec);
}

WorkState
LocalDirStore::state(const std::string &digest) const
{
    if (cache_.lookup(digest).has_value())
        return WorkState::Done;

    const std::string marker_path = markerPath(digest);
    std::error_code ec;
    if (!fs::exists(marker_path, ec))
        return WorkState::Pending;
    // A marker that exists but is malformed is a writer that crashed
    // mid-write: orphaned, not pending.
    const std::optional<Json> marker = readJsonFile(marker_path);
    if (!marker.has_value() || marker->type() != Json::Type::Object
        || !marker->has("pid"))
        return WorkState::Orphaned;

    const long pid = static_cast<long>(marker->at("pid").asUInt());
    const std::string host =
        marker->has("host") ? marker->at("host").asString() : "unknown";
    if (host == thisHost() && pidIsDead(pid))
        return WorkState::Orphaned;
    return WorkState::InProgress;
}

std::vector<std::string>
LocalDirStore::storedDigests() const
{
    return cache_.listDigests();
}

void
LocalDirStore::writeManifest(const Json &manifest)
{
    manifest.writeFileAtomic(manifestPath());
}

std::optional<Json>
LocalDirStore::readManifest() const
{
    return readJsonFile(manifestPath());
}

std::string
LocalDirStore::description() const
{
    return "dir:" + cache_.dir();
}

std::unique_ptr<ResultStore>
openLocalStore(const std::string &dir)
{
    return std::make_unique<LocalDirStore>(dir);
}

} // namespace smt::sweep
