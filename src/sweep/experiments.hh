/**
 * @file
 * The named experiments: every paper figure/table grid as a
 * declarative ExperimentSpec, paired with the report function that
 * prints its self-checking table (identical to the historical bench
 * binaries' output). `smtsweep --experiment <name>` and the bench/
 * binaries both run through this registry, so they cannot drift apart.
 */

#ifndef SMT_SWEEP_EXPERIMENTS_HH
#define SMT_SWEEP_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "sweep/runner.hh"
#include "sweep/spec.hh"

namespace smt::sweep
{

/** A spec plus the printer for its paper-style self-check report. */
struct NamedExperiment
{
    ExperimentSpec spec;
    void (*report)(const SweepOutcome &outcome);
};

/** Every registered experiment, in presentation order. */
const std::vector<NamedExperiment> &allExperiments();

/** Find by spec name; null when unknown. */
const NamedExperiment *findExperiment(const std::string &name);

/**
 * Run one named experiment with defaultRunnerOptions() and print its
 * report — the whole main() of a ported bench binary. Returns the
 * process exit code.
 */
int benchMain(const std::string &name);

} // namespace smt::sweep

#endif // SMT_SWEEP_EXPERIMENTS_HH
