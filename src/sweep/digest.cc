#include "sweep/digest.hh"

#include <cstdio>

#include "sweep/serialize.hh"

namespace smt::sweep
{

namespace
{

std::uint64_t
fnv1a64(const std::string &bytes, std::uint64_t basis)
{
    std::uint64_t h = basis;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull; // FNV prime.
    }
    return h;
}

} // namespace

std::string
digestHex(const std::string &bytes)
{
    // Two independently seeded FNV-1a streams give a 128-bit digest;
    // ample for cache keying (no adversarial inputs here).
    const std::uint64_t lo = fnv1a64(bytes, 0xcbf29ce484222325ull);
    const std::uint64_t hi = fnv1a64(bytes, lo ^ 0x9e3779b97f4a7c15ull);
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

bool
looksLikeDigest(const std::string &name)
{
    if (name.size() != 32)
        return false;
    for (char c : name) {
        const bool digit = c >= '0' && c <= '9';
        const bool hex = c >= 'a' && c <= 'f';
        if (!digit && !hex)
            return false;
    }
    return true;
}

Json
measurementKey(const SmtConfig &cfg, const MeasureOptions &opts)
{
    Json key = Json::object();
    key.set("schema", Json(kDigestSchema));
    key.set("config", toJson(cfg));
    key.set("options", toJson(opts));
    return key;
}

std::string
measurementDigest(const SmtConfig &cfg, const MeasureOptions &opts)
{
    return digestHex(measurementKey(cfg, opts).dump());
}

} // namespace smt::sweep
