#include "sweep/store_service.hh"

#include <algorithm>
#include <chrono>
#include <map>

#include <sys/stat.h>

#include "common/logging.hh"
#include "common/lz.hh"
#include "obs/trace.hh"
#include "sweep/digest.hh"

namespace smt::sweep
{

namespace
{

net::HttpResponse
plain(int status, const std::string &body = "")
{
    net::HttpResponse resp;
    resp.status = status;
    resp.body = body;
    if (!body.empty())
        resp.headers.set("Content-Type", "text/plain");
    return resp;
}

net::HttpResponse
jsonResponse(int status, const Json &doc)
{
    net::HttpResponse resp;
    resp.status = status;
    resp.body = doc.dump(2) + "\n";
    resp.headers.set("Content-Type", "application/json");
    return resp;
}

/** Split "/v1/entries/abc..." into segments after "/v1". Empty on a
 *  foreign prefix. */
std::vector<std::string>
v1Segments(const std::string &target)
{
    std::vector<std::string> segments;
    if (target.rfind("/v1/", 0) != 0)
        return segments;
    std::size_t pos = 4;
    while (pos <= target.size()) {
        const std::size_t slash = target.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? target.size() : slash;
        if (end > pos)
            segments.push_back(target.substr(pos, end - pos));
        if (slash == std::string::npos)
            break;
        pos = slash + 1;
    }
    return segments;
}

/** The metric label for a request: its /v1 resource kind. */
std::string
routeLabel(const std::string &target)
{
    const std::vector<std::string> path = v1Segments(target);
    return path.empty() ? "other" : path[0];
}

} // namespace

std::string
contentDigest(const std::string &body)
{
    return digestHex(body);
}

bool
tokenEquals(const std::string &a, const std::string &b)
{
    // Fold every byte of both strings into the verdict: no early
    // exit, so the comparison's timing is independent of where (or
    // whether) the inputs differ.
    unsigned char diff = a.size() == b.size() ? 0 : 1;
    const std::size_t n = std::max(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        const unsigned char ca =
            i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
        const unsigned char cb =
            i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
        diff = static_cast<unsigned char>(diff | (ca ^ cb));
    }
    return diff == 0;
}

StoreService::StoreService(const std::string &dir, bool verbose,
                           std::string token)
    : store_(dir), verbose_(verbose), token_(std::move(token))
{
}

StoreService::~StoreService()
{
    if (accessLog_ != nullptr)
        std::fclose(accessLog_);
}

bool
StoreService::setAccessLog(const std::string &path, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open access log " + path;
        return false;
    }
    std::lock_guard<std::mutex> lock(accessMu_);
    if (accessLog_ != nullptr)
        std::fclose(accessLog_);
    accessLog_ = f;
    return true;
}

void
StoreService::logAccess(const net::HttpRequest &req,
                        const net::HttpResponse &resp, std::uint64_t us,
                        const std::string &route)
{
    // One JSONL object per request — the shape tools/smttrace joins
    // with client spans by the trace id (docs/PROTOCOL.md spec).
    Json rec = Json::object();
    rec.set("ts", Json(obs::nowUnixSeconds()));
    rec.set("mono", Json(obs::monoSeconds()));
    rec.set("route", Json(route));
    rec.set("method", Json(req.method));
    rec.set("target", Json(req.target));
    rec.set("status", Json(static_cast<std::int64_t>(resp.status)));
    rec.set("bytes_in", Json(static_cast<std::uint64_t>(
                            req.body.size())));
    rec.set("bytes_out", Json(static_cast<std::uint64_t>(
                             resp.body.size())));
    rec.set("latency_us", Json(us));
    rec.set("trace", Json(req.headers.get(obs::kTraceHeader)));
    const std::string text = rec.dump();
    std::lock_guard<std::mutex> lock(accessMu_);
    if (accessLog_ == nullptr)
        return;
    std::fwrite(text.data(), 1, text.size(), accessLog_);
    std::fputc('\n', accessLog_);
    std::fflush(accessLog_);
}

net::HttpResponse
StoreService::ingestTrace(const net::HttpRequest &req)
{
    if (req.method != "POST")
        return plain(405);

    // Batch the body's lines per trace id first so each id's capture
    // file opens once per request, not once per span. Lines append
    // *verbatim* — byte-identical to the worker's local copy — which
    // is what lets readers deduplicate a span seen via both paths.
    const std::string header_id = req.headers.get(obs::kTraceHeader);
    std::map<std::string, std::string> batches;
    std::uint64_t accepted = 0, skipped = 0;
    std::size_t pos = 0;
    while (pos <= req.body.size()) {
        const std::size_t nl = req.body.find('\n', pos);
        const std::size_t end =
            nl == std::string::npos ? req.body.size() : nl;
        if (end > pos) {
            const std::string line = req.body.substr(pos, end - pos);
            Json doc;
            std::string id;
            if (Json::parse(line, doc)
                && doc.type() == Json::Type::Object) {
                // The line's own trace id wins; the request header
                // covers lines that lack one. Ids become file names,
                // so both must pass the traversal-safe charset check.
                if (doc.has("trace")
                    && doc.at("trace").type() == Json::Type::String
                    && obs::validTraceId(doc.at("trace").asString()))
                    id = doc.at("trace").asString();
                else if (obs::validTraceId(header_id))
                    id = header_id;
            }
            if (id.empty()) {
                ++skipped;
            } else {
                batches[id] += line;
                batches[id] += '\n';
                ++accepted;
            }
        }
        if (nl == std::string::npos)
            break;
        pos = nl + 1;
    }

    if (!batches.empty()) {
        const std::string traces_dir = store_.dir() + "/traces";
        ::mkdir(traces_dir.c_str(), 0777);
        std::lock_guard<std::mutex> lock(traceMu_);
        for (const auto &[id, text] : batches) {
            const std::string path = traces_dir + "/" + id + ".jsonl";
            std::FILE *f = std::fopen(path.c_str(), "a");
            if (f == nullptr)
                return plain(500, "cannot persist trace capture\n");
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
        }
    }

    metrics_.counter("store.trace.spans").inc(accepted);
    Json out = Json::object();
    out.set("accepted", Json(accepted));
    out.set("skipped", Json(skipped));
    return jsonResponse(200, out);
}

bool
StoreService::authorized(const net::HttpRequest &req) const
{
    if (token_.empty())
        return true;
    const std::string header = req.headers.get("Authorization");
    const std::string scheme = "Bearer ";
    if (header.rfind(scheme, 0) != 0)
        return false;
    return tokenEquals(header.substr(scheme.size()), token_);
}

net::HttpResponse
StoreService::handle(const net::HttpRequest &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    net::HttpResponse resp;
    if (!authorized(req)) {
        // Rejected before dispatch: an unauthenticated peer can not
        // probe which resources exist, let alone touch them.
        resp = plain(401, "authorization required\n");
        resp.headers.set("WWW-Authenticate", "Bearer");
        metrics_.counter("store.auth.failures").inc();
    } else {
        resp = dispatch(req);
    }

    const std::uint64_t us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    const std::string route = routeLabel(req.target);
    metrics_.counter("store.requests." + route).inc();
    metrics_.counter("store.bytes_in." + route).inc(req.body.size());
    metrics_.counter("store.bytes_out." + route).inc(resp.body.size());
    metrics_
        .histogram("store.latency_us." + route,
                   obs::defaultLatencyBoundsUs())
        .observe(us);
    logAccess(req, resp, us, route);

    if (verbose_) {
        // The operator's access log: enough to debug fleet traffic
        // (and line it up with client trace spans) without a rebuild.
        std::string trace = req.headers.get(obs::kTraceHeader);
        if (trace.empty())
            trace = "-";
        smt_inform("smtstore: %s %s -> %d %zuB %.1fms trace=%s",
                   req.method.c_str(), req.target.c_str(), resp.status,
                   resp.body.size(), us / 1000.0, trace.c_str());
    }
    return resp;
}

net::HttpResponse
StoreService::dispatch(const net::HttpRequest &req)
{
    const std::vector<std::string> path = v1Segments(req.target);
    if (path.empty())
        return plain(404, "unknown resource (expected /v1/...)\n");
    const std::string &kind = path[0];

    if (kind == "ping" && req.method == "GET") {
        Json doc = Json::object();
        doc.set("service", Json("smtstore"));
        doc.set("schema", Json(kDigestSchema));
        doc.set("dir", Json(store_.dir()));
        // Capability advertisement: clients compress entry PUTs only
        // for servers that list the codec here (old clients ignore
        // the fields; old servers never emit them).
        Json encodings = Json::array();
        encodings.push(Json("identity"));
        encodings.push(Json(kLzEncodingName));
        doc.set("encodings", std::move(encodings));
        doc.set("auth", Json(token_.empty() ? "none" : "bearer"));
        // Capability bit for /v1/stats, so clients can tell a server
        // without the route from one that is rejecting them.
        doc.set("stats", Json(true));
        // Likewise for POST /v1/trace span ingest.
        doc.set("trace", Json(true));
        return jsonResponse(200, doc);
    }

    if (kind == "trace" && path.size() == 1)
        return ingestTrace(req);

    if (kind == "stats" && path.size() == 1) {
        if (req.method != "GET")
            return plain(405);
        // Identity first, then the live registry snapshot. The
        // snapshot excludes this request itself (its counters are
        // recorded after dispatch returns).
        Json doc = Json::object();
        doc.set("service", Json("smtstore"));
        doc.set("schema", Json(kDigestSchema));
        const double uptime =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - started_)
                .count() /
            1e6;
        doc.set("uptimeSeconds", Json(uptime));
        const Json snap = metrics_.snapshot();
        for (const auto &[key, value] : snap.items())
            doc.set(key, value);
        return jsonResponse(200, doc);
    }

    if (kind == "manifest") {
        if (req.method == "GET") {
            const std::optional<Json> manifest = store_.readManifest();
            if (!manifest.has_value())
                return plain(404, "no manifest recorded\n");
            return jsonResponse(200, *manifest);
        }
        if (req.method == "PUT") {
            Json manifest;
            if (!Json::parse(req.body, manifest))
                return plain(400, "manifest body is not JSON\n");
            std::lock_guard<std::mutex> lock(mu_);
            store_.writeManifest(manifest);
            return plain(204);
        }
        return plain(405);
    }

    if (kind == "entries" && path.size() == 1) {
        if (req.method != "GET")
            return plain(405);
        Json doc = Json::object();
        Json digests = Json::array();
        for (std::string &d : store_.storedDigests())
            digests.push(Json(std::move(d)));
        doc.set("digests", std::move(digests));
        net::HttpResponse resp = jsonResponse(200, doc);
        resp.chunked = true; // a listing that can grow unbounded.
        return resp;
    }

    if (kind == "costs" && path.size() == 1) {
        if (req.method != "GET")
            return plain(405);
        Json doc = Json::object();
        Json costs = Json::object();
        for (const auto &[digest, seconds] : store_.observedCosts())
            costs.set(digest, Json(seconds));
        doc.set("costs", std::move(costs));
        net::HttpResponse resp = jsonResponse(200, doc);
        resp.chunked = true;
        return resp;
    }

    // Bulk marker refresh: one request re-leases every digest a
    // worker is responsible for, so heartbeats cost one round trip
    // instead of one per digest.
    if (kind == "markers" && path.size() == 1) {
        if (req.method != "POST")
            return plain(405);
        Json doc;
        if (!Json::parse(req.body, doc)
            || doc.type() != Json::Type::Object || !doc.has("marker")
            || doc.at("marker").type() != Json::Type::Object
            || !doc.has("digests")
            || doc.at("digests").type() != Json::Type::Array)
            return plain(400, "refresh body needs marker + digests\n");
        const Json &digests = doc.at("digests");
        for (std::size_t i = 0; i < digests.size(); ++i) {
            if (digests[i].type() != Json::Type::String
                || !looksLikeDigest(digests[i].asString()))
                return plain(400, "malformed digest in refresh\n");
        }
        std::lock_guard<std::mutex> lock(mu_);
        std::uint64_t refreshed = 0;
        for (std::size_t i = 0; i < digests.size(); ++i) {
            const std::string &digest = digests[i].asString();
            // Done work keeps no lease: a refresh racing the entry
            // commit must not resurrect its marker.
            if (store_.cache().readEntryText(digest).has_value())
                continue;
            store_.writeMarker(digest, doc.at("marker"));
            ++refreshed;
        }
        Json out = Json::object();
        out.set("refreshed", Json(refreshed));
        return jsonResponse(200, out);
    }

    // Everything below addresses one digest.
    if (path.size() < 2 || !looksLikeDigest(path[1]))
        return plain(404, "malformed digest in request path\n");
    const std::string &digest = path[1];

    if (kind == "entries") {
        if (req.method == "HEAD" || req.method == "GET") {
            const std::optional<std::string> text =
                store_.cache().readEntryText(digest);
            metrics_
                .counter(text.has_value() ? "store.entries.hits"
                                          : "store.entries.misses")
                .inc();
            if (!text.has_value())
                return plain(404);
            net::HttpResponse resp;
            resp.status = 200;
            resp.headers.set("Content-Type", "application/json");
            // The ETag digests the stored (uncompressed) bytes
            // whatever dressing the transfer wears.
            resp.headers.set("ETag",
                             "\"" + contentDigest(*text) + "\"");
            if (req.method == "GET") {
                resp.body = *text;
                const std::string accept =
                    req.headers.get("Accept-Encoding");
                if (accept.find(kLzEncodingName)
                    != std::string::npos) {
                    std::string packed = lzCompress(*text);
                    if (packed.size() < text->size()) {
                        resp.body = std::move(packed);
                        resp.headers.set("Content-Encoding",
                                         kLzEncodingName);
                    }
                }
            } else {
                // The serializer owns Content-Length (a HEAD response
                // has no body), so advertise the entry size here.
                resp.headers.set("X-Entry-Size",
                                 std::to_string(text->size()));
            }
            return resp;
        }
        if (req.method == "PUT") {
            // Undress the transfer first: digests and entry checks
            // always apply to the true bytes, so compression cannot
            // weaken the bit-identical-merge invariant.
            std::string body;
            const std::string encoding =
                req.headers.get("Content-Encoding");
            if (encoding == kLzEncodingName) {
                std::optional<std::string> decoded =
                    lzDecompress(req.body, net::kMaxBodyBytes);
                if (!decoded.has_value())
                    return plain(400, "compressed body does not "
                                      "decode\n");
                body = std::move(*decoded);
            } else if (encoding.empty() || encoding == "identity") {
                body = req.body;
            } else {
                return plain(415, "unsupported Content-Encoding \""
                                      + encoding + "\"\n");
            }
            const std::string claimed =
                req.headers.get("X-Content-Digest");
            if (claimed.empty())
                return plain(400, "X-Content-Digest is required\n");
            if (claimed != contentDigest(body))
                return plain(400, "body does not match its declared "
                                  "content digest\n");
            Json entry;
            if (!Json::parse(body, entry)
                || entry.type() != Json::Type::Object
                || !entry.has("digest") || !entry.has("stats")
                || entry.at("digest").type() != Json::Type::String
                || entry.at("digest").asString() != digest)
                return plain(400, "body is not an entry for this "
                                  "digest\n");
            std::lock_guard<std::mutex> lock(mu_);
            if (!store_.cache().writeEntryText(digest, body))
                return plain(500, "cannot persist entry\n");
            store_.clearInProgress(digest);
            return plain(204);
        }
        return plain(405);
    }

    if (kind == "state") {
        if (req.method != "GET")
            return plain(405);
        Json doc = Json::object();
        doc.set("state", Json(toString(store_.state(digest))));
        return jsonResponse(200, doc);
    }

    if (kind == "costs") {
        if (req.method != "GET")
            return plain(405);
        const std::optional<double> seconds =
            store_.observedCost(digest);
        if (!seconds.has_value())
            return plain(404);
        Json doc = Json::object();
        doc.set("seconds", Json(*seconds));
        return jsonResponse(200, doc);
    }

    if (kind == "markers") {
        if (path.size() == 3 && path[2] == "orphan") {
            if (req.method != "POST")
                return plain(405);
            std::lock_guard<std::mutex> lock(mu_);
            store_.markOrphaned(digest);
            return plain(204);
        }
        if (req.method == "GET") {
            const std::string text = store_.readMarkerText(digest);
            if (text.empty())
                return plain(404);
            net::HttpResponse resp;
            resp.status = 200;
            resp.headers.set("Content-Type", "application/json");
            resp.body = text;
            return resp;
        }
        if (req.method == "PUT") {
            Json marker;
            if (!Json::parse(req.body, marker)
                || marker.type() != Json::Type::Object)
                return plain(400, "marker body is not a JSON object\n");
            std::lock_guard<std::mutex> lock(mu_);
            store_.writeMarker(digest, marker);
            return plain(204);
        }
        if (req.method == "DELETE") {
            std::lock_guard<std::mutex> lock(mu_);
            store_.clearInProgress(digest);
            return plain(204);
        }
        return plain(405);
    }

    if (kind == "claims") {
        if (req.method != "POST")
            return plain(405);
        Json claim;
        if (!Json::parse(req.body, claim)
            || claim.type() != Json::Type::Object
            || !claim.has("expect")
            || claim.at("expect").type() != Json::Type::String
            || !claim.has("marker")
            || claim.at("marker").type() != Json::Type::Object)
            return plain(400, "claim body needs expect + marker\n");

        // The CAS: under the service mutex, the claim wins only while
        // the entry is absent and the marker bytes still read exactly
        // as the claimant observed them. A marker already *owned* by
        // the claimant (same {pid, host} — deadlines refresh, so
        // exact bytes would be too strict) means it won earlier and
        // its response was torn — the client's transparent retry
        // must see success, not a spurious conflict.
        std::lock_guard<std::mutex> lock(mu_);
        if (store_.cache().readEntryText(digest).has_value()) {
            metrics_.counter("store.claims.done").inc();
            return plain(409, "already done\n");
        }
        const std::string current = store_.readMarkerText(digest);
        if (sameMarkerOwner(current, claim.at("marker"))) {
            metrics_.counter("store.claims.retried").inc();
            return plain(200, "already claimed\n");
        }
        if (current != claim.at("expect").asString()) {
            metrics_.counter("store.claims.lost").inc();
            return plain(409, "marker moved\n");
        }
        store_.writeMarker(digest, claim.at("marker"));
        metrics_.counter("store.claims.won").inc();
        return plain(200, "claimed\n");
    }

    return plain(404, "unknown resource\n");
}

} // namespace smt::sweep
