#include "sweep/store_service.hh"

#include "common/logging.hh"
#include "sweep/digest.hh"

namespace smt::sweep
{

namespace
{

net::HttpResponse
plain(int status, const std::string &body = "")
{
    net::HttpResponse resp;
    resp.status = status;
    resp.body = body;
    if (!body.empty())
        resp.headers.set("Content-Type", "text/plain");
    return resp;
}

net::HttpResponse
jsonResponse(int status, const Json &doc)
{
    net::HttpResponse resp;
    resp.status = status;
    resp.body = doc.dump(2) + "\n";
    resp.headers.set("Content-Type", "application/json");
    return resp;
}

/** Split "/v1/entries/abc..." into segments after "/v1". Empty on a
 *  foreign prefix. */
std::vector<std::string>
v1Segments(const std::string &target)
{
    std::vector<std::string> segments;
    if (target.rfind("/v1/", 0) != 0)
        return segments;
    std::size_t pos = 4;
    while (pos <= target.size()) {
        const std::size_t slash = target.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? target.size() : slash;
        if (end > pos)
            segments.push_back(target.substr(pos, end - pos));
        if (slash == std::string::npos)
            break;
        pos = slash + 1;
    }
    return segments;
}

} // namespace

std::string
contentDigest(const std::string &body)
{
    return digestHex(body);
}

StoreService::StoreService(const std::string &dir, bool verbose)
    : store_(dir), verbose_(verbose)
{
}

net::HttpResponse
StoreService::handle(const net::HttpRequest &req)
{
    net::HttpResponse resp = dispatch(req);
    if (verbose_)
        smt_inform("smtstore: %s %s -> %d", req.method.c_str(),
                   req.target.c_str(), resp.status);
    return resp;
}

net::HttpResponse
StoreService::dispatch(const net::HttpRequest &req)
{
    const std::vector<std::string> path = v1Segments(req.target);
    if (path.empty())
        return plain(404, "unknown resource (expected /v1/...)\n");
    const std::string &kind = path[0];

    if (kind == "ping" && req.method == "GET") {
        Json doc = Json::object();
        doc.set("service", Json("smtstore"));
        doc.set("schema", Json(kDigestSchema));
        doc.set("dir", Json(store_.dir()));
        return jsonResponse(200, doc);
    }

    if (kind == "manifest") {
        if (req.method == "GET") {
            const std::optional<Json> manifest = store_.readManifest();
            if (!manifest.has_value())
                return plain(404, "no manifest recorded\n");
            return jsonResponse(200, *manifest);
        }
        if (req.method == "PUT") {
            Json manifest;
            if (!Json::parse(req.body, manifest))
                return plain(400, "manifest body is not JSON\n");
            std::lock_guard<std::mutex> lock(mu_);
            store_.writeManifest(manifest);
            return plain(204);
        }
        return plain(405);
    }

    if (kind == "entries" && path.size() == 1) {
        if (req.method != "GET")
            return plain(405);
        Json doc = Json::object();
        Json digests = Json::array();
        for (std::string &d : store_.storedDigests())
            digests.push(Json(std::move(d)));
        doc.set("digests", std::move(digests));
        net::HttpResponse resp = jsonResponse(200, doc);
        resp.chunked = true; // a listing that can grow unbounded.
        return resp;
    }

    if (kind == "costs" && path.size() == 1) {
        if (req.method != "GET")
            return plain(405);
        Json doc = Json::object();
        Json costs = Json::object();
        for (const auto &[digest, seconds] : store_.observedCosts())
            costs.set(digest, Json(seconds));
        doc.set("costs", std::move(costs));
        net::HttpResponse resp = jsonResponse(200, doc);
        resp.chunked = true;
        return resp;
    }

    // Everything below addresses one digest.
    if (path.size() < 2 || !looksLikeDigest(path[1]))
        return plain(404, "malformed digest in request path\n");
    const std::string &digest = path[1];

    if (kind == "entries") {
        if (req.method == "HEAD" || req.method == "GET") {
            const std::optional<std::string> text =
                store_.cache().readEntryText(digest);
            if (!text.has_value())
                return plain(404);
            net::HttpResponse resp;
            resp.status = 200;
            resp.headers.set("Content-Type", "application/json");
            resp.headers.set("ETag",
                             "\"" + contentDigest(*text) + "\"");
            if (req.method == "GET")
                resp.body = *text;
            else
                // The serializer owns Content-Length (a HEAD response
                // has no body), so advertise the entry size here.
                resp.headers.set("X-Entry-Size",
                                 std::to_string(text->size()));
            return resp;
        }
        if (req.method == "PUT") {
            const std::string claimed =
                req.headers.get("X-Content-Digest");
            if (claimed.empty())
                return plain(400, "X-Content-Digest is required\n");
            if (claimed != contentDigest(req.body))
                return plain(400, "body does not match its declared "
                                  "content digest\n");
            Json entry;
            if (!Json::parse(req.body, entry)
                || entry.type() != Json::Type::Object
                || !entry.has("digest") || !entry.has("stats")
                || entry.at("digest").asString() != digest)
                return plain(400, "body is not an entry for this "
                                  "digest\n");
            std::lock_guard<std::mutex> lock(mu_);
            if (!store_.cache().writeEntryText(digest, req.body))
                return plain(500, "cannot persist entry\n");
            store_.clearInProgress(digest);
            return plain(204);
        }
        return plain(405);
    }

    if (kind == "state") {
        if (req.method != "GET")
            return plain(405);
        Json doc = Json::object();
        doc.set("state", Json(toString(store_.state(digest))));
        return jsonResponse(200, doc);
    }

    if (kind == "costs") {
        if (req.method != "GET")
            return plain(405);
        const std::optional<double> seconds =
            store_.observedCost(digest);
        if (!seconds.has_value())
            return plain(404);
        Json doc = Json::object();
        doc.set("seconds", Json(*seconds));
        return jsonResponse(200, doc);
    }

    if (kind == "markers") {
        if (path.size() == 3 && path[2] == "orphan") {
            if (req.method != "POST")
                return plain(405);
            std::lock_guard<std::mutex> lock(mu_);
            store_.markOrphaned(digest);
            return plain(204);
        }
        if (req.method == "GET") {
            const std::string text = store_.readMarkerText(digest);
            if (text.empty())
                return plain(404);
            net::HttpResponse resp;
            resp.status = 200;
            resp.headers.set("Content-Type", "application/json");
            resp.body = text;
            return resp;
        }
        if (req.method == "PUT") {
            Json marker;
            if (!Json::parse(req.body, marker)
                || marker.type() != Json::Type::Object)
                return plain(400, "marker body is not a JSON object\n");
            std::lock_guard<std::mutex> lock(mu_);
            store_.writeMarker(digest, marker);
            return plain(204);
        }
        if (req.method == "DELETE") {
            std::lock_guard<std::mutex> lock(mu_);
            store_.clearInProgress(digest);
            return plain(204);
        }
        return plain(405);
    }

    if (kind == "claims") {
        if (req.method != "POST")
            return plain(405);
        Json claim;
        if (!Json::parse(req.body, claim)
            || claim.type() != Json::Type::Object
            || !claim.has("expect") || !claim.has("marker"))
            return plain(400, "claim body needs expect + marker\n");

        // The CAS: under the service mutex, the claim wins only while
        // the entry is absent and the marker bytes still read exactly
        // as the claimant observed them. A marker that already equals
        // what this claim would write means the claimant won earlier
        // and its response was torn — the client's transparent retry
        // must see success, not a spurious conflict.
        std::lock_guard<std::mutex> lock(mu_);
        if (store_.cache().readEntryText(digest).has_value())
            return plain(409, "already done\n");
        const std::string current = store_.readMarkerText(digest);
        const std::string claimed_bytes =
            claim.at("marker").dump(2) + "\n";
        if (current == claimed_bytes)
            return plain(200, "already claimed\n");
        if (current != claim.at("expect").asString())
            return plain(409, "marker moved\n");
        store_.writeMarker(digest, claim.at("marker"));
        return plain(200, "claimed\n");
    }

    return plain(404, "unknown resource\n");
}

} // namespace smt::sweep
