/**
 * @file
 * The shared result store: the ResultCache hardened for concurrent
 * multi-process writers, behind an interface a remote backend can
 * implement later.
 *
 * On top of the cache's atomic temp+rename entry writes, the store
 * adds two pieces of coordinator-visible state:
 *
 *  - crash-safe in-progress markers: a worker about to measure digest
 *    D atomically writes D.inprogress ({pid, host, deadline});
 *    finishing the measurement stores the entry and removes the
 *    marker. The deadline is a TTL lease the running worker keeps
 *    refreshing (MarkerHeartbeat), so *any* observer on *any* host
 *    detects a dead worker from the marker alone: an expired deadline
 *    (past a clock-skew slack) is an *orphan*. A pid probe on the
 *    marker's own host catches same-host deaths faster, and a
 *    coordinator that watched the worker die can declare the orphan
 *    immediately — but neither is required anymore. Markers are
 *    advisory observability, not locks.
 *
 *  - a store-level manifest: the coordinator records the full expected
 *    digest set (with shard assignments) before launching workers, so
 *    any later process can audit done/in-progress/orphaned/pending
 *    work without re-expanding the experiment.
 */

#ifndef SMT_SWEEP_RESULT_STORE_HH
#define SMT_SWEEP_RESULT_STORE_HH

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "config/config.hh"
#include "sim/mix_runner.hh"
#include "stats/stats.hh"
#include "sweep/json.hh"
#include "sweep/result_cache.hh"

namespace smt::sweep
{

/** What the store knows about one unit of work (one digest). */
enum class WorkState
{
    Done,       ///< a well-formed entry is stored.
    InProgress, ///< marked by a (presumed live) worker.
    Orphaned,   ///< marked, but the marking process is dead.
    Pending,    ///< no entry, no marker.
};

const char *toString(WorkState state);

/** Default marker lease: a live worker refreshes well inside this
 *  (every ttl/3); observers orphan the work once the lease has been
 *  expired for longer than the clock-skew slack. */
inline constexpr double kMarkerTtlSeconds = 60.0;

/** Slack added to a marker deadline before expiry counts as death —
 *  absorbs client/server clock skew and a late heartbeat. Default
 *  10 s; the SMTSWEEP_MARKER_SLACK environment variable (seconds)
 *  overrides it, which tests use to exercise expiry quickly. */
double markerSkewSlackSeconds();

/** This process's advisory claim document ({pid, host, deadline});
 *  the deadline is now + ttl_seconds on the writer's clock. Every
 *  writer must build markers here so the fields cannot drift. */
Json makeSelfMarker(double ttl_seconds = kMarkerTtlSeconds);

/** True when `marker_text` parses as a marker owned by the same
 *  {pid, host} as `marker` — the claim CAS's idempotence test (a
 *  refreshed deadline must not make a process's own claim look
 *  foreign). */
bool sameMarkerOwner(const std::string &marker_text, const Json &marker);

/** Classify a raw marker document the way every store implementation
 *  must: pid <= 0 or malformed => Orphaned (declared / torn write);
 *  expired deadline (+ skew slack) => Orphaned on any host; dead pid
 *  on `local_host` => Orphaned; else InProgress. */
WorkState classifyMarkerText(const std::string &marker_text,
                             const std::string &local_host);

/** A digest-addressed store of measurement results shared by every
 *  worker of a distributed sweep. */
class ResultStore
{
  public:
    virtual ~ResultStore() = default;

    /** The stats stored under `digest`, if present and well-formed. */
    virtual std::optional<SimStats>
    lookup(const std::string &digest) const = 0;

    /** Persist a measurement and clear any in-progress marker.
     *  `measure_seconds` > 0 records the observed wall cost beside the
     *  entry for the planner's dynamic cost feedback. */
    virtual void store(const std::string &digest, const SmtConfig &cfg,
                       const MeasureOptions &opts, const SimStats &stats,
                       double measure_seconds = 0.0) = 0;

    /** The observed measurement cost stored with an entry, if any. */
    virtual std::optional<double>
    observedCost(const std::string &digest) const = 0;

    /** Every stored entry's observed cost in one pass — the bulk form
     *  the coordinator's cost feedback uses (one round trip against a
     *  remote store, not one per digest). */
    virtual std::map<std::string, double> observedCosts() const = 0;

    /** Advisory claim: record that this process is measuring `digest`,
     *  with a lease of `ttl_seconds`. Re-marking refreshes the lease —
     *  the MarkerHeartbeat calls this on a cadence well inside the
     *  TTL. (The default argument binds through the base class, so
     *  every implementation honours it.) */
    virtual void markInProgress(const std::string &digest,
                                double ttl_seconds
                                = kMarkerTtlSeconds) = 0;

    /**
     * Refresh many leases at once — what the MarkerHeartbeat calls
     * every ttl/3. The default loops markInProgress(); the remote
     * store overrides it with one bulk round trip so a large shard's
     * heartbeat does not serialize O(grid) HTTP PUTs against the
     * measurement path.
     */
    virtual void refreshMarkers(const std::vector<std::string> &digests,
                                double ttl_seconds)
    {
        for (const std::string &digest : digests)
            markInProgress(digest, ttl_seconds);
    }

    /** Drop this digest's marker (normally done by store()). */
    virtual void clearInProgress(const std::string &digest) = 0;

    /**
     * Declare abandoned work: write a marker that every observer
     * classifies as Orphaned (a coordinator that watched this digest's
     * worker die calls this so idle workers on *any* host can adopt
     * it). A no-op once the entry exists.
     */
    virtual void markOrphaned(const std::string &digest) = 0;

    /** The raw marker bytes for `digest` ("" when absent) — the CAS
     *  token tryAdopt() compares against. */
    virtual std::string readMarkerText(const std::string &digest)
        const = 0;

    /**
     * Claim-marker compare-and-swap: atomically replace `digest`'s
     * marker with this process's in-progress marker, but only while
     * the entry is still absent and the current marker bytes equal
     * `expected_marker` (as returned by readMarkerText — "" for no
     * marker). Exactly one of N racing adopters wins; retrying a
     * claim this process already holds also reads as success (a
     * remote claim whose response was torn is resent transparently).
     * False when the marker moved to someone else, the work finished,
     * or the claim could not be taken.
     */
    virtual bool tryAdopt(const std::string &digest,
                          const std::string &expected_marker) = 0;

    /** Classify one digest's work. */
    virtual WorkState state(const std::string &digest) const = 0;

    /** Digests of every stored result, sorted. */
    virtual std::vector<std::string> storedDigests() const = 0;

    /** Record / fetch the coordinator's expected-work manifest. */
    virtual void writeManifest(const Json &manifest) = 0;
    virtual std::optional<Json> readManifest() const = 0;

    /** Human-readable locator, e.g. "dir:.smtsweep-cache". */
    virtual std::string description() const = 0;

    /**
     * Adopt a trace id: a remote store stamps it on every request as
     * the X-Smt-Trace header so the server's access log lines up with
     * this process's trace spans. A no-op for local stores (their
     * operations never leave the process).
     */
    virtual void setTraceContext(const std::string &trace_id)
    {
        (void)trace_id;
    }
};

/**
 * The local-directory implementation: entries via ResultCache, markers
 * as <digest>.inprogress files, the manifest as sweep-manifest.json.
 */
class LocalDirStore final : public ResultStore
{
  public:
    explicit LocalDirStore(const std::string &dir);

    std::optional<SimStats>
    lookup(const std::string &digest) const override;
    void store(const std::string &digest, const SmtConfig &cfg,
               const MeasureOptions &opts, const SimStats &stats,
               double measure_seconds = 0.0) override;
    std::optional<double>
    observedCost(const std::string &digest) const override;
    std::map<std::string, double> observedCosts() const override;
    void markInProgress(const std::string &digest,
                        double ttl_seconds) override;
    void clearInProgress(const std::string &digest) override;
    void markOrphaned(const std::string &digest) override;
    std::string readMarkerText(const std::string &digest) const override;
    bool tryAdopt(const std::string &digest,
                  const std::string &expected_marker) override;
    WorkState state(const std::string &digest) const override;
    std::vector<std::string> storedDigests() const override;
    void writeManifest(const Json &manifest) override;
    std::optional<Json> readManifest() const override;
    std::string description() const override;

    const std::string &dir() const { return cache_.dir(); }

    /** Raw entry bytes / raw atomic entry write (the wire protocol's
     *  view of the store; see sweep/store_service.hh). */
    const ResultCache &cache() const { return cache_; }

    /** Write an explicit marker document (the wire protocol records
     *  the *client's* {pid, host}, not this process's). */
    void writeMarker(const std::string &digest, const Json &marker);

  private:
    std::string markerPath(const std::string &digest) const;
    std::string manifestPath() const;

    ResultCache cache_;
};

/**
 * The marker-lease refresher a measuring worker runs: a background
 * thread that re-marks every digest added (and not yet removed) as
 * in-progress every ttl/3 seconds, so a live worker's markers never
 * expire however long its measurements run — and a dead worker's
 * markers expire on their own, visible to every peer. The store must
 * outlive the heartbeat; its operations must be thread-safe (both
 * implementations are).
 */
class MarkerHeartbeat
{
  public:
    MarkerHeartbeat(ResultStore &store, double ttl_seconds);
    ~MarkerHeartbeat();

    MarkerHeartbeat(const MarkerHeartbeat &) = delete;
    MarkerHeartbeat &operator=(const MarkerHeartbeat &) = delete;

    /** Start refreshing `digest`'s marker (idempotent). */
    void add(const std::string &digest);

    /** Stop refreshing `digest` (its entry was stored, or the work
     *  was handed off). */
    void remove(const std::string &digest);

  private:
    void loop();

    ResultStore &store_;
    const double ttl_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::set<std::string> live_;
    bool stop_ = false;
    std::thread thread_;
};

/**
 * Resolve a store bearer token from the usual three sources, in
 * precedence order: `token` verbatim when non-empty; the contents of
 * `token_file` (whitespace-trimmed; fatal when named but unreadable);
 * the SMTSTORE_TOKEN environment variable. "" means no auth.
 */
std::string resolveStoreToken(const std::string &token = "",
                              const std::string &token_file = "");

/** Open (creating if needed) the local store rooted at `dir`. */
std::unique_ptr<ResultStore> openLocalStore(const std::string &dir);

/**
 * Open the store a locator names: "http://host:port" connects a
 * RemoteResultStore to a running `smtstore` server (presenting
 * `token` as its Authorization bearer when non-empty); anything else
 * is a local directory path, where the token is ignored. Every sweep
 * tool accepts either form wherever it accepts a cache directory.
 */
std::unique_ptr<ResultStore> openStore(const std::string &locator,
                                       const std::string &token = "");

} // namespace smt::sweep

#endif // SMT_SWEEP_RESULT_STORE_HH
