#include "sweep/serialize.hh"

#include "common/histogram.hh"

namespace smt::sweep
{

namespace
{

// From-JSON helpers must degrade, never abort: a malformed or stale
// cache entry (e.g. written before a stats field was added) has to
// read as a cache miss, not kill the sweep.
bool
getUInt(const Json &obj, const char *key, std::uint64_t &out)
{
    if (obj.type() != Json::Type::Object || !obj.has(key)
        || obj.at(key).type() != Json::Type::UInt)
        return false;
    out = obj.at(key).asUInt();
    return true;
}

Json
toJson(const CacheParams &cp)
{
    Json j = Json::object();
    j.set("sizeBytes", Json(cp.sizeBytes));
    j.set("assoc", Json(cp.assoc));
    j.set("lineBytes", Json(cp.lineBytes));
    j.set("banks", Json(cp.banks));
    j.set("accessesPerCycle", Json(cp.accessesPerCycle));
    j.set("cyclesPerAccess", Json(cp.cyclesPerAccess));
    j.set("transferCycles", Json(cp.transferCycles));
    j.set("fillCycles", Json(cp.fillCycles));
    j.set("latencyToNext", Json(cp.latencyToNext));
    j.set("mshrs", Json(cp.mshrs));
    return j;
}

Json
toJson(const CacheStats &cs)
{
    Json j = Json::object();
    j.set("accesses", Json(cs.accesses));
    j.set("misses", Json(cs.misses));
    j.set("bankConflicts", Json(cs.bankConflicts));
    j.set("writebacks", Json(cs.writebacks));
    j.set("mshrMerges", Json(cs.mshrMerges));
    return j;
}

bool
cacheStatsFromJson(const Json &j, CacheStats &out)
{
    return getUInt(j, "accesses", out.accesses)
           && getUInt(j, "misses", out.misses)
           && getUInt(j, "bankConflicts", out.bankConflicts)
           && getUInt(j, "writebacks", out.writebacks)
           && getUInt(j, "mshrMerges", out.mshrMerges);
}

Json
toJson(const TlbStats &ts)
{
    Json j = Json::object();
    j.set("accesses", Json(ts.accesses));
    j.set("misses", Json(ts.misses));
    return j;
}

bool
tlbStatsFromJson(const Json &j, TlbStats &out)
{
    return getUInt(j, "accesses", out.accesses)
           && getUInt(j, "misses", out.misses);
}

Json
toJson(const Histogram &h)
{
    Json j = Json::object();
    Json counts = Json::array();
    for (std::size_t b = 0; b < h.buckets(); ++b)
        counts.push(Json(h.bucket(b)));
    j.set("counts", std::move(counts));
    j.set("sum", Json(h.sum()));
    j.set("samples", Json(h.samples()));
    return j;
}

bool
histogramFromJson(const Json &j, Histogram &out)
{
    if (j.type() != Json::Type::Object || !j.has("counts"))
        return false;
    const Json &counts = j.at("counts");
    if (counts.type() != Json::Type::Array || counts.size() == 0)
        return false;
    std::vector<std::uint64_t> buckets(counts.size());
    for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b].type() != Json::Type::UInt)
            return false;
        buckets[b] = counts[b].asUInt();
    }
    std::uint64_t sum = 0;
    std::uint64_t samples = 0;
    if (!getUInt(j, "sum", sum) || !getUInt(j, "samples", samples))
        return false;
    out.restore(std::move(buckets), sum, samples);
    return true;
}

Json
perThreadJson(const std::array<std::uint64_t, kMaxThreads> &counts)
{
    Json arr = Json::array();
    for (unsigned t = 0; t < kMaxThreads; ++t)
        arr.push(Json(counts[t]));
    return arr;
}

bool
perThreadFromJson(const Json &obj, const char *key,
                  std::array<std::uint64_t, kMaxThreads> &out)
{
    if (!obj.has(key))
        return false;
    const Json &arr = obj.at(key);
    if (arr.type() != Json::Type::Array || arr.size() != kMaxThreads)
        return false;
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        if (arr[t].type() != Json::Type::UInt)
            return false;
        out[t] = arr[t].asUInt();
    }
    return true;
}

Json
toJson(const StallStats &s)
{
    Json j = Json::object();
    j.set("fetchActive", perThreadJson(s.fetchActive));
    j.set("fetchIcacheMiss", perThreadJson(s.fetchIcacheMiss));
    j.set("fetchFrontEndFull", perThreadJson(s.fetchFrontEndFull));
    j.set("fetchNoTarget", perThreadJson(s.fetchNoTarget));
    j.set("fetchLostSelection", perThreadJson(s.fetchLostSelection));
    j.set("renameIQFull", perThreadJson(s.renameIQFull));
    j.set("renameNoRegisters", perThreadJson(s.renameNoRegisters));
    j.set("issueOperandWait", perThreadJson(s.issueOperandWait));
    j.set("issueFuBusy", perThreadJson(s.issueFuBusy));
    j.set("issueNoCandidatesCycles", Json(s.issueNoCandidatesCycles));
    return j;
}

bool
stallStatsFromJson(const Json &j, StallStats &out)
{
    if (j.type() != Json::Type::Object)
        return false;
    return perThreadFromJson(j, "fetchActive", out.fetchActive)
           && perThreadFromJson(j, "fetchIcacheMiss", out.fetchIcacheMiss)
           && perThreadFromJson(j, "fetchFrontEndFull",
                                out.fetchFrontEndFull)
           && perThreadFromJson(j, "fetchNoTarget", out.fetchNoTarget)
           && perThreadFromJson(j, "fetchLostSelection",
                                out.fetchLostSelection)
           && perThreadFromJson(j, "renameIQFull", out.renameIQFull)
           && perThreadFromJson(j, "renameNoRegisters",
                                out.renameNoRegisters)
           && perThreadFromJson(j, "issueOperandWait",
                                out.issueOperandWait)
           && perThreadFromJson(j, "issueFuBusy", out.issueFuBusy)
           && getUInt(j, "issueNoCandidatesCycles",
                      out.issueNoCandidatesCycles);
}

} // namespace

Json
toJson(const SmtConfig &cfg)
{
    Json j = Json::object();

    j.set("numThreads", Json(cfg.numThreads));
    j.set("fetchWidth", Json(cfg.fetchWidth));
    j.set("fetchThreads", Json(cfg.fetchThreads));
    j.set("fetchPerThread", Json(cfg.fetchPerThread));
    j.set("decodeWidth", Json(cfg.decodeWidth));
    j.set("renameWidth", Json(cfg.renameWidth));
    j.set("commitWidth", Json(cfg.commitWidth));

    // The resolved registry names, so selecting a policy through the
    // enum and through a name override digest identically (they build
    // the same machine).
    j.set("fetchPolicy", Json(cfg.resolvedFetchPolicyName()));
    j.set("issuePolicy", Json(cfg.resolvedIssuePolicyName()));
    j.set("speculation", Json(toString(cfg.speculation)));
    j.set("itagEarlyLookup", Json(cfg.itagEarlyLookup));

    j.set("intQueueEntries", Json(cfg.intQueueEntries));
    j.set("fpQueueEntries", Json(cfg.fpQueueEntries));
    j.set("iqSearchWindow", Json(cfg.iqSearchWindow));

    j.set("intUnits", Json(cfg.intUnits));
    j.set("loadStoreUnits", Json(cfg.loadStoreUnits));
    j.set("fpUnits", Json(cfg.fpUnits));
    j.set("infiniteFunctionalUnits", Json(cfg.infiniteFunctionalUnits));

    j.set("excessRegisters", Json(cfg.excessRegisters));
    j.set("totalPhysRegisters", Json(cfg.totalPhysRegisters));
    j.set("longRegisterPipeline", Json(cfg.longRegisterPipeline));

    j.set("btbEntries", Json(cfg.btbEntries));
    j.set("btbAssoc", Json(cfg.btbAssoc));
    j.set("btbThreadIds", Json(cfg.btbThreadIds));
    j.set("phtEntries", Json(cfg.phtEntries));
    j.set("phtHistoryBits", Json(cfg.phtHistoryBits));
    j.set("rasEntries", Json(cfg.rasEntries));
    j.set("perfectBranchPrediction", Json(cfg.perfectBranchPrediction));

    j.set("icache", toJson(cfg.icache));
    j.set("dcache", toJson(cfg.dcache));
    j.set("l2", toJson(cfg.l2));
    j.set("l3", toJson(cfg.l3));
    j.set("infiniteCacheBandwidth", Json(cfg.infiniteCacheBandwidth));

    j.set("itlbEntries", Json(cfg.itlbEntries));
    j.set("dtlbEntries", Json(cfg.dtlbEntries));
    j.set("pageBytes", Json(cfg.pageBytes));
    j.set("disambiguationBits", Json(cfg.disambiguationBits));

    j.set("seed", Json(cfg.seed));
    return j;
}

Json
toJson(const MeasureOptions &opts)
{
    Json j = Json::object();
    j.set("cyclesPerRun", Json(opts.cyclesPerRun));
    j.set("warmupCycles", Json(opts.warmupCycles));
    j.set("runs", Json(opts.runs));
    return j;
}

Json
toJson(const SimStats &stats)
{
    Json j = Json::object();
    j.set("cycles", Json(stats.cycles));
    j.set("committedInstructions", Json(stats.committedInstructions));
    Json per_thread = Json::array();
    for (unsigned t = 0; t < kMaxThreads; ++t)
        per_thread.push(Json(stats.committedPerThread[t]));
    j.set("committedPerThread", std::move(per_thread));

    j.set("fetchedInstructions", Json(stats.fetchedInstructions));
    j.set("fetchedWrongPath", Json(stats.fetchedWrongPath));
    j.set("fetchCyclesIdle", Json(stats.fetchCyclesIdle));
    j.set("fetchBlockedIQFull", Json(stats.fetchBlockedIQFull));

    j.set("issuedInstructions", Json(stats.issuedInstructions));
    j.set("issuedWrongPath", Json(stats.issuedWrongPath));
    j.set("optimisticSquashes", Json(stats.optimisticSquashes));

    j.set("intIQFullCycles", Json(stats.intIQFullCycles));
    j.set("fpIQFullCycles", Json(stats.fpIQFullCycles));
    j.set("combinedQueuePopulation",
          toJson(stats.combinedQueuePopulation));

    j.set("outOfRegistersCycles", Json(stats.outOfRegistersCycles));
    j.set("stalls", toJson(stats.stalls));

    j.set("condBranches", Json(stats.condBranches));
    j.set("condBranchMispredicts", Json(stats.condBranchMispredicts));
    j.set("jumps", Json(stats.jumps));
    j.set("jumpMispredicts", Json(stats.jumpMispredicts));
    j.set("misfetches", Json(stats.misfetches));

    j.set("icache", toJson(stats.icache));
    j.set("dcache", toJson(stats.dcache));
    j.set("l2", toJson(stats.l2));
    j.set("l3", toJson(stats.l3));
    j.set("itlb", toJson(stats.itlb));
    j.set("dtlb", toJson(stats.dtlb));
    return j;
}

bool
simStatsFromJson(const Json &j, SimStats &out)
{
    if (j.type() != Json::Type::Object)
        return false;

    SimStats stats;
    if (!getUInt(j, "cycles", stats.cycles)
        || !getUInt(j, "committedInstructions",
                    stats.committedInstructions))
        return false;
    if (!j.has("committedPerThread"))
        return false;
    const Json &per_thread = j.at("committedPerThread");
    if (per_thread.type() != Json::Type::Array
        || per_thread.size() != kMaxThreads)
        return false;
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        if (per_thread[t].type() != Json::Type::UInt)
            return false;
        stats.committedPerThread[t] = per_thread[t].asUInt();
    }

    if (!getUInt(j, "fetchedInstructions", stats.fetchedInstructions)
        || !getUInt(j, "fetchedWrongPath", stats.fetchedWrongPath)
        || !getUInt(j, "fetchCyclesIdle", stats.fetchCyclesIdle)
        || !getUInt(j, "fetchBlockedIQFull", stats.fetchBlockedIQFull)
        || !getUInt(j, "issuedInstructions", stats.issuedInstructions)
        || !getUInt(j, "issuedWrongPath", stats.issuedWrongPath)
        || !getUInt(j, "optimisticSquashes", stats.optimisticSquashes)
        || !getUInt(j, "intIQFullCycles", stats.intIQFullCycles)
        || !getUInt(j, "fpIQFullCycles", stats.fpIQFullCycles)
        || !getUInt(j, "outOfRegistersCycles", stats.outOfRegistersCycles)
        || !getUInt(j, "condBranches", stats.condBranches)
        || !getUInt(j, "condBranchMispredicts",
                    stats.condBranchMispredicts)
        || !getUInt(j, "jumps", stats.jumps)
        || !getUInt(j, "jumpMispredicts", stats.jumpMispredicts)
        || !getUInt(j, "misfetches", stats.misfetches))
        return false;

    // Required like every other field: an entry written before the
    // stall counters existed degrades to a cache miss.
    if (!j.has("stalls") || !stallStatsFromJson(j.at("stalls"),
                                                stats.stalls))
        return false;

    if (!j.has("combinedQueuePopulation")
        || !histogramFromJson(j.at("combinedQueuePopulation"),
                              stats.combinedQueuePopulation))
        return false;

    for (const char *key : {"icache", "dcache", "l2", "l3", "itlb",
                            "dtlb"})
        if (!j.has(key))
            return false;
    if (!cacheStatsFromJson(j.at("icache"), stats.icache)
        || !cacheStatsFromJson(j.at("dcache"), stats.dcache)
        || !cacheStatsFromJson(j.at("l2"), stats.l2)
        || !cacheStatsFromJson(j.at("l3"), stats.l3)
        || !tlbStatsFromJson(j.at("itlb"), stats.itlb)
        || !tlbStatsFromJson(j.at("dtlb"), stats.dtlb))
        return false;

    out = std::move(stats);
    return true;
}

} // namespace smt::sweep
