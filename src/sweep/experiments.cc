#include "sweep/experiments.hh"

#include <cstdio>

#include "common/logging.hh"
#include "stats/table.hh"

namespace smt::sweep
{

namespace
{

// Shorthand for axis-option construction.
AxisOption
opt(std::string label, std::vector<KnobAssignment> knobs,
    std::vector<unsigned> thread_counts = {})
{
    return AxisOption{std::move(label), std::move(knobs),
                      std::move(thread_counts)};
}

// ---- Figure 3 --------------------------------------------------------------

ExperimentSpec
fig3Spec()
{
    ExperimentSpec spec;
    spec.name = "fig3";
    spec.title = "Figure 3: base hardware throughput";
    spec.basePreset = "base";
    spec.threadCounts = paperThreadCounts();
    spec.axes = {{"machine",
                  {
                      opt("SMT RR.1.8", {}),
                      // The superscalar reference machine exists only
                      // at one thread and uses the short pipeline.
                      opt("unmodified superscalar",
                          {{"longRegisterPipeline", Json(false)}}, {1}),
                  }}};
    return spec;
}

void
fig3Report(const SweepOutcome &outcome)
{
    const ThreadSweep base = outcome.sweepFor({0}, "SMT RR.1.8");
    const DataPoint &superscalar = outcome.at({1}, 1).data;

    Table table("Figure 3: base hardware throughput (IPC)");
    table.setHeader({"machine", "1T", "2T", "4T", "6T", "8T"});
    {
        std::vector<std::string> row = {"SMT RR.1.8"};
        for (const DataPoint &p : base.points)
            row.push_back(fmtDouble(p.ipc(), 2));
        table.addRow(std::move(row));
    }
    table.addRow({"unmodified superscalar", fmtDouble(superscalar.ipc(), 2),
                  "-", "-", "-", "-"});
    std::printf("%s\n", table.render().c_str());

    const double ss = superscalar.ipc();
    const double single = base.ipcAt(1);
    const double peak = base.peakIpc();
    std::printf("single-thread SMT vs superscalar: %+.1f%%  "
                "(paper: less than -2%%)\n",
                100.0 * (single / ss - 1.0));
    std::printf("peak SMT speedup over superscalar: %.2fx  "
                "(paper: 1.84x)\n", peak / ss);
    printPaperNote(
        "Fig 3 shape: near-identical at 1 thread, rising throughput that "
        "flattens before 8 threads, peak ~1.8x the superscalar");
}

// ---- Figure 4 --------------------------------------------------------------

ExperimentSpec
fig4Spec()
{
    ExperimentSpec spec;
    spec.name = "fig4";
    spec.title = "Figure 4: fetch partitioning under round-robin";
    spec.basePreset = "base";
    spec.threadCounts = paperThreadCounts();
    spec.axes = {{"scheme",
                  {
                      opt("RR.1.8", {{"fetchThreads", Json(1u)},
                                     {"fetchPerThread", Json(8u)}}),
                      opt("RR.2.4", {{"fetchThreads", Json(2u)},
                                     {"fetchPerThread", Json(4u)}}),
                      opt("RR.4.2", {{"fetchThreads", Json(4u)},
                                     {"fetchPerThread", Json(2u)}}),
                      opt("RR.2.8", {{"fetchThreads", Json(2u)},
                                     {"fetchPerThread", Json(8u)}}),
                  }}};
    return spec;
}

void
fig4Report(const SweepOutcome &outcome)
{
    std::vector<ThreadSweep> sweeps;
    for (std::size_t i = 0; i < outcome.spec.axes[0].options.size(); ++i)
        sweeps.push_back(
            outcome.sweepFor({i}, outcome.spec.axes[0].options[i].label));

    Table table = ipcTable("Figure 4: fetch partitioning (IPC)", sweeps);
    std::printf("%s\n", table.render().c_str());

    const double rr18 = sweeps[0].ipcAt(8);
    std::printf("at 8 threads vs RR.1.8: RR.2.4 %+.1f%% (paper +9%%), "
                "RR.4.2 %+.1f%%, RR.2.8 %+.1f%% (paper ~+10%%)\n",
                100.0 * (sweeps[1].ipcAt(8) / rr18 - 1.0),
                100.0 * (sweeps[2].ipcAt(8) / rr18 - 1.0),
                100.0 * (sweeps[3].ipcAt(8) / rr18 - 1.0));
    printPaperNote(
        "Fig 4 shape: partitioning helps at high thread counts; RR.4.2 "
        "suffers thread shortage; RR.2.8 is best of both worlds");
}

// ---- Figure 5 --------------------------------------------------------------

const std::vector<std::string> &
fig5Policies()
{
    static const std::vector<std::string> policies = {
        "RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN",
    };
    return policies;
}

ExperimentSpec
fig5Spec()
{
    ExperimentSpec spec;
    spec.name = "fig5";
    spec.title = "Figure 5: fetch thread-priority policies";
    spec.basePreset = "base";
    spec.threadCounts = {2, 4, 6, 8};

    Axis partition{"partition",
                   {
                       opt("1.8", {{"fetchThreads", Json(1u)},
                                   {"fetchPerThread", Json(8u)}}),
                       opt("2.8", {{"fetchThreads", Json(2u)},
                                   {"fetchPerThread", Json(8u)}}),
                   }};
    Axis policy{"policy", {}};
    for (const std::string &p : fig5Policies())
        policy.options.push_back(opt(p, {{"fetchPolicy", Json(p)}}));
    spec.axes = {std::move(partition), std::move(policy)};
    return spec;
}

void
fig5Report(const SweepOutcome &outcome)
{
    const std::vector<std::string> &policies = fig5Policies();
    for (std::size_t pi = 0; pi < 2; ++pi) {
        const std::string &partition =
            outcome.spec.axes[0].options[pi].label;
        std::vector<ThreadSweep> sweeps;
        for (std::size_t i = 0; i < policies.size(); ++i)
            sweeps.push_back(outcome.sweepFor(
                {pi, i}, policies[i] + "." + partition));

        Table table = ipcTable("Figure 5: fetch priority policies, " +
                                   partition + " partitioning (IPC)",
                               sweeps);
        std::printf("%s\n", table.render().c_str());

        const double rr8 = sweeps[0].ipcAt(8);
        for (std::size_t i = 1; i < sweeps.size(); ++i) {
            std::printf("  %s vs RR at 8T: %+.1f%%\n",
                        sweeps[i].label.c_str(),
                        100.0 * (sweeps[i].ipcAt(8) / rr8 - 1.0));
        }
        std::printf("\n");
    }

    printPaperNote(
        "Fig 5 shape: ICOUNT best at every thread count (peak 5.3 IPC at "
        "ICOUNT.2.8); IQPOSN within 4% of ICOUNT; BRCOUNT/MISSCOUNT help "
        "mainly when saturated");
}

// ---- Figure 6 --------------------------------------------------------------

ExperimentSpec
fig6Spec()
{
    ExperimentSpec spec;
    spec.name = "fig6";
    spec.title = "Figure 6: BIGQ and ITAG fetch unblocking";
    spec.basePreset = "base";
    spec.threadCounts = paperThreadCounts();
    spec.axes = {
        {"partition",
         {
             opt("1.8", {{"fetchThreads", Json(1u)},
                         {"fetchPerThread", Json(8u)}}),
             opt("2.8", {{"fetchThreads", Json(2u)},
                         {"fetchPerThread", Json(8u)}}),
         }},
        {"variant",
         {
             opt("ICOUNT", {{"fetchPolicy", Json("ICOUNT")}}),
             opt("BIGQ,ICOUNT", {{"fetchPolicy", Json("ICOUNT")},
                                 {"intQueueEntries", Json(64u)},
                                 {"fpQueueEntries", Json(64u)},
                                 {"iqSearchWindow", Json(32u)}}),
             opt("ITAG,ICOUNT", {{"fetchPolicy", Json("ICOUNT")},
                                 {"itagEarlyLookup", Json(true)}}),
         }},
    };
    return spec;
}

void
fig6Report(const SweepOutcome &outcome)
{
    for (std::size_t pi = 0; pi < 2; ++pi) {
        const std::string suffix =
            "." + outcome.spec.axes[0].options[pi].label;
        std::vector<ThreadSweep> sweeps;
        for (std::size_t vi = 0; vi < 3; ++vi)
            sweeps.push_back(outcome.sweepFor(
                {pi, vi},
                outcome.spec.axes[1].options[vi].label + suffix));

        Table table = ipcTable(
            "Figure 6: BIGQ and ITAG on ICOUNT" + suffix + " (IPC)",
            sweeps);
        std::printf("%s\n", table.render().c_str());

        const double base8 = sweeps[0].ipcAt(8);
        std::printf("  at 8T vs ICOUNT%s: BIGQ %+.1f%%, ITAG %+.1f%%\n\n",
                    suffix.c_str(),
                    100.0 * (sweeps[1].ipcAt(8) / base8 - 1.0),
                    100.0 * (sweeps[2].ipcAt(8) / base8 - 1.0));
    }

    printPaperNote(
        "Fig 6 shape: BIGQ adds no significant improvement over ICOUNT; "
        "ITAG helps at many threads (more on 1.8 than 2.8) and hurts at "
        "few threads");
}

// ---- Figure 7 --------------------------------------------------------------

ExperimentSpec
fig7Spec()
{
    ExperimentSpec spec;
    spec.name = "fig7";
    spec.title = "Figure 7: fixed 200-register file, 1-5 contexts";
    spec.basePreset = "icount28";
    spec.threadCounts = {1, 2, 3, 4, 5};
    spec.axes = {{"registers",
                  {opt("200 total", {{"totalPhysRegisters", Json(200u)}})}}};
    return spec;
}

void
fig7Report(const SweepOutcome &outcome)
{
    Table table("Figure 7: 200 physical registers per file, 1-5 contexts");
    table.setHeader({"contexts", "excess regs", "IPC", "out-of-regs"});

    unsigned best_t = 0;
    double best_ipc = 0.0;
    for (unsigned t = 1; t <= 5; ++t) {
        const DataPoint &d = outcome.at({0}, t).data;
        table.addRow({std::to_string(t), std::to_string(200 - 32 * t),
                      fmtDouble(d.ipc(), 2),
                      fmtPercent(d.stats.outOfRegistersFraction())});
        if (d.ipc() > best_ipc) {
            best_ipc = d.ipc();
            best_t = t;
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("maximum at %u contexts (paper: clear maximum at 4)\n",
                best_t);
    printPaperNote(
        "Fig 7 shape: throughput rises with contexts until the renaming "
        "register shortage bites; peak at 4 contexts with 200 registers");
}

// ---- Table 3 ---------------------------------------------------------------

ExperimentSpec
table3Spec()
{
    ExperimentSpec spec;
    spec.name = "table3";
    spec.title = "Table 3: base architecture low-level metrics";
    spec.basePreset = "base";
    spec.threadCounts = {1, 4, 8};
    return spec;
}

void
table3Report(const SweepOutcome &outcome)
{
    std::vector<DataPoint> points;
    for (unsigned t : {1u, 4u, 8u})
        points.push_back(outcome.at({}, t).data);

    Table table("Table 3: base architecture low-level metrics");
    table.setHeader({"metric", "1T", "4T", "8T", "paper 1T/4T/8T"});

    auto row = [&](const char *name, auto metric, const char *paper) {
        std::vector<std::string> r = {name};
        for (const DataPoint &p : points)
            r.push_back(metric(p.stats));
        r.push_back(paper);
        table.addRow(std::move(r));
    };

    row("out-of-registers (% cycles)",
        [](const SimStats &s) {
            return fmtPercent(s.outOfRegistersFraction());
        },
        "3% / 7% / 3%");
    row("I-cache miss rate",
        [](const SimStats &s) { return fmtPercent(s.icache.missRate()); },
        "2.5% / 7.8% / 14.1%");
    row("I-cache MPKI",
        [](const SimStats &s) {
            return fmtDouble(s.icache.mpki(s.committedInstructions), 1);
        },
        "6 / 17 / 29");
    row("D-cache miss rate",
        [](const SimStats &s) { return fmtPercent(s.dcache.missRate()); },
        "3.1% / 6.5% / 11.3%");
    row("D-cache MPKI",
        [](const SimStats &s) {
            return fmtDouble(s.dcache.mpki(s.committedInstructions), 1);
        },
        "12 / 25 / 43");
    row("L2 miss rate",
        [](const SimStats &s) { return fmtPercent(s.l2.missRate()); },
        "17.6% / 15.0% / 12.5%");
    row("L3 miss rate",
        [](const SimStats &s) { return fmtPercent(s.l3.missRate()); },
        "55.1% / 33.6% / 45.4%");
    row("branch mispredict rate",
        [](const SimStats &s) {
            return fmtPercent(s.branchMispredictRate());
        },
        "5.0% / 7.4% / 9.1%");
    row("jump mispredict rate",
        [](const SimStats &s) { return fmtPercent(s.jumpMispredictRate()); },
        "2.2% / 6.4% / 12.9%");
    row("integer IQ-full (% cycles)",
        [](const SimStats &s) { return fmtPercent(s.intIQFullFraction()); },
        "7% / 10% / 9%");
    row("fp IQ-full (% cycles)",
        [](const SimStats &s) { return fmtPercent(s.fpIQFullFraction()); },
        "14% / 9% / 3%");
    row("avg queue population",
        [](const SimStats &s) { return fmtDouble(s.avgQueuePopulation(), 1); },
        "25 / 25 / 27");
    row("wrong-path fetched",
        [](const SimStats &s) {
            return fmtPercent(s.wrongPathFetchedFraction());
        },
        "24% / 7% / 7%");
    row("wrong-path issued",
        [](const SimStats &s) {
            return fmtPercent(s.wrongPathIssuedFraction());
        },
        "9% / 4% / 3%");
    row("IPC (context)",
        [](const SimStats &s) { return fmtDouble(s.ipc(), 2); },
        "~2.1 / ~3.5 / ~3.9");

    std::printf("%s\n", table.render().c_str());
    printPaperNote(
        "Table 3 shape: cache and predictor pressure grow with threads; "
        "wrong-path fractions shrink; queues stay well-populated");
}

// ---- Table 4 ---------------------------------------------------------------

ExperimentSpec
table4Spec()
{
    ExperimentSpec spec;
    spec.name = "table4";
    spec.title = "Table 4: RR vs ICOUNT low-level metrics";
    spec.basePreset = "base";
    spec.threadCounts = {8};
    spec.axes = {{"machine",
                  {
                      opt("1 thread", {{"fetchThreads", Json(2u)},
                                       {"fetchPerThread", Json(8u)}},
                          {1}),
                      opt("RR @8T", {{"fetchThreads", Json(2u)},
                                     {"fetchPerThread", Json(8u)}}),
                      opt("ICOUNT @8T", {{"fetchPolicy", Json("ICOUNT")},
                                         {"fetchThreads", Json(2u)},
                                         {"fetchPerThread", Json(8u)}}),
                  }}};
    return spec;
}

void
table4Report(const SweepOutcome &outcome)
{
    const DataPoint &p1 = outcome.at({0}, 1).data;
    const DataPoint &prr = outcome.at({1}, 8).data;
    const DataPoint &pic = outcome.at({2}, 8).data;

    Table table("Table 4: RR vs ICOUNT low-level metrics "
                "(2.8 partitioning)");
    table.setHeader({"metric", "1 thread", "RR @8T", "ICOUNT @8T",
                     "paper (1T / RR8 / IC8)"});

    auto row = [&](const char *name, auto metric, const char *paper) {
        table.addRow({name, metric(p1.stats), metric(prr.stats),
                      metric(pic.stats), paper});
    };

    row("integer IQ-full (% cycles)",
        [](const SimStats &s) {
            return fmtPercent(s.intIQFullFraction());
        },
        "7% / 18% / 6%");
    row("fp IQ-full (% cycles)",
        [](const SimStats &s) {
            return fmtPercent(s.fpIQFullFraction());
        },
        "14% / 8% / 1%");
    row("avg queue population",
        [](const SimStats &s) {
            return fmtDouble(s.avgQueuePopulation(), 1);
        },
        "25 / 38 / 30");
    row("out-of-registers (% cycles)",
        [](const SimStats &s) {
            return fmtPercent(s.outOfRegistersFraction());
        },
        "3% / 8% / 5%");
    row("IPC",
        [](const SimStats &s) { return fmtDouble(s.ipc(), 2); },
        "- / 4.2 / 5.3");

    std::printf("%s\n", table.render().c_str());
    printPaperNote(
        "Table 4 shape: ICOUNT sharply reduces IQ-full conditions and "
        "queue population relative to RR at 8 threads — less pressure "
        "with 8 threads than with 1");
}

// ---- Table 5 ---------------------------------------------------------------

const std::vector<std::string> &
table5Policies()
{
    static const std::vector<std::string> policies = {
        "OLDEST_FIRST", "OPT_LAST", "SPEC_LAST", "BRANCH_FIRST",
    };
    return policies;
}

ExperimentSpec
table5Spec()
{
    ExperimentSpec spec;
    spec.name = "table5";
    spec.title = "Table 5: issue priority schemes";
    spec.basePreset = "icount28";
    spec.threadCounts = {1, 2, 4, 6, 8};
    Axis policy{"issue policy", {}};
    for (const std::string &p : table5Policies())
        policy.options.push_back(opt(p, {{"issuePolicy", Json(p)}}));
    spec.axes = {std::move(policy)};
    return spec;
}

void
table5Report(const SweepOutcome &outcome)
{
    Table table("Table 5: issue priority schemes (ICOUNT.2.8)");
    table.setHeader({"policy", "1T", "2T", "4T", "6T", "8T",
                     "wrong-path", "optimistic"});

    const std::vector<std::string> &policies = table5Policies();
    for (std::size_t i = 0; i < policies.size(); ++i) {
        std::vector<std::string> row = {policies[i]};
        for (unsigned t : outcome.spec.threadCounts)
            row.push_back(fmtDouble(outcome.at({i}, t).data.ipc(), 2));
        const SimStats &at8 = outcome.at({i}, 8).data.stats;
        row.push_back(fmtPercent(at8.wrongPathIssuedFraction()));
        row.push_back(fmtPercent(at8.optimisticSquashFraction()));
        table.addRow(std::move(row));
    }

    std::printf("%s\n", table.render().c_str());
    printPaperNote(
        "Table 5 shape: issue bandwidth is not a bottleneck — all four "
        "policies produce nearly identical throughput; useless issue "
        "stays in single digits (paper: 4% wrong-path + 3% optimistic)");
}

// ---- Smoke -----------------------------------------------------------------

ExperimentSpec
smokeSpec()
{
    ExperimentSpec spec;
    spec.name = "smoke";
    spec.title = "engine smoke grid (tiny budgets; exercises the cache)";
    spec.basePreset = "base";
    spec.threadCounts = {1, 2};
    spec.axes = {{"policy",
                  {
                      opt("RR", {}),
                      opt("ICOUNT", {{"fetchPolicy", Json("ICOUNT")}}),
                  }}};
    spec.cyclesPerRun = 1500;
    spec.warmupCycles = 500;
    spec.runs = 2;
    return spec;
}

void
smokeReport(const SweepOutcome &outcome)
{
    std::vector<ThreadSweep> sweeps;
    for (std::size_t i = 0; i < outcome.spec.axes[0].options.size(); ++i)
        sweeps.push_back(
            outcome.sweepFor({i}, outcome.spec.axes[0].options[i].label));
    Table table = ipcTable("Sweep-engine smoke grid (IPC)", sweeps);
    std::printf("%s\n", table.render().c_str());
}

} // namespace

const std::vector<NamedExperiment> &
allExperiments()
{
    static const std::vector<NamedExperiment> experiments = {
        {fig3Spec(), fig3Report},
        {fig4Spec(), fig4Report},
        {fig5Spec(), fig5Report},
        {fig6Spec(), fig6Report},
        {fig7Spec(), fig7Report},
        {table3Spec(), table3Report},
        {table4Spec(), table4Report},
        {table5Spec(), table5Report},
        {smokeSpec(), smokeReport},
    };
    return experiments;
}

const NamedExperiment *
findExperiment(const std::string &name)
{
    for (const NamedExperiment &e : allExperiments())
        if (e.spec.name == name)
            return &e;
    return nullptr;
}

int
benchMain(const std::string &name)
{
    const NamedExperiment *experiment = findExperiment(name);
    smt_assert(experiment != nullptr, "unknown experiment \"%s\"",
               name.c_str());
    const SweepOutcome outcome =
        runSweep(experiment->spec, defaultRunnerOptions());
    experiment->report(outcome);
    return 0;
}

} // namespace smt::sweep
