/**
 * @file
 * Content digests for measurements.
 *
 * A measurement is fully determined by (SmtConfig, MeasureOptions,
 * seed): workloads are synthesized from the config's seed and the
 * per-run salt, so two measurements with equal digests produce
 * bit-identical statistics. The digest keys the on-disk result cache
 * and names sweep artifacts. It is computed over the canonical
 * (compact, fixed-field-order) JSON form of the key, so it is stable
 * across processes, platforms, and unrelated code changes; bump
 * kDigestSchema when the simulator's behaviour changes in a way that
 * invalidates old cached results.
 */

#ifndef SMT_SWEEP_DIGEST_HH
#define SMT_SWEEP_DIGEST_HH

#include <cstdint>
#include <string>

#include "config/config.hh"
#include "sim/mix_runner.hh"
#include "sweep/json.hh"

namespace smt::sweep
{

/** Bump to invalidate every previously cached result. */
constexpr unsigned kDigestSchema = 1;

/** 128-bit hash of arbitrary bytes, as 32 lowercase hex digits. */
std::string digestHex(const std::string &bytes);

/** True when `name` has the shape of a digest (32 lowercase hex
 *  digits) — used to vet store filenames and wire-protocol paths. */
bool looksLikeDigest(const std::string &name);

/** The canonical key a measurement digest is computed over. */
Json measurementKey(const SmtConfig &cfg, const MeasureOptions &opts);

/** Digest of one (config, options, seed) measurement. */
std::string measurementDigest(const SmtConfig &cfg,
                              const MeasureOptions &opts);

} // namespace smt::sweep

#endif // SMT_SWEEP_DIGEST_HH
