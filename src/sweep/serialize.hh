/**
 * @file
 * JSON views of the simulator's domain types.
 *
 * Configs and measure options serialize one-way (their JSON is the
 * canonical form the content digest hashes, and a human-readable
 * record inside cache entries); SimStats round-trips exactly — every
 * counter is a 64-bit integer, so a cache hit reproduces the stats of
 * the original simulation bit for bit.
 */

#ifndef SMT_SWEEP_SERIALIZE_HH
#define SMT_SWEEP_SERIALIZE_HH

#include "config/config.hh"
#include "sim/mix_runner.hh"
#include "stats/stats.hh"
#include "sweep/json.hh"

namespace smt::sweep
{

/** Every architectural knob, in a fixed field order. */
Json toJson(const SmtConfig &cfg);

/** The result-affecting measurement knobs (never `parallel`). */
Json toJson(const MeasureOptions &opts);

/** Every counter, including histogram state. */
Json toJson(const SimStats &stats);

/** Rebuild stats from toJson() output; false on a malformed value. */
bool simStatsFromJson(const Json &j, SimStats &out);

} // namespace smt::sweep

#endif // SMT_SWEEP_SERIALIZE_HH
