#include "sweep/result_cache.hh"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sweep/digest.hh"
#include "sweep/json.hh"
#include "sweep/serialize.hh"

namespace fs = std::filesystem;

namespace smt::sweep
{

namespace
{

/** Entry filenames are <32 lowercase hex digits>.json; everything else
 *  in the directory (markers, manifest, temp files) is not an entry. */
bool
looksLikeDigest(const std::string &stem)
{
    if (stem.size() != 32)
        return false;
    for (char c : stem) {
        if (!std::isdigit(static_cast<unsigned char>(c))
            && (c < 'a' || c > 'f'))
            return false;
    }
    return true;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    smt_assert(!dir_.empty());
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        smt_fatal("cannot create result cache directory %s: %s",
                  dir_.c_str(), ec.message().c_str());
}

std::string
ResultCache::entryPath(const std::string &digest) const
{
    return dir_ + "/" + digest + ".json";
}

std::optional<SimStats>
ResultCache::lookup(const std::string &digest) const
{
    Json entry;
    if (!Json::readFile(entryPath(digest), entry)
        || entry.type() != Json::Type::Object || !entry.has("digest")
        || !entry.has("stats") || entry.at("digest").asString() != digest)
        return std::nullopt;

    SimStats stats;
    if (!simStatsFromJson(entry.at("stats"), stats))
        return std::nullopt;
    return stats;
}

void
ResultCache::store(const std::string &digest, const SmtConfig &cfg,
                   const MeasureOptions &opts, const SimStats &stats) const
{
    Json entry = Json::object();
    entry.set("digest", Json(digest));
    entry.set("key", measurementKey(cfg, opts));
    entry.set("stats", toJson(stats));

    // Atomic temp-then-rename keeps readers (and concurrent writers of
    // the same digest, which by construction write identical bytes)
    // from ever seeing a torn entry. A failed write is a lost cache
    // entry, not an error.
    entry.writeFileAtomic(entryPath(digest));
}

std::size_t
ResultCache::entryCount() const
{
    return listDigests().size();
}

std::vector<std::string>
ResultCache::listDigests() const
{
    std::vector<std::string> digests;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (e.path().extension() != ".json")
            continue;
        std::string stem = e.path().stem().string();
        if (looksLikeDigest(stem))
            digests.push_back(std::move(stem));
    }
    std::sort(digests.begin(), digests.end());
    return digests;
}

} // namespace smt::sweep
