#include "sweep/result_cache.hh"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sweep/digest.hh"
#include "sweep/json.hh"
#include "sweep/serialize.hh"

namespace fs = std::filesystem;

namespace smt::sweep
{

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    smt_assert(!dir_.empty());
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        smt_fatal("cannot create result cache directory %s: %s",
                  dir_.c_str(), ec.message().c_str());
}

std::string
ResultCache::entryPath(const std::string &digest) const
{
    return dir_ + "/" + digest + ".json";
}

std::optional<SimStats>
ResultCache::lookup(const std::string &digest) const
{
    std::ifstream in(entryPath(digest));
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json entry;
    if (!Json::parse(buffer.str(), entry)
        || entry.type() != Json::Type::Object || !entry.has("digest")
        || !entry.has("stats") || entry.at("digest").asString() != digest)
        return std::nullopt;

    SimStats stats;
    if (!simStatsFromJson(entry.at("stats"), stats))
        return std::nullopt;
    return stats;
}

void
ResultCache::store(const std::string &digest, const SmtConfig &cfg,
                   const MeasureOptions &opts, const SimStats &stats) const
{
    Json entry = Json::object();
    entry.set("digest", Json(digest));
    entry.set("key", measurementKey(cfg, opts));
    entry.set("stats", toJson(stats));

    // Temp-then-rename keeps readers (and concurrent writers of the
    // same digest, which by construction write identical bytes) from
    // ever seeing a torn entry.
    const std::string path = entryPath(digest);
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            smt_warn("result cache: cannot write %s", tmp.c_str());
            return;
        }
        out << entry.dump(2) << '\n';
        if (!out.good()) {
            smt_warn("result cache: short write to %s", tmp.c_str());
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        smt_warn("result cache: cannot rename %s: %s", tmp.c_str(),
                 ec.message().c_str());
        fs::remove(tmp, ec);
    }
}

std::size_t
ResultCache::entryCount() const
{
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (e.path().extension() == ".json")
            ++n;
    }
    return n;
}

} // namespace smt::sweep
