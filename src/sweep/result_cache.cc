#include "sweep/result_cache.hh"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sweep/digest.hh"
#include "sweep/json.hh"
#include "sweep/serialize.hh"

namespace fs = std::filesystem;

namespace smt::sweep
{

std::optional<std::string>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return text.str();
}

namespace
{

/** Atomic raw write (temp + rename), mirroring Json::writeFileAtomic
 *  for bytes that must land exactly as given. */
bool
rawWriteFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(text.data(),
                  static_cast<std::streamsize>(text.size()));
        out.flush();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    smt_assert(!dir_.empty());
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        smt_fatal("cannot create result cache directory %s: %s",
                  dir_.c_str(), ec.message().c_str());
}

std::string
ResultCache::entryPath(const std::string &digest) const
{
    return dir_ + "/" + digest + ".json";
}

std::optional<SimStats>
ResultCache::lookup(const std::string &digest) const
{
    Json entry;
    if (!Json::readFile(entryPath(digest), entry)
        || entry.type() != Json::Type::Object || !entry.has("digest")
        || !entry.has("stats") || entry.at("digest").asString() != digest)
        return std::nullopt;

    SimStats stats;
    if (!simStatsFromJson(entry.at("stats"), stats))
        return std::nullopt;
    return stats;
}

Json
makeEntryJson(const std::string &digest, const SmtConfig &cfg,
              const MeasureOptions &opts, const SimStats &stats,
              double measure_seconds)
{
    Json entry = Json::object();
    entry.set("digest", Json(digest));
    entry.set("key", measurementKey(cfg, opts));
    if (measure_seconds > 0.0)
        entry.set("measureSeconds", Json(measure_seconds));
    entry.set("stats", toJson(stats));
    return entry;
}

void
ResultCache::store(const std::string &digest, const SmtConfig &cfg,
                   const MeasureOptions &opts, const SimStats &stats,
                   double measure_seconds) const
{
    // Atomic temp-then-rename keeps readers (and concurrent writers of
    // the same digest, whose stats bytes agree by construction) from
    // ever seeing a torn entry. A failed write is a lost cache entry,
    // not an error.
    makeEntryJson(digest, cfg, opts, stats, measure_seconds)
        .writeFileAtomic(entryPath(digest));
}

std::optional<double>
ResultCache::observedCost(const std::string &digest) const
{
    Json entry;
    if (!Json::readFile(entryPath(digest), entry)
        || entry.type() != Json::Type::Object
        || !entry.has("measureSeconds")
        || !entry.at("measureSeconds").isNumber())
        return std::nullopt;
    const double seconds = entry.at("measureSeconds").asDouble();
    if (seconds <= 0.0)
        return std::nullopt;
    return seconds;
}

std::optional<std::string>
ResultCache::readEntryText(const std::string &digest) const
{
    if (!looksLikeDigest(digest))
        return std::nullopt;
    return readFileBytes(entryPath(digest));
}

bool
ResultCache::writeEntryText(const std::string &digest,
                            const std::string &text) const
{
    if (!looksLikeDigest(digest))
        return false;
    return rawWriteFileAtomic(entryPath(digest), text);
}

std::size_t
ResultCache::entryCount() const
{
    return listDigests().size();
}

std::vector<std::string>
ResultCache::listDigests() const
{
    std::vector<std::string> digests;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (e.path().extension() != ".json")
            continue;
        std::string stem = e.path().stem().string();
        if (looksLikeDigest(stem))
            digests.push_back(std::move(stem));
    }
    std::sort(digests.begin(), digests.end());
    return digests;
}

} // namespace smt::sweep
