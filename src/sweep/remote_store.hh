/**
 * @file
 * The result-store wire protocol, client side.
 *
 * RemoteResultStore implements the ResultStore interface over HTTP
 * against a running `smtstore` server, so shards on different machines
 * share one store by URL instead of one filesystem. Semantics mirror
 * LocalDirStore exactly: corrupt, torn, or unreachable entries are
 * misses (never errors), stores are atomic on the server, markers are
 * advisory. Entry payloads are digest-verified in both directions —
 * GETs check the server's ETag against the received bytes, PUTs
 * declare X-Content-Digest so the server rejects torn uploads — which
 * makes a network flake indistinguishable from a cache miss, the safe
 * failure mode.
 *
 * Two protocol features negotiate per server (docs/PROTOCOL.md):
 *
 *  - auth: constructed with a bearer token, every request carries
 *    `Authorization: Bearer <token>`; a server that rejects it (401)
 *    reads as unreachable — misses, never errors;
 *  - compression: entry GETs always advertise `Accept-Encoding:
 *    x-smt-lz` (old servers ignore it); entry PUTs compress only
 *    after a /v1/ping shows the server lists "x-smt-lz" in its
 *    "encodings", falling back to identity for old peers. Digests
 *    (ETag, X-Content-Digest) always cover the *uncompressed* bytes,
 *    so the bit-identical-merge invariant never depends on the codec.
 */

#ifndef SMT_SWEEP_REMOTE_STORE_HH
#define SMT_SWEEP_REMOTE_STORE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "net/http_client.hh"
#include "sweep/result_store.hh"

namespace smt::sweep
{

/** True when `locator` names a remote store ("http://..."). */
bool isRemoteStoreLocator(const std::string &locator);

class RemoteResultStore final : public ResultStore
{
  public:
    /** Connects lazily; a dead server degrades to all-misses. A
     *  non-empty `token` is presented as the Authorization bearer. */
    explicit RemoteResultStore(const net::Url &url,
                               std::string token = std::string());

    std::optional<SimStats>
    lookup(const std::string &digest) const override;
    void store(const std::string &digest, const SmtConfig &cfg,
               const MeasureOptions &opts, const SimStats &stats,
               double measure_seconds = 0.0) override;
    std::optional<double>
    observedCost(const std::string &digest) const override;
    std::map<std::string, double> observedCosts() const override;
    void markInProgress(const std::string &digest,
                        double ttl_seconds) override;
    void refreshMarkers(const std::vector<std::string> &digests,
                        double ttl_seconds) override;
    void clearInProgress(const std::string &digest) override;
    void markOrphaned(const std::string &digest) override;
    std::string readMarkerText(const std::string &digest) const override;
    bool tryAdopt(const std::string &digest,
                  const std::string &expected_marker) override;
    WorkState state(const std::string &digest) const override;
    std::vector<std::string> storedDigests() const override;
    void writeManifest(const Json &manifest) override;
    std::optional<Json> readManifest() const override;
    std::string description() const override;

    /** Entry presence without transferring the body (HEAD). */
    bool hasEntry(const std::string &digest) const;

    /** One round-trip liveness probe (GET /v1/ping). */
    bool ping(std::string *error = nullptr) const;

    /** The server's full /v1/ping document (capability inspection:
     *  schema, auth mode, encodings, stats availability). */
    std::optional<Json> pingDocument(std::string *error = nullptr) const;

    /** The server's live metrics snapshot (GET /v1/stats); nullopt
     *  when unreachable or the peer predates the route. */
    std::optional<Json> stats(std::string *error = nullptr) const;

    /** Stamp every subsequent request with this X-Smt-Trace id. */
    void setTraceContext(const std::string &trace_id) override;

    /**
     * Ship a batch of JSONL trace spans to the server (`POST
     * /v1/trace`), so a remote worker's per-digest spans land in the
     * store's <dir>/traces/ capture instead of dying with the worker's
     * host. False when the server is unreachable or predates the route
     * (an old peer 404s) — span loss is never an error.
     */
    bool postTrace(const std::string &jsonl);

  private:
    std::optional<net::HttpResponse>
    exchange(const std::string &method, const std::string &resource,
             const std::string &body = "",
             const std::string &content_digest = "",
             const std::string &content_encoding = "",
             bool accept_lz = false) const;
    std::string resourcePath(const std::string &resource) const;

    /** Lazily probe /v1/ping for "x-smt-lz" in the server's encoding
     *  list; the answer is cached for the store's lifetime. */
    bool serverSupportsLz() const;

    net::Url url_;
    std::string token_;
    std::string traceId_; ///< set before the sweep's workers spin up.
    mutable std::mutex mu_; ///< one connection, serialized exchanges.
    mutable net::HttpClient client_;

    /** -1 unknown (server not yet reached), 0 identity-only, 1 lz. */
    mutable std::atomic<int> lzSupport_{-1};

    /** False once the server 404/405'd the bulk marker-refresh route
     *  (an older peer): fall back to per-digest marker PUTs. */
    mutable std::atomic<bool> bulkMarkers_{true};
};

/** Open a remote store from an "http://host:port" locator (fatal on a
 *  malformed URL or one with a path component — smtstore serves at
 *  the root; user errors, not misses). */
std::unique_ptr<ResultStore>
openRemoteStore(const std::string &locator,
                const std::string &token = "");

} // namespace smt::sweep

#endif // SMT_SWEEP_REMOTE_STORE_HH
