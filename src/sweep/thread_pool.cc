#include "sweep/thread_pool.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace smt::sweep
{

namespace
{

/** Worker count requestGlobalWorkers() asked for; 0 = none requested. */
unsigned g_requested_workers = 0;
bool g_global_created = false;

unsigned
defaultWorkerCount()
{
    if (const char *env = std::getenv("SMTSIM_POOL_WORKERS");
        env != nullptr) {
        const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr,
                                                              10));
        if (n >= 1)
            return n;
        smt_warn("ignoring SMTSIM_POOL_WORKERS=%s", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 2;
}

} // namespace

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers >= 1 ? workers : defaultWorkerCount())
{
    threads_.reserve(workers_);
    for (unsigned i = 0; i < workers_; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

ThreadPool &
ThreadPool::global()
{
    // Intentionally leaked: the pool must outlive every static whose
    // destructor could still be measuring, and a worker-less forked
    // child (death tests, daemonized callers) must not try to join
    // threads fork didn't copy. The OS reclaims the workers at exit.
    static ThreadPool *pool = [] {
        g_global_created = true;
        return new ThreadPool(g_requested_workers);
    }();
    return *pool;
}

void
ThreadPool::requestGlobalWorkers(unsigned workers)
{
    if (workers == 0)
        return;
    if (g_global_created) {
        if (global().workerCount() != workers)
            smt_warn("thread pool already running %u workers; "
                     "request for %u ignored",
                     global().workerCount(), workers);
        return;
    }
    g_requested_workers = workers;
}

bool
ThreadPool::runOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        smt_assert(!stopping_);
        queue_.push_back(std::move(task));
    }
    ready_.notify_one();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, queue drained.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace smt::sweep
