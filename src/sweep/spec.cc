#include "sweep/spec.hh"

#include <functional>

#include "common/logging.hh"

namespace smt::sweep
{

namespace
{

struct KnobEntry
{
    const char *name;
    std::function<void(SmtConfig &, const Json &)> apply;
};

template <typename T>
std::function<void(SmtConfig &, const Json &)>
uintKnob(T SmtConfig::*field)
{
    return [field](SmtConfig &cfg, const Json &v) {
        cfg.*field = static_cast<T>(v.asUInt());
    };
}

std::function<void(SmtConfig &, const Json &)>
boolKnob(bool SmtConfig::*field)
{
    return [field](SmtConfig &cfg, const Json &v) {
        cfg.*field = v.asBool();
    };
}

const std::vector<KnobEntry> &
knobTable()
{
    static const std::vector<KnobEntry> table = {
        {"numThreads", uintKnob(&SmtConfig::numThreads)},
        {"fetchWidth", uintKnob(&SmtConfig::fetchWidth)},
        {"fetchThreads", uintKnob(&SmtConfig::fetchThreads)},
        {"fetchPerThread", uintKnob(&SmtConfig::fetchPerThread)},
        {"decodeWidth", uintKnob(&SmtConfig::decodeWidth)},
        {"renameWidth", uintKnob(&SmtConfig::renameWidth)},
        {"commitWidth", uintKnob(&SmtConfig::commitWidth)},
        {"fetchPolicy",
         [](SmtConfig &cfg, const Json &v) {
             cfg.fetchPolicyName = v.asString();
         }},
        {"issuePolicy",
         [](SmtConfig &cfg, const Json &v) {
             cfg.issuePolicyName = v.asString();
         }},
        {"speculation",
         [](SmtConfig &cfg, const Json &v) {
             const std::string &s = v.asString();
             for (SpeculationMode m :
                  {SpeculationMode::Full, SpeculationMode::NoPassBranch,
                   SpeculationMode::NoWrongPathIssue}) {
                 if (s == toString(m)) {
                     cfg.speculation = m;
                     return;
                 }
             }
             smt_fatal("unknown speculation mode \"%s\"", s.c_str());
         }},
        {"itagEarlyLookup", boolKnob(&SmtConfig::itagEarlyLookup)},
        {"intQueueEntries", uintKnob(&SmtConfig::intQueueEntries)},
        {"fpQueueEntries", uintKnob(&SmtConfig::fpQueueEntries)},
        {"iqSearchWindow", uintKnob(&SmtConfig::iqSearchWindow)},
        {"intUnits", uintKnob(&SmtConfig::intUnits)},
        {"loadStoreUnits", uintKnob(&SmtConfig::loadStoreUnits)},
        {"fpUnits", uintKnob(&SmtConfig::fpUnits)},
        {"infiniteFunctionalUnits",
         boolKnob(&SmtConfig::infiniteFunctionalUnits)},
        {"excessRegisters", uintKnob(&SmtConfig::excessRegisters)},
        {"totalPhysRegisters", uintKnob(&SmtConfig::totalPhysRegisters)},
        {"longRegisterPipeline",
         boolKnob(&SmtConfig::longRegisterPipeline)},
        {"btbEntries", uintKnob(&SmtConfig::btbEntries)},
        {"btbAssoc", uintKnob(&SmtConfig::btbAssoc)},
        {"btbThreadIds", boolKnob(&SmtConfig::btbThreadIds)},
        {"phtEntries", uintKnob(&SmtConfig::phtEntries)},
        {"phtHistoryBits", uintKnob(&SmtConfig::phtHistoryBits)},
        {"rasEntries", uintKnob(&SmtConfig::rasEntries)},
        {"perfectBranchPrediction",
         boolKnob(&SmtConfig::perfectBranchPrediction)},
        {"infiniteCacheBandwidth",
         boolKnob(&SmtConfig::infiniteCacheBandwidth)},
        {"disambiguationBits", uintKnob(&SmtConfig::disambiguationBits)},
        {"seed", uintKnob(&SmtConfig::seed)},
    };
    return table;
}

SmtConfig
makePreset(const std::string &preset, unsigned threads)
{
    if (preset == "base")
        return presets::baseSmt(threads);
    if (preset == "icount28")
        return presets::icount28(threads);
    if (preset == "superscalar") {
        SmtConfig cfg = presets::unmodifiedSuperscalar();
        cfg.numThreads = threads;
        return cfg;
    }
    smt_fatal("unknown base preset \"%s\" (base, icount28, superscalar)",
              preset.c_str());
}

Json
toJson(const KnobAssignment &a)
{
    Json j = Json::object();
    j.set(a.knob, a.value);
    return j;
}

} // namespace

void
applyKnob(SmtConfig &cfg, const KnobAssignment &assignment)
{
    for (const KnobEntry &entry : knobTable()) {
        if (assignment.knob == entry.name) {
            entry.apply(cfg, assignment.value);
            return;
        }
    }
    smt_fatal("unknown config knob \"%s\"", assignment.knob.c_str());
}

std::vector<std::string>
knownKnobs()
{
    std::vector<std::string> names;
    for (const KnobEntry &entry : knobTable())
        names.push_back(entry.name);
    return names;
}

std::vector<SweepPoint>
ExperimentSpec::expand(const MeasureOptions &base_opts) const
{
    MeasureOptions opts = base_opts;
    if (cyclesPerRun)
        opts.cyclesPerRun = *cyclesPerRun;
    if (warmupCycles)
        opts.warmupCycles = *warmupCycles;
    if (runs)
        opts.runs = *runs;

    std::vector<SweepPoint> points;
    std::vector<std::size_t> choice(axes.size(), 0);

    const std::function<void(std::size_t)> walk = [&](std::size_t axis) {
        if (axis < axes.size()) {
            smt_assert(!axes[axis].options.empty());
            for (std::size_t i = 0; i < axes[axis].options.size(); ++i) {
                choice[axis] = i;
                walk(axis + 1);
            }
            return;
        }

        // Innermost: one point per thread count. The last axis option
        // carrying a thread-count override wins (options that pin a
        // reference point to a single width).
        const std::vector<unsigned> *counts = &threadCounts;
        for (std::size_t a = 0; a < axes.size(); ++a) {
            const AxisOption &opt = axes[a].options[choice[a]];
            if (!opt.threadCountsOverride.empty())
                counts = &opt.threadCountsOverride;
        }
        smt_assert(!counts->empty(),
                   "experiment \"%s\" has no thread counts", name.c_str());

        for (unsigned t : *counts) {
            SweepPoint point;
            point.axisChoice = choice;
            point.threads = t;
            point.config = makePreset(basePreset, t);
            for (std::size_t a = 0; a < axes.size(); ++a) {
                const AxisOption &opt = axes[a].options[choice[a]];
                for (const KnobAssignment &k : opt.knobs)
                    applyKnob(point.config, k);
                if (!opt.label.empty()) {
                    if (!point.label.empty())
                        point.label += '.';
                    point.label += opt.label;
                }
            }
            if (point.label.empty())
                point.label = name;
            point.options = opts;
            points.push_back(std::move(point));
        }
    };
    walk(0);
    return points;
}

std::size_t
ExperimentSpec::gridSize() const
{
    // Counted via expansion so per-option thread-count overrides are
    // honoured; grids are small, this is not a hot path.
    return expand(MeasureOptions{}).size();
}

Json
ExperimentSpec::describe() const
{
    Json j = Json::object();
    j.set("name", Json(name));
    j.set("title", Json(title));
    j.set("basePreset", Json(basePreset));
    Json counts = Json::array();
    for (unsigned t : threadCounts)
        counts.push(Json(t));
    j.set("threadCounts", std::move(counts));
    Json axes_json = Json::array();
    for (const Axis &axis : axes) {
        Json axis_json = Json::object();
        axis_json.set("name", Json(axis.name));
        Json options = Json::array();
        for (const AxisOption &opt : axis.options) {
            Json opt_json = Json::object();
            opt_json.set("label", Json(opt.label));
            Json knobs = Json::array();
            for (const KnobAssignment &k : opt.knobs)
                knobs.push(toJson(k));
            opt_json.set("knobs", std::move(knobs));
            if (!opt.threadCountsOverride.empty()) {
                Json override_json = Json::array();
                for (unsigned t : opt.threadCountsOverride)
                    override_json.push(Json(t));
                opt_json.set("threadCounts", std::move(override_json));
            }
            options.push(std::move(opt_json));
        }
        axis_json.set("options", std::move(options));
        axes_json.push(std::move(axis_json));
    }
    j.set("axes", std::move(axes_json));
    if (cyclesPerRun)
        j.set("cyclesPerRun", Json(*cyclesPerRun));
    if (warmupCycles)
        j.set("warmupCycles", Json(*warmupCycles));
    if (runs)
        j.set("runs", Json(*runs));
    return j;
}

} // namespace smt::sweep
