/**
 * @file
 * The result-store wire protocol, server side.
 *
 * StoreService maps HTTP requests onto a LocalDirStore so remote
 * workers can share one store over the network (`tools/smtstore` is
 * the thin binary around it; tests mount the service on an in-process
 * HttpServer). All resources live under <base>/v1:
 *
 *   GET    /v1/ping                     liveness + schema
 *   GET    /v1/entries                  {"digests": [...]} (chunked)
 *   HEAD   /v1/entries/<digest>         entry exists? (X-Entry-Size
 *                                       advertises its byte count)
 *   GET    /v1/entries/<digest>         raw entry bytes, ETag = its
 *                                       content digest
 *   PUT    /v1/entries/<digest>         store an entry; the mandatory
 *                                       X-Content-Digest header must
 *                                       match the body (rejects torn
 *                                       or corrupted uploads), the
 *                                       body must be a well-formed
 *                                       entry for <digest>; commits
 *                                       atomically (temp + rename)
 *                                       and clears the marker
 *   GET    /v1/state/<digest>           {"state": "done"|...}
 *   GET    /v1/costs                    {"costs": {digest: seconds}}
 *                                       every observed cost, in bulk
 *   GET    /v1/costs/<digest>           {"seconds": s} observed cost
 *   GET    /v1/markers/<digest>         raw marker bytes
 *   PUT    /v1/markers/<digest>         write the client's marker
 *   DELETE /v1/markers/<digest>         drop the marker
 *   POST   /v1/markers/<digest>/orphan  declare the work abandoned
 *   POST   /v1/claims/<digest>          claim-marker CAS: body
 *                                       {"expect": "<raw marker>",
 *                                        "marker": {...}}; 200 when
 *                                       the claim wins, 409 when the
 *                                       marker moved or the work is
 *                                       already done
 *   GET    /v1/manifest                 the sweep manifest
 *   PUT    /v1/manifest                 record the manifest
 *
 * Marker/claim mutations are serialized under one mutex, which is what
 * makes the claim CAS atomic: of N workers adopting the same orphan,
 * exactly one observes the expected marker bytes and wins. Orphan
 * classification runs on the server, so a worker that died on the
 * server's own host is detected by pid probe exactly as LocalDirStore
 * would — markers from other hosts are presumed live until their
 * coordinator declares them orphaned.
 */

#ifndef SMT_SWEEP_STORE_SERVICE_HH
#define SMT_SWEEP_STORE_SERVICE_HH

#include <mutex>
#include <string>

#include "net/http.hh"
#include "sweep/result_store.hh"

namespace smt::sweep
{

class StoreService
{
  public:
    /** Serve the store rooted at `dir` (created if needed). */
    explicit StoreService(const std::string &dir, bool verbose = false);

    /** Handle one request (thread-safe; plug into HttpServer). */
    net::HttpResponse handle(const net::HttpRequest &req);

    const std::string &dir() const { return store_.dir(); }

  private:
    net::HttpResponse dispatch(const net::HttpRequest &req);

    LocalDirStore store_;
    bool verbose_;
    std::mutex mu_;
};

/** The ETag / X-Content-Digest value for a message body. */
std::string contentDigest(const std::string &body);

} // namespace smt::sweep

#endif // SMT_SWEEP_STORE_SERVICE_HH
