/**
 * @file
 * The result-store wire protocol, server side.
 *
 * StoreService maps HTTP requests onto a LocalDirStore so remote
 * workers can share one store over the network (`tools/smtstore` is
 * the thin binary around it; tests mount the service on an in-process
 * HttpServer). The full normative spec is docs/PROTOCOL.md; the
 * resources, all under <base>/v1:
 *
 *   GET    /v1/ping                     liveness + schema + the
 *                                       server's encodings and auth
 *                                       mode
 *   GET    /v1/entries                  {"digests": [...]} (chunked)
 *   HEAD   /v1/entries/<digest>         entry exists? (X-Entry-Size
 *                                       advertises its byte count)
 *   GET    /v1/entries/<digest>         raw entry bytes, ETag = its
 *                                       content digest
 *   PUT    /v1/entries/<digest>         store an entry; the mandatory
 *                                       X-Content-Digest header must
 *                                       match the body (rejects torn
 *                                       or corrupted uploads), the
 *                                       body must be a well-formed
 *                                       entry for <digest>; commits
 *                                       atomically (temp + rename)
 *                                       and clears the marker
 *   GET    /v1/state/<digest>           {"state": "done"|...}
 *   GET    /v1/costs                    {"costs": {digest: seconds}}
 *                                       every observed cost, in bulk
 *   GET    /v1/costs/<digest>           {"seconds": s} observed cost
 *   GET    /v1/markers/<digest>         raw marker bytes
 *   PUT    /v1/markers/<digest>         write the client's marker
 *   POST   /v1/markers                  bulk lease refresh: {"marker",
 *                                       "digests": [...]} writes the
 *                                       marker on every digest not
 *                                       yet done (one round trip per
 *                                       heartbeat, not per digest)
 *   DELETE /v1/markers/<digest>         drop the marker
 *   POST   /v1/markers/<digest>/orphan  declare the work abandoned
 *   POST   /v1/claims/<digest>          claim-marker CAS: body
 *                                       {"expect": "<raw marker>",
 *                                        "marker": {...}}; 200 when
 *                                       the claim wins, 409 when the
 *                                       marker moved or the work is
 *                                       already done
 *   GET    /v1/manifest                 the sweep manifest
 *   PUT    /v1/manifest                 record the manifest
 *   POST   /v1/trace                    ingest batched JSONL trace
 *                                       spans: each body line lands
 *                                       verbatim in the server-side
 *                                       <dir>/traces/<id>.jsonl for
 *                                       its trace id, merging remote
 *                                       workers' spans in one place
 *
 * Marker/claim mutations are serialized under one mutex, which is what
 * makes the claim CAS atomic: of N workers adopting the same orphan,
 * exactly one observes the expected marker bytes and wins. Orphan
 * classification runs on the server: an expired marker deadline (plus
 * clock-skew slack) orphans work from any host, and a pid probe
 * catches deaths on the server's own host early.
 *
 * Hardening for untrusted networks:
 *
 *  - auth: constructed with a bearer token, every /v1 request must
 *    carry `Authorization: Bearer <token>` (compared in constant
 *    time) or it is answered 401 before any dispatch;
 *  - compression: entry GETs honour `Accept-Encoding: x-smt-lz`,
 *    entry PUTs accept `Content-Encoding: x-smt-lz` (the body is
 *    decompressed *before* the X-Content-Digest check, so digests
 *    always cover the true entry bytes). /v1/ping advertises the
 *    supported encodings for client negotiation.
 */

#ifndef SMT_SWEEP_STORE_SERVICE_HH
#define SMT_SWEEP_STORE_SERVICE_HH

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "net/http.hh"
#include "obs/metrics.hh"
#include "sweep/result_store.hh"

namespace smt::sweep
{

class StoreService
{
  public:
    /** Serve the store rooted at `dir` (created if needed). A
     *  non-empty `token` demands `Authorization: Bearer <token>` on
     *  every route. */
    explicit StoreService(const std::string &dir, bool verbose = false,
                          std::string token = std::string());
    ~StoreService();

    StoreService(const StoreService &) = delete;
    StoreService &operator=(const StoreService &) = delete;

    /** Handle one request (thread-safe; plug into HttpServer). */
    net::HttpResponse handle(const net::HttpRequest &req);

    /**
     * Start appending one JSONL record per request to `path`
     * (`smtstore --access-log`): ts, mono, route, method, target,
     * status, bytes_in, bytes_out, latency_us, and the client's
     * X-Smt-Trace id — the server half of a sweep profile, joined to
     * client spans by trace id (tools/smttrace). False when the file
     * cannot be opened (`error` says why).
     */
    bool setAccessLog(const std::string &path,
                      std::string *error = nullptr);

    const std::string &dir() const { return store_.dir(); }

    bool requiresAuth() const { return !token_.empty(); }

    /**
     * The service's instrument registry. `GET /v1/stats` snapshots it;
     * the hosting server (tools/smtstore) attaches it to HttpServer so
     * connection-level counters land in the same snapshot.
     */
    obs::Registry &metrics() { return metrics_; }

  private:
    net::HttpResponse dispatch(const net::HttpRequest &req);
    bool authorized(const net::HttpRequest &req) const;

    void logAccess(const net::HttpRequest &req,
                   const net::HttpResponse &resp, std::uint64_t us,
                   const std::string &route);
    net::HttpResponse ingestTrace(const net::HttpRequest &req);

    LocalDirStore store_;
    bool verbose_;
    std::string token_;
    std::mutex mu_;

    std::FILE *accessLog_ = nullptr;
    std::mutex accessMu_; ///< serializes access-log appends only.
    std::mutex traceMu_;  ///< serializes trace-capture appends only.

    obs::Registry metrics_;
    std::chrono::steady_clock::time_point started_ =
        std::chrono::steady_clock::now();
};

/** The ETag / X-Content-Digest value for a message body. */
std::string contentDigest(const std::string &body);

/** Constant-time string equality: the comparison touches every byte
 *  of both inputs whatever matches, so a token guess learns nothing
 *  from response timing. */
bool tokenEquals(const std::string &a, const std::string &b);

} // namespace smt::sweep

#endif // SMT_SWEEP_STORE_SERVICE_HH
