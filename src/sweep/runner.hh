/**
 * @file
 * The sweep runner: expands a spec, consults the result cache, and
 * schedules every rotation run of every uncached point onto the shared
 * thread pool at once — a whole figure saturates the machine instead
 * of one data point's eight runs at a time.
 */

#ifndef SMT_SWEEP_RUNNER_HH
#define SMT_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/pipe_trace.hh"
#include "obs/trace.hh"
#include "sim/experiment.hh"
#include "sim/mix_runner.hh"
#include "sweep/json.hh"
#include "sweep/spec.hh"

namespace smt::sweep
{

/** A running sweep's position, reported as each point settles. */
struct RunProgress
{
    std::size_t pointsDone = 0;
    std::size_t pointsTotal = 0;
    std::size_t cacheHits = 0;
};

/** How to execute a sweep. */
struct RunnerOptions
{
    /** Baseline measurement knobs (specs may override cycles/warmup/
     *  runs; `parallel` is always taken from here). */
    MeasureOptions measure;

    /** Cache directory or store URL; empty disables caching. */
    std::string cacheDir;

    /** Bearer token presented to a token-protected remote store
     *  (ignored for directory stores). */
    std::string storeToken;

    /** In-progress marker lease seconds; a heartbeat refreshes every
     *  live marker at ttl/3 while this runner measures. */
    double markerTtlSeconds = 60.0;

    /** Fail (exit 1) on any cache miss — CI's "second pass is all
     *  hits" assertion. */
    bool requireCached = false;

    /** Print per-point scheduling/caching progress to stderr. */
    bool verbose = false;

    /** Worker threads for the shared pool (the --jobs flag); 0 keeps
     *  the pool's own default (SMTSIM_POOL_WORKERS or the hardware). */
    unsigned jobs = 0;

    /** Invoked after each point settles (cache hit or measured) —
     *  distributed workers append heartbeat records from here. */
    std::function<void(const RunProgress &)> onProgress;

    /**
     * Trace-span sink (`--trace-out`): the runner emits one span per
     * digest transition (queued → claimed → run → stored, plus hit)
     * with durations and worker identity, and stamps the writer's
     * trace id on every remote-store request. Not owned; may be null.
     */
    obs::TraceWriter *trace = nullptr;

    /**
     * Pipeline-microscope sink (`--pipe-out`): every rotation run the
     * runner actually measures (cache hits replay no cycles and so
     * trace nothing) streams its per-instruction lifecycle into this
     * shared JSONL file as its own stream, windowed and sampled per
     * `pipeOptions`. Deliberately outside MeasureOptions: tracing
     * must never perturb a measurement digest. Not owned; may be
     * null.
     */
    obs::PipeTraceSink *pipeSink = nullptr;
    obs::PipeTraceOptions pipeOptions;
};

/** Runner options honouring the SMTSIM_* measurement environment and
 *  the SMTSWEEP_CACHE cache-directory override (unset: no cache). */
RunnerOptions defaultRunnerOptions();

/** One measured (or cache-replayed) grid point. */
struct PointResult
{
    SweepPoint point;
    DataPoint data;
    std::string digest;
    bool cached = false;
};

/** A completed sweep. */
struct SweepOutcome
{
    ExperimentSpec spec;
    std::vector<PointResult> points;
    unsigned cacheHits = 0;
    unsigned cacheMisses = 0;
    double wallSeconds = 0.0;

    /** The result at an exact grid coordinate (fatal if absent). */
    const PointResult &at(const std::vector<std::size_t> &axis_choice,
                          unsigned threads) const;

    /** Collect one axis combination across its thread counts as a
     *  ThreadSweep, for the classic IPC-per-thread-count tables. */
    ThreadSweep sweepFor(const std::vector<std::size_t> &axis_choice,
                         const std::string &label) const;
};

/** Expand and run one experiment. */
SweepOutcome runSweep(const ExperimentSpec &spec,
                      const RunnerOptions &ropts);

/**
 * Measure explicit points through the scheduler+cache (for bespoke
 * probes that are not grid-shaped). Results are in point order.
 */
std::vector<PointResult> runPoints(const std::vector<SweepPoint> &points,
                                   const RunnerOptions &ropts);

/**
 * The BENCH_sweep.json artifact body for a set of completed sweeps.
 * With `with_stalls`, every point also carries its closed stall
 * ledger as machine-readable JSON (`smtsweep --stall-report --json`):
 * {"threads": [per-thread per-cause counters + "stalled"],
 *  "issueNoCandidatesCycles", "totalStalledSlots"} — the same shape
 * smttrace embeds in its summary under "stalls".
 */
Json outcomeArtifact(const std::vector<SweepOutcome> &outcomes,
                     bool with_stalls = false);

/** Write a JSON document to a file (fatal on I/O failure). */
void writeJsonFile(const std::string &path, const Json &j);

} // namespace smt::sweep

#endif // SMT_SWEEP_RUNNER_HH
