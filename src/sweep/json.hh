/**
 * @file
 * A minimal dependency-free JSON value, writer, and reader.
 *
 * Used by the sweep engine for result-cache entries and BENCH_*.json
 * artifacts. Deliberately small: the seven JSON value kinds (integers
 * kept exactly, separate from doubles, so 64-bit simulation counters
 * round-trip bit-identically), insertion-ordered objects (so a value
 * has exactly one serialization — the property the content digest
 * relies on), and a recursive-descent parser.
 */

#ifndef SMT_SWEEP_JSON_HH
#define SMT_SWEEP_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace smt::sweep
{

/** One JSON value (number, string, bool, null, array, or object). */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        UInt,   ///< non-negative integer, exact to 64 bits.
        Int,    ///< negative integer.
        Double, ///< any number written with '.', 'e', or 'E'.
        String,
        Array,
        Object,
    };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::uint64_t v) : type_(Type::UInt), uint_(v) {}
    Json(std::uint32_t v) : Json(static_cast<std::uint64_t>(v)) {}
    Json(std::int64_t v);
    Json(std::int32_t v) : Json(static_cast<std::int64_t>(v)) {}
    Json(double v) : type_(Type::Double), double_(v) {}
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}

    static Json array() { return Json(Type::Array); }
    static Json object() { return Json(Type::Object); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const
    {
        return type_ == Type::UInt || type_ == Type::Int
               || type_ == Type::Double;
    }

    bool asBool() const;
    /** The value as an exact non-negative integer (fatal otherwise). */
    std::uint64_t asUInt() const;
    std::int64_t asInt() const;
    double asDouble() const; ///< any number kind, widened.
    const std::string &asString() const;

    // ---- Arrays ---------------------------------------------------------
    void push(Json v);
    std::size_t size() const;
    const Json &operator[](std::size_t idx) const;

    // ---- Objects (insertion-ordered) ------------------------------------
    /** Set a key (replaces in place if present, else appends). */
    void set(const std::string &key, Json v);
    bool has(const std::string &key) const;
    /** Fetch a key; fatal if absent (cache files name their digest). */
    const Json &at(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &items() const;

    bool operator==(const Json &o) const;

    /**
     * Serialize. indent < 0 renders compact on one line (the canonical
     * form digests are computed over); indent >= 0 pretty-prints.
     */
    std::string dump(int indent = -1) const;

    /** Parse; returns false (out untouched) on malformed input. */
    static bool parse(const std::string &text, Json &out);

    /** Parse input that must be well-formed (fatal otherwise). */
    static Json parseOrDie(const std::string &text);

    /**
     * Write `dump(indent)` plus a newline to `path` atomically (temp
     * file + rename), so concurrent readers and same-content writers
     * never observe a torn file. False on any I/O failure (the temp
     * file is cleaned up; nothing is ever left half-written at
     * `path`).
     */
    bool writeFileAtomic(const std::string &path, int indent = 2) const;

    /** Slurp and parse a file; false (out untouched) when the file is
     *  unreadable or malformed. */
    static bool readFile(const std::string &path, Json &out);

  private:
    explicit Json(Type t) : type_(t) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    std::uint64_t uint_ = 0; ///< magnitude for UInt/Int.
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

} // namespace smt::sweep

#endif // SMT_SWEEP_JSON_HH
