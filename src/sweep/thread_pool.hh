/**
 * @file
 * The process-wide worker pool the sweep engine (and smt::measure)
 * schedule simulation runs onto.
 *
 * One pool, sized to the hardware, outlives every measurement: a whole
 * figure's worth of rotation runs queues up at once and saturates the
 * machine, instead of each data point spawning and joining its own
 * eight std::async threads. Waiters help: wait() executes queued tasks
 * on the calling thread while its future is unready, so tasks that
 * submit and await subtasks (a sweep point awaiting its rotation runs)
 * can never deadlock the pool, whatever its size.
 */

#ifndef SMT_SWEEP_THREAD_POOL_HH
#define SMT_SWEEP_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace smt::sweep
{

/** A fixed-size worker pool over a FIFO task queue. */
class ThreadPool
{
  public:
    /** @param workers worker-thread count; 0 means hardware concurrency. */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains nothing: outstanding tasks are completed before joining. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The shared process-wide pool. Sized to hardware concurrency, or
     * the SMTSIM_POOL_WORKERS environment override.
     */
    static ThreadPool &global();

    /**
     * Request the worker count global() is built with (the --jobs
     * flag; beats the environment). Takes effect only before the
     * first global() use — a disagreeing later request is ignored
     * with a warning, because a live pool cannot be resized.
     */
    static void requestGlobalWorkers(unsigned workers);

    unsigned workerCount() const { return workers_; }

    /** Schedule a callable; returns a future for its result. */
    template <typename F>
    auto
    submit(F fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> result = task->get_future();
        enqueue([task] { (*task)(); });
        return result;
    }

    /**
     * Block on a future, executing queued pool tasks on this thread
     * while it is unready.
     */
    template <typename T>
    T
    wait(std::future<T> fut)
    {
        using namespace std::chrono_literals;
        while (fut.wait_for(0s) != std::future_status::ready) {
            if (!runOne())
                fut.wait_for(200us);
        }
        return fut.get();
    }

    /** Pop and execute one queued task, if any; false when idle. */
    bool runOne();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    unsigned workers_;
    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

} // namespace smt::sweep

#endif // SMT_SWEEP_THREAD_POOL_HH
