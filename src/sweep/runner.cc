#include "sweep/runner.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>

#include <unistd.h>

#include "common/logging.hh"
#include "sweep/digest.hh"
#include "sweep/remote_store.hh"
#include "sweep/result_store.hh"
#include "sweep/thread_pool.hh"

namespace smt::sweep
{

RunnerOptions
defaultRunnerOptions()
{
    RunnerOptions ropts;
    ropts.measure = defaultMeasureOptions();
    if (const char *env = std::getenv("SMTSWEEP_CACHE"); env != nullptr)
        ropts.cacheDir = env;
    return ropts;
}

const PointResult &
SweepOutcome::at(const std::vector<std::size_t> &axis_choice,
                 unsigned threads) const
{
    for (const PointResult &r : points) {
        if (r.point.axisChoice == axis_choice
            && r.point.threads == threads)
            return r;
    }
    smt_fatal("experiment \"%s\" has no point at the requested grid "
              "coordinate (%u threads)", spec.name.c_str(), threads);
}

ThreadSweep
SweepOutcome::sweepFor(const std::vector<std::size_t> &axis_choice,
                       const std::string &label) const
{
    ThreadSweep sweep;
    sweep.label = label;
    for (const PointResult &r : points) {
        if (r.point.axisChoice != axis_choice)
            continue;
        sweep.threads.push_back(r.point.threads);
        sweep.points.push_back(r.data);
    }
    smt_assert(!sweep.points.empty(),
               "no points for sweep \"%s\" of experiment \"%s\"",
               label.c_str(), spec.name.c_str());
    return sweep;
}

namespace
{

/** One pipetrace stream for one rotation run, when `--pipe-out` is
 *  active (null otherwise). The meta rides the stream's `pipe_start`
 *  line so smtpipe can label what it reconstructs. */
std::unique_ptr<obs::PipeTrace>
makePipeTrace(const RunnerOptions &ropts, const std::string &digest,
              const SweepPoint &point, unsigned run)
{
    if (ropts.pipeSink == nullptr)
        return nullptr;
    Json meta = Json::object();
    meta.set("digest", Json(digest));
    meta.set("label", Json(point.label));
    meta.set("run", Json(static_cast<std::uint64_t>(run)));
    meta.set("threads",
             Json(static_cast<std::uint64_t>(point.threads)));
    return std::make_unique<obs::PipeTrace>(
        *ropts.pipeSink, ropts.pipeOptions, std::move(meta));
}

} // namespace

std::vector<PointResult>
runPoints(const std::vector<SweepPoint> &points, const RunnerOptions &ropts)
{
    if (ropts.jobs > 0)
        ThreadPool::requestGlobalWorkers(ropts.jobs);

    std::unique_ptr<ResultStore> store;
    std::unique_ptr<MarkerHeartbeat> heartbeat;
    if (!ropts.cacheDir.empty()) {
        store = openStore(ropts.cacheDir, ropts.storeToken);
        // Keep every in-progress marker's lease fresh for as long as
        // this process lives — so a marker that *does* expire means
        // the worker really died, on whatever host is watching.
        heartbeat = std::make_unique<MarkerHeartbeat>(
            *store, ropts.markerTtlSeconds);
        // Stamp the trace id on every store request: from the writer
        // when tracing locally, else straight from the environment —
        // a coordinator's workers join its trace in the store access
        // log even when they write no trace file of their own.
        if (ropts.trace != nullptr)
            store->setTraceContext(ropts.trace->traceId());
        else if (const char *env = std::getenv(obs::kTraceEnvVar);
                 env != nullptr && env[0] != '\0')
            store->setTraceContext(env);
    }

    // One span per digest transition, tagged with this worker's
    // identity so a merged fleet trace attributes every measurement.
    // Against a *remote* store the emitted lines are also buffered
    // byte-identically and flushed to the server (`POST /v1/trace`)
    // when the sweep settles — a remote worker's spans would otherwise
    // die with its host. Both span-emitting passes run on this thread,
    // so the buffer needs no lock.
    char hostbuf[256] = {};
    if (::gethostname(hostbuf, sizeof hostbuf - 1) != 0)
        hostbuf[0] = '\0';
    const std::string host = hostbuf[0] != '\0' ? hostbuf : "unknown";
    auto *remote = dynamic_cast<RemoteResultStore *>(store.get());
    std::string span_buffer;
    const auto span = [&](const char *event, const PointResult &result,
                          double seconds = -1.0, double dur_us = -1.0) {
        if (ropts.trace == nullptr)
            return;
        Json fields = Json::object();
        fields.set("digest", Json(result.digest));
        fields.set("label", Json(result.point.label));
        fields.set("pid",
                   Json(static_cast<std::uint64_t>(::getpid())));
        fields.set("host", Json(host));
        if (seconds >= 0.0)
            fields.set("seconds", Json(seconds));
        if (dur_us >= 0.0)
            fields.set("dur_us", Json(dur_us));
        const std::string line =
            ropts.trace->emit(event, std::move(fields));
        if (remote != nullptr) {
            span_buffer += line;
            span_buffer += '\n';
        }
    };
    // Microseconds of steady clock spent in `fn` — the dur_us stamped
    // on hit/claimed/stored spans (store round trips).
    const auto timed_us = [](const auto &fn) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::vector<PointResult> results(points.size());
    std::size_t done = 0, hits = 0;
    const auto report_progress = [&] {
        if (ropts.onProgress)
            ropts.onProgress(RunProgress{done, points.size(), hits});
    };

    // Pass 1: resolve cache hits and queue every rotation run of every
    // miss. Identical points (same digest) are scheduled once and
    // share the first occurrence's result.
    struct Pending
    {
        std::size_t index;                          ///< into results.
        std::vector<std::future<SimStats>> runs;    ///< empty if serial
                                                    ///< or duplicate.
        std::size_t duplicateOf = SIZE_MAX;

        /** Per-run wall seconds (parallel path): each pool task fills
         *  its own slot; future.get() publishes it. The sum is the
         *  observed point cost fed back to the shard planner. */
        std::shared_ptr<std::vector<double>> runSeconds;
    };
    std::vector<Pending> pending;
    ThreadPool &pool = ThreadPool::global();

    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &point = points[i];
        smt_assert(point.options.runs >= 1);
        PointResult &result = results[i];
        result.point = point;
        result.digest = measurementDigest(point.config, point.options);

        if (store) {
            std::optional<SimStats> hit;
            const double lookup_us =
                timed_us([&] { hit = store->lookup(result.digest); });
            if (hit.has_value()) {
                result.data.stats = std::move(*hit);
                result.cached = true;
                ++done;
                ++hits;
                span("hit", result, -1.0, lookup_us);
                report_progress();
                if (ropts.verbose)
                    smt_inform("sweep: [hit]  %s (%s)",
                               point.label.c_str(), result.digest.c_str());
                continue;
            }
        }
        if (ropts.requireCached)
            smt_fatal("sweep: point \"%s\" (%s) is not cached and "
                      "--require-cached is set",
                      point.label.c_str(), result.digest.c_str());

        Pending p;
        p.index = i;
        for (std::size_t j = 0; j < i; ++j) {
            if (results[j].digest == result.digest && !results[j].cached) {
                p.duplicateOf = j;
                break;
            }
        }
        if (p.duplicateOf == SIZE_MAX)
            span("queued", result);
        // Advisory claim so any peer can tell in-progress (or, after
        // a crash, orphaned) work from pending work; the heartbeat
        // keeps its lease fresh until the entry is stored.
        if (store && p.duplicateOf == SIZE_MAX) {
            const double claim_us = timed_us([&] {
                store->markInProgress(result.digest,
                                      ropts.markerTtlSeconds);
            });
            heartbeat->add(result.digest);
            span("claimed", result, -1.0, claim_us);
        }
        if (p.duplicateOf == SIZE_MAX && ropts.measure.parallel) {
            p.runs.reserve(point.options.runs);
            p.runSeconds = std::make_shared<std::vector<double>>(
                point.options.runs, 0.0);
            // The SweepPoint lives in the caller's vector for the whole
            // sweep; capture by reference. `result` (for the digest)
            // and `ropts` outlive the pool work the same way.
            for (unsigned r = 0; r < point.options.runs; ++r) {
                auto seconds = p.runSeconds;
                p.runs.push_back(pool.submit([&point, r, seconds,
                                              &ropts, &result] {
                    const auto t0 = std::chrono::steady_clock::now();
                    std::unique_ptr<obs::PipeTrace> pipe =
                        makePipeTrace(ropts, result.digest, point, r);
                    SimStats stats = measureRun(point.config, r,
                                                point.options,
                                                pipe.get());
                    if (pipe != nullptr)
                        pipe->finish();
                    (*seconds)[r] = std::chrono::duration<double>(
                                        std::chrono::steady_clock::now()
                                        - t0)
                                        .count();
                    return stats;
                }));
            }
        }
        if (ropts.verbose)
            smt_inform("sweep: [miss] %s (%s)%s", point.label.c_str(),
                       result.digest.c_str(),
                       p.duplicateOf != SIZE_MAX ? " [duplicate]" : "");
        pending.push_back(std::move(p));
    }

    // Pass 2: aggregate in point order, runs in run order — the same
    // order a serial sweep uses, so results are schedule-independent.
    for (Pending &p : pending) {
        PointResult &result = results[p.index];
        if (p.duplicateOf != SIZE_MAX) {
            result.data = results[p.duplicateOf].data;
            ++done;
            report_progress();
            continue;
        }
        const SweepPoint &point = result.point;
        double measure_seconds = 0.0;
        if (p.runs.empty()) {
            for (unsigned r = 0; r < point.options.runs; ++r) {
                const auto t0 = std::chrono::steady_clock::now();
                std::unique_ptr<obs::PipeTrace> pipe =
                    makePipeTrace(ropts, result.digest, point, r);
                result.data.stats.add(measureRun(point.config, r,
                                                 point.options,
                                                 pipe.get()));
                if (pipe != nullptr)
                    pipe->finish();
                measure_seconds +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            }
        } else {
            for (auto &f : p.runs)
                result.data.stats.add(pool.wait(std::move(f)));
            for (double s : *p.runSeconds)
                measure_seconds += s;
        }
        span("run", result, measure_seconds, measure_seconds * 1e6);
        if (store) {
            heartbeat->remove(result.digest);
            const double store_us = timed_us([&] {
                store->store(result.digest, point.config, point.options,
                             result.data.stats, measure_seconds);
            });
            span("stored", result, -1.0, store_us);
        }
        ++done;
        report_progress();
    }

    // Merge this worker's spans into the server-side capture. Best
    // effort: an old server 404s and the local trace file still has
    // everything.
    if (remote != nullptr)
        remote->postTrace(span_buffer);
    return results;
}

SweepOutcome
runSweep(const ExperimentSpec &spec, const RunnerOptions &ropts)
{
    const auto start = std::chrono::steady_clock::now();

    SweepOutcome outcome;
    outcome.spec = spec;
    outcome.points = runPoints(spec.expand(ropts.measure), ropts);
    for (const PointResult &r : outcome.points) {
        if (r.cached)
            ++outcome.cacheHits;
        else
            ++outcome.cacheMisses;
    }
    outcome.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start)
            .count();
    return outcome;
}

namespace
{

/** The machine-readable stall ledger for one measured point: the
 *  per-thread per-cause counters of `stats.stalls` plus the ledger
 *  totals — the JSON twin of `SimStats::stallReport`. */
Json
stallLedgerJson(const SimStats &stats, unsigned num_threads)
{
    const StallStats &s = stats.stalls;
    Json doc = Json::object();
    Json threads = Json::array();
    for (unsigned t = 0; t < num_threads && t < kMaxThreads; ++t) {
        Json row = Json::object();
        row.set("fetchActive", Json(s.fetchActive[t]));
        row.set("fetchIcacheMiss", Json(s.fetchIcacheMiss[t]));
        row.set("fetchFrontEndFull", Json(s.fetchFrontEndFull[t]));
        row.set("fetchNoTarget", Json(s.fetchNoTarget[t]));
        row.set("fetchLostSelection", Json(s.fetchLostSelection[t]));
        row.set("renameIQFull", Json(s.renameIQFull[t]));
        row.set("renameNoRegisters", Json(s.renameNoRegisters[t]));
        row.set("issueOperandWait", Json(s.issueOperandWait[t]));
        row.set("issueFuBusy", Json(s.issueFuBusy[t]));
        row.set("stalled", Json(s.fetchStalled(t)));
        threads.push(std::move(row));
    }
    doc.set("threads", std::move(threads));
    doc.set("issueNoCandidatesCycles", Json(s.issueNoCandidatesCycles));
    doc.set("totalStalledSlots", Json(s.totalStalledSlots()));
    return doc;
}

/** The sampled combined-IQ occupancy histogram of a point
 *  (`PipelineState::sampleOccupancy()`, one sample per cycle):
 *  sample count, mean population, and the non-zero buckets as
 *  [population, cycles] pairs (the last bucket is the histogram's
 *  overflow bin). */
Json
occupancyJson(const SimStats &stats)
{
    const Histogram &h = stats.combinedQueuePopulation;
    Json doc = Json::object();
    doc.set("samples", Json(h.samples()));
    doc.set("mean", Json(h.mean()));
    Json buckets = Json::array();
    for (std::size_t b = 0; b < h.buckets(); ++b) {
        if (h.bucket(b) == 0)
            continue;
        Json pair = Json::array();
        pair.push(Json(static_cast<std::uint64_t>(b)));
        pair.push(Json(h.bucket(b)));
        buckets.push(std::move(pair));
    }
    doc.set("buckets", std::move(buckets));
    return doc;
}

} // namespace

Json
outcomeArtifact(const std::vector<SweepOutcome> &outcomes,
                bool with_stalls)
{
    Json doc = Json::object();
    doc.set("schema", Json(kDigestSchema));
    Json experiments = Json::array();
    for (const SweepOutcome &outcome : outcomes) {
        Json e = Json::object();
        e.set("experiment", Json(outcome.spec.name));
        e.set("title", Json(outcome.spec.title));
        e.set("wallSeconds", Json(outcome.wallSeconds));
        e.set("cacheHits", Json(static_cast<std::uint64_t>(
                               outcome.cacheHits)));
        e.set("cacheMisses", Json(static_cast<std::uint64_t>(
                                 outcome.cacheMisses)));
        Json points = Json::array();
        for (const PointResult &r : outcome.points) {
            Json p = Json::object();
            p.set("label", Json(r.point.label));
            p.set("threads", Json(r.point.threads));
            p.set("digest", Json(r.digest));
            p.set("cached", Json(r.cached));
            p.set("ipc", Json(r.data.ipc()));
            p.set("cycles", Json(r.data.stats.cycles));
            p.set("committedInstructions",
                  Json(r.data.stats.committedInstructions));
            p.set("occupancy", occupancyJson(r.data.stats));
            if (with_stalls)
                p.set("stalls", stallLedgerJson(r.data.stats,
                                                r.point.threads));
            points.push(std::move(p));
        }
        e.set("points", std::move(points));
        experiments.push(std::move(e));
    }
    doc.set("experiments", std::move(experiments));
    return doc;
}

void
writeJsonFile(const std::string &path, const Json &j)
{
    if (!j.writeFileAtomic(path))
        smt_fatal("cannot write %s", path.c_str());
}

} // namespace smt::sweep
