/**
 * @file
 * Declarative experiment specifications.
 *
 * An ExperimentSpec is data: a base machine preset, a list of thread
 * counts, and named axes whose options assign string-keyed knobs
 * (fetch/issue policy names, queue sizes, register budgets, fetch
 * partitioning, ...). expand() takes the cartesian product of the axes
 * and the thread counts and yields concrete SmtConfig+MeasureOptions
 * points — turning "run a paper figure" into a grid the runner can
 * schedule, digest, and cache point by point.
 */

#ifndef SMT_SWEEP_SPEC_HH
#define SMT_SWEEP_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/config.hh"
#include "sim/mix_runner.hh"
#include "sweep/json.hh"

namespace smt::sweep
{

/** One knob assignment, e.g. {"fetchPolicy", "ICOUNT"}. */
struct KnobAssignment
{
    std::string knob;
    Json value;
};

/** Set one named knob on a config; fatal on an unknown knob name. */
void applyKnob(SmtConfig &cfg, const KnobAssignment &assignment);

/** The knob names applyKnob understands (for diagnostics/docs). */
std::vector<std::string> knownKnobs();

/** One setting of an axis, e.g. policy axis option "ICOUNT". */
struct AxisOption
{
    std::string label;
    std::vector<KnobAssignment> knobs;
    /** When non-empty, this option sweeps these thread counts instead
     *  of the spec's (e.g. the superscalar reference point of Figure 3
     *  only exists at one thread). */
    std::vector<unsigned> threadCountsOverride;
};

/** One named dimension of the experiment grid. */
struct Axis
{
    std::string name;
    std::vector<AxisOption> options;
};

/** One concrete point of an expanded grid. */
struct SweepPoint
{
    std::string label;                  ///< axis option labels, joined.
    std::vector<std::size_t> axisChoice; ///< option index per axis.
    unsigned threads = 0;
    SmtConfig config;
    MeasureOptions options;
};

/** A declarative grid of measurements. */
struct ExperimentSpec
{
    std::string name;  ///< CLI name, e.g. "fig5".
    std::string title; ///< one-line description.

    /** Base machine: "base" (RR.1.8), "icount28", or "superscalar". */
    std::string basePreset = "base";

    std::vector<unsigned> threadCounts;
    std::vector<Axis> axes;

    /** Per-experiment measurement overrides (unset fields inherit the
     *  runner's options, i.e. the SMTSIM_* environment). */
    std::optional<std::uint64_t> cyclesPerRun;
    std::optional<std::uint64_t> warmupCycles;
    std::optional<unsigned> runs;

    /**
     * Expand to the full grid: axes outermost-first, thread counts
     * innermost, mirroring the loop nests of the original bench
     * binaries. `base_opts` supplies the measurement knobs the spec
     * doesn't override.
     */
    std::vector<SweepPoint> expand(const MeasureOptions &base_opts) const;

    /** Total points the grid expands to. */
    std::size_t gridSize() const;

    /** The spec itself as JSON (for artifacts and --describe). */
    Json describe() const;
};

} // namespace smt::sweep

#endif // SMT_SWEEP_SPEC_HH
