#include "sweep/json.hh"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace fs = std::filesystem;

namespace smt::sweep
{

Json::Json(std::int64_t v)
{
    if (v < 0) {
        type_ = Type::Int;
        uint_ = static_cast<std::uint64_t>(-(v + 1)) + 1;
    } else {
        type_ = Type::UInt;
        uint_ = static_cast<std::uint64_t>(v);
    }
}

bool
Json::asBool() const
{
    smt_assert(type_ == Type::Bool);
    return bool_;
}

std::uint64_t
Json::asUInt() const
{
    smt_assert(type_ == Type::UInt);
    return uint_;
}

std::int64_t
Json::asInt() const
{
    if (type_ == Type::UInt) {
        smt_assert(uint_ <= static_cast<std::uint64_t>(INT64_MAX));
        return static_cast<std::int64_t>(uint_);
    }
    smt_assert(type_ == Type::Int);
    smt_assert(uint_ <= static_cast<std::uint64_t>(INT64_MAX) + 1);
    return -static_cast<std::int64_t>(uint_ - 1) - 1;
}

double
Json::asDouble() const
{
    switch (type_) {
      case Type::UInt: return static_cast<double>(uint_);
      case Type::Int: return -static_cast<double>(uint_);
      case Type::Double: return double_;
      default: smt_panic("Json::asDouble on a non-number");
    }
}

const std::string &
Json::asString() const
{
    smt_assert(type_ == Type::String);
    return string_;
}

void
Json::push(Json v)
{
    smt_assert(type_ == Type::Array);
    array_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    smt_assert(type_ == Type::Object);
    return object_.size();
}

const Json &
Json::operator[](std::size_t idx) const
{
    smt_assert(type_ == Type::Array && idx < array_.size());
    return array_[idx];
}

void
Json::set(const std::string &key, Json v)
{
    smt_assert(type_ == Type::Object);
    for (auto &[k, old] : object_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

bool
Json::has(const std::string &key) const
{
    smt_assert(type_ == Type::Object);
    for (const auto &[k, v] : object_)
        if (k == key)
            return true;
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    smt_assert(type_ == Type::Object);
    for (const auto &[k, v] : object_)
        if (k == key)
            return v;
    smt_fatal("Json object has no key \"%s\"", key.c_str());
}

const std::vector<std::pair<std::string, Json>> &
Json::items() const
{
    smt_assert(type_ == Type::Object);
    return object_;
}

bool
Json::operator==(const Json &o) const
{
    if (type_ != o.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == o.bool_;
      case Type::UInt:
      case Type::Int: return uint_ == o.uint_;
      case Type::Double: return double_ == o.double_;
      case Type::String: return string_ == o.string_;
      case Type::Array: return array_ == o.array_;
      case Type::Object: return object_ == o.object_;
    }
    return false;
}

namespace
{

void
dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[40];
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::UInt:
        std::snprintf(buf, sizeof buf, "%" PRIu64, uint_);
        out += buf;
        break;
      case Type::Int:
        out += '-';
        std::snprintf(buf, sizeof buf, "%" PRIu64, uint_);
        out += buf;
        break;
      case Type::Double:
        // %.17g round-trips every finite double exactly.
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
        break;
      case Type::String:
        dumpString(out, string_);
        break;
      case Type::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            if (indent >= 0)
                newlineIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (indent >= 0)
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ',';
            if (indent >= 0)
                newlineIndent(out, indent, depth + 1);
            dumpString(out, object_[i].first);
            out += ':';
            if (indent >= 0)
                out += ' ';
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (indent >= 0)
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent parser over a borrowed string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parseDocument(Json &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(Json &out)
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case 'n': return literal("null") && (out = Json(), true);
          case 't': return literal("true") && (out = Json(true), true);
          case 'f': return literal("false") && (out = Json(false), true);
          case '"': return parseString(out);
          case '[': return parseArray(out);
          case '{': return parseObject(out);
          default: return parseNumber(out);
        }
    }

    bool
    parseString(Json &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = Json(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string &s)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // Encode the code point as UTF-8 (surrogate pairs are
                // passed through as two 3-byte sequences; the digester
                // never emits them, this is read-side tolerance only).
                if (cp < 0x80) {
                    s += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    s += static_cast<char>(0xc0 | (cp >> 6));
                    s += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    s += static_cast<char>(0xe0 | (cp >> 12));
                    s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    s += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default: return false;
            }
        }
        return false;
    }

    bool
    parseNumber(Json &out)
    {
        const std::size_t start = pos_;
        bool negative = false;
        bool floating = false;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            negative = true;
            ++pos_;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+'
                       || c == '-') {
                floating = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start + (negative ? 1u : 0u))
            return false;
        const std::string token = text_.substr(start, pos_ - start);
        if (floating) {
            char *end = nullptr;
            errno = 0;
            const double v = std::strtod(token.c_str(), &end);
            // Reject overflow ("1e999") rather than round-tripping an
            // inf that dump() could never re-emit as valid JSON.
            if (end == nullptr || *end != '\0' || errno == ERANGE
                || !std::isfinite(v))
                return false;
            out = Json(v);
            return true;
        }
        char *end = nullptr;
        errno = 0;
        const std::uint64_t mag = std::strtoull(
            token.c_str() + (negative ? 1 : 0), &end, 10);
        // An integer beyond 64 bits is malformed, not clamped: exact
        // integer round-tripping is the type's contract.
        if (end == nullptr || *end != '\0' || errno == ERANGE)
            return false;
        if (!negative) {
            out = Json(mag);
        } else if (mag <= static_cast<std::uint64_t>(INT64_MAX)) {
            out = Json(-static_cast<std::int64_t>(mag));
        } else {
            return false;
        }
        return true;
    }

    bool
    parseArray(Json &out)
    {
        ++pos_; // '['
        Json arr = Json::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            out = std::move(arr);
            return true;
        }
        while (true) {
            Json v;
            skipSpace();
            if (!parseValue(v))
                return false;
            arr.push(std::move(v));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                out = std::move(arr);
                return true;
            }
            return false;
        }
    }

    bool
    parseObject(Json &out)
    {
        ++pos_; // '{'
        Json obj = Json::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            out = std::move(obj);
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return false;
            std::string key;
            if (!parseRawString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            Json v;
            skipSpace();
            if (!parseValue(v))
                return false;
            obj.set(key, std::move(v));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                out = std::move(obj);
                return true;
            }
            return false;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json &out)
{
    Json value;
    if (!Parser(text).parseDocument(value))
        return false;
    out = std::move(value);
    return true;
}

Json
Json::parseOrDie(const std::string &text)
{
    Json value;
    if (!parse(text, value))
        smt_fatal("malformed JSON input (%zu bytes)", text.size());
    return value;
}

bool
Json::readFile(const std::string &path, Json &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str(), out);
}

bool
Json::writeFileAtomic(const std::string &path, int indent) const
{
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            smt_warn("cannot write %s", tmp.c_str());
            return false;
        }
        out << dump(indent) << '\n';
        if (!out.good()) {
            smt_warn("short write to %s", tmp.c_str());
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        smt_warn("cannot rename %s to %s: %s", tmp.c_str(), path.c_str(),
                 ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace smt::sweep
