#include "sweep/remote_store.hh"

#include <unistd.h>

#include "common/logging.hh"
#include "common/lz.hh"
#include "obs/trace.hh"
#include "sweep/digest.hh"
#include "sweep/result_cache.hh"
#include "sweep/serialize.hh"
#include "sweep/store_service.hh"

namespace smt::sweep
{

namespace
{

/** Strip the optional quotes of an ETag header value. */
std::string
unquoteEtag(const std::string &etag)
{
    if (etag.size() >= 2 && etag.front() == '"' && etag.back() == '"')
        return etag.substr(1, etag.size() - 2);
    return etag;
}

} // namespace

bool
isRemoteStoreLocator(const std::string &locator)
{
    return net::isHttpUrl(locator);
}

RemoteResultStore::RemoteResultStore(const net::Url &url,
                                     std::string token)
    : url_(url), token_(std::move(token)), client_(url.host, url.port)
{
}

std::string
RemoteResultStore::resourcePath(const std::string &resource) const
{
    const std::string base = url_.path == "/" ? "" : url_.path;
    return base + resource;
}

std::optional<net::HttpResponse>
RemoteResultStore::exchange(const std::string &method,
                            const std::string &resource,
                            const std::string &body,
                            const std::string &content_digest,
                            const std::string &content_encoding,
                            bool accept_lz) const
{
    net::HttpRequest req;
    req.method = method;
    req.target = resourcePath(resource);
    req.body = body;
    if (!body.empty())
        req.headers.set("Content-Type", "application/json");
    if (!content_digest.empty())
        req.headers.set("X-Content-Digest", content_digest);
    if (!content_encoding.empty())
        req.headers.set("Content-Encoding", content_encoding);
    if (accept_lz)
        req.headers.set("Accept-Encoding", kLzEncodingName);
    if (!token_.empty())
        req.headers.set("Authorization", "Bearer " + token_);
    if (!traceId_.empty())
        req.headers.set(obs::kTraceHeader, traceId_);

    std::lock_guard<std::mutex> lock(mu_);
    return client_.request(req);
}

void
RemoteResultStore::setTraceContext(const std::string &trace_id)
{
    traceId_ = trace_id;
}

bool
RemoteResultStore::postTrace(const std::string &jsonl)
{
    if (jsonl.empty())
        return true;
    const std::optional<net::HttpResponse> resp =
        exchange("POST", "/v1/trace", jsonl);
    return resp.has_value() && resp->ok();
}

bool
RemoteResultStore::serverSupportsLz() const
{
    int known = lzSupport_.load(std::memory_order_relaxed);
    if (known >= 0)
        return known == 1;
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/ping");
    if (!resp.has_value() || !resp->ok())
        return false; // unreachable: stay unknown, probe again later.
    bool lz = false;
    Json doc;
    if (Json::parse(resp->body, doc)
        && doc.type() == Json::Type::Object && doc.has("encodings")) {
        const Json &encodings = doc.at("encodings");
        for (std::size_t i = 0; i < encodings.size(); ++i) {
            if (encodings[i].type() == Json::Type::String
                && encodings[i].asString() == kLzEncodingName)
                lz = true;
        }
    }
    lzSupport_.store(lz ? 1 : 0, std::memory_order_relaxed);
    return lz;
}

std::optional<SimStats>
RemoteResultStore::lookup(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/entries/" + digest, "", "", "",
                 /*accept_lz=*/true);
    if (!resp.has_value() || !resp->ok())
        return std::nullopt;

    // Decode first (a compressed body that does not decode is a miss,
    // like any torn transfer), then verify the ETag against the
    // *uncompressed* bytes — transit corruption stays a miss, exactly
    // like a corrupt local entry file.
    std::string body;
    const std::string encoding =
        resp->headers.get("Content-Encoding");
    if (encoding == kLzEncodingName) {
        std::optional<std::string> decoded =
            lzDecompress(resp->body, net::kMaxBodyBytes);
        if (!decoded.has_value())
            return std::nullopt;
        body = std::move(*decoded);
    } else if (encoding.empty() || encoding == "identity") {
        body = resp->body;
    } else {
        return std::nullopt; // an encoding we never asked for.
    }
    const std::string etag = unquoteEtag(resp->headers.get("ETag"));
    if (!etag.empty() && etag != contentDigest(body))
        return std::nullopt;

    Json entry;
    if (!Json::parse(body, entry)
        || entry.type() != Json::Type::Object || !entry.has("digest")
        || !entry.has("stats")
        || entry.at("digest").type() != Json::Type::String
        || entry.at("digest").asString() != digest)
        return std::nullopt;
    SimStats stats;
    if (!simStatsFromJson(entry.at("stats"), stats))
        return std::nullopt;
    return stats;
}

void
RemoteResultStore::store(const std::string &digest, const SmtConfig &cfg,
                         const MeasureOptions &opts,
                         const SimStats &stats, double measure_seconds)
{
    // The exact bytes LocalDirStore would put on disk, so a store
    // directory serves identically whichever side wrote each entry.
    // X-Content-Digest always covers these uncompressed bytes; the
    // codec only dresses them for transit.
    const std::string text =
        makeEntryJson(digest, cfg, opts, stats, measure_seconds).dump(2)
        + "\n";
    std::optional<net::HttpResponse> resp;
    bool compressed = false;
    if (serverSupportsLz()) {
        std::string packed = lzCompress(text);
        if (packed.size() < text.size()) {
            compressed = true;
            resp = exchange("PUT", "/v1/entries/" + digest, packed,
                            contentDigest(text), kLzEncodingName);
        }
    }
    // Identity path: small entries, old servers, or (belt and braces)
    // a server that advertised the codec but rejected the encoding.
    if (!compressed
        || (resp.has_value()
            && (resp->status == 415 || resp->status == 400)))
        resp = exchange("PUT", "/v1/entries/" + digest, text,
                        contentDigest(text));
    if (!resp.has_value() || !resp->ok())
        smt_warn("remote store %s rejected entry %s (%s); the result "
                 "is lost from the cache",
                 description().c_str(), digest.c_str(),
                 resp.has_value() ? std::to_string(resp->status).c_str()
                                  : client_.lastError().c_str());
}

std::optional<double>
RemoteResultStore::observedCost(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/costs/" + digest);
    if (!resp.has_value() || !resp->ok())
        return std::nullopt;
    Json doc;
    if (!Json::parse(resp->body, doc)
        || doc.type() != Json::Type::Object || !doc.has("seconds")
        || !doc.at("seconds").isNumber())
        return std::nullopt;
    const double seconds = doc.at("seconds").asDouble();
    return seconds > 0.0 ? std::optional<double>(seconds) : std::nullopt;
}

std::map<std::string, double>
RemoteResultStore::observedCosts() const
{
    std::map<std::string, double> costs;
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/costs");
    if (!resp.has_value() || !resp->ok())
        return costs;
    Json doc;
    if (!Json::parse(resp->body, doc)
        || doc.type() != Json::Type::Object || !doc.has("costs")
        || doc.at("costs").type() != Json::Type::Object)
        return costs;
    for (const auto &[digest, seconds] : doc.at("costs").items()) {
        if (seconds.isNumber() && seconds.asDouble() > 0.0)
            costs.emplace(digest, seconds.asDouble());
    }
    return costs;
}

void
RemoteResultStore::markInProgress(const std::string &digest,
                                  double ttl_seconds)
{
    exchange("PUT", "/v1/markers/" + digest,
             makeSelfMarker(ttl_seconds).dump(2) + "\n");
}

void
RemoteResultStore::refreshMarkers(
    const std::vector<std::string> &digests, double ttl_seconds)
{
    if (digests.empty())
        return;
    if (bulkMarkers_.load(std::memory_order_relaxed)) {
        Json doc = Json::object();
        doc.set("marker", makeSelfMarker(ttl_seconds));
        Json list = Json::array();
        for (const std::string &digest : digests)
            list.push(Json(digest));
        doc.set("digests", std::move(list));
        const std::optional<net::HttpResponse> resp =
            exchange("POST", "/v1/markers", doc.dump() + "\n");
        if (resp.has_value() && resp->ok())
            return;
        // An old server has no bulk route (404/405): remember and
        // fall back. Transport failures stay on the bulk path — the
        // next beat retries it.
        if (!resp.has_value()
            || (resp->status != 404 && resp->status != 405))
            return;
        bulkMarkers_.store(false, std::memory_order_relaxed);
    }
    for (const std::string &digest : digests)
        markInProgress(digest, ttl_seconds);
}

void
RemoteResultStore::clearInProgress(const std::string &digest)
{
    exchange("DELETE", "/v1/markers/" + digest);
}

void
RemoteResultStore::markOrphaned(const std::string &digest)
{
    exchange("POST", "/v1/markers/" + digest + "/orphan");
}

std::string
RemoteResultStore::readMarkerText(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/markers/" + digest);
    if (!resp.has_value() || !resp->ok())
        return "";
    return resp->body;
}

bool
RemoteResultStore::tryAdopt(const std::string &digest,
                            const std::string &expected_marker)
{
    Json claim = Json::object();
    claim.set("expect", Json(expected_marker));
    claim.set("marker", makeSelfMarker());
    const std::optional<net::HttpResponse> resp =
        exchange("POST", "/v1/claims/" + digest, claim.dump() + "\n");
    return resp.has_value() && resp->ok();
}

WorkState
RemoteResultStore::state(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/state/" + digest);
    if (resp.has_value() && resp->ok()) {
        Json doc;
        if (Json::parse(resp->body, doc)
            && doc.type() == Json::Type::Object && doc.has("state")
            && doc.at("state").type() == Json::Type::String) {
            const std::string &text = doc.at("state").asString();
            if (text == "done")
                return WorkState::Done;
            if (text == "in-progress")
                return WorkState::InProgress;
            if (text == "orphaned")
                return WorkState::Orphaned;
        }
    }
    // Unreachable server: nothing is known to be done or claimed.
    return WorkState::Pending;
}

std::vector<std::string>
RemoteResultStore::storedDigests() const
{
    std::vector<std::string> digests;
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/entries");
    if (!resp.has_value() || !resp->ok())
        return digests;
    Json doc;
    if (!Json::parse(resp->body, doc)
        || doc.type() != Json::Type::Object || !doc.has("digests"))
        return digests;
    const Json &list = doc.at("digests");
    for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].type() == Json::Type::String)
            digests.push_back(list[i].asString());
    }
    return digests;
}

void
RemoteResultStore::writeManifest(const Json &manifest)
{
    const std::optional<net::HttpResponse> resp =
        exchange("PUT", "/v1/manifest", manifest.dump(2) + "\n");
    if (!resp.has_value() || !resp->ok())
        smt_warn("cannot record the sweep manifest on %s",
                 description().c_str());
}

std::optional<Json>
RemoteResultStore::readManifest() const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/manifest");
    if (!resp.has_value() || !resp->ok())
        return std::nullopt;
    Json manifest;
    if (!Json::parse(resp->body, manifest))
        return std::nullopt;
    return manifest;
}

std::string
RemoteResultStore::description() const
{
    std::string desc =
        "http://" + url_.host + ":" + std::to_string(url_.port);
    if (url_.path != "/")
        desc += url_.path;
    return desc;
}

bool
RemoteResultStore::hasEntry(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("HEAD", "/v1/entries/" + digest);
    return resp.has_value() && resp->ok();
}

bool
RemoteResultStore::ping(std::string *error) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/ping");
    if (resp.has_value() && resp->ok())
        return true;
    if (error != nullptr)
        *error = resp.has_value()
                     ? "unexpected status "
                           + std::to_string(resp->status)
                     : client_.lastError();
    return false;
}

std::optional<Json>
RemoteResultStore::pingDocument(std::string *error) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/ping");
    if (!resp.has_value() || !resp->ok()) {
        if (error != nullptr)
            *error = resp.has_value()
                         ? "unexpected status "
                               + std::to_string(resp->status)
                         : client_.lastError();
        return std::nullopt;
    }
    Json doc;
    if (!Json::parse(resp->body, doc)
        || doc.type() != Json::Type::Object) {
        if (error != nullptr)
            *error = "ping response is not a JSON object";
        return std::nullopt;
    }
    return doc;
}

std::optional<Json>
RemoteResultStore::stats(std::string *error) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/stats");
    if (!resp.has_value() || !resp->ok()) {
        if (error != nullptr)
            *error = resp.has_value()
                         ? "unexpected status "
                               + std::to_string(resp->status)
                         : client_.lastError();
        return std::nullopt;
    }
    Json doc;
    if (!Json::parse(resp->body, doc)
        || doc.type() != Json::Type::Object) {
        if (error != nullptr)
            *error = "stats response is not a JSON object";
        return std::nullopt;
    }
    return doc;
}

std::unique_ptr<ResultStore>
openRemoteStore(const std::string &locator, const std::string &token)
{
    net::Url url;
    if (!net::parseUrl(locator, url))
        smt_fatal("malformed store URL \"%s\" (expected "
                  "http://host:port)",
                  locator.c_str());
    // smtstore mounts the protocol at /v1, not under a base prefix; a
    // path in the locator would silently 404 every request, so refuse
    // it up front.
    if (url.path != "/")
        smt_fatal("store URL \"%s\" has a path component (\"%s\"); "
                  "smtstore serves at the root — use http://%s:%u",
                  locator.c_str(), url.path.c_str(), url.host.c_str(),
                  static_cast<unsigned>(url.port));
    return std::make_unique<RemoteResultStore>(url, token);
}

} // namespace smt::sweep
