#include "sweep/remote_store.hh"

#include <unistd.h>

#include "common/logging.hh"
#include "sweep/digest.hh"
#include "sweep/result_cache.hh"
#include "sweep/serialize.hh"
#include "sweep/store_service.hh"

namespace smt::sweep
{

namespace
{

/** Strip the optional quotes of an ETag header value. */
std::string
unquoteEtag(const std::string &etag)
{
    if (etag.size() >= 2 && etag.front() == '"' && etag.back() == '"')
        return etag.substr(1, etag.size() - 2);
    return etag;
}

} // namespace

bool
isRemoteStoreLocator(const std::string &locator)
{
    return net::isHttpUrl(locator);
}

RemoteResultStore::RemoteResultStore(const net::Url &url)
    : url_(url), client_(url.host, url.port)
{
}

std::string
RemoteResultStore::resourcePath(const std::string &resource) const
{
    const std::string base = url_.path == "/" ? "" : url_.path;
    return base + resource;
}

std::optional<net::HttpResponse>
RemoteResultStore::exchange(const std::string &method,
                            const std::string &resource,
                            const std::string &body,
                            const std::string &content_digest) const
{
    net::HttpRequest req;
    req.method = method;
    req.target = resourcePath(resource);
    req.body = body;
    if (!body.empty())
        req.headers.set("Content-Type", "application/json");
    if (!content_digest.empty())
        req.headers.set("X-Content-Digest", content_digest);

    std::lock_guard<std::mutex> lock(mu_);
    return client_.request(req);
}

std::optional<SimStats>
RemoteResultStore::lookup(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/entries/" + digest);
    if (!resp.has_value() || !resp->ok())
        return std::nullopt;

    // ETag check first: bytes corrupted in transit are a miss, exactly
    // like a corrupt local entry file.
    const std::string etag = unquoteEtag(resp->headers.get("ETag"));
    if (!etag.empty() && etag != contentDigest(resp->body))
        return std::nullopt;

    Json entry;
    if (!Json::parse(resp->body, entry)
        || entry.type() != Json::Type::Object || !entry.has("digest")
        || !entry.has("stats")
        || entry.at("digest").asString() != digest)
        return std::nullopt;
    SimStats stats;
    if (!simStatsFromJson(entry.at("stats"), stats))
        return std::nullopt;
    return stats;
}

void
RemoteResultStore::store(const std::string &digest, const SmtConfig &cfg,
                         const MeasureOptions &opts,
                         const SimStats &stats, double measure_seconds)
{
    // The exact bytes LocalDirStore would put on disk, so a store
    // directory serves identically whichever side wrote each entry.
    const std::string text =
        makeEntryJson(digest, cfg, opts, stats, measure_seconds).dump(2)
        + "\n";
    const std::optional<net::HttpResponse> resp =
        exchange("PUT", "/v1/entries/" + digest, text,
                 contentDigest(text));
    if (!resp.has_value() || !resp->ok())
        smt_warn("remote store %s rejected entry %s (%s); the result "
                 "is lost from the cache",
                 description().c_str(), digest.c_str(),
                 resp.has_value() ? std::to_string(resp->status).c_str()
                                  : client_.lastError().c_str());
}

std::optional<double>
RemoteResultStore::observedCost(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/costs/" + digest);
    if (!resp.has_value() || !resp->ok())
        return std::nullopt;
    Json doc;
    if (!Json::parse(resp->body, doc)
        || doc.type() != Json::Type::Object || !doc.has("seconds")
        || !doc.at("seconds").isNumber())
        return std::nullopt;
    const double seconds = doc.at("seconds").asDouble();
    return seconds > 0.0 ? std::optional<double>(seconds) : std::nullopt;
}

std::map<std::string, double>
RemoteResultStore::observedCosts() const
{
    std::map<std::string, double> costs;
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/costs");
    if (!resp.has_value() || !resp->ok())
        return costs;
    Json doc;
    if (!Json::parse(resp->body, doc)
        || doc.type() != Json::Type::Object || !doc.has("costs")
        || doc.at("costs").type() != Json::Type::Object)
        return costs;
    for (const auto &[digest, seconds] : doc.at("costs").items()) {
        if (seconds.isNumber() && seconds.asDouble() > 0.0)
            costs.emplace(digest, seconds.asDouble());
    }
    return costs;
}

void
RemoteResultStore::markInProgress(const std::string &digest)
{
    exchange("PUT", "/v1/markers/" + digest,
             makeSelfMarker().dump(2) + "\n");
}

void
RemoteResultStore::clearInProgress(const std::string &digest)
{
    exchange("DELETE", "/v1/markers/" + digest);
}

void
RemoteResultStore::markOrphaned(const std::string &digest)
{
    exchange("POST", "/v1/markers/" + digest + "/orphan");
}

std::string
RemoteResultStore::readMarkerText(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/markers/" + digest);
    if (!resp.has_value() || !resp->ok())
        return "";
    return resp->body;
}

bool
RemoteResultStore::tryAdopt(const std::string &digest,
                            const std::string &expected_marker)
{
    Json claim = Json::object();
    claim.set("expect", Json(expected_marker));
    claim.set("marker", makeSelfMarker());
    const std::optional<net::HttpResponse> resp =
        exchange("POST", "/v1/claims/" + digest, claim.dump() + "\n");
    return resp.has_value() && resp->ok();
}

WorkState
RemoteResultStore::state(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/state/" + digest);
    if (resp.has_value() && resp->ok()) {
        Json doc;
        if (Json::parse(resp->body, doc)
            && doc.type() == Json::Type::Object && doc.has("state")) {
            const std::string &text = doc.at("state").asString();
            if (text == "done")
                return WorkState::Done;
            if (text == "in-progress")
                return WorkState::InProgress;
            if (text == "orphaned")
                return WorkState::Orphaned;
        }
    }
    // Unreachable server: nothing is known to be done or claimed.
    return WorkState::Pending;
}

std::vector<std::string>
RemoteResultStore::storedDigests() const
{
    std::vector<std::string> digests;
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/entries");
    if (!resp.has_value() || !resp->ok())
        return digests;
    Json doc;
    if (!Json::parse(resp->body, doc)
        || doc.type() != Json::Type::Object || !doc.has("digests"))
        return digests;
    const Json &list = doc.at("digests");
    for (std::size_t i = 0; i < list.size(); ++i)
        digests.push_back(list[i].asString());
    return digests;
}

void
RemoteResultStore::writeManifest(const Json &manifest)
{
    const std::optional<net::HttpResponse> resp =
        exchange("PUT", "/v1/manifest", manifest.dump(2) + "\n");
    if (!resp.has_value() || !resp->ok())
        smt_warn("cannot record the sweep manifest on %s",
                 description().c_str());
}

std::optional<Json>
RemoteResultStore::readManifest() const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/manifest");
    if (!resp.has_value() || !resp->ok())
        return std::nullopt;
    Json manifest;
    if (!Json::parse(resp->body, manifest))
        return std::nullopt;
    return manifest;
}

std::string
RemoteResultStore::description() const
{
    std::string desc =
        "http://" + url_.host + ":" + std::to_string(url_.port);
    if (url_.path != "/")
        desc += url_.path;
    return desc;
}

bool
RemoteResultStore::hasEntry(const std::string &digest) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("HEAD", "/v1/entries/" + digest);
    return resp.has_value() && resp->ok();
}

bool
RemoteResultStore::ping(std::string *error) const
{
    const std::optional<net::HttpResponse> resp =
        exchange("GET", "/v1/ping");
    if (resp.has_value() && resp->ok())
        return true;
    if (error != nullptr)
        *error = resp.has_value()
                     ? "unexpected status "
                           + std::to_string(resp->status)
                     : client_.lastError();
    return false;
}

std::unique_ptr<ResultStore>
openRemoteStore(const std::string &locator)
{
    net::Url url;
    if (!net::parseUrl(locator, url))
        smt_fatal("malformed store URL \"%s\" (expected "
                  "http://host:port)",
                  locator.c_str());
    // smtstore mounts the protocol at /v1, not under a base prefix; a
    // path in the locator would silently 404 every request, so refuse
    // it up front.
    if (url.path != "/")
        smt_fatal("store URL \"%s\" has a path component (\"%s\"); "
                  "smtstore serves at the root — use http://%s:%u",
                  locator.c_str(), url.path.c_str(), url.host.c_str(),
                  static_cast<unsigned>(url.port));
    return std::make_unique<RemoteResultStore>(url);
}

} // namespace smt::sweep
