/**
 * @file
 * The on-disk, content-addressed result store.
 *
 * One JSON file per measurement digest. A lookup hit replays the
 * cached SimStats bit-identically (every counter is an exact integer
 * in the file), so re-running a sweep re-simulates only points whose
 * (config, options, seed) digest has changed. Entries carry the full
 * canonical key beside the stats, making cache files self-describing.
 * Unreadable or corrupt entries are treated as misses, never errors.
 */

#ifndef SMT_SWEEP_RESULT_CACHE_HH
#define SMT_SWEEP_RESULT_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/config.hh"
#include "sim/mix_runner.hh"
#include "stats/stats.hh"
#include "sweep/json.hh"

namespace smt::sweep
{

/** Slurp a whole file as bytes; nullopt when unreadable. */
std::optional<std::string> readFileBytes(const std::string &path);

/** The canonical cache-entry document: digest, human-readable key,
 *  optional observed cost, exact-integer stats. Local writes and
 *  remote PUTs both build entries here, so the formats cannot
 *  drift. */
Json makeEntryJson(const std::string &digest, const SmtConfig &cfg,
                   const MeasureOptions &opts, const SimStats &stats,
                   double measure_seconds = 0.0);

/** A directory of digest-named measurement results. */
class ResultCache
{
  public:
    /** Opens (creating if needed) the store rooted at `dir`. */
    explicit ResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /** The stats cached under `digest`, if present and well-formed. */
    std::optional<SimStats> lookup(const std::string &digest) const;

    /**
     * Persist a measurement. Writes are atomic (temp file + rename),
     * so concurrent sweeps sharing a cache directory are safe.
     * `measure_seconds`, when positive, records the observed wall cost
     * of the measurement beside the stats (the shard planner prefers
     * observed over estimated cost on the next sweep).
     */
    void store(const std::string &digest, const SmtConfig &cfg,
               const MeasureOptions &opts, const SimStats &stats,
               double measure_seconds = 0.0) const;

    /** The observed measurement cost recorded with an entry, if any. */
    std::optional<double> observedCost(const std::string &digest) const;

    /**
     * Raw entry file access for the wire protocol: the exact on-disk
     * bytes (so a served entry's ETag digest is reproducible), and an
     * atomic raw write of bytes a remote client already digested. The
     * writer vets nothing beyond the digest-shaped name — readers
     * treat malformed entries as misses, exactly like local corruption.
     */
    std::optional<std::string> readEntryText(const std::string &digest)
        const;
    bool writeEntryText(const std::string &digest,
                        const std::string &text) const;

    /** Number of entries currently on disk. */
    std::size_t entryCount() const;

    /** The digests of every entry on disk, sorted. Marker and manifest
     *  files sharing the directory are not entries. */
    std::vector<std::string> listDigests() const;

  private:
    std::string entryPath(const std::string &digest) const;

    std::string dir_;
};

} // namespace smt::sweep

#endif // SMT_SWEEP_RESULT_CACHE_HH
