#include "core/instruction_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace smt
{

void
InstructionQueue::remove(DynInst *inst)
{
    auto it = std::find(queue_.begin(), queue_.end(), inst);
    smt_assert(it != queue_.end(), "instruction not in queue");
    queue_.erase(it);
}

void
InstructionQueue::oldestPositions(std::span<std::size_t> out) const
{
    for (std::size_t &slot : out)
        slot = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const DynInst *inst = queue_[i];
        if (inst->tid >= out.size())
            continue;
        if (inst->stage == InstStage::InQueue &&
            out[inst->tid] == queue_.size())
            out[inst->tid] = i;
    }
}

} // namespace smt
