#include "core/stages/execute.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "isa/latency.hh"
#include "obs/pipe_trace.hh"

namespace smt
{

void
ExecuteStage::tick()
{
    std::vector<DynInst *> &slot = st_.execBucket(st_.cycle);
    if (slot.empty())
        return;
    // Swap the bucket out of the ring: execution never schedules into
    // the current cycle (every issue lands execOffset >= 2 ahead, and a
    // load's dependents issue strictly after it), so this container is
    // stable while we work through it. The swap ping-pongs the two
    // vectors' capacities — no steady-state allocation.
    bucket_.clear();
    bucket_.swap(slot);
    for (DynInst *inst : bucket_)
        executeInst(inst);
}

void
ExecuteStage::executeInst(DynInst *inst)
{
    smt_assert(inst->stage == InstStage::Issued);
    // Swap-remove: inFlight is an unordered membership set (the
    // requeue cascade visits every element regardless of position), so
    // the tail shift of an ordered erase buys nothing.
    auto it = std::find(st_.inFlight.begin(), st_.inFlight.end(), inst);
    if (it != st_.inFlight.end()) {
        *it = st_.inFlight.back();
        st_.inFlight.pop_back();
    }

    if (inst->isLoad()) {
        executeLoad(inst);
        return;
    }
    if (inst->isStore()) {
        executeStore(inst);
        return;
    }

    inst->stage = InstStage::Executed;
    const unsigned lat = opLatency(inst->si->op);
    inst->completeCycle =
        st_.cycle + (lat > 0 ? lat - 1 : 0) + st_.commitDelta;
    if (st_.pipe != nullptr)
        st_.pipe->onExecComplete(st_, inst);

    if (inst->isControl())
        resolveControl(inst);
}

void
ExecuteStage::executeLoad(DynInst *inst)
{
    const auto r =
        st_.mem.dataAccess(inst->tid, inst->memAddr, false, st_.cycle);
    RegisterFileState &rf = st_.file(inst->si->dest.file);
    const PhysRegIndex dest = inst->destPhys;

    if (r.bankConflict) {
        // Retry from the queue; consumers issued on the optimistic
        // wakeup are squashed.
        inst->stage = InstStage::InQueue;
        inst->iqReleaseCycle = kCycleNever;
        ++st_.frontAndQueueCount[inst->tid];
        rf.setReadyAt(dest, kCycleNever);
        rf.setUnverifiedUntil(dest, 0);
        requeueDependents(inst->si->dest.file, dest);
        if (st_.pipe != nullptr)
            st_.pipe->onRequeue(st_, inst, "bank_conflict");
        return;
    }

    inst->stage = InstStage::Executed;
    if (st_.pipe != nullptr)
        st_.pipe->onExecComplete(st_, inst);
    if (r.ready <= st_.cycle) {
        // D-cache hit: the optimistic wakeup (issue + 1) was correct.
        inst->completeCycle = st_.cycle + st_.commitDelta;
    } else {
        // Miss: push the consumers' issue horizon out to the fill.
        const Cycle consumer_issue =
            std::max<Cycle>(r.ready + 1 > st_.execOffset
                                ? r.ready + 1 - st_.execOffset
                                : st_.cycle + 1,
                            st_.cycle + 1);
        rf.setReadyAt(dest, consumer_issue);
        rf.setUnverifiedUntil(dest, 0);
        requeueDependents(inst->si->dest.file, dest);
        inst->completeCycle = r.ready + st_.commitDelta;
    }
}

void
ExecuteStage::executeStore(DynInst *inst)
{
    const auto r =
        st_.mem.dataAccess(inst->tid, inst->memAddr, true, st_.cycle);
    if (r.bankConflict) {
        inst->stage = InstStage::InQueue;
        inst->iqReleaseCycle = kCycleNever;
        ++st_.frontAndQueueCount[inst->tid];
        if (st_.pipe != nullptr)
            st_.pipe->onRequeue(st_, inst, "bank_conflict");
        return;
    }
    inst->stage = InstStage::Executed;
    if (st_.pipe != nullptr)
        st_.pipe->onExecComplete(st_, inst);
    // The write-allocate fill (on a miss) completes in the background;
    // the store itself retires without waiting on it.
    inst->completeCycle = st_.cycle + st_.commitDelta;
    std::erase(st_.threads[inst->tid].pendingStores, inst);
}

void
ExecuteStage::resolveControl(DynInst *inst)
{
    if (inst->wrongPath) {
        // Wrong-path control resolves as predicted; the originating
        // misprediction's squash will remove it.
        return;
    }

    const OpClass op = inst->si->op;
    bool mispredict = false;
    if (inst->si->isCondBranch()) {
        mispredict = inst->predTaken != inst->actualTaken;
    } else if (op == OpClass::Return || op == OpClass::IndirectJump) {
        mispredict = inst->nextFetchPc != inst->actualNextPc;
        st_.bp.updateTarget(inst->tid, inst->pc, inst->actualNextPc,
                            op == OpClass::Return);
    }

    if (mispredict) {
        inst->mispredicted = true;
        ThreadState &ts = st_.threads[inst->tid];
        if (ts.pendingSquash == nullptr ||
            inst->seq < ts.pendingSquash->seq) {
            ts.pendingSquash = inst;
            ts.pendingSquashCycle = st_.cycle + 1;
        }
    }
}

void
ExecuteStage::requeueDependents(RegFile f, PhysRegIndex reg)
{
    // Work-list cascade: any issued-but-unexecuted instruction whose
    // source is no longer ready by its issue cycle was issued on a stale
    // optimistic wakeup and returns to its queue (a wasted issue slot —
    // the "squashed optimistic instruction" of Section 6).
    requeueWork_.clear();
    requeueWork_.emplace_back(f, reg);
    while (!requeueWork_.empty()) {
        const auto [wf, wreg] = requeueWork_.back();
        requeueWork_.pop_back();
        RegisterFileState &rf = st_.file(wf);
        for (std::size_t i = 0; i < st_.inFlight.size();) {
            DynInst *inst = st_.inFlight[i];
            const bool dep1 = inst->si->src1.valid() &&
                              inst->si->src1.file == wf &&
                              inst->src1Phys == wreg;
            const bool dep2 = inst->si->src2.valid() &&
                              inst->si->src2.file == wf &&
                              inst->src2Phys == wreg;
            if ((!dep1 && !dep2) ||
                rf.readyAt(wreg) <= inst->issueCycle) {
                ++i;
                continue;
            }
            // Squash this issue: back to the queue. The victim always
            // sits in a *future* exec bucket (a dependent issues
            // strictly after its producer), never the one tick() is
            // draining right now.
            smt_assert(inst->issueCycle + st_.execOffset > st_.cycle);
            ++st_.stats.optimisticSquashes;
            st_.inFlight[i] = st_.inFlight.back();
            st_.inFlight.pop_back();
            std::vector<DynInst *> &bucket =
                st_.execBucket(inst->issueCycle + st_.execOffset);
            std::erase(bucket, inst);
            inst->stage = InstStage::InQueue;
            inst->iqReleaseCycle = kCycleNever;
            ++st_.frontAndQueueCount[inst->tid];
            if (inst->isControl())
                ++st_.branchCount[inst->tid];
            if (st_.pipe != nullptr)
                st_.pipe->onRequeue(st_, inst, "stale_wakeup");
            if (inst->si->dest.valid()) {
                RegisterFileState &drf = st_.file(inst->si->dest.file);
                drf.setReadyAt(inst->destPhys, kCycleNever);
                drf.setUnverifiedUntil(inst->destPhys, 0);
                requeueWork_.emplace_back(inst->si->dest.file,
                                          inst->destPhys);
            }
        }
    }
}

} // namespace smt
