#include "core/stages/fetch.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/pipe_trace.hh"
#include "policy/fetch_policies.hh"

namespace smt
{

template <typename Policy>
unsigned
FetchStage<Policy>::selectFetchThreads()
{
    unsigned num_cands = 0;

    policy_.beginCycle(st_);

    for (unsigned t = 0; t < st_.numThreads; ++t) {
        const ThreadID tid = static_cast<ThreadID>(t);
        ThreadState &ts = st_.threads[t];
        if (st_.fetchReadyAt[t] > st_.cycle) {
            outcome_[t] = FetchOutcome::IcacheMiss;
            continue;
        }
        if (ts.frontEnd.size() + st_.cfg.fetchPerThread > st_.frontEndCap) {
            ++st_.stats.fetchBlockedIQFull;
            outcome_[t] = FetchOutcome::FrontEndFull;
            continue;
        }
        if (ts.program->image().at(ts.fetchPc) == nullptr) {
            outcome_[t] = FetchOutcome::NoTarget;
            continue; // bogus predicted target; awaiting resolution.
        }
        if (st_.cfg.itagEarlyLookup &&
            !st_.mem.icacheWouldHit(ts.fetchPc)) {
            // ITAG: the probe happened a cycle early, so the miss can
            // start now while another thread takes the fetch slot.
            const auto r = st_.mem.fetchAccess(tid, ts.fetchPc, st_.cycle);
            if (!r.bankConflict && r.ready > st_.cycle)
                st_.fetchReadyAt[t] = r.ready;
            outcome_[t] = FetchOutcome::IcacheMiss;
            continue;
        }
        // Provisionally a lost slot; tick() upgrades the selected.
        outcome_[t] = FetchOutcome::LostSelection;
        const unsigned rr =
            (t + st_.numThreads - st_.rrBase) % st_.numThreads;
        cands_[num_cands++] = {policy_.priorityKey(st_, tid), rr, tid};
    }

    sortFetchCandidates(cands_.data(), num_cands);

    // Take up to fetchThreads threads, skipping I-cache bank conflicts
    // against already chosen ones.
    unsigned num_selected = 0;
    for (unsigned c = 0; c < num_cands; ++c) {
        if (num_selected >= st_.cfg.fetchThreads)
            break;
        const ThreadID tid = cands_[c].tid;
        const unsigned bank = st_.mem.icacheBank(st_.threads[tid].fetchPc);
        const auto banks_end = banks_.begin() + num_selected;
        if (std::find(banks_.begin(), banks_end, bank) != banks_end)
            continue;
        banks_[num_selected] = bank;
        selected_[num_selected++] = tid;
    }
    return num_selected;
}

template <typename Policy>
DynInst *
FetchStage<Policy>::buildInst(ThreadState &ts, ThreadID tid, Addr pc)
{
    const StaticInst *si = ts.program->image().at(pc);
    smt_assert(si != nullptr);

    DynInst *inst = st_.pool.alloc();
    inst->seq = st_.nextSeq++;
    inst->tid = tid;
    inst->pc = pc;
    inst->si = si;
    inst->fetchCycle = st_.cycle;

    if (!ts.onWrongPath) {
        const OracleEntry &e = ts.program->entryAt(ts.nextStreamIdx);
        if (e.pc == pc) {
            inst->streamIdx = ts.nextStreamIdx++;
            inst->actualTaken = e.taken;
            inst->actualNextPc = e.nextPc;
            inst->memAddr = e.memAddr;
        } else {
            ts.onWrongPath = true;
        }
    }
    if (inst->streamIdx == kNoStreamIdx) {
        inst->wrongPath = true;
        if (si->isMemory())
            inst->memAddr =
                ts.program->image().wrongPathMemAddr(*si, inst->seq);
    }
    return inst;
}

template <typename Policy>
unsigned
FetchStage<Policy>::fetchFromThread(ThreadID tid, unsigned max_insts)
{
    ThreadState &ts = st_.threads[tid];
    obs::PipeTrace *const pipe = st_.pipe;
    Addr pc = ts.fetchPc;
    // The fetch block: up to the end of the aligned 8-instruction
    // (32-byte) group the PC falls in — the output-bus granularity.
    const Addr block_end = (pc & ~Addr{31}) + 32;
    unsigned fetched = 0;

    while (fetched < max_insts && pc < block_end) {
        const StaticInst *si = ts.program->image().at(pc);
        if (si == nullptr)
            break;
        DynInst *inst = buildInst(ts, tid, pc);
        bool stop = false;

        if (si->isControl()) {
            const FetchPrediction fp =
                st_.bp.predict(tid, pc, *si, inst->actualTaken,
                               inst->actualNextPc);
            inst->predTaken = fp.predTaken;
            inst->historySnapshot = fp.historySnapshot;
            inst->rasCheckpoint = fp.rasCheckpoint;
            Addr next = pc + kInstBytes;
            if (fp.predTaken && fp.predTarget != kNoAddr)
                next = fp.predTarget;
            inst->nextFetchPc = next;
            if (inst->wrongPath) {
                // Wrong-path control resolves as it predicted.
                inst->actualTaken = fp.predTaken;
                inst->actualNextPc = next;
            }
            pc = next;
            stop = fp.predTaken; // no fetching past a taken branch.
        } else {
            inst->nextFetchPc = pc + kInstBytes;
            pc += kInstBytes;
        }

        ts.frontEnd.push_back(inst);
        if (pipe != nullptr)
            pipe->onFetch(st_, inst);
        ++st_.frontAndQueueCount[tid];
        if (inst->isControl())
            ++st_.branchCount[tid];
        ++st_.stats.fetchedInstructions;
        if (inst->wrongPath)
            ++st_.stats.fetchedWrongPath;
        ++fetched;
        if (stop)
            break;
    }

    ts.fetchPc = pc;
    return fetched;
}

template <typename Policy>
void
FetchStage<Policy>::tick()
{
    const unsigned num_selected = selectFetchThreads();

    unsigned total = 0;
    for (unsigned s = 0; s < num_selected; ++s) {
        const ThreadID tid = selected_[s];
        if (total >= st_.cfg.fetchWidth)
            break;
        ThreadState &ts = st_.threads[tid];
        const unsigned budget =
            std::min(st_.cfg.fetchPerThread, st_.cfg.fetchWidth - total);

        const auto r = st_.mem.fetchAccess(tid, ts.fetchPc, st_.cycle);
        if (r.bankConflict) {
            outcome_[tid] = FetchOutcome::IcacheMiss;
            continue; // lost the bank to fill traffic this cycle.
        }
        if (r.ready > st_.cycle) {
            // I-cache (or ITLB) miss: the thread stalls while it fills.
            st_.fetchReadyAt[tid] = r.ready;
            outcome_[tid] = FetchOutcome::IcacheMiss;
            continue;
        }
        const unsigned fetched = fetchFromThread(tid, budget);
        if (fetched > 0)
            outcome_[tid] = FetchOutcome::Active;
        total += fetched;
    }

    StallStats &sl = st_.stats.stalls;
    for (unsigned t = 0; t < st_.numThreads; ++t) {
        switch (outcome_[t]) {
        case FetchOutcome::Active:
            ++sl.fetchActive[t];
            break;
        case FetchOutcome::IcacheMiss:
            ++sl.fetchIcacheMiss[t];
            break;
        case FetchOutcome::FrontEndFull:
            ++sl.fetchFrontEndFull[t];
            break;
        case FetchOutcome::NoTarget:
            ++sl.fetchNoTarget[t];
            break;
        case FetchOutcome::LostSelection:
            ++sl.fetchLostSelection[t];
            break;
        }
    }

    st_.rrBase = (st_.rrBase + 1) % st_.numThreads;
    if (total == 0)
        ++st_.stats.fetchCyclesIdle;
}

// One instantiation per dispatch mode: the abstract base (generic
// virtual-dispatch core) and each registered paper policy (the
// specialized cores the PolicyRegistry dispatch table selects).
template class FetchStage<policy::FetchPolicy>;
template class FetchStage<policy::RoundRobinPolicy>;
template class FetchStage<policy::BrCountPolicy>;
template class FetchStage<policy::MissCountPolicy>;
template class FetchStage<policy::ICountPolicy>;
template class FetchStage<policy::IQPosnPolicy>;
template class FetchStage<policy::ICountMissCountPolicy>;

} // namespace smt
