#include "core/stages/fetch.hh"

#include <algorithm>

#include "common/logging.hh"

namespace smt
{

void
FetchStage::selectFetchThreads(std::vector<ThreadID> &out)
{
    struct Cand
    {
        double key;
        unsigned rr;
        ThreadID tid;
    };
    std::vector<Cand> cands;
    cands.reserve(st_.numThreads);

    policy_.beginCycle(st_);

    for (unsigned t = 0; t < st_.numThreads; ++t) {
        const ThreadID tid = static_cast<ThreadID>(t);
        ThreadState &ts = st_.threads[t];
        if (ts.fetchReadyAt > st_.cycle)
            continue;
        if (ts.frontEnd.size() + st_.cfg.fetchPerThread > st_.frontEndCap) {
            ++st_.stats.fetchBlockedIQFull;
            continue;
        }
        if (ts.program->image().at(ts.fetchPc) == nullptr)
            continue; // bogus predicted target; awaiting resolution.
        if (st_.cfg.itagEarlyLookup &&
            !st_.mem.icacheWouldHit(ts.fetchPc)) {
            // ITAG: the probe happened a cycle early, so the miss can
            // start now while another thread takes the fetch slot.
            const auto r = st_.mem.fetchAccess(tid, ts.fetchPc, st_.cycle);
            if (!r.bankConflict && r.ready > st_.cycle)
                ts.fetchReadyAt = r.ready;
            continue;
        }
        const unsigned rr =
            (t + st_.numThreads - st_.rrBase) % st_.numThreads;
        cands.push_back({policy_.priorityKey(st_, tid), rr, tid});
    }

    std::sort(cands.begin(), cands.end(), [](const Cand &a, const Cand &b) {
        if (a.key != b.key)
            return a.key < b.key;
        return a.rr < b.rr;
    });

    // Take up to fetchThreads threads, skipping I-cache bank conflicts
    // against already chosen ones.
    std::vector<unsigned> banks;
    for (const Cand &c : cands) {
        if (out.size() >= st_.cfg.fetchThreads)
            break;
        const unsigned bank =
            st_.mem.icacheBank(st_.threads[c.tid].fetchPc);
        if (std::find(banks.begin(), banks.end(), bank) != banks.end())
            continue;
        banks.push_back(bank);
        out.push_back(c.tid);
    }
}

DynInst *
FetchStage::buildInst(ThreadState &ts, ThreadID tid, Addr pc)
{
    const StaticInst *si = ts.program->image().at(pc);
    smt_assert(si != nullptr);

    DynInst *inst = st_.pool.alloc();
    inst->seq = st_.nextSeq++;
    inst->tid = tid;
    inst->pc = pc;
    inst->si = si;
    inst->fetchCycle = st_.cycle;

    if (!ts.onWrongPath) {
        const OracleEntry &e = ts.program->entryAt(ts.nextStreamIdx);
        if (e.pc == pc) {
            inst->streamIdx = ts.nextStreamIdx++;
            inst->actualTaken = e.taken;
            inst->actualNextPc = e.nextPc;
            inst->memAddr = e.memAddr;
        } else {
            ts.onWrongPath = true;
        }
    }
    if (inst->streamIdx == kNoStreamIdx) {
        inst->wrongPath = true;
        if (si->isMemory())
            inst->memAddr =
                ts.program->image().wrongPathMemAddr(*si, inst->seq);
    }
    return inst;
}

unsigned
FetchStage::fetchFromThread(ThreadID tid, unsigned max_insts)
{
    ThreadState &ts = st_.threads[tid];
    Addr pc = ts.fetchPc;
    // The fetch block: up to the end of the aligned 8-instruction
    // (32-byte) group the PC falls in — the output-bus granularity.
    const Addr block_end = (pc & ~Addr{31}) + 32;
    unsigned fetched = 0;

    while (fetched < max_insts && pc < block_end) {
        const StaticInst *si = ts.program->image().at(pc);
        if (si == nullptr)
            break;
        DynInst *inst = buildInst(ts, tid, pc);
        bool stop = false;

        if (si->isControl()) {
            const FetchPrediction fp =
                st_.bp.predict(tid, pc, *si, inst->actualTaken,
                               inst->actualNextPc);
            inst->predTaken = fp.predTaken;
            inst->historySnapshot = fp.historySnapshot;
            inst->rasCheckpoint = fp.rasCheckpoint;
            Addr next = pc + kInstBytes;
            if (fp.predTaken && fp.predTarget != kNoAddr)
                next = fp.predTarget;
            inst->nextFetchPc = next;
            if (inst->wrongPath) {
                // Wrong-path control resolves as it predicted.
                inst->actualTaken = fp.predTaken;
                inst->actualNextPc = next;
            }
            pc = next;
            stop = fp.predTaken; // no fetching past a taken branch.
        } else {
            inst->nextFetchPc = pc + kInstBytes;
            pc += kInstBytes;
        }

        ts.frontEnd.push_back(inst);
        ++ts.frontAndQueueCount;
        if (inst->isControl())
            ++ts.branchCount;
        ++st_.stats.fetchedInstructions;
        if (inst->wrongPath)
            ++st_.stats.fetchedWrongPath;
        ++fetched;
        if (stop)
            break;
    }

    ts.fetchPc = pc;
    return fetched;
}

void
FetchStage::tick()
{
    std::vector<ThreadID> selected;
    selectFetchThreads(selected);

    unsigned total = 0;
    for (ThreadID tid : selected) {
        if (total >= st_.cfg.fetchWidth)
            break;
        ThreadState &ts = st_.threads[tid];
        const unsigned budget =
            std::min(st_.cfg.fetchPerThread, st_.cfg.fetchWidth - total);

        const auto r = st_.mem.fetchAccess(tid, ts.fetchPc, st_.cycle);
        if (r.bankConflict)
            continue; // lost the bank to fill traffic this cycle.
        if (r.ready > st_.cycle) {
            // I-cache (or ITLB) miss: the thread stalls while it fills.
            ts.fetchReadyAt = r.ready;
            continue;
        }
        total += fetchFromThread(tid, budget);
    }

    st_.rrBase = (st_.rrBase + 1) % st_.numThreads;
    if (total == 0)
        ++st_.stats.fetchCyclesIdle;
}

} // namespace smt
