/**
 * @file
 * RenameDispatchStage: age-ordered shared rename bandwidth — maps
 * logical to physical registers and dispatches into the instruction
 * queues (Section 2.1).
 */

#ifndef SMT_CORE_STAGES_RENAME_DISPATCH_HH
#define SMT_CORE_STAGES_RENAME_DISPATCH_HH

#include "core/pipeline_state.hh"

namespace smt
{

/** Register-rename and queue-dispatch stage. */
class RenameDispatchStage
{
  public:
    explicit RenameDispatchStage(PipelineState &st) : st_(st) {}

    void tick();

  private:
    PipelineState &st_;
};

} // namespace smt

#endif // SMT_CORE_STAGES_RENAME_DISPATCH_HH
