#include "core/stages/commit.hh"

#include "common/logging.hh"
#include "obs/pipe_trace.hh"

namespace smt
{

void
CommitStage::tick()
{
    obs::PipeTrace *const pipe = st_.pipe;
    unsigned budget = st_.cfg.commitWidth;
    for (unsigned i = 0; i < st_.numThreads && budget > 0; ++i) {
        const ThreadID tid = static_cast<ThreadID>(
            (st_.commitBase + i) % st_.numThreads);
        ThreadState &ts = st_.threads[tid];
        while (budget > 0 && !ts.rob.empty()) {
            DynInst *inst = ts.rob.front();
            if (inst->stage != InstStage::Executed ||
                inst->completeCycle > st_.cycle)
                break;
            smt_assert(!inst->wrongPath,
                       "wrong-path instruction reached commit");

            ++st_.stats.committedInstructions;
            ++st_.stats.committedPerThread[tid];

            const OpClass op = inst->si->op;
            if (inst->si->isCondBranch()) {
                ++st_.stats.condBranches;
                if (inst->mispredicted)
                    ++st_.stats.condBranchMispredicts;
                st_.bp.resolveCondBranch(tid, inst->pc,
                                         inst->historySnapshot,
                                         inst->actualTaken,
                                         inst->si->target);
            } else if (op == OpClass::Return ||
                       op == OpClass::IndirectJump) {
                ++st_.stats.jumps;
                if (inst->mispredicted)
                    ++st_.stats.jumpMispredicts;
            }

            if (inst->si->dest.valid())
                st_.file(inst->si->dest.file)
                    .freeAtCommit(inst->destPrevPhys);

            // The committed instructions of a thread must be exactly the
            // oracle's correct-path stream, in order, gap-free.
            smt_assert(inst->streamIdx == ts.nextCommitStreamIdx,
                       "commit stream gap: expected %llu, got %llu",
                       static_cast<unsigned long long>(
                           ts.nextCommitStreamIdx),
                       static_cast<unsigned long long>(inst->streamIdx));
            ++ts.nextCommitStreamIdx;
            ts.program->retireBefore(inst->streamIdx + 1);

            ts.rob.pop_front();
            if (pipe != nullptr)
                pipe->onCommit(st_, inst);
            st_.releaseInst(inst);
            --budget;
        }
    }
    st_.commitBase = (st_.commitBase + 1) % st_.numThreads;
}

} // namespace smt
