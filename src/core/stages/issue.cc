#include "core/stages/issue.hh"

#include <algorithm>
#include <array>
#include <cstdint>

#include "isa/latency.hh"
#include "obs/pipe_trace.hh"
#include "policy/issue_policies.hh"

namespace smt
{

template <typename Policy>
bool
IssueStage<Policy>::issueAllowedBySpeculationMode(const DynInst *inst) const
{
    if (st_.cfg.speculation == SpeculationMode::Full)
        return true;
    const ThreadState &ts = st_.threads[inst->tid];
    for (const DynInst *br : ts.unresolvedBranches) {
        if (br->seq >= inst->seq)
            continue;
        if (st_.cfg.speculation == SpeculationMode::NoPassBranch) {
            if (br->stage != InstStage::Executed)
                return false;
        } else { // NoWrongPathIssue
            if (br->stage == InstStage::InQueue ||
                br->stage == InstStage::Fetched ||
                br->stage == InstStage::Decoded)
                return false;
            if (st_.cycle < br->issueCycle + 4)
                return false;
        }
    }
    return true;
}

template <typename Policy>
bool
IssueStage<Policy>::loadDisambiguated(const DynInst *inst) const
{
    const Addr mask = (Addr{1} << st_.cfg.disambiguationBits) - 1;
    for (const DynInst *st : st_.threads[inst->tid].pendingStores) {
        if (st->seq < inst->seq && st->stage != InstStage::Executed &&
            (st->memAddr & mask) == (inst->memAddr & mask))
            return false;
    }
    return true;
}

template <typename Policy>
void
IssueStage<Policy>::collectCandidates(InstructionQueue &queue,
                                      std::vector<DynInst *> &out)
{
    // One walk: release the entries whose hold time expired (issued
    // instructions vacate a cycle after issue; optimistically issued
    // ones once verified; loads once their access actually happened)
    // and gather this cycle's issuable candidates from the search
    // window.
    //
    // Readiness is deliberately NOT checked here: a zero-latency
    // producer (Compare, Table 1) issuing earlier in this same tick
    // makes its dependents ready within the cycle, so the readiness
    // test must stay in the issue loop, after the policy ordering.
    queue.releaseThenScan(
        [&](const DynInst *i) {
            return i->stage != InstStage::InQueue &&
                   i->iqReleaseCycle <= st_.cycle;
        },
        queue.searchWindow(),
        [&](DynInst *inst) {
            if (inst->stage != InstStage::InQueue)
                return;
            if (inst->renameCycle >= st_.cycle)
                return; // entered the queue this cycle.
            if (!issueAllowedBySpeculationMode(inst))
                return;
            if (inst->isLoad() && !loadDisambiguated(inst))
                return;
            out.push_back(inst);
        });
}

template <typename Policy>
void
IssueStage<Policy>::issueInst(DynInst *inst)
{
    inst->stage = InstStage::Issued;
    inst->issueCycle = st_.cycle;
    inst->optimistic = st_.isOptimisticNow(inst);

    ++st_.stats.issuedInstructions;
    if (inst->wrongPath)
        ++st_.stats.issuedWrongPath;

    Cycle release = st_.cycle + 1;
    if (inst->si->dest.valid()) {
        RegisterFileState &rf = st_.file(inst->si->dest.file);
        if (inst->isLoad()) {
            // Optimistic 1-cycle load-use wakeup; verified at execute.
            rf.setReadyAt(inst->destPhys, st_.cycle + 1);
            rf.setUnverifiedUntil(inst->destPhys,
                                  st_.cycle + st_.execOffset);
        } else {
            rf.setReadyAt(inst->destPhys,
                          st_.cycle + opLatency(inst->si->op));
            // Propagate optimism downstream for OPT_LAST/statistics.
            Cycle unv = 0;
            if (inst->si->src1.valid())
                unv = std::max(unv,
                               st_.file(inst->si->src1.file)
                                   .unverifiedUntil(inst->src1Phys));
            if (inst->si->src2.valid())
                unv = std::max(unv,
                               st_.file(inst->si->src2.file)
                                   .unverifiedUntil(inst->src2Phys));
            rf.setUnverifiedUntil(inst->destPhys, unv);
        }
    }
    if (inst->si->isMemory())
        release = st_.cycle + st_.execOffset; // held until the access
                                              // actually happens
                                              // (bank-conflict retry).
    else if (inst->optimistic)
        release = st_.cycle + st_.execOffset; // held until sources
                                              // verify.
    inst->iqReleaseCycle = release;

    st_.execBucket(st_.cycle + st_.execOffset).push_back(inst);
    st_.inFlight.push_back(inst);

    --st_.frontAndQueueCount[inst->tid];
    if (inst->isControl())
        --st_.branchCount[inst->tid];

    // Cold branch (max issueWidth times per cycle, never in the scan
    // loops) — the stack-local tallies above stay aliasing-free.
    if (st_.pipe != nullptr)
        st_.pipe->onIssue(st_, inst);
}

template <typename Policy>
void
IssueStage<Policy>::tick()
{
    const unsigned big = 1u << 20;
    unsigned int_units =
        st_.cfg.infiniteFunctionalUnits ? big : st_.cfg.intUnits;
    unsigned ls_units =
        st_.cfg.infiniteFunctionalUnits ? big : st_.cfg.loadStoreUnits;
    unsigned fp_units =
        st_.cfg.infiniteFunctionalUnits ? big : st_.cfg.fpUnits;

    // Per-cause skip tallies for this cycle live on the stack: the scan
    // below runs up to 2x the search window per cycle, and a store into
    // st_.stats there may alias the pipeline state, forcing the
    // compiler to reload everything each iteration (measured ~18%
    // single-thread simspeed). Local arrays never escape, so the loop
    // stays tight; one flush per tick moves them into SimStats.
    std::array<std::uint32_t, kMaxThreads> wait_skips{};
    std::array<std::uint32_t, kMaxThreads> busy_skips{};

    cands_.clear();
    collectCandidates(st_.intQueue, cands_);
    policy_.order(st_, cands_);
    bool had_candidates = !cands_.empty();
    std::size_t c = 0;
    for (; c < cands_.size(); ++c) {
        DynInst *inst = cands_[c];
        if (int_units == 0)
            break;
        if (inst->si->isMemory() && ls_units == 0) {
            ++busy_skips[inst->tid];
            continue;
        }
        if (!st_.operandsReady(inst)) {
            ++wait_skips[inst->tid];
            continue;
        }
        --int_units;
        if (inst->si->isMemory())
            --ls_units;
        issueInst(inst);
    }
    for (; c < cands_.size(); ++c)
        ++busy_skips[cands_[c]->tid]; // lost to the unit budget.

    cands_.clear();
    collectCandidates(st_.fpQueue, cands_);
    policy_.order(st_, cands_);
    had_candidates = had_candidates || !cands_.empty();
    for (c = 0; c < cands_.size(); ++c) {
        DynInst *inst = cands_[c];
        if (fp_units == 0)
            break;
        if (!st_.operandsReady(inst)) {
            ++wait_skips[inst->tid];
            continue;
        }
        --fp_units;
        issueInst(inst);
    }
    for (; c < cands_.size(); ++c)
        ++busy_skips[cands_[c]->tid];

    StallStats &sl = st_.stats.stalls;
    for (unsigned t = 0; t < st_.numThreads; ++t) {
        sl.issueOperandWait[t] += wait_skips[t];
        sl.issueFuBusy[t] += busy_skips[t];
    }
    if (!had_candidates)
        ++sl.issueNoCandidatesCycles;
}

// One instantiation per dispatch mode: the abstract base (generic
// virtual-dispatch core) and each registered paper policy (the
// specialized cores the PolicyRegistry dispatch table selects).
template class IssueStage<policy::IssuePolicy>;
template class IssueStage<policy::OldestFirstPolicy>;
template class IssueStage<policy::OptLastPolicy>;
template class IssueStage<policy::SpecLastPolicy>;
template class IssueStage<policy::BranchFirstPolicy>;

} // namespace smt
