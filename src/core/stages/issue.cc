#include "core/stages/issue.hh"

#include <algorithm>

#include "isa/latency.hh"

namespace smt
{

bool
IssueStage::issueAllowedBySpeculationMode(const DynInst *inst) const
{
    if (st_.cfg.speculation == SpeculationMode::Full)
        return true;
    const ThreadState &ts = st_.threads[inst->tid];
    for (const DynInst *br : ts.unresolvedBranches) {
        if (br->seq >= inst->seq)
            continue;
        if (st_.cfg.speculation == SpeculationMode::NoPassBranch) {
            if (br->stage != InstStage::Executed)
                return false;
        } else { // NoWrongPathIssue
            if (br->stage == InstStage::InQueue ||
                br->stage == InstStage::Fetched ||
                br->stage == InstStage::Decoded)
                return false;
            if (st_.cycle < br->issueCycle + 4)
                return false;
        }
    }
    return true;
}

bool
IssueStage::loadDisambiguated(const DynInst *inst) const
{
    const Addr mask = (Addr{1} << st_.cfg.disambiguationBits) - 1;
    for (const DynInst *st : st_.threads[inst->tid].pendingStores) {
        if (st->seq < inst->seq && st->stage != InstStage::Executed &&
            (st->memAddr & mask) == (inst->memAddr & mask))
            return false;
    }
    return true;
}

void
IssueStage::collectCandidates(InstructionQueue &queue,
                              std::vector<DynInst *> &out)
{
    // First release the entries whose hold time expired (issued
    // instructions vacate a cycle after issue; optimistically issued
    // ones once verified; loads once their access actually happened).
    queue.removeIf([&](DynInst *i) {
        return i->stage != InstStage::InQueue &&
               i->iqReleaseCycle <= st_.cycle;
    });

    const std::size_t limit = queue.searchLimit();
    for (std::size_t i = 0; i < limit; ++i) {
        DynInst *inst = queue.at(i);
        if (inst->stage != InstStage::InQueue)
            continue;
        if (inst->renameCycle >= st_.cycle)
            continue; // entered the queue this cycle.
        if (!issueAllowedBySpeculationMode(inst))
            continue;
        if (inst->isLoad() && !loadDisambiguated(inst))
            continue;
        out.push_back(inst);
    }
}

void
IssueStage::issueInst(DynInst *inst)
{
    ThreadState &ts = st_.threads[inst->tid];
    inst->stage = InstStage::Issued;
    inst->issueCycle = st_.cycle;
    inst->optimistic = st_.isOptimisticNow(inst);

    ++st_.stats.issuedInstructions;
    if (inst->wrongPath)
        ++st_.stats.issuedWrongPath;

    Cycle release = st_.cycle + 1;
    if (inst->si->dest.valid()) {
        RegisterFileState &rf = st_.file(inst->si->dest.file);
        if (inst->isLoad()) {
            // Optimistic 1-cycle load-use wakeup; verified at execute.
            rf.setReadyAt(inst->destPhys, st_.cycle + 1);
            rf.setUnverifiedUntil(inst->destPhys,
                                  st_.cycle + st_.execOffset);
        } else {
            rf.setReadyAt(inst->destPhys,
                          st_.cycle + opLatency(inst->si->op));
            // Propagate optimism downstream for OPT_LAST/statistics.
            Cycle unv = 0;
            if (inst->si->src1.valid())
                unv = std::max(unv,
                               st_.file(inst->si->src1.file)
                                   .unverifiedUntil(inst->src1Phys));
            if (inst->si->src2.valid())
                unv = std::max(unv,
                               st_.file(inst->si->src2.file)
                                   .unverifiedUntil(inst->src2Phys));
            rf.setUnverifiedUntil(inst->destPhys, unv);
        }
    }
    if (inst->si->isMemory())
        release = st_.cycle + st_.execOffset; // held until the access
                                              // actually happens
                                              // (bank-conflict retry).
    else if (inst->optimistic)
        release = st_.cycle + st_.execOffset; // held until sources
                                              // verify.
    inst->iqReleaseCycle = release;

    st_.execAt[st_.cycle + st_.execOffset].push_back(inst);
    st_.inFlight.push_back(inst);

    --ts.frontAndQueueCount;
    if (inst->isControl())
        --ts.branchCount;
}

void
IssueStage::tick()
{
    const unsigned big = 1u << 20;
    unsigned int_units =
        st_.cfg.infiniteFunctionalUnits ? big : st_.cfg.intUnits;
    unsigned ls_units =
        st_.cfg.infiniteFunctionalUnits ? big : st_.cfg.loadStoreUnits;
    unsigned fp_units =
        st_.cfg.infiniteFunctionalUnits ? big : st_.cfg.fpUnits;

    std::vector<DynInst *> cands;
    cands.reserve(64);

    collectCandidates(st_.intQueue, cands);
    policy_.order(st_, cands);
    for (DynInst *inst : cands) {
        if (int_units == 0)
            break;
        if (inst->si->isMemory() && ls_units == 0)
            continue;
        if (!st_.operandsReady(inst))
            continue;
        --int_units;
        if (inst->si->isMemory())
            --ls_units;
        issueInst(inst);
    }

    cands.clear();
    collectCandidates(st_.fpQueue, cands);
    policy_.order(st_, cands);
    for (DynInst *inst : cands) {
        if (fp_units == 0)
            break;
        if (!st_.operandsReady(inst))
            continue;
        --fp_units;
        issueInst(inst);
    }
}

} // namespace smt
