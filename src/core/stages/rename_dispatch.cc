#include "core/stages/rename_dispatch.hh"

#include <array>

#include "obs/pipe_trace.hh"

namespace smt
{

void
RenameDispatchStage::tick()
{
    obs::PipeTrace *const pipe = st_.pipe;
    if (st_.intQueue.full())
        ++st_.stats.intIQFullCycles;
    if (st_.fpQueue.full())
        ++st_.stats.fpIQFullCycles;

    unsigned budget = st_.cfg.renameWidth;
    bool out_of_regs = false;
    std::array<bool, kMaxThreads> blocked{};

    while (budget > 0) {
        // Pick the globally oldest renameable instruction (age-ordered
        // shared rename bandwidth).
        DynInst *best = nullptr;
        for (unsigned t = 0; t < st_.numThreads; ++t) {
            if (blocked[t])
                continue;
            ThreadState &ts = st_.threads[t];
            if (ts.frontEnd.empty())
                continue;
            DynInst *head = ts.frontEnd.front();
            if (head->stage != InstStage::Decoded ||
                head->decodeCycle >= st_.cycle)
                continue;
            if (best == nullptr || head->seq < best->seq)
                best = head;
        }
        if (best == nullptr)
            break;

        ThreadState &ts = st_.threads[best->tid];
        InstructionQueue &q =
            best->si->usesFpQueue() ? st_.fpQueue : st_.intQueue;
        if (q.full()) {
            blocked[best->tid] = true;
            ++st_.stats.fetchBlockedIQFull;
            ++st_.stats.stalls.renameIQFull[best->tid];
            if (pipe != nullptr)
                pipe->onRenameBlocked(st_, best->tid, "iq_full");
            continue;
        }
        if (best->si->dest.valid() &&
            !st_.file(best->si->dest.file).hasFree()) {
            blocked[best->tid] = true;
            out_of_regs = true;
            ++st_.stats.stalls.renameNoRegisters[best->tid];
            if (pipe != nullptr)
                pipe->onRenameBlocked(st_, best->tid, "no_regs");
            continue;
        }

        // Rename operands against the current map.
        if (best->si->src1.valid())
            best->src1Phys =
                st_.file(best->si->src1.file)
                    .lookup(best->tid, best->si->src1.index);
        if (best->si->src2.valid())
            best->src2Phys =
                st_.file(best->si->src2.file)
                    .lookup(best->tid, best->si->src2.index);
        if (best->si->dest.valid()) {
            auto [fresh, prev] =
                st_.file(best->si->dest.file)
                    .rename(best->tid, best->si->dest.index);
            best->destPhys = fresh;
            best->destPrevPhys = prev;
        }

        best->stage = InstStage::InQueue;
        best->renameCycle = st_.cycle;
        best->inIntQueue = &q == &st_.intQueue;
        q.insert(best);
        if (pipe != nullptr)
            pipe->onRename(st_, best);

        ts.frontEnd.pop_front();
        ts.rob.push_back(best);
        if (best->isControl())
            ts.unresolvedBranches.push_back(best);
        if (best->isStore())
            ts.pendingStores.push_back(best);
        --budget;
    }

    if (out_of_regs)
        ++st_.stats.outOfRegistersCycles;
}

} // namespace smt
