/**
 * @file
 * CommitStage: in-order per-thread retirement over a shared commit
 * bandwidth, rotating the starting thread each cycle.
 */

#ifndef SMT_CORE_STAGES_COMMIT_HH
#define SMT_CORE_STAGES_COMMIT_HH

#include "core/pipeline_state.hh"

namespace smt
{

/** Retirement stage. */
class CommitStage
{
  public:
    explicit CommitStage(PipelineState &st) : st_(st) {}

    void tick();

  private:
    PipelineState &st_;
};

} // namespace smt

#endif // SMT_CORE_STAGES_COMMIT_HH
