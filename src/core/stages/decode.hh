/**
 * @file
 * DecodeStage: age-ordered shared decode bandwidth, including misfetch
 * detection — decode computes direct targets and redirects fetch when
 * the BTB supplied a wrong (or no) target (Section 2).
 */

#ifndef SMT_CORE_STAGES_DECODE_HH
#define SMT_CORE_STAGES_DECODE_HH

#include "core/pipeline_state.hh"

namespace smt
{

/** Decode stage. */
class DecodeStage
{
  public:
    explicit DecodeStage(PipelineState &st) : st_(st) {}

    void tick();

  private:
    PipelineState &st_;
};

} // namespace smt

#endif // SMT_CORE_STAGES_DECODE_HH
