/**
 * @file
 * SquashStage: applies pending mispredict squashes at the top of the
 * cycle, one cycle after the offending branch executed (Section 3).
 */

#ifndef SMT_CORE_STAGES_SQUASH_HH
#define SMT_CORE_STAGES_SQUASH_HH

#include <vector>

#include "core/pipeline_state.hh"

namespace smt
{

/** Mispredict-recovery stage. */
class SquashStage
{
  public:
    explicit SquashStage(PipelineState &st) : st_(st) {}

    /** Apply every squash whose delay has elapsed. */
    void tick();

  private:
    /** Full squash of everything younger than `branch` (mispredict). */
    void squashThread(ThreadID tid, DynInst *branch);

    PipelineState &st_;

    /** ROB-unwind scratch (hoisted: squashes allocate nothing). */
    std::vector<DynInst *> squashed_;
};

} // namespace smt

#endif // SMT_CORE_STAGES_SQUASH_HH
