/**
 * @file
 * IssueStage: selects ready instructions from the two queues, ordered
 * by the configured IssuePolicy, within the functional-unit budgets
 * (Sections 2.1 and 6).
 */

#ifndef SMT_CORE_STAGES_ISSUE_HH
#define SMT_CORE_STAGES_ISSUE_HH

#include <vector>

#include "core/pipeline_state.hh"
#include "policy/issue_policy.hh"

namespace smt
{

/** Issue-selection stage. */
class IssueStage
{
  public:
    IssueStage(PipelineState &st, const policy::IssuePolicy &pol)
        : st_(st), policy_(pol)
    {
    }

    void tick();

  private:
    void collectCandidates(InstructionQueue &queue,
                           std::vector<DynInst *> &out);
    bool issueAllowedBySpeculationMode(const DynInst *inst) const;
    bool loadDisambiguated(const DynInst *inst) const;
    void issueInst(DynInst *inst);

    PipelineState &st_;
    const policy::IssuePolicy &policy_;
};

} // namespace smt

#endif // SMT_CORE_STAGES_ISSUE_HH
