/**
 * @file
 * IssueStage: selects ready instructions from the two queues, ordered
 * by the configured IssuePolicy, within the functional-unit budgets
 * (Sections 2.1 and 6).
 *
 * Like FetchStage, the stage is a template over the policy type:
 * instantiated with the abstract policy::IssuePolicy it dispatches
 * order() virtually (plugin fallback); instantiated with a concrete
 * `final` policy the two per-cycle order() calls resolve statically
 * and the comparison lambdas inline into the sort.
 */

#ifndef SMT_CORE_STAGES_ISSUE_HH
#define SMT_CORE_STAGES_ISSUE_HH

#include <vector>

#include "core/pipeline_state.hh"
#include "policy/issue_policy.hh"

namespace smt
{

/** Issue-selection stage. */
template <typename Policy>
class IssueStage
{
  public:
    IssueStage(PipelineState &st, const Policy &pol)
        : st_(st), policy_(pol)
    {
        // Candidates come from one queue's search window at a time.
        cands_.reserve(st.cfg.iqSearchWindow);
    }

    void tick();

  private:
    void collectCandidates(InstructionQueue &queue,
                           std::vector<DynInst *> &out);
    bool issueAllowedBySpeculationMode(const DynInst *inst) const;
    bool loadDisambiguated(const DynInst *inst) const;
    void issueInst(DynInst *inst);

    PipelineState &st_;
    const Policy &policy_;

    /** Per-cycle candidate scratch (hoisted: no per-tick allocation). */
    std::vector<DynInst *> cands_;
};

// Instantiated explicitly in issue.cc for the abstract policy and each
// registered paper policy.

} // namespace smt

#endif // SMT_CORE_STAGES_ISSUE_HH
