#include "core/stages/squash.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/pipe_trace.hh"

namespace smt
{

void
SquashStage::tick()
{
    for (unsigned t = 0; t < st_.numThreads; ++t) {
        ThreadState &ts = st_.threads[t];
        if (ts.pendingSquash != nullptr &&
            ts.pendingSquashCycle <= st_.cycle)
        {
            DynInst *branch = ts.pendingSquash;
            ts.pendingSquash = nullptr;
            squashThread(static_cast<ThreadID>(t), branch);
        }
    }
}

void
SquashStage::squashThread(ThreadID tid, DynInst *branch)
{
    ThreadState &ts = st_.threads[tid];
    obs::PipeTrace *const pipe = st_.pipe;
    smt_assert(!branch->wrongPath,
               "wrong-path instructions never trigger squashes");

    // Drop everything still in the front end (all younger than any
    // renamed instruction of this thread).
    while (!ts.frontEnd.empty()) {
        DynInst *inst = ts.frontEnd.back();
        ts.frontEnd.pop_back();
        --st_.frontAndQueueCount[tid];
        if (inst->isControl())
            --st_.branchCount[tid];
        if (pipe != nullptr)
            pipe->onSquash(st_, inst, "mispredict");
        st_.pool.release(inst);
    }

    // Unwind the ROB youngest-first down to (not including) the branch.
    squashed_.clear();
    while (!ts.rob.empty() && ts.rob.back()->seq > branch->seq) {
        DynInst *inst = ts.rob.back();
        ts.rob.pop_back();
        squashed_.push_back(inst);
        if (pipe != nullptr)
            pipe->onSquash(st_, inst, "mispredict");

        if (inst->si->dest.valid()) {
            st_.file(inst->si->dest.file)
                .rollback(tid, inst->si->dest.index, inst->destPhys,
                          inst->destPrevPhys);
        }
        if (inst->stage == InstStage::InQueue)
            --st_.frontAndQueueCount[tid];
        if (inst->stage == InstStage::InQueue && inst->isControl())
            --st_.branchCount[tid];
    }

    // Purge the squashed set from every secondary structure.
    if (!squashed_.empty()) {
        auto is_squashed = [&](const DynInst *i) {
            return i->tid == tid && i->seq > branch->seq;
        };
        st_.intQueue.removeIf(is_squashed);
        st_.fpQueue.removeIf(is_squashed);
        std::erase_if(st_.inFlight, is_squashed);
        // Exec-ring slots for past cycles have been drained, so a
        // sweep over all slots touches exactly the still-pending
        // buckets the cycle-keyed map used to.
        for (std::vector<DynInst *> &bucket : st_.execRing)
            std::erase_if(bucket, is_squashed);
        std::erase_if(ts.unresolvedBranches, is_squashed);
        std::erase_if(ts.pendingStores, is_squashed);
        if (ts.pendingSquash != nullptr &&
            ts.pendingSquash->seq > branch->seq)
            ts.pendingSquash = nullptr;
        for (DynInst *inst : squashed_)
            st_.pool.release(inst);
    }

    // Repair predictor state and restart fetch on the correct path.
    st_.bp.squashRepair(tid, branch->historySnapshot, branch->actualTaken,
                        branch->rasCheckpoint);
    smt_assert(branch->streamIdx != kNoStreamIdx);
    ts.nextStreamIdx = branch->streamIdx + 1;
    ts.onWrongPath = false;
    ts.fetchPc = branch->actualNextPc;
    st_.fetchReadyAt[tid] =
        std::max(st_.fetchReadyAt[tid],
                 st_.cycle + (st_.cfg.itagEarlyLookup ? 1 : 0));
}

} // namespace smt
