#include "core/stages/decode.hh"

#include <algorithm>
#include <array>

#include "obs/pipe_trace.hh"

namespace smt
{

void
DecodeStage::tick()
{
    obs::PipeTrace *const pipe = st_.pipe;
    unsigned budget = st_.cfg.decodeWidth;
    std::array<std::size_t, kMaxThreads> idx{};

    while (budget > 0) {
        DynInst *best = nullptr;
        for (unsigned t = 0; t < st_.numThreads; ++t) {
            ThreadState &ts = st_.threads[t];
            // Skip past already-decoded entries waiting for rename;
            // decode is in-order, so the next Fetched entry is eligible.
            while (idx[t] < ts.frontEnd.size() &&
                   ts.frontEnd[idx[t]]->stage != InstStage::Fetched)
                ++idx[t];
            if (idx[t] >= ts.frontEnd.size())
                continue;
            DynInst *cand = ts.frontEnd[idx[t]];
            if (cand->fetchCycle >= st_.cycle)
                continue;
            if (best == nullptr || cand->seq < best->seq)
                best = cand;
        }
        if (best == nullptr)
            break;

        ThreadState &ts = st_.threads[best->tid];
        best->stage = InstStage::Decoded;
        best->decodeCycle = st_.cycle;
        if (pipe != nullptr)
            pipe->onDecode(st_, best);
        ++idx[best->tid];
        --budget;

        // Misfetch detection: decode can compute direct targets, so a
        // predicted-taken direct transfer whose target the BTB did not
        // (or wrongly) supply redirects fetch here (2-cycle penalty).
        const OpClass op = best->si->op;
        const bool direct_taken =
            (op == OpClass::Jump || op == OpClass::Call ||
             (best->si->isCondBranch() && best->predTaken));
        if (direct_taken) {
            const Addr expected = best->si->target;
            if (best->nextFetchPc != expected) {
                ++st_.stats.misfetches;
                st_.dropFrontEndYounger(ts, best);
                st_.bp.misfetchRepair(best->tid, *best->si, best->pc,
                                      best->historySnapshot,
                                      best->predTaken,
                                      best->rasCheckpoint);
                best->nextFetchPc = expected;
                ts.fetchPc = expected;
                st_.fetchReadyAt[best->tid] = std::max(
                    st_.fetchReadyAt[best->tid],
                    st_.cycle + 1 + (st_.cfg.itagEarlyLookup ? 1 : 0));
                if (!best->wrongPath) {
                    ts.nextStreamIdx = best->streamIdx + 1;
                    ts.onWrongPath = false;
                }
            }
            st_.bp.updateTarget(best->tid, best->pc, expected, false);
        }
    }
}

} // namespace smt
