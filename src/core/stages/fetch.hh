/**
 * @file
 * FetchStage: per-cycle thread selection (delegated to the configured
 * FetchPolicy) and instruction fetch from the selected threads'
 * code images (Sections 4 and 5).
 *
 * The stage is a template over the policy type. Instantiated with the
 * abstract policy::FetchPolicy, every priorityKey()/beginCycle() call
 * dispatches virtually (the plugin-policy fallback); instantiated with
 * a concrete `final` policy class, the calls resolve statically and
 * inline into the selection loop (the specialized paper-policy cores
 * built by the PolicyRegistry dispatch table). Both instantiations run
 * the same statements, so they are cycle-identical by construction.
 */

#ifndef SMT_CORE_STAGES_FETCH_HH
#define SMT_CORE_STAGES_FETCH_HH

#include <array>

#include "core/pipeline_state.hh"
#include "policy/fetch_policy.hh"

namespace smt
{

/**
 * Per-cycle fetch disposition of one thread, flushed into
 * StallStats at the end of the stage tick. Exactly one outcome is
 * recorded per (cycle, thread), so the stall counters partition the
 * run's cycles per thread.
 */
enum class FetchOutcome : std::uint8_t
{
    Active,        ///< fetched at least one instruction.
    IcacheMiss,    ///< I-cache/ITLB miss pending/starting, or bank lost.
    FrontEndFull,  ///< front-end occupancy cap (IQ backpressure).
    NoTarget,      ///< fetch PC awaiting misfetch resolution.
    LostSelection, ///< fetchable but out-prioritized this cycle.
};

/** One fetch-selection candidate (a fetchable thread this cycle). */
struct FetchCandidate
{
    double key;  ///< policy priority, lower first.
    unsigned rr; ///< round-robin rank, breaks key ties.
    ThreadID tid;
};

/**
 * Order candidates by (key, rr) ascending with a binary insertion
 * sort: N is at most kMaxThreads (8), where the branch-lean shifted
 * insert beats std::sort's introsort setup every cycle. The (key, rr)
 * pair is a strict total order over candidates (rr ranks are unique),
 * so the result is independent of the input permutation.
 */
inline void
sortFetchCandidates(FetchCandidate *cands, unsigned n)
{
    for (unsigned i = 1; i < n; ++i) {
        const FetchCandidate c = cands[i];
        unsigned j = i;
        while (j > 0 && (c.key < cands[j - 1].key ||
                         (c.key == cands[j - 1].key &&
                          c.rr < cands[j - 1].rr))) {
            cands[j] = cands[j - 1];
            --j;
        }
        cands[j] = c;
    }
}

/** Fetch stage. `Policy` is policy::FetchPolicy (virtual dispatch) or a
 *  concrete final policy class (static dispatch). */
template <typename Policy>
class FetchStage
{
  public:
    FetchStage(PipelineState &st, Policy &pol) : st_(st), policy_(pol) {}

    void tick();

  private:
    /** Priority-ordered candidate thread list for this cycle. */
    unsigned selectFetchThreads();
    unsigned fetchFromThread(ThreadID tid, unsigned max_insts);
    DynInst *buildInst(ThreadState &ts, ThreadID tid, Addr pc);

    PipelineState &st_;
    Policy &policy_;

    // Per-cycle scratch, sized to the machine maximum so the fetch
    // walk never touches the heap.
    std::array<FetchCandidate, kMaxThreads> cands_;
    std::array<ThreadID, kMaxThreads> selected_;
    std::array<unsigned, kMaxThreads> banks_;
    std::array<FetchOutcome, kMaxThreads> outcome_;
};

// The template is instantiated explicitly in fetch.cc for the abstract
// policy and each registered paper policy.

} // namespace smt

#endif // SMT_CORE_STAGES_FETCH_HH
