/**
 * @file
 * FetchStage: per-cycle thread selection (delegated to the configured
 * FetchPolicy) and instruction fetch from the selected threads'
 * code images (Sections 4 and 5).
 */

#ifndef SMT_CORE_STAGES_FETCH_HH
#define SMT_CORE_STAGES_FETCH_HH

#include <vector>

#include "core/pipeline_state.hh"
#include "policy/fetch_policy.hh"

namespace smt
{

/** Fetch stage. */
class FetchStage
{
  public:
    FetchStage(PipelineState &st, policy::FetchPolicy &pol)
        : st_(st), policy_(pol)
    {
    }

    void tick();

  private:
    /** Priority-ordered candidate thread list for this cycle. */
    void selectFetchThreads(std::vector<ThreadID> &out);
    unsigned fetchFromThread(ThreadID tid, unsigned max_insts);
    DynInst *buildInst(ThreadState &ts, ThreadID tid, Addr pc);

    PipelineState &st_;
    policy::FetchPolicy &policy_;
};

} // namespace smt

#endif // SMT_CORE_STAGES_FETCH_HH
