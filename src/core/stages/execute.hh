/**
 * @file
 * ExecuteStage: drains the execute bucket for the current cycle —
 * memory access, control resolution, and repair of optimistic issues
 * whose load turned out to miss (Section 6).
 */

#ifndef SMT_CORE_STAGES_EXECUTE_HH
#define SMT_CORE_STAGES_EXECUTE_HH

#include <utility>
#include <vector>

#include "core/pipeline_state.hh"

namespace smt
{

/** Execution stage. */
class ExecuteStage
{
  public:
    explicit ExecuteStage(PipelineState &st) : st_(st) {}

    void tick();

  private:
    void executeInst(DynInst *inst);
    void executeLoad(DynInst *inst);
    void executeStore(DynInst *inst);
    void resolveControl(DynInst *inst);
    /** Squash issued-but-unexecuted consumers of a register whose ready
     *  time just moved later (optimistic-issue repair; cascades). */
    void requeueDependents(RegFile file, PhysRegIndex reg);

    PipelineState &st_;

    // Per-cycle scratch, hoisted so the steady-state walk never
    // allocates: the drained bucket (swapped out of the exec ring so
    // requeueDependents can edit future buckets while we iterate) and
    // the repair cascade's work list.
    std::vector<DynInst *> bucket_;
    std::vector<std::pair<RegFile, PhysRegIndex>> requeueWork_;
};

} // namespace smt

#endif // SMT_CORE_STAGES_EXECUTE_HH
