/**
 * @file
 * CoreEngine: the per-cycle stage walk behind SmtCore.
 *
 * SmtCore owns the PipelineState and delegates the stage walk to one
 * CoreEngine, chosen once at construction:
 *
 *  - a *specialized* engine (engine_impl.hh) instantiated over the
 *    concrete fetch/issue policy classes of a registered paper policy
 *    pair — the per-thread priorityKey() calls in fetch and the two
 *    order() calls in issue resolve statically and inline;
 *  - the *generic* engine — the same template instantiated over the
 *    abstract policy interfaces — for plugin policies the dispatch
 *    table does not know.
 *
 * Both run the same stage code, so they are cycle-identical; the
 * golden-stats test matrix pins that for every registered pair. The
 * dispatch table lives in the PolicyRegistry (registry.hh).
 */

#ifndef SMT_CORE_ENGINE_HH
#define SMT_CORE_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>

namespace smt
{

struct PipelineState;
struct SmtConfig;

namespace policy
{
class FetchPolicy;
class IssuePolicy;
class PolicyRegistry;
} // namespace policy

/** Wall-clock nanoseconds accumulated per pipeline stage
 *  (tickTimed() instrumentation for the simspeed benchmarks). */
struct StageTimes
{
    enum Stage : unsigned
    {
        Squash,
        Commit,
        Execute,
        Issue,
        Rename,
        Decode,
        Fetch,
        kNumStages,
    };

    std::array<std::uint64_t, kNumStages> ns{};

    static const char *stageName(unsigned stage);

    std::uint64_t
    totalNs() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : ns)
            sum += v;
        return sum;
    }
};

/** The stage walk of one core, over a PipelineState it does not own. */
class CoreEngine
{
  public:
    virtual ~CoreEngine() = default;

    /** Run the seven stages for one cycle (hot path). */
    virtual void tick() = 0;

    /** tick() with per-stage wall-clock accumulation (benchmarks). */
    virtual void tickTimed(StageTimes &out) = 0;

    /** The resolved policy objects (introspection for tests/tools). */
    virtual const policy::FetchPolicy &fetchPolicy() const = 0;
    virtual const policy::IssuePolicy &issuePolicy() const = 0;

    /** "specialized" (devirtualized policies) or "generic". */
    virtual const char *kind() const = 0;
};

/** The virtual-dispatch fallback engine for the policies `cfg` names. */
std::unique_ptr<CoreEngine> makeGenericEngine(PipelineState &st,
                                              const SmtConfig &cfg);

/** Install the specialized engines for the paper's registered policy
 *  pairs into `reg`'s dispatch table (called by the registry itself). */
void registerBuiltinCoreEngines(policy::PolicyRegistry &reg);

} // namespace smt

#endif // SMT_CORE_ENGINE_HH
