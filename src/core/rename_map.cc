#include "core/rename_map.hh"

#include "common/logging.hh"

namespace smt
{

RegisterFileState::RegisterFileState(unsigned num_threads,
                                     unsigned phys_regs)
{
    smt_assert(num_threads >= 1 && num_threads <= kMaxThreads);
    smt_assert(phys_regs > kLogRegsPerFile * num_threads,
               "no renaming registers left (%u phys for %u threads)",
               phys_regs, num_threads);

    readyAt_.assign(phys_regs, 0);
    unverifiedUntil_.assign(phys_regs, 0);

    // Identity-map the architectural registers of each live context;
    // everything else starts on the free list.
    PhysRegIndex next = 0;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        map_[t].fill(kNoPhysReg);
    for (unsigned t = 0; t < num_threads; ++t)
        for (unsigned r = 0; r < kLogRegsPerFile; ++r)
            map_[t][r] = next++;
    freeList_.reserve(phys_regs - next);
    for (unsigned p = next; p < phys_regs; ++p)
        freeList_.push_back(static_cast<PhysRegIndex>(p));
}

std::pair<PhysRegIndex, PhysRegIndex>
RegisterFileState::rename(ThreadID tid, LogRegIndex log)
{
    smt_assert(!freeList_.empty());
    const PhysRegIndex fresh = freeList_.back();
    freeList_.pop_back();
    const PhysRegIndex prev = map_[tid][log];
    smt_assert(prev != kNoPhysReg, "rename of an unmapped context");
    map_[tid][log] = fresh;
    readyAt_[fresh] = kCycleNever;
    unverifiedUntil_[fresh] = 0;
    return {fresh, prev};
}

void
RegisterFileState::freeAtCommit(PhysRegIndex prev_phys)
{
    smt_assert(prev_phys != kNoPhysReg);
    freeList_.push_back(prev_phys);
}

void
RegisterFileState::rollback(ThreadID tid, LogRegIndex log,
                            PhysRegIndex new_phys, PhysRegIndex prev_phys)
{
    smt_assert(map_[tid][log] == new_phys,
               "rollback out of order: map holds %u, undoing %u",
               map_[tid][log], new_phys);
    map_[tid][log] = prev_phys;
    freeList_.push_back(new_phys);
}

} // namespace smt
