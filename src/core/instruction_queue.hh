/**
 * @file
 * InstructionQueue: one of the two queues of Section 2.1 (integer +
 * load/store, or floating point). Entries are age-ordered; issue
 * selection may only search the first `searchWindow` entries — the BIGQ
 * scheme of Section 5.3 doubles the entry count while keeping the
 * search window at 32, turning the back half into a dispatch buffer.
 */

#ifndef SMT_CORE_INSTRUCTION_QUEUE_HH
#define SMT_CORE_INSTRUCTION_QUEUE_HH

#include <span>
#include <vector>

#include "core/dyn_inst.hh"

namespace smt
{

/** An age-ordered instruction queue with a bounded search window. */
class InstructionQueue
{
  public:
    InstructionQueue(unsigned entries, unsigned search_window)
        : entries_(entries), searchWindow_(search_window)
    {
        queue_.reserve(entries);
    }

    bool full() const { return queue_.size() >= entries_; }
    std::size_t size() const { return queue_.size(); }
    unsigned capacity() const { return entries_; }

    /** Insert at the tail (dispatch). Caller checks full() first. */
    void
    insert(DynInst *inst)
    {
        queue_.push_back(inst);
    }

    /** Remove a specific instruction (issue-complete or squash). */
    void remove(DynInst *inst);

    /** Remove every instruction satisfying `pred` (bulk squash). */
    template <typename Pred>
    void
    removeIf(Pred pred)
    {
        std::size_t out = 0;
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            if (!pred(queue_[i]))
                queue_[out++] = queue_[i];
        }
        queue_.resize(out);
    }

    /**
     * Fused release-and-search walk (the per-cycle issue scan): drop
     * every entry satisfying `release`, and call `gather` on each kept
     * entry whose *post-compaction* position falls inside the search
     * window — one pass over the queue where removeIf + a window scan
     * would take two.
     */
    template <typename ReleasePred, typename Gather>
    void
    releaseThenScan(ReleasePred release, std::size_t window, Gather gather)
    {
        std::size_t out = 0;
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            DynInst *inst = queue_[i];
            if (release(inst))
                continue;
            queue_[out] = inst;
            if (out < window)
                gather(inst);
            ++out;
        }
        queue_.resize(out);
    }

    /** The searchable (issuable) prefix length. */
    std::size_t
    searchLimit() const
    {
        return std::min<std::size_t>(queue_.size(), searchWindow_);
    }

    /** The configured search-window size (BIGQ keeps this at 32). */
    std::size_t searchWindow() const { return searchWindow_; }

    DynInst *at(std::size_t idx) const { return queue_[idx]; }

    /**
     * Position (0 = head = oldest) of the first not-yet-issued entry of
     * each thread; `out` holds one slot per thread of interest, entry =
     * queue size when the thread has nothing here. Entries for threads
     * beyond out.size() are ignored (bounds-checked). Used by the
     * IQPOSN fetch policy.
     */
    void oldestPositions(std::span<std::size_t> out) const;

    /** Fixed-capacity overload for callers sized to the maximum. */
    void
    oldestPositions(std::size_t (&out)[kMaxThreads]) const
    {
        oldestPositions(std::span<std::size_t>(out, kMaxThreads));
    }

  private:
    unsigned entries_;
    unsigned searchWindow_;
    std::vector<DynInst *> queue_;
};

} // namespace smt

#endif // SMT_CORE_INSTRUCTION_QUEUE_HH
