#include "core/core.hh"

#include <cstdio>

#include "common/logging.hh"
#include "policy/registry.hh"

namespace smt
{

SmtCore::SmtCore(const SmtConfig &cfg, MemoryHierarchy &mem,
                 BranchPredictor &bp, std::vector<ThreadProgram *> programs,
                 SimStats &stats, CoreDispatch dispatch)
    : state_(cfg, mem, bp, stats)
{
    if (dispatch == CoreDispatch::Auto) {
        const policy::CoreEngineFactory *make =
            policy::PolicyRegistry::instance().findCoreEngine(
                cfg.resolvedFetchPolicyName(),
                cfg.resolvedIssuePolicyName());
        if (make != nullptr)
            engine_ = (*make)(state_);
    }
    if (!engine_)
        engine_ = makeGenericEngine(state_, cfg);

    smt_assert(programs.size() == cfg.numThreads,
               "need one program per hardware context (%zu vs %u)",
               programs.size(), cfg.numThreads);
    for (unsigned t = 0; t < state_.numThreads; ++t) {
        state_.threads[t].program = programs[t];
        state_.threads[t].fetchPc = programs[t]->entryPc();
    }
}

// --------------------------------------------------------------------------
// Invariant checking (tests)
// --------------------------------------------------------------------------

void
SmtCore::validateInvariants() const
{
    // Register conservation: every physical register is exactly one of
    // free, an architectural mapping, or a pending commit-time free held
    // by an in-flight instruction with a destination.
    unsigned in_flight_int = 0;
    unsigned in_flight_fp = 0;
    for (const ThreadState &ts : state_.threads) {
        InstSeqNum prev_seq = 0;
        for (const DynInst *inst : ts.rob) {
            smt_assert(inst->seq > prev_seq, "ROB not in program order");
            prev_seq = inst->seq;
            if (inst->si->dest.valid()) {
                if (inst->si->dest.file == RegFile::Int)
                    ++in_flight_int;
                else
                    ++in_flight_fp;
            }
        }
        prev_seq = 0;
        for (const DynInst *inst : ts.frontEnd) {
            smt_assert(inst->seq > prev_seq,
                       "front end not in program order");
            prev_seq = inst->seq;
            smt_assert(inst->stage == InstStage::Fetched ||
                       inst->stage == InstStage::Decoded);
        }
    }
    const unsigned arch = kLogRegsPerFile * state_.numThreads;
    smt_assert(state_.intRegs.freeCount() + arch + in_flight_int ==
                   state_.intRegs.physRegs(),
               "integer register leak: %u free + %u arch + %u in-flight "
               "!= %u",
               state_.intRegs.freeCount(), arch, in_flight_int,
               state_.intRegs.physRegs());
    smt_assert(state_.fpRegs.freeCount() + arch + in_flight_fp ==
                   state_.fpRegs.physRegs(),
               "FP register leak: %u free + %u arch + %u in-flight != %u",
               state_.fpRegs.freeCount(), arch, in_flight_fp,
               state_.fpRegs.physRegs());

    smt_assert(state_.intQueue.size() <= state_.intQueue.capacity());
    smt_assert(state_.fpQueue.size() <= state_.fpQueue.capacity());
}

void
SmtCore::debugDump() const
{
    std::fprintf(stderr, "=== cycle %llu ===\n",
                 static_cast<unsigned long long>(state_.cycle));
    std::fprintf(stderr, "intQ=%zu fpQ=%zu inFlight=%zu live=%zu\n",
                 state_.intQueue.size(), state_.fpQueue.size(),
                 state_.inFlight.size(), state_.pool.live());
    auto dump_inst = [&](const char *tag, const DynInst *i) {
        const char *ready1 =
            !i->si->src1.valid()
                ? "-"
                : (state_.file(i->si->src1.file).readyAt(i->src1Phys) <=
                           state_.cycle
                       ? "rdy"
                       : "wait");
        const char *ready2 =
            !i->si->src2.valid()
                ? "-"
                : (state_.file(i->si->src2.file).readyAt(i->src2Phys) <=
                           state_.cycle
                       ? "rdy"
                       : "wait");
        std::fprintf(stderr,
                     "  %s seq=%llu t%u pc=%llx op=%s stage=%u wp=%d "
                     "src1=%s src2=%s complete=%llu rel=%llu\n",
                     tag, static_cast<unsigned long long>(i->seq), i->tid,
                     static_cast<unsigned long long>(i->pc),
                     opClassName(i->si->op),
                     static_cast<unsigned>(i->stage), i->wrongPath,
                     ready1, ready2,
                     static_cast<unsigned long long>(i->completeCycle),
                     static_cast<unsigned long long>(i->iqReleaseCycle));
    };
    for (unsigned t = 0; t < state_.numThreads; ++t) {
        const ThreadState &ts = state_.threads[t];
        std::fprintf(stderr,
                     "thread %u: fetchPc=%llx readyAt=%llu frontEnd=%zu "
                     "rob=%zu count=%u wrongPath=%d\n",
                     t, static_cast<unsigned long long>(ts.fetchPc),
                     static_cast<unsigned long long>(
                         state_.fetchReadyAt[t]),
                     ts.frontEnd.size(), ts.rob.size(),
                     state_.frontAndQueueCount[t], ts.onWrongPath);
        if (!ts.rob.empty())
            dump_inst("rob-head", ts.rob.front());
        if (!ts.frontEnd.empty())
            dump_inst("fe-head", ts.frontEnd.front());
    }
    for (std::size_t i = 0; i < state_.intQueue.size(); ++i)
        dump_inst("intQ", state_.intQueue.at(i));
    for (std::size_t i = 0; i < state_.fpQueue.size(); ++i)
        dump_inst("fpQ", state_.fpQueue.at(i));
}

} // namespace smt
