#include "core/core.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/latency.hh"

namespace smt
{

SmtCore::SmtCore(const SmtConfig &cfg, MemoryHierarchy &mem,
                 BranchPredictor &bp, std::vector<ThreadProgram *> programs,
                 SimStats &stats)
    : cfg_(cfg), mem_(mem), bp_(bp), stats_(stats),
      numThreads_(cfg.numThreads),
      execOffset_(cfg.longRegisterPipeline ? 3 : 2),
      commitDelta_(cfg.longRegisterPipeline ? 2 : 1),
      frontEndCap_(cfg.decodeWidth + cfg.renameWidth),
      intRegs_(cfg.numThreads, cfg.physRegsPerFile()),
      fpRegs_(cfg.numThreads, cfg.physRegsPerFile()),
      intQueue_(cfg.intQueueEntries, cfg.iqSearchWindow),
      fpQueue_(cfg.fpQueueEntries, cfg.iqSearchWindow)
{
    smt_assert(programs.size() == cfg.numThreads,
               "need one program per hardware context (%zu vs %u)",
               programs.size(), cfg.numThreads);
    threads_.resize(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t) {
        threads_[t].program = programs[t];
        threads_[t].fetchPc = programs[t]->entryPc();
    }
}

void
SmtCore::tick()
{
    applySquashes();
    commitStage();
    executeStage();
    issueStage();
    renameStage();
    decodeStage();
    fetchStage();
    sampleOccupancy();
    ++cycle_;
    ++stats_.cycles;
}

// --------------------------------------------------------------------------
// Squash handling
// --------------------------------------------------------------------------

void
SmtCore::applySquashes()
{
    for (unsigned t = 0; t < numThreads_; ++t) {
        ThreadState &ts = threads_[t];
        if (ts.pendingSquash != nullptr && ts.pendingSquashCycle <= cycle_)
        {
            DynInst *branch = ts.pendingSquash;
            ts.pendingSquash = nullptr;
            squashThread(static_cast<ThreadID>(t), branch);
        }
    }
}

void
SmtCore::dropFrontEndYounger(ThreadState &ts, const DynInst *from)
{
    std::uint64_t min_dropped_stream = kNoStreamIdx;
    while (!ts.frontEnd.empty() && ts.frontEnd.back() != from) {
        DynInst *inst = ts.frontEnd.back();
        smt_assert(inst->seq > from->seq);
        ts.frontEnd.pop_back();
        --ts.frontAndQueueCount;
        if (inst->isControl())
            --ts.branchCount;
        if (inst->streamIdx != kNoStreamIdx)
            min_dropped_stream = std::min(min_dropped_stream,
                                          inst->streamIdx);
        pool_.release(inst);
    }
    // Rewind the oracle cursor for any consumed correct-path entries.
    if (min_dropped_stream != kNoStreamIdx) {
        ts.nextStreamIdx = min_dropped_stream;
        ts.onWrongPath = false;
    }
}

void
SmtCore::squashThread(ThreadID tid, DynInst *branch)
{
    ThreadState &ts = threads_[tid];
    smt_assert(!branch->wrongPath,
               "wrong-path instructions never trigger squashes");

    // Drop everything still in the front end (all younger than any
    // renamed instruction of this thread).
    while (!ts.frontEnd.empty()) {
        DynInst *inst = ts.frontEnd.back();
        ts.frontEnd.pop_back();
        --ts.frontAndQueueCount;
        if (inst->isControl())
            --ts.branchCount;
        pool_.release(inst);
    }

    // Unwind the ROB youngest-first down to (not including) the branch.
    std::vector<DynInst *> squashed;
    while (!ts.rob.empty() && ts.rob.back()->seq > branch->seq) {
        DynInst *inst = ts.rob.back();
        ts.rob.pop_back();
        squashed.push_back(inst);

        if (inst->si->dest.valid()) {
            file(inst->si->dest.file)
                .rollback(tid, inst->si->dest.index, inst->destPhys,
                          inst->destPrevPhys);
        }
        if (inst->stage == InstStage::InQueue)
            --ts.frontAndQueueCount;
        if (inst->stage == InstStage::InQueue && inst->isControl())
            --ts.branchCount;
    }

    // Purge the squashed set from every secondary structure.
    if (!squashed.empty()) {
        auto is_squashed = [&](const DynInst *i) {
            return i->tid == tid && i->seq > branch->seq;
        };
        intQueue_.removeIf(is_squashed);
        fpQueue_.removeIf(is_squashed);
        std::erase_if(inFlight_, is_squashed);
        for (auto &[when, bucket] : execAt_) {
            if (when >= cycle_)
                std::erase_if(bucket, is_squashed);
        }
        std::erase_if(ts.unresolvedBranches, is_squashed);
        std::erase_if(ts.pendingStores, is_squashed);
        if (ts.pendingSquash != nullptr &&
            ts.pendingSquash->seq > branch->seq)
            ts.pendingSquash = nullptr;
        for (DynInst *inst : squashed)
            pool_.release(inst);
    }

    // Repair predictor state and restart fetch on the correct path.
    bp_.squashRepair(tid, branch->historySnapshot, branch->actualTaken,
                     branch->rasCheckpoint);
    smt_assert(branch->streamIdx != kNoStreamIdx);
    ts.nextStreamIdx = branch->streamIdx + 1;
    ts.onWrongPath = false;
    ts.fetchPc = branch->actualNextPc;
    ts.fetchReadyAt = std::max(ts.fetchReadyAt,
                               cycle_ + (cfg_.itagEarlyLookup ? 1 : 0));
}

void
SmtCore::releaseInst(DynInst *inst)
{
    ThreadState &ts = threads_[inst->tid];
    if (inst->isControl())
        std::erase(ts.unresolvedBranches, inst);
    if (inst->isStore())
        std::erase(ts.pendingStores, inst);
    pool_.release(inst);
}

// --------------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------------

void
SmtCore::commitStage()
{
    unsigned budget = cfg_.commitWidth;
    for (unsigned i = 0; i < numThreads_ && budget > 0; ++i) {
        const ThreadID tid =
            static_cast<ThreadID>((commitBase_ + i) % numThreads_);
        ThreadState &ts = threads_[tid];
        while (budget > 0 && !ts.rob.empty()) {
            DynInst *inst = ts.rob.front();
            if (inst->stage != InstStage::Executed ||
                inst->completeCycle > cycle_)
                break;
            smt_assert(!inst->wrongPath,
                       "wrong-path instruction reached commit");

            ++stats_.committedInstructions;
            ++stats_.committedPerThread[tid];

            const OpClass op = inst->si->op;
            if (inst->si->isCondBranch()) {
                ++stats_.condBranches;
                if (inst->mispredicted)
                    ++stats_.condBranchMispredicts;
                bp_.resolveCondBranch(tid, inst->pc, inst->historySnapshot,
                                      inst->actualTaken, inst->si->target);
            } else if (op == OpClass::Return ||
                       op == OpClass::IndirectJump) {
                ++stats_.jumps;
                if (inst->mispredicted)
                    ++stats_.jumpMispredicts;
            }

            if (inst->si->dest.valid())
                file(inst->si->dest.file).freeAtCommit(inst->destPrevPhys);

            // The committed instructions of a thread must be exactly the
            // oracle's correct-path stream, in order, gap-free.
            smt_assert(inst->streamIdx == ts.nextCommitStreamIdx,
                       "commit stream gap: expected %llu, got %llu",
                       static_cast<unsigned long long>(
                           ts.nextCommitStreamIdx),
                       static_cast<unsigned long long>(inst->streamIdx));
            ++ts.nextCommitStreamIdx;
            ts.program->retireBefore(inst->streamIdx + 1);

            ts.rob.pop_front();
            releaseInst(inst);
            --budget;
        }
    }
    commitBase_ = (commitBase_ + 1) % numThreads_;
}

// --------------------------------------------------------------------------
// Execute
// --------------------------------------------------------------------------

void
SmtCore::executeStage()
{
    auto it = execAt_.find(cycle_);
    if (it == execAt_.end())
        return;
    // Move the bucket out: execution never schedules into the current
    // cycle, so this container is stable while we work through it.
    std::vector<DynInst *> bucket = std::move(it->second);
    execAt_.erase(it);
    for (DynInst *inst : bucket)
        executeInst(inst);
}

void
SmtCore::executeInst(DynInst *inst)
{
    smt_assert(inst->stage == InstStage::Issued);
    std::erase(inFlight_, inst);

    if (inst->isLoad()) {
        executeLoad(inst);
        return;
    }
    if (inst->isStore()) {
        executeStore(inst);
        return;
    }

    inst->stage = InstStage::Executed;
    const unsigned lat = opLatency(inst->si->op);
    inst->completeCycle = cycle_ + (lat > 0 ? lat - 1 : 0) + commitDelta_;

    if (inst->isControl())
        resolveControl(inst);
}

void
SmtCore::executeLoad(DynInst *inst)
{
    const auto r =
        mem_.dataAccess(inst->tid, inst->memAddr, false, cycle_);
    RegisterFileState &rf = file(inst->si->dest.file);
    const PhysRegIndex dest = inst->destPhys;

    if (r.bankConflict) {
        // Retry from the queue; consumers issued on the optimistic
        // wakeup are squashed.
        inst->stage = InstStage::InQueue;
        inst->iqReleaseCycle = kCycleNever;
        ++threads_[inst->tid].frontAndQueueCount;
        rf.setReadyAt(dest, kCycleNever);
        rf.setUnverifiedUntil(dest, 0);
        requeueDependents(inst->si->dest.file, dest);
        return;
    }

    inst->stage = InstStage::Executed;
    if (r.ready <= cycle_) {
        // D-cache hit: the optimistic wakeup (issue + 1) was correct.
        inst->completeCycle = cycle_ + commitDelta_;
    } else {
        // Miss: push the consumers' issue horizon out to the fill.
        const Cycle consumer_issue =
            std::max<Cycle>(r.ready + 1 > execOffset_
                                ? r.ready + 1 - execOffset_
                                : cycle_ + 1,
                            cycle_ + 1);
        rf.setReadyAt(dest, consumer_issue);
        rf.setUnverifiedUntil(dest, 0);
        requeueDependents(inst->si->dest.file, dest);
        inst->completeCycle = r.ready + commitDelta_;
    }
}

void
SmtCore::executeStore(DynInst *inst)
{
    const auto r = mem_.dataAccess(inst->tid, inst->memAddr, true, cycle_);
    if (r.bankConflict) {
        inst->stage = InstStage::InQueue;
        inst->iqReleaseCycle = kCycleNever;
        ++threads_[inst->tid].frontAndQueueCount;
        return;
    }
    inst->stage = InstStage::Executed;
    // The write-allocate fill (on a miss) completes in the background;
    // the store itself retires without waiting on it.
    inst->completeCycle = cycle_ + commitDelta_;
    std::erase(threads_[inst->tid].pendingStores, inst);
}

void
SmtCore::resolveControl(DynInst *inst)
{
    if (inst->wrongPath) {
        // Wrong-path control resolves as predicted; the originating
        // misprediction's squash will remove it.
        return;
    }

    const OpClass op = inst->si->op;
    bool mispredict = false;
    if (inst->si->isCondBranch()) {
        mispredict = inst->predTaken != inst->actualTaken;
    } else if (op == OpClass::Return || op == OpClass::IndirectJump) {
        mispredict = inst->nextFetchPc != inst->actualNextPc;
        bp_.updateTarget(inst->tid, inst->pc, inst->actualNextPc,
                         op == OpClass::Return);
    }

    if (mispredict) {
        inst->mispredicted = true;
        ThreadState &ts = threads_[inst->tid];
        if (ts.pendingSquash == nullptr ||
            inst->seq < ts.pendingSquash->seq) {
            ts.pendingSquash = inst;
            ts.pendingSquashCycle = cycle_ + 1;
        }
    }
}

void
SmtCore::requeueDependents(RegFile f, PhysRegIndex reg)
{
    // Work-list cascade: any issued-but-unexecuted instruction whose
    // source is no longer ready by its issue cycle was issued on a stale
    // optimistic wakeup and returns to its queue (a wasted issue slot —
    // the "squashed optimistic instruction" of Section 6).
    std::vector<std::pair<RegFile, PhysRegIndex>> work{{f, reg}};
    while (!work.empty()) {
        const auto [wf, wreg] = work.back();
        work.pop_back();
        RegisterFileState &rf = file(wf);
        for (std::size_t i = 0; i < inFlight_.size();) {
            DynInst *inst = inFlight_[i];
            const bool dep1 = inst->si->src1.valid() &&
                              inst->si->src1.file == wf &&
                              inst->src1Phys == wreg;
            const bool dep2 = inst->si->src2.valid() &&
                              inst->si->src2.file == wf &&
                              inst->src2Phys == wreg;
            if ((!dep1 && !dep2) || rf.readyAt(wreg) <= inst->issueCycle) {
                ++i;
                continue;
            }
            // Squash this issue: back to the queue.
            ++stats_.optimisticSquashes;
            inFlight_[i] = inFlight_.back();
            inFlight_.pop_back();
            auto bucket = execAt_.find(inst->issueCycle + execOffset_);
            smt_assert(bucket != execAt_.end());
            std::erase(bucket->second, inst);
            inst->stage = InstStage::InQueue;
            inst->iqReleaseCycle = kCycleNever;
            ++threads_[inst->tid].frontAndQueueCount;
            if (inst->isControl())
                ++threads_[inst->tid].branchCount;
            if (inst->si->dest.valid()) {
                RegisterFileState &drf = file(inst->si->dest.file);
                drf.setReadyAt(inst->destPhys, kCycleNever);
                drf.setUnverifiedUntil(inst->destPhys, 0);
                work.emplace_back(inst->si->dest.file, inst->destPhys);
            }
        }
    }
}

// --------------------------------------------------------------------------
// Issue
// --------------------------------------------------------------------------

bool
SmtCore::operandsReady(const DynInst *inst) const
{
    if (inst->si->src1.valid() &&
        file(inst->si->src1.file).readyAt(inst->src1Phys) > cycle_)
        return false;
    if (inst->si->src2.valid() &&
        file(inst->si->src2.file).readyAt(inst->src2Phys) > cycle_)
        return false;
    return true;
}

bool
SmtCore::isOptimisticNow(const DynInst *inst) const
{
    if (inst->si->src1.valid() &&
        file(inst->si->src1.file).unverifiedUntil(inst->src1Phys) > cycle_)
        return true;
    if (inst->si->src2.valid() &&
        file(inst->si->src2.file).unverifiedUntil(inst->src2Phys) > cycle_)
        return true;
    return false;
}

bool
SmtCore::issueAllowedBySpeculationMode(const DynInst *inst) const
{
    if (cfg_.speculation == SpeculationMode::Full)
        return true;
    const ThreadState &ts = threads_[inst->tid];
    for (const DynInst *br : ts.unresolvedBranches) {
        if (br->seq >= inst->seq)
            continue;
        if (cfg_.speculation == SpeculationMode::NoPassBranch) {
            if (br->stage != InstStage::Executed)
                return false;
        } else { // NoWrongPathIssue
            if (br->stage == InstStage::InQueue ||
                br->stage == InstStage::Fetched ||
                br->stage == InstStage::Decoded)
                return false;
            if (cycle_ < br->issueCycle + 4)
                return false;
        }
    }
    return true;
}

bool
SmtCore::loadDisambiguated(const DynInst *inst) const
{
    const Addr mask = (Addr{1} << cfg_.disambiguationBits) - 1;
    for (const DynInst *st : threads_[inst->tid].pendingStores) {
        if (st->seq < inst->seq && st->stage != InstStage::Executed &&
            (st->memAddr & mask) == (inst->memAddr & mask))
            return false;
    }
    return true;
}

void
SmtCore::collectCandidates(InstructionQueue &queue,
                           std::vector<DynInst *> &out)
{
    // First release the entries whose hold time expired (issued
    // instructions vacate a cycle after issue; optimistically issued
    // ones once verified; loads once their access actually happened).
    queue.removeIf([&](DynInst *i) {
        return i->stage != InstStage::InQueue &&
               i->iqReleaseCycle <= cycle_;
    });

    const std::size_t limit = queue.searchLimit();
    for (std::size_t i = 0; i < limit; ++i) {
        DynInst *inst = queue.at(i);
        if (inst->stage != InstStage::InQueue)
            continue;
        if (inst->renameCycle >= cycle_)
            continue; // entered the queue this cycle.
        if (!issueAllowedBySpeculationMode(inst))
            continue;
        if (inst->isLoad() && !loadDisambiguated(inst))
            continue;
        out.push_back(inst);
    }
}

void
SmtCore::orderCandidates(std::vector<DynInst *> &cands)
{
    switch (cfg_.issuePolicy) {
      case IssuePolicy::OldestFirst:
        std::sort(cands.begin(), cands.end(),
                  [](const DynInst *a, const DynInst *b) {
                      return a->seq < b->seq;
                  });
        break;
      case IssuePolicy::OptLast:
        std::sort(cands.begin(), cands.end(),
                  [this](const DynInst *a, const DynInst *b) {
                      const bool oa = isOptimisticNow(a);
                      const bool ob = isOptimisticNow(b);
                      if (oa != ob)
                          return !oa;
                      return a->seq < b->seq;
                  });
        break;
      case IssuePolicy::SpecLast: {
        auto speculative = [this](const DynInst *inst) {
            for (const DynInst *br :
                 threads_[inst->tid].unresolvedBranches) {
                if (br->seq < inst->seq &&
                    br->stage != InstStage::Executed)
                    return true;
            }
            return false;
        };
        std::sort(cands.begin(), cands.end(),
                  [&](const DynInst *a, const DynInst *b) {
                      const bool sa = speculative(a);
                      const bool sb = speculative(b);
                      if (sa != sb)
                          return !sa;
                      return a->seq < b->seq;
                  });
        break;
      }
      case IssuePolicy::BranchFirst:
        std::sort(cands.begin(), cands.end(),
                  [](const DynInst *a, const DynInst *b) {
                      const bool ca = a->isControl();
                      const bool cb = b->isControl();
                      if (ca != cb)
                          return ca;
                      return a->seq < b->seq;
                  });
        break;
    }
}

void
SmtCore::issueInst(DynInst *inst)
{
    ThreadState &ts = threads_[inst->tid];
    inst->stage = InstStage::Issued;
    inst->issueCycle = cycle_;
    inst->optimistic = isOptimisticNow(inst);

    ++stats_.issuedInstructions;
    if (inst->wrongPath)
        ++stats_.issuedWrongPath;

    Cycle release = cycle_ + 1;
    if (inst->si->dest.valid()) {
        RegisterFileState &rf = file(inst->si->dest.file);
        if (inst->isLoad()) {
            // Optimistic 1-cycle load-use wakeup; verified at execute.
            rf.setReadyAt(inst->destPhys, cycle_ + 1);
            rf.setUnverifiedUntil(inst->destPhys, cycle_ + execOffset_);
        } else {
            rf.setReadyAt(inst->destPhys,
                          cycle_ + opLatency(inst->si->op));
            // Propagate optimism downstream for OPT_LAST/statistics.
            Cycle unv = 0;
            if (inst->si->src1.valid())
                unv = std::max(unv, file(inst->si->src1.file)
                                        .unverifiedUntil(inst->src1Phys));
            if (inst->si->src2.valid())
                unv = std::max(unv, file(inst->si->src2.file)
                                        .unverifiedUntil(inst->src2Phys));
            rf.setUnverifiedUntil(inst->destPhys, unv);
        }
    }
    if (inst->si->isMemory())
        release = cycle_ + execOffset_; // held until the access actually
                                        // happens (bank-conflict retry).
    else if (inst->optimistic)
        release = cycle_ + execOffset_; // held until sources verify.
    inst->iqReleaseCycle = release;

    execAt_[cycle_ + execOffset_].push_back(inst);
    inFlight_.push_back(inst);

    --ts.frontAndQueueCount;
    if (inst->isControl())
        --ts.branchCount;
}

void
SmtCore::issueStage()
{
    const unsigned big = 1u << 20;
    unsigned int_units =
        cfg_.infiniteFunctionalUnits ? big : cfg_.intUnits;
    unsigned ls_units =
        cfg_.infiniteFunctionalUnits ? big : cfg_.loadStoreUnits;
    unsigned fp_units = cfg_.infiniteFunctionalUnits ? big : cfg_.fpUnits;

    std::vector<DynInst *> cands;
    cands.reserve(64);

    collectCandidates(intQueue_, cands);
    orderCandidates(cands);
    for (DynInst *inst : cands) {
        if (int_units == 0)
            break;
        if (inst->si->isMemory() && ls_units == 0)
            continue;
        if (!operandsReady(inst))
            continue;
        --int_units;
        if (inst->si->isMemory())
            --ls_units;
        issueInst(inst);
    }

    cands.clear();
    collectCandidates(fpQueue_, cands);
    orderCandidates(cands);
    for (DynInst *inst : cands) {
        if (fp_units == 0)
            break;
        if (!operandsReady(inst))
            continue;
        --fp_units;
        issueInst(inst);
    }
}

// --------------------------------------------------------------------------
// Rename / dispatch
// --------------------------------------------------------------------------

void
SmtCore::renameStage()
{
    if (intQueue_.full())
        ++stats_.intIQFullCycles;
    if (fpQueue_.full())
        ++stats_.fpIQFullCycles;

    unsigned budget = cfg_.renameWidth;
    bool out_of_regs = false;
    std::array<bool, kMaxThreads> blocked{};

    while (budget > 0) {
        // Pick the globally oldest renameable instruction (age-ordered
        // shared rename bandwidth).
        DynInst *best = nullptr;
        for (unsigned t = 0; t < numThreads_; ++t) {
            if (blocked[t])
                continue;
            ThreadState &ts = threads_[t];
            if (ts.frontEnd.empty())
                continue;
            DynInst *head = ts.frontEnd.front();
            if (head->stage != InstStage::Decoded ||
                head->decodeCycle >= cycle_)
                continue;
            if (best == nullptr || head->seq < best->seq)
                best = head;
        }
        if (best == nullptr)
            break;

        ThreadState &ts = threads_[best->tid];
        InstructionQueue &q =
            best->si->usesFpQueue() ? fpQueue_ : intQueue_;
        if (q.full()) {
            blocked[best->tid] = true;
            ++stats_.fetchBlockedIQFull;
            continue;
        }
        if (best->si->dest.valid() &&
            !file(best->si->dest.file).hasFree()) {
            blocked[best->tid] = true;
            out_of_regs = true;
            continue;
        }

        // Rename operands against the current map.
        if (best->si->src1.valid())
            best->src1Phys = file(best->si->src1.file)
                                 .lookup(best->tid, best->si->src1.index);
        if (best->si->src2.valid())
            best->src2Phys = file(best->si->src2.file)
                                 .lookup(best->tid, best->si->src2.index);
        if (best->si->dest.valid()) {
            auto [fresh, prev] =
                file(best->si->dest.file)
                    .rename(best->tid, best->si->dest.index);
            best->destPhys = fresh;
            best->destPrevPhys = prev;
        }

        best->stage = InstStage::InQueue;
        best->renameCycle = cycle_;
        best->inIntQueue = &q == &intQueue_;
        q.insert(best);

        ts.frontEnd.pop_front();
        ts.rob.push_back(best);
        if (best->isControl())
            ts.unresolvedBranches.push_back(best);
        if (best->isStore())
            ts.pendingStores.push_back(best);
        --budget;
    }

    if (out_of_regs)
        ++stats_.outOfRegistersCycles;
}

// --------------------------------------------------------------------------
// Decode
// --------------------------------------------------------------------------

void
SmtCore::decodeStage()
{
    unsigned budget = cfg_.decodeWidth;
    std::array<std::size_t, kMaxThreads> idx{};

    while (budget > 0) {
        DynInst *best = nullptr;
        for (unsigned t = 0; t < numThreads_; ++t) {
            ThreadState &ts = threads_[t];
            // Skip past already-decoded entries waiting for rename;
            // decode is in-order, so the next Fetched entry is eligible.
            while (idx[t] < ts.frontEnd.size() &&
                   ts.frontEnd[idx[t]]->stage != InstStage::Fetched)
                ++idx[t];
            if (idx[t] >= ts.frontEnd.size())
                continue;
            DynInst *cand = ts.frontEnd[idx[t]];
            if (cand->fetchCycle >= cycle_)
                continue;
            if (best == nullptr || cand->seq < best->seq)
                best = cand;
        }
        if (best == nullptr)
            break;

        ThreadState &ts = threads_[best->tid];
        best->stage = InstStage::Decoded;
        best->decodeCycle = cycle_;
        ++idx[best->tid];
        --budget;

        // Misfetch detection: decode can compute direct targets, so a
        // predicted-taken direct transfer whose target the BTB did not
        // (or wrongly) supply redirects fetch here (2-cycle penalty).
        const OpClass op = best->si->op;
        const bool direct_taken =
            (op == OpClass::Jump || op == OpClass::Call ||
             (best->si->isCondBranch() && best->predTaken));
        if (direct_taken) {
            const Addr expected = best->si->target;
            if (best->nextFetchPc != expected) {
                ++stats_.misfetches;
                dropFrontEndYounger(ts, best);
                bp_.misfetchRepair(best->tid, *best->si, best->pc,
                                   best->historySnapshot, best->predTaken,
                                   best->rasCheckpoint);
                best->nextFetchPc = expected;
                ts.fetchPc = expected;
                ts.fetchReadyAt =
                    std::max(ts.fetchReadyAt,
                             cycle_ + 1 + (cfg_.itagEarlyLookup ? 1 : 0));
                if (!best->wrongPath) {
                    ts.nextStreamIdx = best->streamIdx + 1;
                    ts.onWrongPath = false;
                }
            }
            bp_.updateTarget(best->tid, best->pc, expected, false);
        }
    }
}

// --------------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------------

double
SmtCore::fetchPriorityKey(ThreadID tid)
{
    ThreadState &ts = threads_[tid];
    switch (cfg_.fetchPolicy) {
      case FetchPolicy::RoundRobin:
        return 0.0;
      case FetchPolicy::BrCount:
        return static_cast<double>(ts.branchCount);
      case FetchPolicy::MissCount:
        return static_cast<double>(mem_.outstandingDMisses(tid, cycle_));
      case FetchPolicy::ICount:
        return static_cast<double>(ts.frontAndQueueCount);
      case FetchPolicy::IQPosn: {
        std::size_t pos_int[kMaxThreads];
        std::size_t pos_fp[kMaxThreads];
        intQueue_.oldestPositions(pos_int);
        fpQueue_.oldestPositions(pos_fp);
        const std::size_t closest = std::min(pos_int[tid], pos_fp[tid]);
        // Instructions near a queue head mean low priority.
        return -static_cast<double>(closest);
      }
    }
    return 0.0;
}

void
SmtCore::selectFetchThreads(std::vector<ThreadID> &out)
{
    struct Cand
    {
        double key;
        unsigned rr;
        ThreadID tid;
    };
    std::vector<Cand> cands;
    cands.reserve(numThreads_);

    for (unsigned t = 0; t < numThreads_; ++t) {
        const ThreadID tid = static_cast<ThreadID>(t);
        ThreadState &ts = threads_[t];
        if (ts.fetchReadyAt > cycle_)
            continue;
        if (ts.frontEnd.size() + cfg_.fetchPerThread > frontEndCap_) {
            ++stats_.fetchBlockedIQFull;
            continue;
        }
        if (ts.program->image().at(ts.fetchPc) == nullptr)
            continue; // bogus predicted target; awaiting resolution.
        if (cfg_.itagEarlyLookup && !mem_.icacheWouldHit(ts.fetchPc)) {
            // ITAG: the probe happened a cycle early, so the miss can
            // start now while another thread takes the fetch slot.
            const auto r = mem_.fetchAccess(tid, ts.fetchPc, cycle_);
            if (!r.bankConflict && r.ready > cycle_)
                ts.fetchReadyAt = r.ready;
            continue;
        }
        const unsigned rr = (t + numThreads_ - rrBase_) % numThreads_;
        cands.push_back({fetchPriorityKey(tid), rr, tid});
    }

    std::sort(cands.begin(), cands.end(), [](const Cand &a, const Cand &b) {
        if (a.key != b.key)
            return a.key < b.key;
        return a.rr < b.rr;
    });

    // Take up to fetchThreads threads, skipping I-cache bank conflicts
    // against already chosen ones.
    std::vector<unsigned> banks;
    for (const Cand &c : cands) {
        if (out.size() >= cfg_.fetchThreads)
            break;
        const unsigned bank = mem_.icacheBank(threads_[c.tid].fetchPc);
        if (std::find(banks.begin(), banks.end(), bank) != banks.end())
            continue;
        banks.push_back(bank);
        out.push_back(c.tid);
    }
}

DynInst *
SmtCore::buildInst(ThreadState &ts, ThreadID tid, Addr pc)
{
    const StaticInst *si = ts.program->image().at(pc);
    smt_assert(si != nullptr);

    DynInst *inst = pool_.alloc();
    inst->seq = nextSeq_++;
    inst->tid = tid;
    inst->pc = pc;
    inst->si = si;
    inst->fetchCycle = cycle_;

    if (!ts.onWrongPath) {
        const OracleEntry &e = ts.program->entryAt(ts.nextStreamIdx);
        if (e.pc == pc) {
            inst->streamIdx = ts.nextStreamIdx++;
            inst->actualTaken = e.taken;
            inst->actualNextPc = e.nextPc;
            inst->memAddr = e.memAddr;
        } else {
            ts.onWrongPath = true;
        }
    }
    if (inst->streamIdx == kNoStreamIdx) {
        inst->wrongPath = true;
        if (si->isMemory())
            inst->memAddr =
                ts.program->image().wrongPathMemAddr(*si, inst->seq);
    }
    return inst;
}

unsigned
SmtCore::fetchFromThread(ThreadID tid, unsigned max_insts)
{
    ThreadState &ts = threads_[tid];
    Addr pc = ts.fetchPc;
    // The fetch block: up to the end of the aligned 8-instruction
    // (32-byte) group the PC falls in — the output-bus granularity.
    const Addr block_end = (pc & ~Addr{31}) + 32;
    unsigned fetched = 0;

    while (fetched < max_insts && pc < block_end) {
        const StaticInst *si = ts.program->image().at(pc);
        if (si == nullptr)
            break;
        DynInst *inst = buildInst(ts, tid, pc);
        bool stop = false;

        if (si->isControl()) {
            const FetchPrediction fp =
                bp_.predict(tid, pc, *si, inst->actualTaken,
                            inst->actualNextPc);
            inst->predTaken = fp.predTaken;
            inst->historySnapshot = fp.historySnapshot;
            inst->rasCheckpoint = fp.rasCheckpoint;
            Addr next = pc + kInstBytes;
            if (fp.predTaken && fp.predTarget != kNoAddr)
                next = fp.predTarget;
            inst->nextFetchPc = next;
            if (inst->wrongPath) {
                // Wrong-path control resolves as it predicted.
                inst->actualTaken = fp.predTaken;
                inst->actualNextPc = next;
            }
            pc = next;
            stop = fp.predTaken; // no fetching past a taken branch.
        } else {
            inst->nextFetchPc = pc + kInstBytes;
            pc += kInstBytes;
        }

        ts.frontEnd.push_back(inst);
        ++ts.frontAndQueueCount;
        if (inst->isControl())
            ++ts.branchCount;
        ++stats_.fetchedInstructions;
        if (inst->wrongPath)
            ++stats_.fetchedWrongPath;
        ++fetched;
        if (stop)
            break;
    }

    ts.fetchPc = pc;
    return fetched;
}

void
SmtCore::fetchStage()
{
    std::vector<ThreadID> selected;
    selectFetchThreads(selected);

    unsigned total = 0;
    for (ThreadID tid : selected) {
        if (total >= cfg_.fetchWidth)
            break;
        ThreadState &ts = threads_[tid];
        const unsigned budget =
            std::min(cfg_.fetchPerThread, cfg_.fetchWidth - total);

        const auto r = mem_.fetchAccess(tid, ts.fetchPc, cycle_);
        if (r.bankConflict)
            continue; // lost the bank to fill traffic this cycle.
        if (r.ready > cycle_) {
            // I-cache (or ITLB) miss: the thread stalls while it fills.
            ts.fetchReadyAt = r.ready;
            continue;
        }
        total += fetchFromThread(tid, budget);
    }

    rrBase_ = (rrBase_ + 1) % numThreads_;
    if (total == 0)
        ++stats_.fetchCyclesIdle;
}

// --------------------------------------------------------------------------
// Invariant checking (tests)
// --------------------------------------------------------------------------

void
SmtCore::validateInvariants() const
{
    // Register conservation: every physical register is exactly one of
    // free, an architectural mapping, or a pending commit-time free held
    // by an in-flight instruction with a destination.
    unsigned in_flight_int = 0;
    unsigned in_flight_fp = 0;
    for (const ThreadState &ts : threads_) {
        InstSeqNum prev_seq = 0;
        for (const DynInst *inst : ts.rob) {
            smt_assert(inst->seq > prev_seq, "ROB not in program order");
            prev_seq = inst->seq;
            if (inst->si->dest.valid()) {
                if (inst->si->dest.file == RegFile::Int)
                    ++in_flight_int;
                else
                    ++in_flight_fp;
            }
        }
        prev_seq = 0;
        for (const DynInst *inst : ts.frontEnd) {
            smt_assert(inst->seq > prev_seq,
                       "front end not in program order");
            prev_seq = inst->seq;
            smt_assert(inst->stage == InstStage::Fetched ||
                       inst->stage == InstStage::Decoded);
        }
    }
    const unsigned arch = kLogRegsPerFile * numThreads_;
    smt_assert(intRegs_.freeCount() + arch + in_flight_int ==
                   intRegs_.physRegs(),
               "integer register leak: %u free + %u arch + %u in-flight "
               "!= %u",
               intRegs_.freeCount(), arch, in_flight_int,
               intRegs_.physRegs());
    smt_assert(fpRegs_.freeCount() + arch + in_flight_fp ==
                   fpRegs_.physRegs(),
               "FP register leak: %u free + %u arch + %u in-flight != %u",
               fpRegs_.freeCount(), arch, in_flight_fp,
               fpRegs_.physRegs());

    smt_assert(intQueue_.size() <= intQueue_.capacity());
    smt_assert(fpQueue_.size() <= fpQueue_.capacity());
}

void
SmtCore::debugDump() const
{
    std::fprintf(stderr, "=== cycle %llu ===\n",
                 static_cast<unsigned long long>(cycle_));
    std::fprintf(stderr, "intQ=%zu fpQ=%zu inFlight=%zu live=%zu\n",
                 intQueue_.size(), fpQueue_.size(), inFlight_.size(),
                 pool_.live());
    auto dump_inst = [&](const char *tag, const DynInst *i) {
        const char *ready1 =
            !i->si->src1.valid()
                ? "-"
                : (file(i->si->src1.file).readyAt(i->src1Phys) <= cycle_
                       ? "rdy"
                       : "wait");
        const char *ready2 =
            !i->si->src2.valid()
                ? "-"
                : (file(i->si->src2.file).readyAt(i->src2Phys) <= cycle_
                       ? "rdy"
                       : "wait");
        std::fprintf(stderr,
                     "  %s seq=%llu t%u pc=%llx op=%s stage=%u wp=%d "
                     "src1=%s src2=%s complete=%llu rel=%llu\n",
                     tag, static_cast<unsigned long long>(i->seq), i->tid,
                     static_cast<unsigned long long>(i->pc),
                     opClassName(i->si->op),
                     static_cast<unsigned>(i->stage), i->wrongPath,
                     ready1, ready2,
                     static_cast<unsigned long long>(i->completeCycle),
                     static_cast<unsigned long long>(i->iqReleaseCycle));
    };
    for (unsigned t = 0; t < numThreads_; ++t) {
        const ThreadState &ts = threads_[t];
        std::fprintf(stderr,
                     "thread %u: fetchPc=%llx readyAt=%llu frontEnd=%zu "
                     "rob=%zu count=%u wrongPath=%d\n",
                     t, static_cast<unsigned long long>(ts.fetchPc),
                     static_cast<unsigned long long>(ts.fetchReadyAt),
                     ts.frontEnd.size(), ts.rob.size(),
                     ts.frontAndQueueCount, ts.onWrongPath);
        if (!ts.rob.empty())
            dump_inst("rob-head", ts.rob.front());
        if (!ts.frontEnd.empty())
            dump_inst("fe-head", ts.frontEnd.front());
    }
    for (std::size_t i = 0; i < intQueue_.size(); ++i)
        dump_inst("intQ", intQueue_.at(i));
    for (std::size_t i = 0; i < fpQueue_.size(); ++i)
        dump_inst("fpQ", fpQueue_.at(i));
}

// --------------------------------------------------------------------------
// Occupancy sampling
// --------------------------------------------------------------------------

void
SmtCore::sampleOccupancy()
{
    stats_.combinedQueuePopulation.sample(intQueue_.size() +
                                          fpQueue_.size());
}

} // namespace smt
