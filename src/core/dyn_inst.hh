/**
 * @file
 * DynInst: one in-flight dynamic instruction.
 *
 * A DynInst is created at fetch and destroyed at commit or squash. It
 * carries the fetch-time prediction state (for repair), the oracle
 * outcome (for resolution), the renamed operands, and per-stage
 * timestamps. All pipeline containers hold raw pointers owned by the
 * core's InstPool.
 */

#ifndef SMT_CORE_DYN_INST_HH
#define SMT_CORE_DYN_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/static_inst.hh"

namespace smt
{

/** Front-to-back progress of a DynInst. */
enum class InstStage : std::uint8_t
{
    Fetched,  ///< in the fetch/decode buffer.
    Decoded,  ///< past decode, awaiting rename.
    InQueue,  ///< renamed and resident in an instruction queue.
    Issued,   ///< selected for issue; in the regread/exec pipeline.
    Executed, ///< finished execute; awaiting in-order commit.
};

/** Sentinel stream index for wrong-path instructions. */
constexpr std::uint64_t kNoStreamIdx =
    std::numeric_limits<std::uint64_t>::max();

/** One dynamic instruction. */
struct DynInst
{
    // ---- Identity ------------------------------------------------------
    InstSeqNum seq = 0;
    ThreadID tid = 0;
    Addr pc = 0;
    const StaticInst *si = nullptr;
    std::uint64_t streamIdx = kNoStreamIdx; ///< oracle index; kNoStreamIdx
                                            ///< on the wrong path.
    bool wrongPath = false;

    // ---- Fetch-time prediction state -------------------------------------
    bool predTaken = false;
    Addr nextFetchPc = 0; ///< where fetch actually continued after this.
    std::uint64_t historySnapshot = 0;
    unsigned rasCheckpoint = 0;

    // ---- Oracle outcome (synthesised for wrong-path instructions) --------
    bool actualTaken = false;
    Addr actualNextPc = 0;
    Addr memAddr = 0;

    // ---- Rename ------------------------------------------------------------
    PhysRegIndex src1Phys = kNoPhysReg;
    PhysRegIndex src2Phys = kNoPhysReg;
    PhysRegIndex destPhys = kNoPhysReg;
    PhysRegIndex destPrevPhys = kNoPhysReg;

    // ---- Status ------------------------------------------------------------
    InstStage stage = InstStage::Fetched;
    Cycle fetchCycle = 0;
    Cycle decodeCycle = 0;
    Cycle renameCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = kCycleNever; ///< commit-eligible from here.
    Cycle iqReleaseCycle = kCycleNever; ///< queue slot vacated from here.
    bool mispredicted = false;  ///< resolved against the prediction.
    bool optimistic = false;    ///< issued on an unverified load result.
    bool inIntQueue = false;    ///< which IQ holds/held it.

    bool isLoad() const { return si->isLoad(); }
    bool isStore() const { return si->isStore(); }
    bool isControl() const { return si->isControl(); }

    /** Reset for pool reuse. */
    void
    reset()
    {
        *this = DynInst{};
    }
};

} // namespace smt

#endif // SMT_CORE_DYN_INST_HH
