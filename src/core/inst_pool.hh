/**
 * @file
 * InstPool: a recycling allocator for DynInst. The simulator creates and
 * destroys millions of dynamic instructions; pooling keeps that off the
 * general-purpose heap and guarantees stable addresses for the raw
 * pointers held by the pipeline containers.
 */

#ifndef SMT_CORE_INST_POOL_HH
#define SMT_CORE_INST_POOL_HH

#include <deque>
#include <vector>

#include "core/dyn_inst.hh"

namespace smt
{

/** Recycling DynInst allocator with stable addresses. */
class InstPool
{
  public:
    DynInst *
    alloc()
    {
        if (free_.empty()) {
            storage_.emplace_back();
            return &storage_.back();
        }
        DynInst *inst = free_.back();
        free_.pop_back();
        return inst;
    }

    void
    release(DynInst *inst)
    {
        inst->reset();
        free_.push_back(inst);
    }

    std::size_t allocated() const { return storage_.size(); }
    std::size_t live() const { return storage_.size() - free_.size(); }

  private:
    std::deque<DynInst> storage_; ///< deque: stable element addresses.
    std::vector<DynInst *> free_;
};

} // namespace smt

#endif // SMT_CORE_INST_POOL_HH
