#include "core/pipeline_state.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/pipe_trace.hh"

namespace smt
{

PipelineState::PipelineState(const SmtConfig &config,
                             MemoryHierarchy &memory,
                             BranchPredictor &branch_pred,
                             SimStats &sim_stats)
    : cfg(config), mem(memory), bp(branch_pred), stats(sim_stats),
      numThreads(config.numThreads),
      execOffset(config.longRegisterPipeline ? 3 : 2),
      commitDelta(config.longRegisterPipeline ? 2 : 1),
      frontEndCap(config.decodeWidth + config.renameWidth),
      intRegs(config.numThreads, config.physRegsPerFile()),
      fpRegs(config.numThreads, config.physRegsPerFile()),
      intQueue(config.intQueueEntries, config.iqSearchWindow),
      fpQueue(config.fpQueueEntries, config.iqSearchWindow)
{
    smt_assert(numThreads <= kMaxThreads,
               "numThreads (%u) exceeds kMaxThreads (%u)", numThreads,
               kMaxThreads);
    threads.resize(numThreads);
}

bool
PipelineState::operandsReady(const DynInst *inst) const
{
    if (inst->si->src1.valid() &&
        file(inst->si->src1.file).readyAt(inst->src1Phys) > cycle)
        return false;
    if (inst->si->src2.valid() &&
        file(inst->si->src2.file).readyAt(inst->src2Phys) > cycle)
        return false;
    return true;
}

bool
PipelineState::isOptimisticNow(const DynInst *inst) const
{
    if (inst->si->src1.valid() &&
        file(inst->si->src1.file).unverifiedUntil(inst->src1Phys) > cycle)
        return true;
    if (inst->si->src2.valid() &&
        file(inst->si->src2.file).unverifiedUntil(inst->src2Phys) > cycle)
        return true;
    return false;
}

void
PipelineState::releaseInst(DynInst *inst)
{
    ThreadState &ts = threads[inst->tid];
    if (inst->isControl())
        std::erase(ts.unresolvedBranches, inst);
    if (inst->isStore())
        std::erase(ts.pendingStores, inst);
    pool.release(inst);
}

void
PipelineState::dropFrontEndYounger(ThreadState &ts, const DynInst *from)
{
    std::uint64_t min_dropped_stream = kNoStreamIdx;
    while (!ts.frontEnd.empty() && ts.frontEnd.back() != from) {
        DynInst *inst = ts.frontEnd.back();
        smt_assert(inst->seq > from->seq);
        ts.frontEnd.pop_back();
        --frontAndQueueCount[inst->tid];
        if (inst->isControl())
            --branchCount[inst->tid];
        if (inst->streamIdx != kNoStreamIdx)
            min_dropped_stream = std::min(min_dropped_stream,
                                          inst->streamIdx);
        if (pipe != nullptr)
            pipe->onSquash(*this, inst, "misfetch");
        pool.release(inst);
    }
    // Rewind the oracle cursor for any consumed correct-path entries.
    if (min_dropped_stream != kNoStreamIdx) {
        ts.nextStreamIdx = min_dropped_stream;
        ts.onWrongPath = false;
    }
}

} // namespace smt
