/**
 * @file
 * PipelineState: the machine state shared by every pipeline stage.
 *
 * The SMT core is organised as a set of stage objects (src/core/stages/)
 * that each operate on this one structure. PipelineState owns the
 * per-thread state, the renamed register files, the instruction queues,
 * the in-flight bookkeeping, and the cycle counter; the stages own no
 * state of their own beyond scratch buffers. Helpers that several stages
 * need (register-file selection, operand readiness, instruction release)
 * live here rather than on any single stage.
 */

#ifndef SMT_CORE_PIPELINE_STATE_HH
#define SMT_CORE_PIPELINE_STATE_HH

#include <array>
#include <deque>
#include <vector>

#include "branch/predictor.hh"
#include "config/config.hh"
#include "core/inst_pool.hh"
#include "core/instruction_queue.hh"
#include "core/rename_map.hh"
#include "mem/hierarchy.hh"
#include "stats/stats.hh"
#include "workload/oracle.hh"

namespace smt
{

namespace obs
{
class PipeTrace;
} // namespace obs

/**
 * Per-hardware-context pipeline state.
 *
 * Fields the per-cycle scans read for *every* thread (the ICOUNT /
 * BRCOUNT counters, fetchReadyAt) do not live here: they sit in the
 * structure-of-arrays lanes on PipelineState so a whole-machine scan
 * touches a couple of cache lines instead of striding sizeof(ThreadState).
 */
struct ThreadState
{
    ThreadProgram *program = nullptr;

    Addr fetchPc = 0;
    std::uint64_t nextStreamIdx = 0;
    bool onWrongPath = false;

    /** Fetched but not yet renamed, in order (fetch/decode buffer). */
    std::deque<DynInst *> frontEnd;

    /** Renamed and not yet committed, in order (the thread's ROB). */
    std::deque<DynInst *> rob;

    /** In-flight (renamed, unexecuted) control instructions, used by
     *  the SPEC_LAST policy and the speculation-mode restrictions. */
    std::vector<DynInst *> unresolvedBranches;

    /** In-flight (renamed, unexecuted) stores, for disambiguation. */
    std::vector<DynInst *> pendingStores;

    /** Pending mispredict squash (applied the cycle after exec). */
    DynInst *pendingSquash = nullptr;
    Cycle pendingSquashCycle = 0;

    /** Commit-order check: the stream index the next committed
     *  instruction of this thread must carry. */
    std::uint64_t nextCommitStreamIdx = 0;
};

/** All machine state the pipeline stages operate on. */
struct PipelineState
{
    PipelineState(const SmtConfig &config, MemoryHierarchy &memory,
                  BranchPredictor &branch_pred, SimStats &sim_stats);

    // The containers hold raw DynInst pointers into this object's own
    // pool; a copy would share live instructions with the source.
    PipelineState(const PipelineState &) = delete;
    PipelineState &operator=(const PipelineState &) = delete;

    // ---- Fixed configuration and shared subsystems --------------------
    const SmtConfig &cfg;
    MemoryHierarchy &mem;
    BranchPredictor &bp;
    SimStats &stats;

    unsigned numThreads;
    unsigned execOffset;  ///< issue -> execute distance.
    unsigned commitDelta; ///< execute-end -> commit-eligible distance.
    unsigned frontEndCap; ///< fetch backpressure bound per thread.

    // ---- Machine state -------------------------------------------------
    Cycle cycle = 0;
    InstSeqNum nextSeq = 1;
    InstPool pool;

    std::vector<ThreadState> threads;
    RegisterFileState intRegs;
    RegisterFileState fpRegs;
    InstructionQueue intQueue;
    InstructionQueue fpQueue;

    // ---- Structure-of-arrays hot lanes (one slot per thread) -----------
    // The fetch-priority scan reads these for every thread every cycle
    // (ICOUNT, BRCOUNT, the fetchable test); keeping them contiguous and
    // cache-line-aligned makes that scan touch two lines, not one
    // ThreadState-sized stride per thread.

    /** ICOUNT counter: instructions currently in decode, rename, or an
     *  instruction queue, per thread. */
    alignas(64) std::array<unsigned, kMaxThreads> frontAndQueueCount{};

    /** BRCOUNT counter: unresolved branches in decode/rename/IQ. */
    std::array<unsigned, kMaxThreads> branchCount{};

    /** Thread may not fetch again before this cycle (I-cache miss,
     *  redirect bubble), per thread. */
    std::array<Cycle, kMaxThreads> fetchReadyAt{};

    /**
     * Issued, awaiting execute; bucketed by execute cycle in a ring.
     * Issue only ever schedules `execOffset` (<= 3) cycles ahead, so a
     * small power-of-two ring replaces the per-cycle hash-map node
     * churn of an unordered_map keyed by cycle.
     */
    static constexpr unsigned kExecRingSlots = 8;
    static_assert((kExecRingSlots & (kExecRingSlots - 1)) == 0);
    std::array<std::vector<DynInst *>, kExecRingSlots> execRing;

    /** The execute bucket for cycle `c` (slots recycle every
     *  kExecRingSlots cycles; a slot is always drained before reuse). */
    std::vector<DynInst *> &
    execBucket(Cycle c)
    {
        return execRing[c & (kExecRingSlots - 1)];
    }

    /** Issued-but-not-executed, for optimistic-squash scans. */
    std::vector<DynInst *> inFlight;

    unsigned rrBase = 0;     ///< round-robin rotation for fetch.
    unsigned commitBase = 0; ///< round-robin rotation for commit.

    /**
     * Opt-in pipeline microscope (obs/pipe_trace.hh); null in normal
     * runs. Stages hoist this into a local once per tick and test it
     * before every hook call, so the off cost is a handful of
     * never-taken branches — pinned by the simspeed gate and the
     * cycle-identity tests in tests/test_pipe.cpp.
     */
    obs::PipeTrace *pipe = nullptr;

    // ---- Shared helpers --------------------------------------------------
    RegisterFileState &
    file(RegFile f)
    {
        return f == RegFile::Int ? intRegs : fpRegs;
    }

    const RegisterFileState &
    file(RegFile f) const
    {
        return f == RegFile::Int ? intRegs : fpRegs;
    }

    /** True when both renamed sources are ready this cycle. */
    bool operandsReady(const DynInst *inst) const;

    /** True when a source value still rests on an unverified load hit. */
    bool isOptimisticNow(const DynInst *inst) const;

    /** Return an instruction to the pool, clearing the side lists. */
    void releaseInst(DynInst *inst);

    /**
     * Drop not-yet-renamed instructions younger than `from` from the
     * thread's front end (decode redirect), rewinding the oracle cursor
     * past any consumed correct-path entries.
     */
    void dropFrontEndYounger(ThreadState &ts, const DynInst *from);

    void
    sampleOccupancy()
    {
        stats.combinedQueuePopulation.sample(intQueue.size() +
                                             fpQueue.size());
    }
};

} // namespace smt

#endif // SMT_CORE_PIPELINE_STATE_HH
