#include "core/engine_impl.hh"

#include "config/config.hh"
#include "policy/fetch_policies.hh"
#include "policy/issue_policies.hh"
#include "policy/registry.hh"

namespace smt
{

const char *
StageTimes::stageName(unsigned stage)
{
    switch (stage) {
      case Squash:
        return "squash";
      case Commit:
        return "commit";
      case Execute:
        return "execute";
      case Issue:
        return "issue";
      case Rename:
        return "rename";
      case Decode:
        return "decode";
      case Fetch:
        return "fetch";
      default:
        return "?";
    }
}

std::unique_ptr<CoreEngine>
makeGenericEngine(PipelineState &st, const SmtConfig &cfg)
{
    return std::make_unique<
        CoreEngineT<policy::FetchPolicy, policy::IssuePolicy>>(
        st, policy::makeFetchPolicy(cfg), policy::makeIssuePolicy(cfg));
}

namespace
{

template <typename FP, typename IP>
void
addEngine(policy::PolicyRegistry &reg, const char *fetchName,
          const char *issueName)
{
    reg.registerCoreEngine(
        fetchName, issueName,
        [](PipelineState &st) -> std::unique_ptr<CoreEngine> {
            return std::make_unique<CoreEngineT<FP, IP>>(
                st, std::make_unique<FP>(), std::make_unique<IP>());
        });
}

} // namespace

void
registerBuiltinCoreEngines(policy::PolicyRegistry &reg)
{
    using namespace policy;
    // Every fetch policy the paper sweeps, under the default issue
    // policy (Section 5)...
    addEngine<RoundRobinPolicy, OldestFirstPolicy>(reg, "RR",
                                                   "OLDEST_FIRST");
    addEngine<BrCountPolicy, OldestFirstPolicy>(reg, "BRCOUNT",
                                                "OLDEST_FIRST");
    addEngine<MissCountPolicy, OldestFirstPolicy>(reg, "MISSCOUNT",
                                                  "OLDEST_FIRST");
    addEngine<ICountPolicy, OldestFirstPolicy>(reg, "ICOUNT",
                                               "OLDEST_FIRST");
    addEngine<IQPosnPolicy, OldestFirstPolicy>(reg, "IQPOSN",
                                               "OLDEST_FIRST");
    addEngine<ICountMissCountPolicy, OldestFirstPolicy>(
        reg, "ICOUNT+MISSCOUNT", "OLDEST_FIRST");
    // ...and the issue-policy sweep, run under the winning fetch
    // policy (Section 6).
    addEngine<ICountPolicy, OptLastPolicy>(reg, "ICOUNT", "OPT_LAST");
    addEngine<ICountPolicy, SpecLastPolicy>(reg, "ICOUNT", "SPEC_LAST");
    addEngine<ICountPolicy, BranchFirstPolicy>(reg, "ICOUNT",
                                               "BRANCH_FIRST");
}

// The specialized instantiations (one per registered pair above, plus
// the generic virtual-dispatch engine). Keeping them here — rather
// than implicit in every includer — keeps engine_impl.hh a
// single-translation-unit header.
template class CoreEngineT<policy::FetchPolicy, policy::IssuePolicy>;
template class CoreEngineT<policy::RoundRobinPolicy,
                           policy::OldestFirstPolicy>;
template class CoreEngineT<policy::BrCountPolicy,
                           policy::OldestFirstPolicy>;
template class CoreEngineT<policy::MissCountPolicy,
                           policy::OldestFirstPolicy>;
template class CoreEngineT<policy::ICountPolicy,
                           policy::OldestFirstPolicy>;
template class CoreEngineT<policy::IQPosnPolicy,
                           policy::OldestFirstPolicy>;
template class CoreEngineT<policy::ICountMissCountPolicy,
                           policy::OldestFirstPolicy>;
template class CoreEngineT<policy::ICountPolicy, policy::OptLastPolicy>;
template class CoreEngineT<policy::ICountPolicy, policy::SpecLastPolicy>;
template class CoreEngineT<policy::ICountPolicy,
                           policy::BranchFirstPolicy>;

} // namespace smt
