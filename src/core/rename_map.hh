/**
 * @file
 * RegisterFileState: one renamed physical register file (integer or FP).
 *
 * Thread-private logical registers are mapped onto a completely shared
 * physical file (Section 2): with T contexts the file holds 32*T
 * architectural registers plus the excess renaming registers. The state
 * tracks, per physical register,
 *  - readyAt:  the first cycle a consumer may issue (the paper's
 *    predetermined-latency wakeup — set at the producer's issue);
 *  - unverifiedUntil: the last cycle the value rests on an optimistic
 *    (unverified load-hit) assumption; used by the OPT_LAST issue policy
 *    and the useless-issue statistics.
 */

#ifndef SMT_CORE_RENAME_MAP_HH
#define SMT_CORE_RENAME_MAP_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "config/config.hh"
#include "isa/static_inst.hh"

namespace smt
{

/** A renamed register file shared by all hardware contexts. */
class RegisterFileState
{
  public:
    RegisterFileState(unsigned num_threads, unsigned phys_regs);

    /** Current mapping of a thread's logical register. */
    PhysRegIndex
    lookup(ThreadID tid, LogRegIndex log) const
    {
        return map_[tid][log];
    }

    /** True when a physical register can be allocated. */
    bool hasFree() const { return !freeList_.empty(); }

    unsigned freeCount() const
    {
        return static_cast<unsigned>(freeList_.size());
    }

    /**
     * Allocate a new mapping for (tid, log).
     * @return {newPhys, prevPhys}; caller stores prevPhys in the DynInst
     *         for commit-time free / squash-time rollback.
     */
    std::pair<PhysRegIndex, PhysRegIndex> rename(ThreadID tid,
                                                 LogRegIndex log);

    /** Commit: the previous mapping can never be referenced again. */
    void freeAtCommit(PhysRegIndex prev_phys);

    /** Squash rollback (youngest-first): restore the previous mapping. */
    void rollback(ThreadID tid, LogRegIndex log, PhysRegIndex new_phys,
                  PhysRegIndex prev_phys);

    // ---- Wakeup state -----------------------------------------------------
    Cycle readyAt(PhysRegIndex p) const { return readyAt_[p]; }
    void setReadyAt(PhysRegIndex p, Cycle c) { readyAt_[p] = c; }

    Cycle
    unverifiedUntil(PhysRegIndex p) const
    {
        return unverifiedUntil_[p];
    }

    void
    setUnverifiedUntil(PhysRegIndex p, Cycle c)
    {
        unverifiedUntil_[p] = c;
    }

    unsigned physRegs() const
    {
        return static_cast<unsigned>(readyAt_.size());
    }

  private:
    std::array<std::array<PhysRegIndex, kLogRegsPerFile>, kMaxThreads> map_;
    std::vector<PhysRegIndex> freeList_;
    std::vector<Cycle> readyAt_;
    std::vector<Cycle> unverifiedUntil_;
};

} // namespace smt

#endif // SMT_CORE_RENAME_MAP_HH
