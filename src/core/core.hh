/**
 * @file
 * SmtCore: the simultaneous multithreading pipeline of Section 2.
 *
 * The core is a thin composition root: it owns the shared
 * PipelineState and a CoreEngine (core/engine.hh) that runs the
 * back-to-front stage walk so each stage consumes state the previous
 * cycle produced:
 *   squash-apply -> commit -> execute -> issue -> rename/dispatch ->
 *   decode -> fetch
 *
 * The engine is chosen once at construction. For the paper's
 * registered (fetch, issue) policy pairs, the PolicyRegistry dispatch
 * table supplies a *specialized* engine whose fetch/issue stages are
 * instantiated over the concrete policy classes — the per-thread
 * priorityKey() and per-queue order() calls on the hot path resolve
 * statically. Unknown pairs (plugin policies) take the *generic*
 * engine, the same stage code dispatching through the policy vtables.
 * Both engines are cycle-identical by construction; the golden-stats
 * matrix test pins it.
 *
 * Pipeline shape (Figure 2b): fetch, decode, rename, queue, regread x2,
 * exec, regwrite, commit. An instruction issued at cycle t reaches the
 * execute stage at t + execOffset (3 on the SMT pipeline, 2 on the
 * conventional superscalar pipeline of Figure 2a). Mispredict, misfetch,
 * and misqueue penalties all emerge from the stage distances rather than
 * being hard-coded constants.
 *
 * Wrong paths are fetched, renamed, issued and executed for real, using
 * the actual code image; they are squashed one cycle after the
 * mispredicted branch executes (Section 3).
 */

#ifndef SMT_CORE_CORE_HH
#define SMT_CORE_CORE_HH

#include <memory>
#include <vector>

#include "core/engine.hh"
#include "core/pipeline_state.hh"
#include "policy/fetch_policy.hh"
#include "policy/issue_policy.hh"

namespace smt
{

/** How SmtCore picks its engine. */
enum class CoreDispatch
{
    /** Specialized engine when the registry has one, else generic. */
    Auto,
    /** Always the virtual-dispatch engine (tests, A/B timing). */
    ForceGeneric,
};

/** The SMT processor core. */
class SmtCore
{
  public:
    /**
     * @param programs one oracle per hardware context; size() defines
     *        the live thread count (<= cfg.numThreads).
     */
    SmtCore(const SmtConfig &cfg, MemoryHierarchy &mem,
            BranchPredictor &bp, std::vector<ThreadProgram *> programs,
            SimStats &stats, CoreDispatch dispatch = CoreDispatch::Auto);

    // The engine's stage objects hold references into state_: moving or
    // copying a core would leave them aimed at the source object.
    SmtCore(const SmtCore &) = delete;
    SmtCore &operator=(const SmtCore &) = delete;

    /** Advance the machine one cycle. */
    void
    tick()
    {
        engine_->tick();
        endCycle();
    }

    /** tick() with per-stage wall-clock accumulation (benchmarks). */
    void
    tickTimed(StageTimes &out)
    {
        engine_->tickTimed(out);
        endCycle();
    }

    Cycle cycle() const { return state_.cycle; }

    /** Committed useful instructions so far (all threads). */
    std::uint64_t
    committed() const
    {
        return state_.stats.committedInstructions;
    }

    /** Live in-flight instruction count (liveness checks in tests). */
    std::size_t liveInstructions() const { return state_.pool.live(); }

    /** Pool high-water mark (steady-state allocation audits). */
    std::size_t poolAllocated() const { return state_.pool.allocated(); }

    /** The resolved policy objects (introspection for tests/tools). */
    const policy::FetchPolicy &
    fetchPolicy() const
    {
        return engine_->fetchPolicy();
    }
    const policy::IssuePolicy &
    issuePolicy() const
    {
        return engine_->issuePolicy();
    }

    /** "specialized" or "generic" (introspection for tests/tools). */
    const char *engineKind() const { return engine_->kind(); }

    /** Attach (or with nullptr detach) a pipeline microscope; the
     *  stages consult the pointer, the engine drives its sample
     *  channel. See obs/pipe_trace.hh. */
    void setPipeTrace(obs::PipeTrace *pipe) { state_.pipe = pipe; }

    /**
     * Check structural invariants (register conservation, program-order
     * ROBs, queue capacities). Panics on violation; for tests.
     */
    void validateInvariants() const;

    /** Print a human-readable snapshot of pipeline state to stderr. */
    void debugDump() const;

  private:
    void
    endCycle()
    {
        state_.sampleOccupancy();
        ++state_.cycle;
        ++state_.stats.cycles;
    }

    PipelineState state_;
    std::unique_ptr<CoreEngine> engine_;
};

} // namespace smt

#endif // SMT_CORE_CORE_HH
