/**
 * @file
 * SmtCore: the simultaneous multithreading pipeline of Section 2.
 *
 * The core is a thin composition root: it owns the shared
 * PipelineState, resolves the configured fetch/issue policies through
 * the PolicyRegistry once at construction, and wires up one stage
 * object per pipeline stage (src/core/stages/). tick() is the
 * back-to-front stage walk so each stage consumes state the previous
 * cycle produced:
 *   squash-apply -> commit -> execute -> issue -> rename/dispatch ->
 *   decode -> fetch
 *
 * Pipeline shape (Figure 2b): fetch, decode, rename, queue, regread x2,
 * exec, regwrite, commit. An instruction issued at cycle t reaches the
 * execute stage at t + execOffset (3 on the SMT pipeline, 2 on the
 * conventional superscalar pipeline of Figure 2a). Mispredict, misfetch,
 * and misqueue penalties all emerge from the stage distances rather than
 * being hard-coded constants.
 *
 * Wrong paths are fetched, renamed, issued and executed for real, using
 * the actual code image; they are squashed one cycle after the
 * mispredicted branch executes (Section 3).
 */

#ifndef SMT_CORE_CORE_HH
#define SMT_CORE_CORE_HH

#include <memory>
#include <vector>

#include "core/pipeline_state.hh"
#include "core/stages/commit.hh"
#include "core/stages/decode.hh"
#include "core/stages/execute.hh"
#include "core/stages/fetch.hh"
#include "core/stages/issue.hh"
#include "core/stages/rename_dispatch.hh"
#include "core/stages/squash.hh"
#include "policy/fetch_policy.hh"
#include "policy/issue_policy.hh"

namespace smt
{

/** The SMT processor core. */
class SmtCore
{
  public:
    /**
     * @param programs one oracle per hardware context; size() defines
     *        the live thread count (<= cfg.numThreads).
     */
    SmtCore(const SmtConfig &cfg, MemoryHierarchy &mem,
            BranchPredictor &bp, std::vector<ThreadProgram *> programs,
            SimStats &stats);

    // The stage objects hold references into state_: moving or copying
    // a core would leave them aimed at the source object.
    SmtCore(const SmtCore &) = delete;
    SmtCore &operator=(const SmtCore &) = delete;

    /** Advance the machine one cycle. */
    void tick();

    Cycle cycle() const { return state_.cycle; }

    /** Committed useful instructions so far (all threads). */
    std::uint64_t
    committed() const
    {
        return state_.stats.committedInstructions;
    }

    /** Live in-flight instruction count (liveness checks in tests). */
    std::size_t liveInstructions() const { return state_.pool.live(); }

    /** The resolved policy objects (introspection for tests/tools). */
    const policy::FetchPolicy &fetchPolicy() const { return *fetchPolicy_; }
    const policy::IssuePolicy &issuePolicy() const { return *issuePolicy_; }

    /**
     * Check structural invariants (register conservation, program-order
     * ROBs, queue capacities). Panics on violation; for tests.
     */
    void validateInvariants() const;

    /** Print a human-readable snapshot of pipeline state to stderr. */
    void debugDump() const;

  private:
    PipelineState state_;

    std::unique_ptr<policy::FetchPolicy> fetchPolicy_;
    std::unique_ptr<policy::IssuePolicy> issuePolicy_;

    // Stage objects, declared in tick() order (construction order
    // matters only in that each stage takes state_ by reference).
    SquashStage squash_;
    CommitStage commit_;
    ExecuteStage execute_;
    IssueStage issue_;
    RenameDispatchStage rename_;
    DecodeStage decode_;
    FetchStage fetch_;
};

} // namespace smt

#endif // SMT_CORE_CORE_HH
