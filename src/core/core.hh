/**
 * @file
 * SmtCore: the simultaneous multithreading pipeline of Section 2.
 *
 * Stage order inside tick() runs back-to-front so each stage consumes
 * state the previous cycle produced:
 *   squash-apply -> commit -> execute -> issue -> rename/dispatch ->
 *   decode -> fetch
 *
 * Pipeline shape (Figure 2b): fetch, decode, rename, queue, regread x2,
 * exec, regwrite, commit. An instruction issued at cycle t reaches the
 * execute stage at t + execOffset (3 on the SMT pipeline, 2 on the
 * conventional superscalar pipeline of Figure 2a). Mispredict, misfetch,
 * and misqueue penalties all emerge from the stage distances rather than
 * being hard-coded constants.
 *
 * Wrong paths are fetched, renamed, issued and executed for real, using
 * the actual code image; they are squashed one cycle after the
 * mispredicted branch executes (Section 3).
 */

#ifndef SMT_CORE_CORE_HH
#define SMT_CORE_CORE_HH

#include <array>
#include <deque>
#include <unordered_map>
#include <vector>

#include "branch/predictor.hh"
#include "config/config.hh"
#include "core/inst_pool.hh"
#include "core/instruction_queue.hh"
#include "core/rename_map.hh"
#include "mem/hierarchy.hh"
#include "stats/stats.hh"
#include "workload/oracle.hh"

namespace smt
{

/** The SMT processor core. */
class SmtCore
{
  public:
    /**
     * @param programs one oracle per hardware context; size() defines
     *        the live thread count (<= cfg.numThreads).
     */
    SmtCore(const SmtConfig &cfg, MemoryHierarchy &mem,
            BranchPredictor &bp, std::vector<ThreadProgram *> programs,
            SimStats &stats);

    /** Advance the machine one cycle. */
    void tick();

    Cycle cycle() const { return cycle_; }

    /** Committed useful instructions so far (all threads). */
    std::uint64_t committed() const { return stats_.committedInstructions; }

    /** Live in-flight instruction count (liveness checks in tests). */
    std::size_t liveInstructions() const { return pool_.live(); }

    /**
     * Check structural invariants (register conservation, program-order
     * ROBs, queue capacities). Panics on violation; for tests.
     */
    void validateInvariants() const;

    /** Print a human-readable snapshot of pipeline state to stderr. */
    void debugDump() const;

  private:
    // ---- Per-thread state ---------------------------------------------
    struct ThreadState
    {
        ThreadProgram *program = nullptr;

        Addr fetchPc = 0;
        std::uint64_t nextStreamIdx = 0;
        bool onWrongPath = false;

        /** Thread may not fetch again before this cycle (I-cache miss,
         *  redirect bubble). */
        Cycle fetchReadyAt = 0;

        /** Fetched but not yet renamed, in order (fetch/decode buffer). */
        std::deque<DynInst *> frontEnd;

        /** Renamed and not yet committed, in order (the thread's ROB). */
        std::deque<DynInst *> rob;

        /** In-flight (renamed, unexecuted) control instructions, used by
         *  the SPEC_LAST policy and the speculation-mode restrictions. */
        std::vector<DynInst *> unresolvedBranches;

        /** In-flight (renamed, unexecuted) stores, for disambiguation. */
        std::vector<DynInst *> pendingStores;

        /** ICOUNT / BRCOUNT counters: instructions (branches) currently
         *  in decode, rename, or an instruction queue. */
        unsigned frontAndQueueCount = 0;
        unsigned branchCount = 0;

        /** Pending mispredict squash (applied the cycle after exec). */
        DynInst *pendingSquash = nullptr;
        Cycle pendingSquashCycle = 0;

        /** Commit-order check: the stream index the next committed
         *  instruction of this thread must carry. */
        std::uint64_t nextCommitStreamIdx = 0;
    };

    // ---- Stages ----------------------------------------------------------
    void applySquashes();
    void commitStage();
    void executeStage();
    void issueStage();
    void renameStage();
    void decodeStage();
    void fetchStage();
    void sampleOccupancy();

    // ---- Fetch helpers ----------------------------------------------------
    /** Priority-ordered candidate thread list for this cycle. */
    void selectFetchThreads(std::vector<ThreadID> &out);
    double fetchPriorityKey(ThreadID tid);
    unsigned fetchFromThread(ThreadID tid, unsigned max_insts);
    DynInst *buildInst(ThreadState &ts, ThreadID tid, Addr pc);

    // ---- Issue helpers -------------------------------------------------------
    void collectCandidates(InstructionQueue &queue,
                           std::vector<DynInst *> &out);
    bool operandsReady(const DynInst *inst) const;
    bool issueAllowedBySpeculationMode(const DynInst *inst) const;
    bool loadDisambiguated(const DynInst *inst) const;
    void orderCandidates(std::vector<DynInst *> &cands);
    bool isOptimisticNow(const DynInst *inst) const;
    void issueInst(DynInst *inst);

    // ---- Execute helpers -----------------------------------------------------
    void executeInst(DynInst *inst);
    void executeLoad(DynInst *inst);
    void executeStore(DynInst *inst);
    void resolveControl(DynInst *inst);
    /** Squash issued-but-unexecuted consumers of a register whose ready
     *  time just moved later (optimistic-issue repair; cascades). */
    void requeueDependents(RegFile file, PhysRegIndex reg);

    // ---- Squash / redirect helpers ----------------------------------------
    /** Drop not-yet-renamed younger instructions (decode redirect). */
    void dropFrontEndYounger(ThreadState &ts, const DynInst *from);
    /** Full squash of everything younger than `branch` (mispredict). */
    void squashThread(ThreadID tid, DynInst *branch);
    void releaseInst(DynInst *inst);

    RegisterFileState &file(RegFile f)
    {
        return f == RegFile::Int ? intRegs_ : fpRegs_;
    }

    const RegisterFileState &file(RegFile f) const
    {
        return f == RegFile::Int ? intRegs_ : fpRegs_;
    }

    // ---- Fixed configuration -------------------------------------------------
    const SmtConfig &cfg_;
    MemoryHierarchy &mem_;
    BranchPredictor &bp_;
    SimStats &stats_;

    unsigned numThreads_;
    unsigned execOffset_;  ///< issue -> execute distance.
    unsigned commitDelta_; ///< execute-end -> commit-eligible distance.
    unsigned frontEndCap_; ///< fetch backpressure bound per thread.

    // ---- Machine state ----------------------------------------------------
    Cycle cycle_ = 0;
    InstSeqNum nextSeq_ = 1;
    InstPool pool_;

    std::vector<ThreadState> threads_;
    RegisterFileState intRegs_;
    RegisterFileState fpRegs_;
    InstructionQueue intQueue_;
    InstructionQueue fpQueue_;

    /** Issued, awaiting execute; bucketed by execute cycle. */
    std::unordered_map<Cycle, std::vector<DynInst *>> execAt_;
    /** Issued-but-not-executed, for optimistic-squash scans. */
    std::vector<DynInst *> inFlight_;

    unsigned rrBase_ = 0;     ///< round-robin rotation for fetch.
    unsigned commitBase_ = 0; ///< round-robin rotation for commit.
};

} // namespace smt

#endif // SMT_CORE_CORE_HH
