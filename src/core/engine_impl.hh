/**
 * @file
 * CoreEngineT: the one stage-walk implementation behind both engine
 * kinds (see engine.hh).
 *
 * The template parameters are the *static types* the fetch and issue
 * stages see their policy through:
 *
 *  - CoreEngineT<ICountPolicy, OldestFirstPolicy> — the stages hold a
 *    reference to the final concrete class, so priorityKey()/order()
 *    calls devirtualize and inline (the specialized engines);
 *  - CoreEngineT<FetchPolicy, IssuePolicy> — the abstract interfaces,
 *    i.e. the classic virtual-dispatch core (the generic engine).
 *
 * The policy objects are held by unique_ptr only so both cases share
 * one constructor shape; the stages capture `*ptr` as Policy&, which
 * is what decides the dispatch. Explicit instantiations live in
 * engine.cc — this header is only included there and by tests that
 * need the concrete types.
 */

#ifndef SMT_CORE_ENGINE_IMPL_HH
#define SMT_CORE_ENGINE_IMPL_HH

#include <chrono>
#include <type_traits>
#include <utility>

#include "core/engine.hh"
#include "core/pipeline_state.hh"
#include "core/stages/commit.hh"
#include "core/stages/decode.hh"
#include "core/stages/execute.hh"
#include "core/stages/fetch.hh"
#include "core/stages/issue.hh"
#include "core/stages/rename_dispatch.hh"
#include "core/stages/squash.hh"
#include "obs/pipe_trace.hh"
#include "policy/fetch_policy.hh"
#include "policy/issue_policy.hh"

namespace smt
{

template <typename FetchPolicyT, typename IssuePolicyT>
class CoreEngineT final : public CoreEngine
{
  public:
    CoreEngineT(PipelineState &st, std::unique_ptr<FetchPolicyT> fp,
                std::unique_ptr<IssuePolicyT> ip)
        : fetchPolicy_(std::move(fp)), issuePolicy_(std::move(ip)),
          st_(st), squash_(st), commit_(st), execute_(st),
          issue_(st, *issuePolicy_), rename_(st), decode_(st),
          fetch_(st, *fetchPolicy_)
    {
    }

    void
    tick() override
    {
        squash_.tick();
        commit_.tick();
        execute_.tick();
        issue_.tick();
        rename_.tick();
        decode_.tick();
        fetch_.tick();
        // Pipetrace sample channel: after the walk, with `cycle`
        // still naming the tick the stages just executed.
        if (obs::PipeTrace *pipe = st_.pipe)
            pipe->endCycle(st_);
    }

    void
    tickTimed(StageTimes &out) override
    {
        timed<StageTimes::Squash>(out, squash_);
        timed<StageTimes::Commit>(out, commit_);
        timed<StageTimes::Execute>(out, execute_);
        timed<StageTimes::Issue>(out, issue_);
        timed<StageTimes::Rename>(out, rename_);
        timed<StageTimes::Decode>(out, decode_);
        timed<StageTimes::Fetch>(out, fetch_);
        if (obs::PipeTrace *pipe = st_.pipe)
            pipe->endCycle(st_);
    }

    const policy::FetchPolicy &
    fetchPolicy() const override
    {
        return *fetchPolicy_;
    }

    const policy::IssuePolicy &
    issuePolicy() const override
    {
        return *issuePolicy_;
    }

    const char *
    kind() const override
    {
        return kSpecialized ? "specialized" : "generic";
    }

  private:
    static constexpr bool kSpecialized =
        !std::is_same_v<FetchPolicyT, policy::FetchPolicy> ||
        !std::is_same_v<IssuePolicyT, policy::IssuePolicy>;

    template <StageTimes::Stage S, typename StageT>
    static void
    timed(StageTimes &out, StageT &stage)
    {
        const auto t0 = std::chrono::steady_clock::now();
        stage.tick();
        const auto t1 = std::chrono::steady_clock::now();
        out.ns[S] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
    }

    std::unique_ptr<FetchPolicyT> fetchPolicy_;
    std::unique_ptr<IssuePolicyT> issuePolicy_;

    PipelineState &st_;

    // Stage objects, declared in tick() order; each holds a reference
    // to the shared PipelineState.
    SquashStage squash_;
    CommitStage commit_;
    ExecuteStage execute_;
    IssueStage<IssuePolicyT> issue_;
    RenameDispatchStage rename_;
    DecodeStage decode_;
    FetchStage<FetchPolicyT> fetch_;
};

} // namespace smt

#endif // SMT_CORE_ENGINE_IMPL_HH
