/**
 * @file
 * A non-blocking event-loop HTTP/1.1 server.
 *
 * One loop thread multiplexes every connection through poll():
 * accepting, feeding bytes into per-connection incremental request
 * parsers, and streaming responses back out — no thread per
 * connection, so hundreds of concurrent peers cost hundreds of fds,
 * not hundreds of stacks. Each connection is a small state machine:
 *
 *   reading-request -> dispatching -> writing-response
 *        ^  |  (idle keep-alive is reading-request                |
 *        |  v   with an empty parser)                             |
 *        +--<-----------------------------------------------------+
 *
 * Handlers are plain request->response functions that may block
 * (disk I/O, the claim mutex), so they run on a small dispatch pool;
 * completions return to the loop through a wakeup pipe. Handlers are
 * called concurrently — they synchronize their own shared state,
 * exactly as under the old thread-per-connection model.
 *
 * An idle deadline reaps slow and dead clients: a connection must
 * deliver a *complete* request (and drain its response) within the
 * timeout — partial bytes do not extend it, which is what starves
 * slow-loris clients without stalling anyone else. Dispatching
 * connections are never reaped (the handler owns the clock there).
 *
 * The wire behavior is unchanged from the blocking server: same
 * parser grammar (malformed input drops the connection without a
 * response), same keep-alive and Connection: close semantics, same
 * metrics names. stop() is clean and prompt, so tests can start a
 * server on an ephemeral port (port 0 + port()) and tear it down
 * deterministically.
 */

#ifndef SMT_NET_HTTP_SERVER_HH
#define SMT_NET_HTTP_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hh"
#include "net/http.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"

namespace smt::net
{

class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    /**
     * Attach a metrics registry (before start()). The server then
     * maintains `net.connections` / `net.connections.live` /
     * `net.connections.rejected` (over the connection cap),
     * `net.requests`, `net.bytes_in` / `net.bytes_out` (payload
     * bytes in, full serialized response bytes out), and
     * `net.idle_reaped` (connections dropped by the idle deadline).
     */
    void setMetrics(obs::Registry *metrics);

    /**
     * Seconds a connection may sit between complete requests — or
     * take to deliver one, or to drain a response — before the loop
     * reaps it. Partial request bytes do not extend the deadline
     * (the slow-loris defense). <= 0 disables reaping. Default 30.
     * Set before start().
     */
    void setIdleTimeout(double seconds);

    /** Connection cap; peers beyond it are accepted and immediately
     *  closed (counted as rejected). Default 1024. Set before
     *  start(). */
    void setMaxConnections(std::size_t n);

    /** Dispatch-pool width for blocking handlers. Default 4. Set
     *  before start(). */
    void setDispatchThreads(std::size_t n);

    HttpServer() = default;
    ~HttpServer() { stop(); }

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind and start serving. Port 0 binds an ephemeral port (read it
     * back with port()). False with a reason in `error` on failure.
     */
    bool start(const std::string &bind_addr, std::uint16_t port,
               Handler handler, std::string *error = nullptr);

    /** The bound port (valid after a successful start). */
    std::uint16_t port() const { return port_; }

    bool running() const { return running_.load(std::memory_order_acquire); }

    /** Shut down: stop accepting, finish dispatched handlers, drop
     *  every connection, join the loop and pool threads. */
    void stop();

  private:
    using Clock = std::chrono::steady_clock;

    /** One connection's state machine. */
    struct Conn
    {
        enum class State { Reading, Dispatching, Writing };

        Socket sock;
        RequestParser parser;
        State state = State::Reading;
        std::string out;          ///< serialized response being written.
        std::size_t outPos = 0;
        bool closeAfter = false;
        Clock::time_point deadline; ///< idle reap point (Reading/Writing).
    };

    /** A handler's finished work, queued back to the loop. */
    struct Completion
    {
        std::uint64_t id;
        std::string wire;
        bool closeAfter;
    };

    /** Resolved-once instrument slots (null when unattached). */
    struct NetMetrics
    {
        obs::Counter *connections = nullptr;
        obs::Gauge *liveConnections = nullptr;
        obs::Counter *rejectedConnections = nullptr;
        obs::Counter *requests = nullptr;
        obs::Counter *bytesIn = nullptr;
        obs::Counter *bytesOut = nullptr;
        obs::Counter *idleReaped = nullptr;
    };

    void loop();
    void acceptReady();
    void readReady(std::uint64_t id);
    void writeReady(std::uint64_t id);
    void startDispatch(std::uint64_t id, Conn &conn);
    void applyCompletions();
    void reapIdle(Clock::time_point now);
    void closeConn(std::uint64_t id);
    void armIdleDeadline(Conn &conn, Clock::time_point now);

    Handler handler_;
    NetMetrics metrics_;
    Socket listener_;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    double idleTimeout_ = 30.0;
    std::size_t maxConns_ = 1024;
    std::size_t dispatchThreads_ = 4;

    std::thread loopThread_;
    WakeupPipe wake_;
    DispatchPool pool_;

    // Loop-thread-only connection table.
    std::uint64_t nextConn_ = 0;
    std::map<std::uint64_t, Conn> conns_;

    // Handler threads -> loop thread.
    std::mutex doneMu_;
    std::vector<Completion> done_;
};

} // namespace smt::net

#endif // SMT_NET_HTTP_SERVER_HH
