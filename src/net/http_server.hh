/**
 * @file
 * A small blocking HTTP/1.1 server.
 *
 * One accept thread, one thread per live connection, keep-alive until
 * the client closes (or asks to). The handler is a plain function from
 * request to response, called concurrently from connection threads —
 * handlers synchronize their own shared state. stop() is clean and
 * prompt: it closes the listener, shuts down every open connection,
 * and joins all threads, so tests can start a server on an ephemeral
 * port (port 0 + port()) and tear it down deterministically.
 */

#ifndef SMT_NET_HTTP_SERVER_HH
#define SMT_NET_HTTP_SERVER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"

namespace smt::net
{

class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    /**
     * Attach a metrics registry (before start()). The server then
     * maintains `net.connections` / `net.connections.live`,
     * `net.requests`, and `net.bytes_in` / `net.bytes_out` (payload
     * bytes in, full serialized response bytes out).
     */
    void setMetrics(obs::Registry *metrics);

    HttpServer() = default;
    ~HttpServer() { stop(); }

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind and start serving. Port 0 binds an ephemeral port (read it
     * back with port()). False with a reason in `error` on failure.
     */
    bool start(const std::string &bind_addr, std::uint16_t port,
               Handler handler, std::string *error = nullptr);

    /** The bound port (valid after a successful start). */
    std::uint16_t port() const { return port_; }

    bool running() const { return running_; }

    /** Shut down: stop accepting, drop every connection, join. */
    void stop();

  private:
    void acceptLoop();
    void serveConnection(std::uint64_t id);
    void reapFinishedLocked(std::vector<std::thread> &out);

    /** Resolved-once instrument slots (null when unattached). */
    struct NetMetrics
    {
        obs::Counter *connections = nullptr;
        obs::Gauge *liveConnections = nullptr;
        obs::Counter *requests = nullptr;
        obs::Counter *bytesIn = nullptr;
        obs::Counter *bytesOut = nullptr;
    };

    Handler handler_;
    NetMetrics metrics_;
    Socket listener_;
    std::uint16_t port_ = 0;
    bool running_ = false;
    std::thread acceptThread_;

    std::mutex mu_;
    std::uint64_t nextConn_ = 0;
    std::map<std::uint64_t, Socket> connections_;
    std::map<std::uint64_t, std::thread> connThreads_;
    std::vector<std::uint64_t> finished_;
};

} // namespace smt::net

#endif // SMT_NET_HTTP_SERVER_HH
