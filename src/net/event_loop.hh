/**
 * @file
 * Event-loop plumbing for the non-blocking server: a self-pipe that
 * wakes poll() from other threads, and a small fixed pool that runs
 * blocking work (request handlers doing disk I/O or taking the claim
 * mutex) off the loop thread.
 *
 * Both are deliberately tiny and dependency-free; the connection
 * state machines that use them live in http_server.cc. The pool is
 * not sweep::ThreadPool because the net layer sits *below* the sweep
 * layer — store_service links net, so net linking sweep would cycle.
 */

#ifndef SMT_NET_EVENT_LOOP_HH
#define SMT_NET_EVENT_LOOP_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace smt::net
{

/**
 * A self-pipe: notify() from any thread makes the loop's poll() on
 * readFd() return. Notifications coalesce — a full pipe already means
 * "wake up", so the non-blocking write that would block is dropped.
 */
class WakeupPipe
{
  public:
    WakeupPipe() = default;
    ~WakeupPipe() { close(); }

    WakeupPipe(const WakeupPipe &) = delete;
    WakeupPipe &operator=(const WakeupPipe &) = delete;

    bool open(std::string *error = nullptr);
    void close();

    int readFd() const { return fds_[0]; }

    /** Wake the poller (async-signal unsafe; thread-safe). */
    void notify();

    /** Swallow pending wake bytes (loop thread, after poll). */
    void drain();

  private:
    int fds_[2] = {-1, -1};
};

/**
 * A fixed pool of worker threads draining a FIFO of jobs. submit()
 * never blocks (unbounded queue); stop() finishes everything already
 * queued, then joins — a dispatched request always gets its handler
 * run, even across server shutdown.
 */
class DispatchPool
{
  public:
    DispatchPool() = default;
    ~DispatchPool() { stop(); }

    DispatchPool(const DispatchPool &) = delete;
    DispatchPool &operator=(const DispatchPool &) = delete;

    void start(std::size_t threads);
    void stop();

    void submit(std::function<void()> job);

  private:
    void worker();

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> jobs_;
    std::vector<std::thread> threads_;
    bool stopping_ = false;
};

} // namespace smt::net

#endif // SMT_NET_EVENT_LOOP_HH
