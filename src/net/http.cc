#include "net/http.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace smt::net
{

namespace
{

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i]))
            != std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Parse "Name: value" header lines until the blank line. */
bool
readHeaderBlock(BufferedReader &in, Headers &headers)
{
    std::string line;
    for (int count = 0; count < 512; ++count) {
        if (!in.readLine(line))
            return false;
        if (line.empty())
            return true;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return false;
        headers.add(trim(line.substr(0, colon)),
                    trim(line.substr(colon + 1)));
    }
    return false; // absurd header count: treat as malformed.
}

/** Append the chunked-framed body; false on torn/malformed input. */
bool
readChunkedBody(BufferedReader &in, std::string &body,
                std::size_t max_body)
{
    std::string line;
    while (true) {
        if (!in.readLine(line))
            return false;
        // Chunk extensions (";...") are permitted and ignored.
        const std::string size_text = line.substr(0, line.find(';'));
        char *end = nullptr;
        const unsigned long long size =
            std::strtoull(size_text.c_str(), &end, 16);
        if (end == size_text.c_str())
            return false;
        if (size == 0)
            break;
        // Overflow-proof cap check: a chunk header of 2^64-1 must not
        // wrap the sum past max_body.
        if (size > max_body - body.size())
            return false;
        if (!in.readExact(body, size))
            return false;
        if (!in.readLine(line) || !line.empty())
            return false; // chunk data must end with CRLF.
    }
    // Trailers (we ignore their content) up to the final blank line.
    while (true) {
        if (!in.readLine(line))
            return false;
        if (line.empty())
            return true;
    }
}

/** Shared body framing for requests and responses. */
bool
readBody(BufferedReader &in, const Headers &headers, std::string &body,
         std::size_t max_body, bool response_to_eof_ok)
{
    if (iequals(headers.get("Transfer-Encoding"), "chunked"))
        return readChunkedBody(in, body, max_body);
    if (headers.has("Content-Length")) {
        const std::string text = headers.get("Content-Length");
        char *end = nullptr;
        const unsigned long long len =
            std::strtoull(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0' || len > max_body)
            return false;
        return in.readExact(body, len);
    }
    // No framing headers: a request has no body; a response is framed
    // by connection close (pre-keep-alive style).
    if (response_to_eof_ok)
        return in.readToEof(body);
    return true;
}

void
appendChunked(std::string &out, const std::string &body)
{
    // Several moderate chunks rather than one, so peers exercise the
    // real multi-chunk path.
    constexpr std::size_t kChunk = 4096;
    char size_line[32];
    for (std::size_t off = 0; off < body.size(); off += kChunk) {
        const std::size_t n = std::min(kChunk, body.size() - off);
        std::snprintf(size_line, sizeof size_line, "%zx\r\n", n);
        out += size_line;
        out.append(body, off, n);
        out += "\r\n";
    }
    out += "0\r\n\r\n";
}

void
appendHeaders(std::string &out, const Headers &headers,
              std::size_t body_size, bool chunked)
{
    for (const auto &[name, value] : headers.items()) {
        // Framing is ours to emit consistently from the actual body;
        // caller-set framing headers are dropped, not trusted.
        if (iequals(name, "Content-Length")
            || iequals(name, "Transfer-Encoding"))
            continue;
        out += name;
        out += ": ";
        out += value;
        out += "\r\n";
    }
    if (chunked)
        out += "Transfer-Encoding: chunked\r\n";
    else
        out += "Content-Length: " + std::to_string(body_size) + "\r\n";
    out += "\r\n";
}

} // namespace

void
Headers::set(const std::string &name, const std::string &value)
{
    for (auto &[n, v] : items_) {
        if (iequals(n, name)) {
            v = value;
            return;
        }
    }
    items_.emplace_back(name, value);
}

void
Headers::add(const std::string &name, const std::string &value)
{
    items_.emplace_back(name, value);
}

bool
Headers::has(const std::string &name) const
{
    for (const auto &[n, v] : items_) {
        if (iequals(n, name))
            return true;
    }
    return false;
}

std::string
Headers::get(const std::string &name) const
{
    for (const auto &[n, v] : items_) {
        if (iequals(n, name))
            return v;
    }
    return "";
}

const char *
reasonPhrase(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 201:
        return "Created";
    case 204:
        return "No Content";
    case 400:
        return "Bad Request";
    case 401:
        return "Unauthorized";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 409:
        return "Conflict";
    case 411:
        return "Length Required";
    case 413:
        return "Payload Too Large";
    case 415:
        return "Unsupported Media Type";
    case 500:
        return "Internal Server Error";
    default:
        return "Unknown";
    }
}

bool
wantsClose(const Headers &headers)
{
    return iequals(headers.get("Connection"), "close");
}

std::string
serialize(const HttpRequest &req)
{
    std::string out = req.method + " " + req.target + " HTTP/1.1\r\n";
    appendHeaders(out, req.headers, req.body.size(), req.chunked);
    if (req.chunked)
        appendChunked(out, req.body);
    else
        out += req.body;
    return out;
}

std::string
serialize(const HttpResponse &resp)
{
    const std::string reason =
        resp.reason.empty() ? reasonPhrase(resp.status) : resp.reason;
    std::string out =
        "HTTP/1.1 " + std::to_string(resp.status) + " " + reason + "\r\n";
    appendHeaders(out, resp.headers, resp.body.size(), resp.chunked);
    if (resp.chunked)
        appendChunked(out, resp.body);
    else
        out += resp.body;
    return out;
}

bool
readRequest(BufferedReader &in, HttpRequest &out, std::size_t max_body)
{
    std::string line;
    if (!in.readLine(line) || line.empty())
        return false;

    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos)
        return false;
    HttpRequest req;
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (version.rfind("HTTP/1.", 0) != 0 || req.target.empty())
        return false;

    if (!readHeaderBlock(in, req.headers))
        return false;
    if (!readBody(in, req.headers, req.body, max_body,
                  /*response_to_eof_ok=*/false))
        return false;
    out = std::move(req);
    return true;
}

// Mirrors readLine()'s cap: an unterminated run longer than this is
// hostile, not merely slow.
constexpr std::size_t kMaxLineBytes = 64 * 1024;
// Mirrors readHeaderBlock()'s cap on header-block lines.
constexpr int kMaxHeaderLines = 512;

bool
RequestParser::nextLine(std::string &line)
{
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) {
        if (buf_.size() - pos_ > kMaxLineBytes)
            status_ = Status::Error;
        return false;
    }
    std::size_t end = nl;
    if (end > pos_ && buf_[end - 1] == '\r')
        --end;
    line.assign(buf_, pos_, end - pos_);
    pos_ = nl + 1;
    return true;
}

void
RequestParser::enterBodyPhase()
{
    // Framing decision, in readBody()'s order: chunked wins, then a
    // declared length, else a request carries no body.
    if (iequals(req_.headers.get("Transfer-Encoding"), "chunked")) {
        state_ = State::ChunkSize;
        return;
    }
    if (req_.headers.has("Content-Length")) {
        const std::string text = req_.headers.get("Content-Length");
        char *end = nullptr;
        const unsigned long long len =
            std::strtoull(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0' || len > maxBody_) {
            status_ = Status::Error;
            return;
        }
        bodyRemaining_ = static_cast<std::size_t>(len);
        if (bodyRemaining_ == 0) {
            status_ = Status::Complete;
            return;
        }
        state_ = State::FixedBody;
        return;
    }
    status_ = Status::Complete;
}

void
RequestParser::advance()
{
    std::string line;
    while (status_ == Status::NeedMore) {
        switch (state_) {
        case State::RequestLine: {
            if (!nextLine(line))
                return;
            const std::size_t sp1 = line.find(' ');
            const std::size_t sp2 =
                sp1 == std::string::npos ? std::string::npos
                                         : line.find(' ', sp1 + 1);
            if (line.empty() || sp2 == std::string::npos) {
                status_ = Status::Error;
                return;
            }
            req_.method = line.substr(0, sp1);
            req_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
            const std::string version = line.substr(sp2 + 1);
            if (version.rfind("HTTP/1.", 0) != 0 || req_.target.empty()) {
                status_ = Status::Error;
                return;
            }
            state_ = State::Headers;
            headerLines_ = 0;
            break;
        }
        case State::Headers: {
            if (headerLines_ >= kMaxHeaderLines) {
                status_ = Status::Error; // absurd header count.
                return;
            }
            if (!nextLine(line))
                return;
            ++headerLines_;
            if (line.empty()) {
                enterBodyPhase();
                break;
            }
            const std::size_t colon = line.find(':');
            if (colon == std::string::npos) {
                status_ = Status::Error;
                return;
            }
            req_.headers.add(trim(line.substr(0, colon)),
                             trim(line.substr(colon + 1)));
            break;
        }
        case State::FixedBody: {
            const std::size_t avail = buf_.size() - pos_;
            if (avail == 0)
                return;
            const std::size_t take = std::min(avail, bodyRemaining_);
            req_.body.append(buf_, pos_, take);
            pos_ += take;
            bodyRemaining_ -= take;
            if (bodyRemaining_ == 0)
                status_ = Status::Complete;
            break;
        }
        case State::ChunkSize: {
            if (!nextLine(line))
                return;
            // Chunk extensions (";...") are permitted and ignored.
            const std::string size_text =
                line.substr(0, line.find(';'));
            char *end = nullptr;
            const unsigned long long size =
                std::strtoull(size_text.c_str(), &end, 16);
            if (end == size_text.c_str()) {
                status_ = Status::Error;
                return;
            }
            if (size == 0) {
                state_ = State::Trailers;
                break;
            }
            // Overflow-proof cap check, same as readChunkedBody().
            if (size > maxBody_ - req_.body.size()) {
                status_ = Status::Error;
                return;
            }
            bodyRemaining_ = static_cast<std::size_t>(size);
            state_ = State::ChunkData;
            break;
        }
        case State::ChunkData: {
            const std::size_t avail = buf_.size() - pos_;
            if (avail == 0)
                return;
            const std::size_t take = std::min(avail, bodyRemaining_);
            req_.body.append(buf_, pos_, take);
            pos_ += take;
            bodyRemaining_ -= take;
            if (bodyRemaining_ == 0)
                state_ = State::ChunkDataEnd;
            break;
        }
        case State::ChunkDataEnd: {
            if (!nextLine(line))
                return;
            if (!line.empty()) {
                status_ = Status::Error; // chunk data must end in CRLF.
                return;
            }
            state_ = State::ChunkSize;
            break;
        }
        case State::Trailers: {
            if (!nextLine(line))
                return;
            if (line.empty())
                status_ = Status::Complete;
            break;
        }
        }
    }
}

RequestParser::Status
RequestParser::feed(const char *data, std::size_t n)
{
    if (status_ == Status::Error)
        return status_;
    // Compact the consumed prefix before it can grow without bound
    // across a long keep-alive connection.
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    } else if (pos_ > kMaxLineBytes) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, n);
    if (status_ == Status::NeedMore)
        advance();
    return status_;
}

HttpRequest
RequestParser::takeRequest()
{
    smt_assert(status_ == Status::Complete,
               "takeRequest without a complete message");
    HttpRequest out = std::move(req_);
    req_ = HttpRequest();
    buf_.erase(0, pos_);
    pos_ = 0;
    state_ = State::RequestLine;
    status_ = Status::NeedMore;
    bodyRemaining_ = 0;
    headerLines_ = 0;
    advance(); // pipelined bytes may already complete the next one.
    return out;
}

bool
readResponse(BufferedReader &in, HttpResponse &out, bool head_request,
             std::size_t max_body)
{
    std::string line;
    if (!in.readLine(line))
        return false;
    if (line.rfind("HTTP/1.", 0) != 0)
        return false;
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos)
        return false;
    HttpResponse resp;
    char *end = nullptr;
    resp.status =
        static_cast<int>(std::strtol(line.c_str() + sp1 + 1, &end, 10));
    if (resp.status < 100 || resp.status > 599)
        return false;
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 != std::string::npos)
        resp.reason = line.substr(sp2 + 1);

    if (!readHeaderBlock(in, resp.headers))
        return false;
    // HEAD responses and 204/304 never carry a body regardless of
    // their framing headers.
    if (!head_request && resp.status != 204 && resp.status != 304) {
        const bool framed = resp.headers.has("Content-Length")
                            || resp.headers.has("Transfer-Encoding");
        if (!readBody(in, resp.headers, resp.body, max_body,
                      /*response_to_eof_ok=*/!framed
                          && wantsClose(resp.headers)))
            return false;
    }
    out = std::move(resp);
    return true;
}

} // namespace smt::net
