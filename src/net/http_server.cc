#include "net/http_server.hh"

#include <poll.h>

#include <cerrno>

#include "common/logging.hh"

namespace smt::net
{

void
HttpServer::setMetrics(obs::Registry *metrics)
{
    smt_assert(!running(), "attach metrics before start()");
    if (metrics == nullptr) {
        metrics_ = NetMetrics{};
        return;
    }
    metrics_.connections = &metrics->counter("net.connections");
    metrics_.liveConnections = &metrics->gauge("net.connections.live");
    metrics_.rejectedConnections =
        &metrics->counter("net.connections.rejected");
    metrics_.requests = &metrics->counter("net.requests");
    metrics_.bytesIn = &metrics->counter("net.bytes_in");
    metrics_.bytesOut = &metrics->counter("net.bytes_out");
    metrics_.idleReaped = &metrics->counter("net.idle_reaped");
}

void
HttpServer::setIdleTimeout(double seconds)
{
    smt_assert(!running(), "configure before start()");
    idleTimeout_ = seconds;
}

void
HttpServer::setMaxConnections(std::size_t n)
{
    smt_assert(!running(), "configure before start()");
    maxConns_ = n;
}

void
HttpServer::setDispatchThreads(std::size_t n)
{
    smt_assert(!running(), "configure before start()");
    dispatchThreads_ = n == 0 ? 1 : n;
}

bool
HttpServer::start(const std::string &bind_addr, std::uint16_t port,
                  Handler handler, std::string *error)
{
    smt_assert(!running(), "HttpServer started twice");
    listener_ = listenTcp(bind_addr, port, 512, error);
    if (!listener_.valid())
        return false;
    if (!listener_.setNonBlocking()) {
        if (error != nullptr)
            *error = "cannot make listener non-blocking";
        listener_.close();
        return false;
    }
    if (!wake_.open(error)) {
        listener_.close();
        return false;
    }
    port_ = boundPort(listener_);
    handler_ = std::move(handler);
    pool_.start(dispatchThreads_);
    running_.store(true, std::memory_order_release);
    loopThread_ = std::thread([this] { loop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running())
        return;
    running_.store(false, std::memory_order_release);
    wake_.notify();
    loopThread_.join();
    // Finish every handler already dispatched (their completions land
    // in done_ and are discarded with it).
    pool_.stop();
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        done_.clear();
    }
    // Live connections learn of the shutdown by the close itself.
    if (metrics_.liveConnections != nullptr)
        metrics_.liveConnections->add(
            -static_cast<std::int64_t>(conns_.size()));
    conns_.clear();
    listener_.close();
    wake_.close();
}

void
HttpServer::armIdleDeadline(Conn &conn, Clock::time_point now)
{
    if (idleTimeout_ > 0)
        conn.deadline =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(idleTimeout_));
}

void
HttpServer::loop()
{
    std::vector<struct pollfd> pfds;
    std::vector<std::uint64_t> ids; // pfds[i + 2] watches ids[i].

    while (running()) {
        pfds.clear();
        ids.clear();
        pfds.push_back({wake_.readFd(), POLLIN, 0});
        pfds.push_back({listener_.fd(), POLLIN, 0});

        bool have_deadline = false;
        Clock::time_point next_deadline{};
        for (auto &[id, conn] : conns_) {
            short events = 0;
            if (conn.state == Conn::State::Reading)
                events = POLLIN;
            else if (conn.state == Conn::State::Writing)
                events = POLLOUT;
            else
                continue; // Dispatching: the handler owns the clock.
            pfds.push_back({conn.sock.fd(), events, 0});
            ids.push_back(id);
            if (idleTimeout_ > 0
                && (!have_deadline || conn.deadline < next_deadline)) {
                next_deadline = conn.deadline;
                have_deadline = true;
            }
        }

        int timeout_ms = -1;
        if (have_deadline) {
            const auto until = std::chrono::duration_cast<
                std::chrono::milliseconds>(next_deadline
                                           - Clock::now());
            // +1 rounds up so an expired deadline is seen as expired
            // on the wake rather than spinning at 0ms repeatedly.
            timeout_ms = static_cast<int>(
                std::max<long long>(0, until.count() + 1));
        }

        const int n = ::poll(pfds.data(),
                             static_cast<nfds_t>(pfds.size()),
                             timeout_ms);
        if (!running())
            return;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // unrecoverable poll failure.
        }

        if (pfds[0].revents != 0)
            wake_.drain();
        applyCompletions();

        for (std::size_t i = 0; i < ids.size(); ++i) {
            const short revents = pfds[i + 2].revents;
            if (revents == 0)
                continue;
            const std::uint64_t id = ids[i];
            const auto it = conns_.find(id);
            if (it == conns_.end())
                continue; // closed by a completion this iteration.
            if (it->second.state == Conn::State::Reading)
                readReady(id);
            else if (it->second.state == Conn::State::Writing)
                writeReady(id);
        }

        if (pfds[1].revents != 0)
            acceptReady();

        if (idleTimeout_ > 0)
            reapIdle(Clock::now());
    }
}

void
HttpServer::acceptReady()
{
    while (true) {
        Socket conn = acceptConn(listener_);
        if (!conn.valid())
            return; // EAGAIN (drained) or listener gone.
        if (conns_.size() >= maxConns_) {
            // Accept-and-close beats leaving the peer in the backlog
            // forever: it learns immediately and can back off.
            if (metrics_.rejectedConnections != nullptr)
                metrics_.rejectedConnections->inc();
            continue;
        }
        if (!conn.setNonBlocking())
            continue;
        if (metrics_.connections != nullptr) {
            metrics_.connections->inc();
            metrics_.liveConnections->add(1);
        }
        const std::uint64_t id = nextConn_++;
        Conn &c = conns_[id];
        c.sock = std::move(conn);
        c.state = Conn::State::Reading;
        armIdleDeadline(c, Clock::now());
    }
}

void
HttpServer::readReady(std::uint64_t id)
{
    Conn &conn = conns_.at(id);
    char buf[16 * 1024];
    while (true) {
        const long n = conn.sock.recvSome(buf, sizeof buf);
        if (n > 0) {
            const RequestParser::Status st =
                conn.parser.feed(buf, static_cast<std::size_t>(n));
            if (st == RequestParser::Status::Complete) {
                startDispatch(id, conn);
                return;
            }
            if (st == RequestParser::Status::Error) {
                // Malformed input: drop without a response, exactly
                // like the blocking server tearing the connection.
                closeConn(id);
                return;
            }
            continue;
        }
        if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
            closeConn(id); // orderly close, or a real socket error.
            return;
        }
        return; // EAGAIN: the kernel buffer is drained for now.
    }
}

void
HttpServer::startDispatch(std::uint64_t id, Conn &conn)
{
    conn.state = Conn::State::Dispatching;
    HttpRequest req = conn.parser.takeRequest();
    pool_.submit([this, id, req = std::move(req)]() mutable {
        HttpResponse resp = handler_(req);
        const bool close_after =
            wantsClose(req.headers) || wantsClose(resp.headers);
        if (close_after)
            resp.headers.set("Connection", "close");
        std::string wire = serialize(resp);
        if (metrics_.requests != nullptr) {
            metrics_.requests->inc();
            metrics_.bytesIn->inc(req.body.size());
            metrics_.bytesOut->inc(wire.size());
        }
        {
            std::lock_guard<std::mutex> lock(doneMu_);
            done_.push_back({id, std::move(wire), close_after});
        }
        wake_.notify();
    });
}

void
HttpServer::applyCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        batch.swap(done_);
    }
    for (Completion &done : batch) {
        const auto it = conns_.find(done.id);
        if (it == conns_.end())
            continue;
        Conn &conn = it->second;
        conn.out = std::move(done.wire);
        conn.outPos = 0;
        conn.closeAfter = done.closeAfter;
        conn.state = Conn::State::Writing;
        armIdleDeadline(conn, Clock::now());
        // Optimistic immediate write: most responses fit the socket
        // buffer, skipping a poll round trip.
        writeReady(done.id);
    }
}

void
HttpServer::writeReady(std::uint64_t id)
{
    Conn &conn = conns_.at(id);
    while (conn.outPos < conn.out.size()) {
        const long n = conn.sock.sendSome(conn.out.data() + conn.outPos,
                                          conn.out.size() - conn.outPos);
        if (n > 0) {
            conn.outPos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // poll for POLLOUT.
        closeConn(id); // the peer is gone.
        return;
    }

    // Response fully written.
    if (conn.closeAfter) {
        closeConn(id);
        return;
    }
    conn.out.clear();
    conn.outPos = 0;
    const RequestParser::Status st = conn.parser.status();
    if (st == RequestParser::Status::Complete) {
        // A pipelined request was already buffered behind this one.
        startDispatch(id, conn);
        return;
    }
    if (st == RequestParser::Status::Error) {
        closeConn(id);
        return;
    }
    conn.state = Conn::State::Reading; // keep-alive idle.
    armIdleDeadline(conn, Clock::now());
}

void
HttpServer::reapIdle(Clock::time_point now)
{
    for (auto it = conns_.begin(); it != conns_.end();) {
        Conn &conn = it->second;
        if (conn.state != Conn::State::Dispatching
            && now >= conn.deadline) {
            if (metrics_.idleReaped != nullptr)
                metrics_.idleReaped->inc();
            if (metrics_.liveConnections != nullptr)
                metrics_.liveConnections->add(-1);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
HttpServer::closeConn(std::uint64_t id)
{
    if (metrics_.liveConnections != nullptr)
        metrics_.liveConnections->add(-1);
    conns_.erase(id);
}

} // namespace smt::net
