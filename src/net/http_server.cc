#include "net/http_server.hh"

#include "common/logging.hh"

namespace smt::net
{

void
HttpServer::setMetrics(obs::Registry *metrics)
{
    smt_assert(!running_, "attach metrics before start()");
    if (metrics == nullptr) {
        metrics_ = NetMetrics{};
        return;
    }
    metrics_.connections = &metrics->counter("net.connections");
    metrics_.liveConnections = &metrics->gauge("net.connections.live");
    metrics_.requests = &metrics->counter("net.requests");
    metrics_.bytesIn = &metrics->counter("net.bytes_in");
    metrics_.bytesOut = &metrics->counter("net.bytes_out");
}

bool
HttpServer::start(const std::string &bind_addr, std::uint16_t port,
                  Handler handler, std::string *error)
{
    smt_assert(!running_, "HttpServer started twice");
    listener_ = listenTcp(bind_addr, port, 64, error);
    if (!listener_.valid())
        return false;
    port_ = boundPort(listener_);
    handler_ = std::move(handler);
    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_)
        return;
    running_ = false;

    // Closing the listener unblocks accept(); shutting the connection
    // sockets down unblocks their readers without racing fd lifetime
    // (the owning thread still closes its own socket).
    listener_.shutdownBoth();
    listener_.close();
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &[id, sock] : connections_)
            sock.shutdownBoth();
    }
    acceptThread_.join();

    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &[id, t] : connThreads_)
            threads.push_back(std::move(t));
        connThreads_.clear();
        finished_.clear();
    }
    for (std::thread &t : threads)
        t.join();
}

void
HttpServer::reapFinishedLocked(std::vector<std::thread> &out)
{
    for (std::uint64_t id : finished_) {
        auto it = connThreads_.find(id);
        if (it != connThreads_.end()) {
            out.push_back(std::move(it->second));
            connThreads_.erase(it);
        }
    }
    finished_.clear();
}

void
HttpServer::acceptLoop()
{
    while (running_) {
        Socket conn = acceptConn(listener_);
        if (!conn.valid())
            break; // listener closed (stop()) or a fatal accept error.

        if (metrics_.connections != nullptr) {
            metrics_.connections->inc();
            metrics_.liveConnections->add(1);
        }
        std::vector<std::thread> done;
        {
            std::lock_guard<std::mutex> lock(mu_);
            reapFinishedLocked(done);
            const std::uint64_t id = nextConn_++;
            connections_.emplace(id, std::move(conn));
            connThreads_.emplace(
                id, std::thread([this, id] { serveConnection(id); }));
        }
        for (std::thread &t : done)
            t.join();
    }
}

void
HttpServer::serveConnection(std::uint64_t id)
{
    Socket *sock = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = connections_.find(id);
        smt_assert(it != connections_.end());
        sock = &it->second; // node-stable; only this thread erases it.
    }

    BufferedReader reader(*sock);
    while (running_) {
        HttpRequest req;
        if (!readRequest(reader, req))
            break; // closed, torn, or malformed: drop the connection.

        HttpResponse resp = handler_(req);
        const bool close_after =
            wantsClose(req.headers) || wantsClose(resp.headers);
        if (close_after)
            resp.headers.set("Connection", "close");
        const std::string wire = serialize(resp);
        if (metrics_.requests != nullptr) {
            metrics_.requests->inc();
            metrics_.bytesIn->inc(req.body.size());
            metrics_.bytesOut->inc(wire.size());
        }
        if (!sock->sendAll(wire))
            break;
        if (close_after)
            break;
    }

    if (metrics_.liveConnections != nullptr)
        metrics_.liveConnections->add(-1);
    std::lock_guard<std::mutex> lock(mu_);
    connections_.erase(id);
    finished_.push_back(id);
}

} // namespace smt::net
