/**
 * @file
 * A blocking HTTP/1.1 client with keep-alive connection reuse.
 *
 * One HttpClient holds at most one persistent connection to its
 * host:port. request() sends a message and reads the response; when a
 * *reused* connection turns out to be dead (the server timed it out or
 * restarted between requests), it transparently reconnects and retries
 * once — every store operation is idempotent, so the retry is safe. A
 * failure on a fresh connection is reported, not retried.
 */

#ifndef SMT_NET_HTTP_CLIENT_HH
#define SMT_NET_HTTP_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "net/http.hh"
#include "net/socket.hh"

namespace smt::net
{

/** The pieces of an http:// locator. */
struct Url
{
    std::string host;
    std::uint16_t port = 80;
    std::string path = "/"; ///< always at least "/", no trailing "/".
};

/** True when `text` names an HTTP URL ("http://..."). */
bool isHttpUrl(const std::string &text);

/** Parse "http://host[:port][/path]". */
bool parseUrl(const std::string &text, Url &out);

class HttpClient
{
  public:
    HttpClient(std::string host, std::uint16_t port)
        : host_(std::move(host)), port_(port)
    {
    }

    const std::string &host() const { return host_; }
    std::uint16_t port() const { return port_; }

    /**
     * Perform one exchange. Empty optional when the server is
     * unreachable or the exchange tears; the reason is kept in
     * lastError(). Not thread-safe — guard shared clients externally.
     */
    std::optional<HttpResponse> request(const HttpRequest &req);

    const std::string &lastError() const { return error_; }

  private:
    std::optional<HttpResponse> tryOnce(const HttpRequest &req,
                                        bool fresh_connection);

    std::string host_;
    std::uint16_t port_;
    Socket conn_;
    std::string error_;
};

} // namespace smt::net

#endif // SMT_NET_HTTP_CLIENT_HH
