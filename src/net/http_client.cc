#include "net/http_client.hh"

#include <cstdlib>

namespace smt::net
{

bool
isHttpUrl(const std::string &text)
{
    return text.rfind("http://", 0) == 0;
}

bool
parseUrl(const std::string &text, Url &out)
{
    if (!isHttpUrl(text))
        return false;
    std::string rest = text.substr(7);
    if (rest.empty())
        return false;

    Url url;
    const std::size_t slash = rest.find('/');
    std::string authority =
        slash == std::string::npos ? rest : rest.substr(0, slash);
    url.path = slash == std::string::npos ? "/" : rest.substr(slash);
    while (url.path.size() > 1 && url.path.back() == '/')
        url.path.pop_back();

    const std::size_t colon = authority.rfind(':');
    if (colon != std::string::npos) {
        const std::string port_text = authority.substr(colon + 1);
        char *end = nullptr;
        const unsigned long port =
            std::strtoul(port_text.c_str(), &end, 10);
        if (end == port_text.c_str() || *end != '\0' || port == 0
            || port > 65535)
            return false;
        url.port = static_cast<std::uint16_t>(port);
        authority = authority.substr(0, colon);
    }
    if (authority.empty())
        return false;
    url.host = authority;
    out = url;
    return true;
}

std::optional<HttpResponse>
HttpClient::tryOnce(const HttpRequest &req, bool fresh_connection)
{
    if (!conn_.valid()) {
        fresh_connection = true;
        conn_ = connectTcp(host_, port_, &error_);
        if (!conn_.valid())
            return std::nullopt;
    }

    HttpRequest outgoing = req;
    outgoing.headers.set("Host",
                         host_ + ":" + std::to_string(port_));
    if (!conn_.sendAll(serialize(outgoing))) {
        conn_.close();
        error_ = "send failed";
        if (!fresh_connection)
            return tryOnce(req, true); // stale keep-alive: retry once.
        return std::nullopt;
    }

    BufferedReader reader(conn_);
    HttpResponse resp;
    if (!readResponse(reader, resp, req.method == "HEAD")) {
        conn_.close();
        error_ = "connection closed before a complete response";
        if (!fresh_connection)
            return tryOnce(req, true);
        return std::nullopt;
    }
    if (wantsClose(resp.headers))
        conn_.close();
    error_.clear();
    return resp;
}

std::optional<HttpResponse>
HttpClient::request(const HttpRequest &req)
{
    return tryOnce(req, !conn_.valid());
}

} // namespace smt::net
