/**
 * @file
 * Minimal blocking TCP sockets for the net layer.
 *
 * A thin, dependency-free RAII wrapper over POSIX sockets: connect by
 * host name (getaddrinfo), listen on an address/port (port 0 picks an
 * ephemeral port — tests bind there and ask boundPort()), accept, and
 * send/recv helpers that retry short writes and EINTR. All sockets are
 * blocking; the HTTP layer above builds message framing on top of
 * BufferedReader, which owns the read buffer so pipelined bytes are
 * never lost between messages.
 */

#ifndef SMT_NET_SOCKET_HH
#define SMT_NET_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace smt::net
{

/** An owned socket file descriptor (-1 when empty). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Socket &operator=(Socket &&o) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Close now (idempotent). */
    void close();

    /** shutdown(2) both directions — unblocks a peer or a reader in
     *  another thread without racing the fd's lifetime. */
    void shutdownBoth();

    /** Switch the fd to O_NONBLOCK (the event-loop server's mode);
     *  false on fcntl failure. */
    bool setNonBlocking();

    /**
     * Write all of `data`, retrying short writes; SIGPIPE suppressed.
     * False on any error (the connection is unusable afterwards).
     */
    bool sendAll(const void *data, std::size_t len);
    bool sendAll(const std::string &data);

    /** One recv(2); bytes read, 0 on orderly close, -1 on error. */
    long recvSome(void *buf, std::size_t len);

    /**
     * One send(2); bytes written (possibly short) or -1 on error,
     * with errno EAGAIN/EWOULDBLOCK when a non-blocking socket's
     * buffer is full. SIGPIPE suppressed; EINTR retried.
     */
    long sendSome(const void *buf, std::size_t len);

  private:
    int fd_ = -1;
};

/** Connect to host:port (name or numeric). Invalid socket on failure;
 *  `error`, when non-null, receives a human-readable reason. */
Socket connectTcp(const std::string &host, std::uint16_t port,
                  std::string *error = nullptr);

/** Listen on bind_addr:port (port 0 = ephemeral). Invalid socket on
 *  failure. */
Socket listenTcp(const std::string &bind_addr, std::uint16_t port,
                 int backlog, std::string *error = nullptr);

/** The local port a listening socket is bound to (0 on failure). */
std::uint16_t boundPort(const Socket &listener);

/** Accept one connection; invalid socket on error (including the
 *  listener being closed by another thread during shutdown). */
Socket acceptConn(const Socket &listener);

/**
 * A read buffer over a borrowed socket: framing helpers for the HTTP
 * layer. Bytes read past what a caller consumed stay buffered for the
 * next call, so keep-alive connections can carry back-to-back
 * messages.
 */
class BufferedReader
{
  public:
    explicit BufferedReader(Socket &sock) : sock_(sock) {}

    /** Read up to and including "\r\n" (or a bare "\n"); the returned
     *  line excludes the terminator. False on EOF/error with no line. */
    bool readLine(std::string &line, std::size_t max_len = 64 * 1024);

    /** Read exactly `n` bytes into `out` (appended). */
    bool readExact(std::string &out, std::size_t n);

    /** Append everything until EOF to `out`; false on a read error. */
    bool readToEof(std::string &out);

    /** True when buffered bytes are pending (a pipelined message). */
    bool hasBuffered() const { return pos_ < buf_.size(); }

  private:
    bool fill();

    Socket &sock_;
    std::string buf_;
    std::size_t pos_ = 0;
};

} // namespace smt::net

#endif // SMT_NET_SOCKET_HH
