/**
 * @file
 * HTTP/1.1 messages: parse and serialize over blocking sockets.
 *
 * Deliberately the useful subset and nothing more: request line +
 * status line, case-insensitive headers, bodies framed by
 * Content-Length or chunked transfer encoding (both directions), and
 * HTTP/1.1 keep-alive semantics (persistent unless either side says
 * `Connection: close`). No TLS, no compression, no HTTP/2 — the sweep
 * store speaks digest-verified JSON over loopback or a trusted LAN,
 * where this is exactly enough.
 *
 * Reading is tolerant of torn peers (a connection dropped mid-message
 * reads as failure, never a crash or a half-parsed message); writing
 * always emits one complete, correctly framed message.
 */

#ifndef SMT_NET_HTTP_HH
#define SMT_NET_HTTP_HH

#include <string>
#include <utility>
#include <vector>

#include "net/socket.hh"

namespace smt::net
{

/** Ordered header list with case-insensitive lookup. */
class Headers
{
  public:
    void set(const std::string &name, const std::string &value);
    void add(const std::string &name, const std::string &value);
    bool has(const std::string &name) const;
    /** First value of `name`, or "" when absent. */
    std::string get(const std::string &name) const;

    const std::vector<std::pair<std::string, std::string>> &
    items() const
    {
        return items_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> items_;
};

struct HttpRequest
{
    std::string method = "GET";
    std::string target = "/";
    Headers headers;
    std::string body;

    /** Send the body chunked instead of Content-Length framed. */
    bool chunked = false;
};

struct HttpResponse
{
    int status = 200;
    std::string reason; ///< filled from `status` when empty.
    Headers headers;
    std::string body;
    bool chunked = false;

    bool ok() const { return status >= 200 && status < 300; }
};

/** The largest message body either side accepts, declared or
 *  chunked. The store layer's decompression caps reuse this, so a
 *  body cannot be acceptable to one layer and oversized for
 *  another. */
inline constexpr std::size_t kMaxBodyBytes = 256 * 1024 * 1024;

/** The standard reason phrase for a status code ("OK", "Not Found"). */
const char *reasonPhrase(int status);

/** True when this message's `Connection` header asks to drop the
 *  connection after the exchange (HTTP/1.1 defaults to keep-alive). */
bool wantsClose(const Headers &headers);

/** Serialize a complete message (adds Content-Length or chunked
 *  framing; never mutates the input). */
std::string serialize(const HttpRequest &req);
std::string serialize(const HttpResponse &resp);

/**
 * Read one complete message. False on EOF, a torn connection, or a
 * malformed message — the caller must drop the connection. Bodies
 * larger than `max_body` bytes are rejected as malformed.
 */
bool readRequest(BufferedReader &in, HttpRequest &out,
                 std::size_t max_body = kMaxBodyBytes);

/** `head_request` marks the response to a HEAD: framing headers
 *  describe the entity, but no body bytes follow. */
bool readResponse(BufferedReader &in, HttpResponse &out,
                  bool head_request = false,
                  std::size_t max_body = kMaxBodyBytes);

/**
 * Incremental request parser — the event-loop server's front end.
 *
 * feed() bytes exactly as they arrive off a non-blocking socket, in
 * any chunking; the parser consumes them through the same grammar
 * readRequest() accepts (request line, capped header block, bodies
 * framed by Content-Length or chunked encoding with trailers) and
 * reports three-way status: a complete message, need-more-bytes, or
 * malformed. That last distinction is the reason this class exists —
 * the pull-based readRequest() cannot tell a torn stream from a
 * hostile one without blocking for more input. Accept/reject parity
 * with readRequest() is pinned by a property test over generated
 * corpora fed at every chunking.
 *
 * Pipelining: bytes past one complete message stay buffered;
 * takeRequest() hands the message out and immediately resumes on the
 * leftover, so status() afterwards already describes the next one.
 */
class RequestParser
{
  public:
    enum class Status { NeedMore, Complete, Error };

    explicit RequestParser(std::size_t max_body = kMaxBodyBytes)
        : maxBody_(max_body)
    {
    }

    /** Append bytes and advance the machine. Error is sticky; bytes
     *  fed after Complete buffer for the next message. */
    Status feed(const char *data, std::size_t n);

    Status status() const { return status_; }

    /** Bytes buffered beyond what parsed messages consumed. */
    std::size_t bufferedBytes() const { return buf_.size() - pos_; }

    /** Move out the parsed message (status() must be Complete) and
     *  resume parsing any pipelined bytes already buffered. */
    HttpRequest takeRequest();

  private:
    enum class State {
        RequestLine,
        Headers,
        FixedBody,
        ChunkSize,
        ChunkData,
        ChunkDataEnd,
        Trailers,
    };

    /** Extract one terminated line; false = need more bytes (or the
     *  unterminated run blew the line cap, which sets Error). */
    bool nextLine(std::string &line);
    void advance();
    void enterBodyPhase();

    std::size_t maxBody_;
    Status status_ = Status::NeedMore;
    State state_ = State::RequestLine;
    std::string buf_;
    std::size_t pos_ = 0;
    HttpRequest req_;
    std::size_t bodyRemaining_ = 0;
    int headerLines_ = 0;
};

} // namespace smt::net

#endif // SMT_NET_HTTP_HH
