/**
 * @file
 * HTTP/1.1 messages: parse and serialize over blocking sockets.
 *
 * Deliberately the useful subset and nothing more: request line +
 * status line, case-insensitive headers, bodies framed by
 * Content-Length or chunked transfer encoding (both directions), and
 * HTTP/1.1 keep-alive semantics (persistent unless either side says
 * `Connection: close`). No TLS, no compression, no HTTP/2 — the sweep
 * store speaks digest-verified JSON over loopback or a trusted LAN,
 * where this is exactly enough.
 *
 * Reading is tolerant of torn peers (a connection dropped mid-message
 * reads as failure, never a crash or a half-parsed message); writing
 * always emits one complete, correctly framed message.
 */

#ifndef SMT_NET_HTTP_HH
#define SMT_NET_HTTP_HH

#include <string>
#include <utility>
#include <vector>

#include "net/socket.hh"

namespace smt::net
{

/** Ordered header list with case-insensitive lookup. */
class Headers
{
  public:
    void set(const std::string &name, const std::string &value);
    void add(const std::string &name, const std::string &value);
    bool has(const std::string &name) const;
    /** First value of `name`, or "" when absent. */
    std::string get(const std::string &name) const;

    const std::vector<std::pair<std::string, std::string>> &
    items() const
    {
        return items_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> items_;
};

struct HttpRequest
{
    std::string method = "GET";
    std::string target = "/";
    Headers headers;
    std::string body;

    /** Send the body chunked instead of Content-Length framed. */
    bool chunked = false;
};

struct HttpResponse
{
    int status = 200;
    std::string reason; ///< filled from `status` when empty.
    Headers headers;
    std::string body;
    bool chunked = false;

    bool ok() const { return status >= 200 && status < 300; }
};

/** The largest message body either side accepts, declared or
 *  chunked. The store layer's decompression caps reuse this, so a
 *  body cannot be acceptable to one layer and oversized for
 *  another. */
inline constexpr std::size_t kMaxBodyBytes = 256 * 1024 * 1024;

/** The standard reason phrase for a status code ("OK", "Not Found"). */
const char *reasonPhrase(int status);

/** True when this message's `Connection` header asks to drop the
 *  connection after the exchange (HTTP/1.1 defaults to keep-alive). */
bool wantsClose(const Headers &headers);

/** Serialize a complete message (adds Content-Length or chunked
 *  framing; never mutates the input). */
std::string serialize(const HttpRequest &req);
std::string serialize(const HttpResponse &resp);

/**
 * Read one complete message. False on EOF, a torn connection, or a
 * malformed message — the caller must drop the connection. Bodies
 * larger than `max_body` bytes are rejected as malformed.
 */
bool readRequest(BufferedReader &in, HttpRequest &out,
                 std::size_t max_body = kMaxBodyBytes);

/** `head_request` marks the response to a HEAD: framing headers
 *  describe the entity, but no body bytes follow. */
bool readResponse(BufferedReader &in, HttpResponse &out,
                  bool head_request = false,
                  std::size_t max_body = kMaxBodyBytes);

} // namespace smt::net

#endif // SMT_NET_HTTP_HH
