#include "net/event_loop.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace smt::net
{

bool
WakeupPipe::open(std::string *error)
{
    close();
    if (::pipe(fds_) != 0) {
        if (error != nullptr)
            *error = std::string("cannot open wakeup pipe: ")
                     + std::strerror(errno);
        fds_[0] = fds_[1] = -1;
        return false;
    }
    for (const int fd : fds_) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
    return true;
}

void
WakeupPipe::close()
{
    for (int &fd : fds_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

void
WakeupPipe::notify()
{
    if (fds_[1] < 0)
        return;
    const char byte = 1;
    // EAGAIN = the pipe already holds a wake byte; that is enough.
    while (::write(fds_[1], &byte, 1) < 0 && errno == EINTR) {
    }
}

void
WakeupPipe::drain()
{
    if (fds_[0] < 0)
        return;
    char sink[64];
    while (::read(fds_[0], sink, sizeof sink) > 0) {
    }
}

void
DispatchPool::start(std::size_t threads)
{
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
    for (std::size_t i = threads_.size(); i < threads; ++i)
        threads_.emplace_back([this] { worker(); });
}

void
DispatchPool::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
    threads_.clear();
}

void
DispatchPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void
DispatchPool::worker()
{
    while (true) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty())
                return; // stopping, queue drained.
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
    }
}

} // namespace smt::net
