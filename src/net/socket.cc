#include "net/socket.hh"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace smt::net
{

Socket &
Socket::operator=(Socket &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

bool
Socket::setNonBlocking()
{
    if (fd_ < 0)
        return false;
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
Socket::sendAll(const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
Socket::sendAll(const std::string &data)
{
    return sendAll(data.data(), data.size());
}

long
Socket::sendSome(const void *buf, std::size_t len)
{
    while (true) {
        const ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        return static_cast<long>(n);
    }
}

long
Socket::recvSome(void *buf, std::size_t len)
{
    while (true) {
        const ssize_t n = ::recv(fd_, buf, len, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return static_cast<long>(n);
    }
}

Socket
connectTcp(const std::string &host, std::uint16_t port, std::string *error)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;

    struct addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                 &res);
    if (rc != 0) {
        if (error != nullptr)
            *error = std::string("cannot resolve ") + host + ": "
                     + ::gai_strerror(rc);
        return Socket();
    }

    Socket sock;
    std::string last_error = "no addresses";
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = std::strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            sock = Socket(fd);
            break;
        }
        last_error = std::strerror(errno);
        ::close(fd);
    }
    ::freeaddrinfo(res);
    if (!sock.valid() && error != nullptr)
        *error = "cannot connect to " + host + ":" + service + ": "
                 + last_error;
    return sock;
}

Socket
listenTcp(const std::string &bind_addr, std::uint16_t port, int backlog,
          std::string *error)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE | AI_NUMERICHOST;

    struct addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(bind_addr.c_str(), service.c_str(),
                                 &hints, &res);
    if (rc != 0) {
        if (error != nullptr)
            *error = std::string("cannot parse bind address ") + bind_addr
                     + ": " + ::gai_strerror(rc);
        return Socket();
    }

    Socket sock;
    std::string last_error = "no addresses";
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = std::strerror(errno);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0
            && ::listen(fd, backlog) == 0) {
            sock = Socket(fd);
            break;
        }
        last_error = std::strerror(errno);
        ::close(fd);
    }
    ::freeaddrinfo(res);
    if (!sock.valid() && error != nullptr)
        *error = "cannot listen on " + bind_addr + ":" + service + ": "
                 + last_error;
    return sock;
}

std::uint16_t
boundPort(const Socket &listener)
{
    struct sockaddr_storage addr = {};
    socklen_t len = sizeof addr;
    if (::getsockname(listener.fd(),
                      reinterpret_cast<struct sockaddr *>(&addr), &len)
        != 0)
        return 0;
    if (addr.ss_family == AF_INET)
        return ntohs(reinterpret_cast<struct sockaddr_in *>(&addr)
                         ->sin_port);
    if (addr.ss_family == AF_INET6)
        return ntohs(reinterpret_cast<struct sockaddr_in6 *>(&addr)
                         ->sin6_port);
    return 0;
}

Socket
acceptConn(const Socket &listener)
{
    while (true) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return Socket(fd);
        }
        if (errno == EINTR)
            continue;
        return Socket();
    }
}

bool
BufferedReader::fill()
{
    if (pos_ > 0 && pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    }
    char chunk[16 * 1024];
    const long n = sock_.recvSome(chunk, sizeof chunk);
    if (n <= 0)
        return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
    return true;
}

bool
BufferedReader::readLine(std::string &line, std::size_t max_len)
{
    // `searched` counts bytes already scanned *relative to pos_*:
    // fill() may compact the buffer (shifting pos_ to 0), so an
    // absolute scan position would go stale and miss the newline.
    std::size_t searched = 0;
    while (true) {
        const std::size_t nl = buf_.find('\n', pos_ + searched);
        if (nl != std::string::npos) {
            std::size_t end = nl;
            if (end > pos_ && buf_[end - 1] == '\r')
                --end;
            line.assign(buf_, pos_, end - pos_);
            pos_ = nl + 1;
            return true;
        }
        searched = buf_.size() - pos_;
        if (searched > max_len)
            return false; // header line absurdly long: treat as torn.
        if (!fill())
            return false;
    }
}

bool
BufferedReader::readExact(std::string &out, std::size_t n)
{
    while (n > 0) {
        if (pos_ < buf_.size()) {
            const std::size_t take = std::min(n, buf_.size() - pos_);
            out.append(buf_, pos_, take);
            pos_ += take;
            n -= take;
            continue;
        }
        if (!fill())
            return false;
    }
    return true;
}

bool
BufferedReader::readToEof(std::string &out)
{
    out.append(buf_, pos_, buf_.size() - pos_);
    pos_ = buf_.size();
    char chunk[16 * 1024];
    while (true) {
        const long n = sock_.recvSome(chunk, sizeof chunk);
        if (n == 0)
            return true;
        if (n < 0)
            return false;
        out.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace smt::net
