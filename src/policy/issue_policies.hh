/**
 * @file
 * The concrete issue policies of Section 6.
 *
 * Header-visible (like fetch_policies.hh) so the specialized core
 * engines can instantiate the issue stage over a concrete `final`
 * policy type: order() then resolves statically and its comparison
 * lambda inlines into the sort. The PolicyRegistry registers each by
 * name for the generic virtual-dispatch path.
 */

#ifndef SMT_POLICY_ISSUE_POLICIES_HH
#define SMT_POLICY_ISSUE_POLICIES_HH

#include <algorithm>
#include <vector>

#include "core/pipeline_state.hh"
#include "policy/issue_policy.hh"

namespace smt::policy
{

/** OLDEST_FIRST: deepest-in-queue (lowest sequence number) first. */
class OldestFirstPolicy final : public IssuePolicy
{
  public:
    const char *name() const override { return "OLDEST_FIRST"; }

    void
    order(const PipelineState &,
          std::vector<DynInst *> &cands) const override
    {
        // Insertion sort: the ready set is a handful of entries in
        // near-queue (near-seq) order, where this beats introsort
        // every cycle. Sequence numbers are unique, so the result is
        // the same permutation std::sort would produce.
        for (std::size_t i = 1; i < cands.size(); ++i) {
            DynInst *c = cands[i];
            std::size_t j = i;
            while (j > 0 && c->seq < cands[j - 1]->seq) {
                cands[j] = cands[j - 1];
                --j;
            }
            cands[j] = c;
        }
    }
};

/** OPT_LAST: dependents of unverified (optimistic) load hits last. */
class OptLastPolicy final : public IssuePolicy
{
  public:
    const char *name() const override { return "OPT_LAST"; }

    void
    order(const PipelineState &st,
          std::vector<DynInst *> &cands) const override
    {
        std::sort(cands.begin(), cands.end(),
                  [&st](const DynInst *a, const DynInst *b) {
                      const bool oa = st.isOptimisticNow(a);
                      const bool ob = st.isOptimisticNow(b);
                      if (oa != ob)
                          return !oa;
                      return a->seq < b->seq;
                  });
    }
};

/** SPEC_LAST: instructions behind an unresolved same-thread branch
 *  last. */
class SpecLastPolicy final : public IssuePolicy
{
  public:
    const char *name() const override { return "SPEC_LAST"; }

    void
    order(const PipelineState &st,
          std::vector<DynInst *> &cands) const override
    {
        auto speculative = [&st](const DynInst *inst) {
            for (const DynInst *br :
                 st.threads[inst->tid].unresolvedBranches) {
                if (br->seq < inst->seq &&
                    br->stage != InstStage::Executed)
                    return true;
            }
            return false;
        };
        std::sort(cands.begin(), cands.end(),
                  [&](const DynInst *a, const DynInst *b) {
                      const bool sa = speculative(a);
                      const bool sb = speculative(b);
                      if (sa != sb)
                          return !sa;
                      return a->seq < b->seq;
                  });
    }
};

/** BRANCH_FIRST: branches as early as possible. */
class BranchFirstPolicy final : public IssuePolicy
{
  public:
    const char *name() const override { return "BRANCH_FIRST"; }

    void
    order(const PipelineState &,
          std::vector<DynInst *> &cands) const override
    {
        std::sort(cands.begin(), cands.end(),
                  [](const DynInst *a, const DynInst *b) {
                      const bool ca = a->isControl();
                      const bool cb = b->isControl();
                      if (ca != cb)
                          return ca;
                      return a->seq < b->seq;
                  });
    }
};

} // namespace smt::policy

#endif // SMT_POLICY_ISSUE_POLICIES_HH
