/**
 * @file
 * IssuePolicy: the instruction-selection strategy of the issue stage
 * (Section 6 of Tullsen et al., ISCA'96).
 *
 * The issue stage collects the issuable candidates from one instruction
 * queue and asks the policy to order them; issue then walks the ordered
 * list until the functional units are spent. The paper's policies —
 * OLDEST_FIRST, OPT_LAST, SPEC_LAST, BRANCH_FIRST — are implemented
 * here and registered by name in the PolicyRegistry.
 */

#ifndef SMT_POLICY_ISSUE_POLICY_HH
#define SMT_POLICY_ISSUE_POLICY_HH

#include <vector>

#include "common/types.hh"

namespace smt
{

struct DynInst;
struct PipelineState;

namespace policy
{

class PolicyRegistry;

/** Candidate-ordering strategy consulted by the issue stage. */
class IssuePolicy
{
  public:
    virtual ~IssuePolicy() = default;

    /** Registry name, e.g. "OLDEST_FIRST". */
    virtual const char *name() const = 0;

    /** Sort `cands` into issue-priority order (best candidate first). */
    virtual void order(const PipelineState &st,
                       std::vector<DynInst *> &cands) const = 0;
};

/** Install OLDEST_FIRST, OPT_LAST, SPEC_LAST, BRANCH_FIRST into
 *  `reg`. */
void registerBuiltinIssuePolicies(PolicyRegistry &reg);

} // namespace policy
} // namespace smt

#endif // SMT_POLICY_ISSUE_POLICY_HH
