/**
 * @file
 * FetchPolicy: the thread-selection strategy of the fetch unit
 * (Section 5.2 of Tullsen et al., ISCA'96).
 *
 * Each cycle the fetch stage ranks the fetchable threads by
 * priorityKey() (lower key = higher priority; round-robin order breaks
 * ties) and fetches from the best `fetchThreads` of them. The paper's
 * policies — RR, BRCOUNT, MISSCOUNT, ICOUNT, IQPOSN — are implemented
 * here and registered by name in the PolicyRegistry; new policies only
 * need a subclass and a registry entry, never a core change.
 */

#ifndef SMT_POLICY_FETCH_POLICY_HH
#define SMT_POLICY_FETCH_POLICY_HH

#include <vector>

#include "common/types.hh"

namespace smt
{

struct PipelineState;

namespace policy
{

class PolicyRegistry;

/** Thread-priority strategy consulted by the fetch stage. */
class FetchPolicy
{
  public:
    virtual ~FetchPolicy() = default;

    /** Registry name, e.g. "ICOUNT". */
    virtual const char *name() const = 0;

    /**
     * Called once per cycle before any priorityKey() query; policies
     * that rank against whole-machine structures (IQPOSN) precompute
     * here instead of rescanning per candidate thread.
     */
    virtual void beginCycle(const PipelineState &) {}

    /** Priority of `tid` this cycle; lower is fetched first. */
    virtual double priorityKey(const PipelineState &st,
                               ThreadID tid) const = 0;
};

/** Install RR, BRCOUNT, MISSCOUNT, ICOUNT, IQPOSN, and the hybrid
 *  ICOUNT+MISSCOUNT into `reg`. */
void registerBuiltinFetchPolicies(PolicyRegistry &reg);

} // namespace policy
} // namespace smt

#endif // SMT_POLICY_FETCH_POLICY_HH
