#include "policy/registry.hh"

#include <algorithm>

#include "common/logging.hh"
#include "config/config.hh"
#include "core/engine.hh"

namespace smt::policy
{
namespace
{

template <typename Table>
auto
findEntry(Table &table, const std::string &name)
{
    return std::find_if(table.begin(), table.end(),
                        [&](const auto &e) { return e.first == name; });
}

} // namespace

PolicyRegistry::PolicyRegistry()
{
    registerBuiltinFetchPolicies(*this);
    registerBuiltinIssuePolicies(*this);
    // After the policies: registering a policy name evicts engines
    // specialized on it, so order matters here.
    registerBuiltinCoreEngines(*this);
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry reg;
    return reg;
}

void
PolicyRegistry::registerFetchPolicy(std::string name,
                                    FetchPolicyFactory make)
{
    // A specialized engine bakes in the *old* policy's code; once the
    // name means something else, those pairs must take the generic
    // path.
    std::erase_if(engines_, [&](const EngineEntry &e) {
        return e.fetchName == name;
    });
    auto it = findEntry(fetch_, name);
    if (it != fetch_.end())
        it->second = std::move(make);
    else
        fetch_.emplace_back(std::move(name), std::move(make));
}

void
PolicyRegistry::registerIssuePolicy(std::string name,
                                    IssuePolicyFactory make)
{
    std::erase_if(engines_, [&](const EngineEntry &e) {
        return e.issueName == name;
    });
    auto it = findEntry(issue_, name);
    if (it != issue_.end())
        it->second = std::move(make);
    else
        issue_.emplace_back(std::move(name), std::move(make));
}

void
PolicyRegistry::registerCoreEngine(std::string fetchName,
                                   std::string issueName,
                                   CoreEngineFactory make)
{
    for (EngineEntry &e : engines_) {
        if (e.fetchName == fetchName && e.issueName == issueName) {
            e.make = std::move(make);
            return;
        }
    }
    engines_.push_back(EngineEntry{std::move(fetchName),
                                   std::move(issueName),
                                   std::move(make)});
}

const CoreEngineFactory *
PolicyRegistry::findCoreEngine(const std::string &fetchName,
                               const std::string &issueName) const
{
    for (const EngineEntry &e : engines_) {
        if (e.fetchName == fetchName && e.issueName == issueName)
            return &e.make;
    }
    return nullptr;
}

std::vector<std::pair<std::string, std::string>>
PolicyRegistry::coreEngineNames() const
{
    std::vector<std::pair<std::string, std::string>> names;
    names.reserve(engines_.size());
    for (const EngineEntry &e : engines_)
        names.emplace_back(e.fetchName, e.issueName);
    return names;
}

bool
PolicyRegistry::hasFetchPolicy(const std::string &name) const
{
    return findEntry(fetch_, name) != fetch_.end();
}

bool
PolicyRegistry::hasIssuePolicy(const std::string &name) const
{
    return findEntry(issue_, name) != issue_.end();
}

std::unique_ptr<FetchPolicy>
PolicyRegistry::makeFetchPolicy(const std::string &name) const
{
    auto it = findEntry(fetch_, name);
    if (it == fetch_.end())
        smt_fatal("unknown fetch policy \"%s\"", name.c_str());
    return it->second();
}

std::unique_ptr<IssuePolicy>
PolicyRegistry::makeIssuePolicy(const std::string &name) const
{
    auto it = findEntry(issue_, name);
    if (it == issue_.end())
        smt_fatal("unknown issue policy \"%s\"", name.c_str());
    return it->second();
}

std::vector<std::string>
PolicyRegistry::fetchPolicyNames() const
{
    std::vector<std::string> names;
    names.reserve(fetch_.size());
    for (const auto &[name, make] : fetch_)
        names.push_back(name);
    return names;
}

std::vector<std::string>
PolicyRegistry::issuePolicyNames() const
{
    std::vector<std::string> names;
    names.reserve(issue_.size());
    for (const auto &[name, make] : issue_)
        names.push_back(name);
    return names;
}

std::unique_ptr<FetchPolicy>
makeFetchPolicy(const SmtConfig &cfg)
{
    return PolicyRegistry::instance().makeFetchPolicy(
        cfg.resolvedFetchPolicyName());
}

std::unique_ptr<IssuePolicy>
makeIssuePolicy(const SmtConfig &cfg)
{
    return PolicyRegistry::instance().makeIssuePolicy(
        cfg.resolvedIssuePolicyName());
}

} // namespace smt::policy
