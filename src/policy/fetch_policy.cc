#include "policy/fetch_policy.hh"

#include <memory>

#include "policy/fetch_policies.hh"
#include "policy/registry.hh"

namespace smt::policy
{

void
registerBuiltinFetchPolicies(PolicyRegistry &reg)
{
    reg.registerFetchPolicy("RR", [] {
        return std::make_unique<RoundRobinPolicy>();
    });
    reg.registerFetchPolicy("BRCOUNT", [] {
        return std::make_unique<BrCountPolicy>();
    });
    reg.registerFetchPolicy("MISSCOUNT", [] {
        return std::make_unique<MissCountPolicy>();
    });
    reg.registerFetchPolicy("ICOUNT", [] {
        return std::make_unique<ICountPolicy>();
    });
    reg.registerFetchPolicy("IQPOSN", [] {
        return std::make_unique<IQPosnPolicy>();
    });
    reg.registerFetchPolicy("ICOUNT+MISSCOUNT", [] {
        return std::make_unique<ICountMissCountPolicy>();
    });
}

} // namespace smt::policy
