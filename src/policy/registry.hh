/**
 * @file
 * PolicyRegistry: name -> factory registry for fetch and issue
 * policies.
 *
 * The registry decouples policy selection from the core: SmtConfig
 * carries a policy *name* (or the legacy enum, whose toString() is the
 * name), the core resolves it to a strategy object exactly once at
 * construction, and the per-cycle hot paths call virtual methods on the
 * resolved object — no per-candidate switch dispatch.
 *
 * Registering a new policy:
 *
 *   PolicyRegistry::instance().registerFetchPolicy("MYPOLICY", [] {
 *       return std::make_unique<MyPolicy>();
 *   });
 *   cfg.fetchPolicyName = "MYPOLICY";
 *
 * The paper's policies are pre-registered by the registerBuiltin*
 * hooks the first time instance() is called.
 *
 * The registry also carries the *core engine dispatch table*: for
 * (fetch, issue) name pairs it knows, it hands SmtCore a factory for a
 * devirtualized CoreEngine instantiated over the concrete policy
 * classes (see core/engine.hh). Re-registering either policy name
 * drops the pair's specialized entry — a plugin that replaces a
 * builtin policy's behaviour must not keep running the builtin's
 * specialized code — and those configs fall back to the generic
 * virtual-dispatch engine.
 */

#ifndef SMT_POLICY_REGISTRY_HH
#define SMT_POLICY_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "policy/fetch_policy.hh"
#include "policy/issue_policy.hh"

namespace smt
{

struct SmtConfig;
struct PipelineState;
class CoreEngine;

namespace policy
{

using FetchPolicyFactory = std::function<std::unique_ptr<FetchPolicy>()>;
using IssuePolicyFactory = std::function<std::unique_ptr<IssuePolicy>()>;
using CoreEngineFactory =
    std::function<std::unique_ptr<CoreEngine>(PipelineState &)>;

/** Process-wide policy name registry (builtins pre-installed). */
class PolicyRegistry
{
  public:
    static PolicyRegistry &instance();

    /** Register a policy; re-registering a name replaces the factory. */
    void registerFetchPolicy(std::string name, FetchPolicyFactory make);
    void registerIssuePolicy(std::string name, IssuePolicyFactory make);

    bool hasFetchPolicy(const std::string &name) const;
    bool hasIssuePolicy(const std::string &name) const;

    /** Instantiate a policy by name; fatal on an unknown name. */
    std::unique_ptr<FetchPolicy> makeFetchPolicy(
        const std::string &name) const;
    std::unique_ptr<IssuePolicy> makeIssuePolicy(
        const std::string &name) const;

    /** Registered names, in registration order. */
    std::vector<std::string> fetchPolicyNames() const;
    std::vector<std::string> issuePolicyNames() const;

    /**
     * Register a specialized core engine for a (fetch, issue) policy
     * name pair. Later registrations of either *policy* name evict the
     * entry (the specialization would no longer match the policy's
     * behaviour).
     */
    void registerCoreEngine(std::string fetchName, std::string issueName,
                            CoreEngineFactory make);

    /** The specialized-engine factory for a pair, or nullptr. */
    const CoreEngineFactory *findCoreEngine(
        const std::string &fetchName, const std::string &issueName) const;

    /** Registered (fetch, issue) pairs with specialized engines. */
    std::vector<std::pair<std::string, std::string>>
    coreEngineNames() const;

  private:
    PolicyRegistry();

    struct EngineEntry
    {
        std::string fetchName;
        std::string issueName;
        CoreEngineFactory make;
    };

    std::vector<std::pair<std::string, FetchPolicyFactory>> fetch_;
    std::vector<std::pair<std::string, IssuePolicyFactory>> issue_;
    std::vector<EngineEntry> engines_;
};

/** Resolve the policies a config names (enum or override string). */
std::unique_ptr<FetchPolicy> makeFetchPolicy(const SmtConfig &cfg);
std::unique_ptr<IssuePolicy> makeIssuePolicy(const SmtConfig &cfg);

} // namespace policy
} // namespace smt

#endif // SMT_POLICY_REGISTRY_HH
