#include "policy/issue_policy.hh"

#include <algorithm>
#include <memory>

#include "core/pipeline_state.hh"
#include "policy/registry.hh"

namespace smt::policy
{
namespace
{

/** OLDEST_FIRST: deepest-in-queue (lowest sequence number) first. */
class OldestFirstPolicy final : public IssuePolicy
{
  public:
    const char *name() const override { return "OLDEST_FIRST"; }

    void
    order(const PipelineState &,
          std::vector<DynInst *> &cands) const override
    {
        std::sort(cands.begin(), cands.end(),
                  [](const DynInst *a, const DynInst *b) {
                      return a->seq < b->seq;
                  });
    }
};

/** OPT_LAST: dependents of unverified (optimistic) load hits last. */
class OptLastPolicy final : public IssuePolicy
{
  public:
    const char *name() const override { return "OPT_LAST"; }

    void
    order(const PipelineState &st,
          std::vector<DynInst *> &cands) const override
    {
        std::sort(cands.begin(), cands.end(),
                  [&st](const DynInst *a, const DynInst *b) {
                      const bool oa = st.isOptimisticNow(a);
                      const bool ob = st.isOptimisticNow(b);
                      if (oa != ob)
                          return !oa;
                      return a->seq < b->seq;
                  });
    }
};

/** SPEC_LAST: instructions behind an unresolved same-thread branch
 *  last. */
class SpecLastPolicy final : public IssuePolicy
{
  public:
    const char *name() const override { return "SPEC_LAST"; }

    void
    order(const PipelineState &st,
          std::vector<DynInst *> &cands) const override
    {
        auto speculative = [&st](const DynInst *inst) {
            for (const DynInst *br :
                 st.threads[inst->tid].unresolvedBranches) {
                if (br->seq < inst->seq &&
                    br->stage != InstStage::Executed)
                    return true;
            }
            return false;
        };
        std::sort(cands.begin(), cands.end(),
                  [&](const DynInst *a, const DynInst *b) {
                      const bool sa = speculative(a);
                      const bool sb = speculative(b);
                      if (sa != sb)
                          return !sa;
                      return a->seq < b->seq;
                  });
    }
};

/** BRANCH_FIRST: branches as early as possible. */
class BranchFirstPolicy final : public IssuePolicy
{
  public:
    const char *name() const override { return "BRANCH_FIRST"; }

    void
    order(const PipelineState &,
          std::vector<DynInst *> &cands) const override
    {
        std::sort(cands.begin(), cands.end(),
                  [](const DynInst *a, const DynInst *b) {
                      const bool ca = a->isControl();
                      const bool cb = b->isControl();
                      if (ca != cb)
                          return ca;
                      return a->seq < b->seq;
                  });
    }
};

} // namespace

void
registerBuiltinIssuePolicies(PolicyRegistry &reg)
{
    reg.registerIssuePolicy("OLDEST_FIRST", [] {
        return std::make_unique<OldestFirstPolicy>();
    });
    reg.registerIssuePolicy("OPT_LAST", [] {
        return std::make_unique<OptLastPolicy>();
    });
    reg.registerIssuePolicy("SPEC_LAST", [] {
        return std::make_unique<SpecLastPolicy>();
    });
    reg.registerIssuePolicy("BRANCH_FIRST", [] {
        return std::make_unique<BranchFirstPolicy>();
    });
}

} // namespace smt::policy
