#include "policy/issue_policy.hh"

#include <memory>

#include "policy/issue_policies.hh"
#include "policy/registry.hh"

namespace smt::policy
{

void
registerBuiltinIssuePolicies(PolicyRegistry &reg)
{
    reg.registerIssuePolicy("OLDEST_FIRST", [] {
        return std::make_unique<OldestFirstPolicy>();
    });
    reg.registerIssuePolicy("OPT_LAST", [] {
        return std::make_unique<OptLastPolicy>();
    });
    reg.registerIssuePolicy("SPEC_LAST", [] {
        return std::make_unique<SpecLastPolicy>();
    });
    reg.registerIssuePolicy("BRANCH_FIRST", [] {
        return std::make_unique<BranchFirstPolicy>();
    });
}

} // namespace smt::policy
