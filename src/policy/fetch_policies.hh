/**
 * @file
 * The concrete fetch policies of Section 5.2 (plus the hybrid
 * ICOUNT+MISSCOUNT).
 *
 * These classes live in a header — not hidden behind the registry —
 * so the specialized core engines can instantiate the fetch stage
 * directly over a concrete `final` policy type and the compiler can
 * devirtualize and inline priorityKey() into the selection loop. The
 * PolicyRegistry still registers each of them by name for the generic
 * virtual-dispatch path and for enumeration.
 */

#ifndef SMT_POLICY_FETCH_POLICIES_HH
#define SMT_POLICY_FETCH_POLICIES_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "core/pipeline_state.hh"
#include "mem/hierarchy.hh"
#include "policy/fetch_policy.hh"

namespace smt::policy
{

/** RR: no key; selection falls back to the round-robin tiebreak. */
class RoundRobinPolicy final : public FetchPolicy
{
  public:
    const char *name() const override { return "RR"; }

    double
    priorityKey(const PipelineState &, ThreadID) const override
    {
        return 0.0;
    }
};

/** BRCOUNT: fewest unresolved branches in decode/rename/IQ first. */
class BrCountPolicy final : public FetchPolicy
{
  public:
    const char *name() const override { return "BRCOUNT"; }

    double
    priorityKey(const PipelineState &st, ThreadID tid) const override
    {
        return static_cast<double>(st.branchCount[tid]);
    }
};

/** MISSCOUNT: fewest outstanding D-cache misses first. */
class MissCountPolicy final : public FetchPolicy
{
  public:
    const char *name() const override { return "MISSCOUNT"; }

    double
    priorityKey(const PipelineState &st, ThreadID tid) const override
    {
        return static_cast<double>(
            st.mem.outstandingDMisses(tid, st.cycle));
    }
};

/** ICOUNT: fewest instructions in decode/rename/IQ first. */
class ICountPolicy final : public FetchPolicy
{
  public:
    const char *name() const override { return "ICOUNT"; }

    double
    priorityKey(const PipelineState &st, ThreadID tid) const override
    {
        return static_cast<double>(st.frontAndQueueCount[tid]);
    }
};

/** IQPOSN: threads whose oldest queue entry sits farthest from a queue
 *  head first (they are least at risk of clogging a queue). */
class IQPosnPolicy final : public FetchPolicy
{
  public:
    const char *name() const override { return "IQPOSN"; }

    void
    beginCycle(const PipelineState &st) override
    {
        posInt_.resize(st.numThreads);
        posFp_.resize(st.numThreads);
        st.intQueue.oldestPositions(posInt_);
        st.fpQueue.oldestPositions(posFp_);
    }

    double
    priorityKey(const PipelineState &, ThreadID tid) const override
    {
        smt_assert(tid < posInt_.size(),
                   "IQPOSN queried for thread %u before beginCycle sized "
                   "%zu slots",
                   tid, posInt_.size());
        const std::size_t closest = std::min(posInt_[tid], posFp_[tid]);
        // Instructions near a queue head mean low priority.
        return -static_cast<double>(closest);
    }

  private:
    std::vector<std::size_t> posInt_;
    std::vector<std::size_t> posFp_;
};

/**
 * ICOUNT+MISSCOUNT (beyond the paper): ICOUNT's occupancy ranking with
 * a penalty per outstanding D-cache miss, so a thread whose queue
 * occupancy is low *because* it is blocked on memory does not hog fetch
 * slots it cannot use.
 */
class ICountMissCountPolicy final : public FetchPolicy
{
  public:
    static constexpr double kMissWeight = 4.0;

    const char *name() const override { return "ICOUNT+MISSCOUNT"; }

    double
    priorityKey(const PipelineState &st, ThreadID tid) const override
    {
        return static_cast<double>(st.frontAndQueueCount[tid]) +
               kMissWeight * st.mem.outstandingDMisses(tid, st.cycle);
    }
};

} // namespace smt::policy

#endif // SMT_POLICY_FETCH_POLICIES_HH
