/**
 * @file
 * Unit tests for the common utilities: RNG, saturating counter,
 * histogram, the mixing hash, and the x-smt-lz transfer codec.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/histogram.hh"
#include "common/lz.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"

namespace smt
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next64();
    a.next64();
    a.reseed(7);
    EXPECT_EQ(a.next64(), first);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(4);
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        hit_lo |= v == 5;
        hit_hi |= v == 8;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(6);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApproximatelyRight)
{
    Rng r(8);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const unsigned v = r.geometric(4.0);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 64u);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.3);
}

TEST(Rng, GeometricMeanOneIsAlwaysOne)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 1u);
}

TEST(Mix64, InjectiveishAndStable)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(SatCounter, SaturatesAtBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.value(), 0);
    c.decrement();
    EXPECT_EQ(c.value(), 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    c.increment();
    EXPECT_EQ(c.value(), 3);
}

TEST(SatCounter, IsSetThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.isSet()); // 0
    c.increment();
    EXPECT_FALSE(c.isSet()); // 1 (weakly not taken)
    c.increment();
    EXPECT_TRUE(c.isSet()); // 2 (weakly taken)
    c.increment();
    EXPECT_TRUE(c.isSet()); // 3
}

TEST(SatCounter, OneBitCounter)
{
    SatCounter c(1, 0);
    EXPECT_FALSE(c.isSet());
    c.increment();
    EXPECT_TRUE(c.isSet());
    EXPECT_EQ(c.max(), 1);
}

TEST(Histogram, MeanAndBuckets)
{
    Histogram h(8);
    h.sample(1);
    h.sample(3);
    h.sample(3);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0 / 3.0);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
}

TEST(Histogram, OverflowLandsInLastBucket)
{
    Histogram h(4);
    h.sample(100);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.samples(), 1u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(4);
    h.sample(2, 5);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(4);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Lz, RoundTripsRepresentativeInputs)
{
    std::vector<std::string> inputs = {
        "",
        "x",
        "ab",
        "abc",
        std::string(10000, 'a'), // overlapping-copy run-length case.
        "no repeats here at all: 0123456789!@#$%^&*()",
    };
    // A cache-entry-shaped JSON body, the codec's actual workload.
    std::string entry = "{\n  \"digest\": \"0123456789abcdef\",\n";
    for (int i = 0; i < 200; ++i)
        entry += "  \"committedInstructions." + std::to_string(i)
                 + "\": " + std::to_string(i * 977) + ",\n";
    entry += "  \"cycles\": 123456789\n}\n";
    inputs.push_back(entry);
    // Incompressible noise must still round-trip (it just grows).
    Rng rng(1234);
    std::string noise;
    for (int i = 0; i < 4096; ++i)
        noise.push_back(static_cast<char>(rng.next64() & 0xff));
    inputs.push_back(noise);

    for (const std::string &in : inputs) {
        const std::string packed = lzCompress(in);
        const std::optional<std::string> out =
            lzDecompress(packed, in.size());
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, in);
    }
}

TEST(Lz, CompressesTheProtocolsJsonSeveralFold)
{
    std::string entry;
    for (int i = 0; i < 100; ++i)
        entry += "      \"histogramBucket\": 1234567,\n";
    const std::string packed = lzCompress(entry);
    EXPECT_LT(packed.size(), entry.size() / 3);
}

TEST(Lz, MalformedStreamsDecodeToNothing)
{
    const std::string input =
        "the quick brown fox jumps over the lazy dog; "
        "the quick brown fox jumps over the lazy dog";
    const std::string packed = lzCompress(input);

    // Not an SLZ stream at all.
    EXPECT_FALSE(lzDecompress("plainly not compressed", 1 << 20)
                     .has_value());
    EXPECT_FALSE(lzDecompress("", 1 << 20).has_value());

    // Every truncation must fail cleanly — a prefix can never decode
    // to the full declared size.
    for (std::size_t cut = 0; cut < packed.size(); ++cut)
        EXPECT_FALSE(lzDecompress(packed.substr(0, cut), 1 << 20)
                         .has_value());

    // Trailing garbage is corruption, not slack.
    EXPECT_FALSE(lzDecompress(packed + "x", 1 << 20).has_value());

    // A declared size above the cap is rejected before any decode.
    EXPECT_FALSE(lzDecompress(packed, input.size() - 1).has_value());

    // Flipped bytes anywhere must decode to nothing or to *different*
    // bytes — never crash, and never silently reproduce the input.
    // (The protocol layers a content digest on top for exactly the
    // "different bytes" case.)
    for (std::size_t i = 4; i < packed.size(); ++i) {
        std::string bent = packed;
        bent[i] = static_cast<char>(bent[i] ^ 0x5a);
        const std::optional<std::string> out =
            lzDecompress(bent, 1 << 20);
        if (out.has_value()) {
            EXPECT_NE(*out, input);
        }
    }
}

} // namespace
} // namespace smt
