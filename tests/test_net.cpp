/**
 * @file
 * Tests for the net layer and the store wire protocol: HTTP message
 * round-trips (Content-Length and chunked framing, keep-alive, torn
 * connections), RemoteResultStore semantics matching LocalDirStore
 * (hit / miss / corrupt-entry, markers, claim CAS, manifest, observed
 * costs) against an in-process smtstore service, the ssh launcher's
 * command construction and capture path (via a stub ssh), and the
 * acceptance bar — a 2-shard sweep whose workers talk only to the
 * store over loopback HTTP merges bit-identical to a serial run.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>

#include "common/lz.hh"

#include "dist/shard.hh"
#include "dist/ssh_launcher.hh"
#include "net/http.hh"
#include "obs/trace.hh"
#include "obs/trace_analysis.hh"
#include "net/http_client.hh"
#include "net/http_server.hh"
#include "net/socket.hh"
#include "sweep/digest.hh"
#include "sweep/experiments.hh"
#include "sweep/remote_store.hh"
#include "sweep/result_store.hh"
#include "sweep/serialize.hh"
#include "sweep/store_service.hh"

namespace smt
{
namespace
{

namespace fs = std::filesystem;

/** A scratch directory removed when the test ends. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((fs::temp_directory_path()
                 / ("smtnet_test_" + tag + "_"
                    + std::to_string(std::random_device{}())))
                    .string())
    {
        fs::create_directories(path_);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

MeasureOptions
tinyOptions()
{
    MeasureOptions opts;
    opts.cyclesPerRun = 1200;
    opts.warmupCycles = 300;
    opts.runs = 2;
    return opts;
}

// ---- URLs and headers ------------------------------------------------------

TEST(Net, UrlParsing)
{
    net::Url url;
    ASSERT_TRUE(net::parseUrl("http://localhost:8377", url));
    EXPECT_EQ(url.host, "localhost");
    EXPECT_EQ(url.port, 8377);
    EXPECT_EQ(url.path, "/");

    ASSERT_TRUE(net::parseUrl("http://10.0.0.7/base/store/", url));
    EXPECT_EQ(url.host, "10.0.0.7");
    EXPECT_EQ(url.port, 80);
    EXPECT_EQ(url.path, "/base/store");

    EXPECT_FALSE(net::parseUrl("ftp://host", url));
    EXPECT_FALSE(net::parseUrl("http://", url));
    EXPECT_FALSE(net::parseUrl("http://host:0", url));
    EXPECT_FALSE(net::parseUrl("http://host:99999", url));
    EXPECT_FALSE(net::isHttpUrl("/plain/dir"));
    EXPECT_TRUE(net::isHttpUrl("http://x"));
}

TEST(Net, HeadersAreCaseInsensitive)
{
    net::Headers headers;
    headers.set("Content-Type", "application/json");
    EXPECT_TRUE(headers.has("content-type"));
    EXPECT_EQ(headers.get("CONTENT-TYPE"), "application/json");
    headers.set("content-type", "text/plain");
    EXPECT_EQ(headers.get("Content-Type"), "text/plain");
    EXPECT_EQ(headers.items().size(), 1u);
    EXPECT_EQ(headers.get("absent"), "");
}

// ---- HTTP over a live loopback server --------------------------------------

/** An echo server: responds with the request's method, target, and
 *  body; honours ?chunked and ?close markers in the target. */
class EchoServerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        std::string error;
        ASSERT_TRUE(server_.start(
            "127.0.0.1", 0,
            [](const net::HttpRequest &req) {
                net::HttpResponse resp;
                resp.headers.set("X-Method", req.method);
                resp.headers.set("X-Target", req.target);
                resp.body = req.body;
                if (req.target.find("chunked") != std::string::npos)
                    resp.chunked = true;
                if (req.target.find("close") != std::string::npos)
                    resp.headers.set("Connection", "close");
                return resp;
            },
            &error))
            << error;
    }

    net::HttpServer server_;
};

TEST_F(EchoServerTest, KeepAliveCarriesSequentialExchanges)
{
    net::HttpClient client("127.0.0.1", server_.port());

    // Several exchanges over one connection, bodies of varied size so
    // the framing (not luck) delimits them.
    for (std::size_t len : {0u, 1u, 10u, 100000u, 3u}) {
        net::HttpRequest req;
        req.method = "PUT";
        req.target = "/echo";
        req.body.assign(len, 'x');
        auto resp = client.request(req);
        ASSERT_TRUE(resp.has_value()) << client.lastError();
        EXPECT_EQ(resp->status, 200);
        EXPECT_EQ(resp->body.size(), len);
        EXPECT_EQ(resp->headers.get("X-Method"), "PUT");
    }
}

TEST_F(EchoServerTest, ChunkedBodiesBothDirections)
{
    net::HttpClient client("127.0.0.1", server_.port());

    // > 4096 bytes forces the multi-chunk path on both sides.
    std::string body;
    for (int i = 0; i < 3000; ++i)
        body += std::to_string(i) + ";";

    net::HttpRequest req;
    req.method = "POST";
    req.target = "/echo-chunked";
    req.body = body;
    req.chunked = true;
    auto resp = client.request(req);
    ASSERT_TRUE(resp.has_value()) << client.lastError();
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->headers.get("Transfer-Encoding"), "chunked");
    EXPECT_EQ(resp->body, body);
}

TEST_F(EchoServerTest, HeadResponsesCarryNoBody)
{
    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    req.method = "HEAD";
    req.target = "/echo";
    auto resp = client.request(req);
    ASSERT_TRUE(resp.has_value()) << client.lastError();
    EXPECT_EQ(resp->status, 200);
    EXPECT_TRUE(resp->body.empty());

    // The connection must still be usable for a normal exchange.
    req.method = "GET";
    resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->headers.get("X-Method"), "GET");
}

TEST_F(EchoServerTest, TornRequestDoesNotWedgeTheServer)
{
    {
        // A client that dies mid-request: send half a request line and
        // disconnect.
        net::Socket torn =
            net::connectTcp("127.0.0.1", server_.port());
        ASSERT_TRUE(torn.valid());
        ASSERT_TRUE(torn.sendAll(std::string("GET /ha")));
    } // closed here.

    // The server must keep serving fresh connections.
    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    req.target = "/still-alive";
    auto resp = client.request(req);
    ASSERT_TRUE(resp.has_value()) << client.lastError();
    EXPECT_EQ(resp->headers.get("X-Target"), "/still-alive");
}

TEST_F(EchoServerTest, ClientRetriesWhenAKeepAliveConnectionDies)
{
    net::HttpClient client("127.0.0.1", server_.port());

    // The ?close response makes the server drop the connection after
    // answering; the client's next request must transparently
    // reconnect instead of failing on the dead socket.
    net::HttpRequest req;
    req.target = "/first-close";
    auto resp = client.request(req);
    ASSERT_TRUE(resp.has_value()) << client.lastError();
    EXPECT_EQ(resp->headers.get("Connection"), "close");

    req.target = "/second";
    resp = client.request(req);
    ASSERT_TRUE(resp.has_value()) << client.lastError();
    EXPECT_EQ(resp->headers.get("X-Target"), "/second");
}

TEST(Net, ServerRejectsOversizedDeclaredBodies)
{
    net::HttpServer server;
    std::string error;
    ASSERT_TRUE(server.start(
        "127.0.0.1", 0,
        [](const net::HttpRequest &) { return net::HttpResponse(); },
        &error))
        << error;

    // A Content-Length beyond the cap must tear the connection, not
    // allocate; the next well-formed request still works.
    net::Socket sock = net::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(sock.valid());
    ASSERT_TRUE(sock.sendAll(std::string(
        "PUT /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n")));
    char byte = 0;
    EXPECT_EQ(sock.recvSome(&byte, 1), 0); // orderly close, no reply.

    net::HttpClient client("127.0.0.1", server.port());
    net::HttpRequest req;
    EXPECT_TRUE(client.request(req).has_value());
}

// ---- The store wire protocol -----------------------------------------------

/** smtstore-in-process: a StoreService mounted on a loopback server,
 *  with a RemoteResultStore client and a LocalDirStore view of the
 *  same directory for cross-checking. */
class RemoteStoreTest : public ::testing::Test
{
  protected:
    RemoteStoreTest() : dir_("store"), service_(dir_.path()) {}

    void SetUp() override
    {
        std::string error;
        ASSERT_TRUE(server_.start(
            "127.0.0.1", 0,
            [this](const net::HttpRequest &req) {
                return service_.handle(req);
            },
            &error))
            << error;
        url_ = "http://127.0.0.1:" + std::to_string(server_.port());
        remote_ = sweep::openStore(url_);
        local_ = sweep::openLocalStore(dir_.path());
    }

    TempDir dir_;
    sweep::StoreService service_;
    net::HttpServer server_;
    std::string url_;
    std::unique_ptr<sweep::ResultStore> remote_;
    std::unique_ptr<sweep::ResultStore> local_;
};

TEST_F(RemoteStoreTest, OpenStoreDispatchesByLocator)
{
    EXPECT_EQ(remote_->description(), url_);
    EXPECT_EQ(local_->description(), "dir:" + dir_.path());
    EXPECT_TRUE(sweep::isRemoteStoreLocator(url_));
    EXPECT_FALSE(sweep::isRemoteStoreLocator(dir_.path()));
}

TEST_F(RemoteStoreTest, HitMissAndBitIdenticalReplay)
{
    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = sweep::measurementDigest(cfg, opts);

    EXPECT_FALSE(remote_->lookup(digest).has_value());

    const DataPoint measured = measure(cfg, opts);
    remote_->store(digest, cfg, opts, measured.stats, 1.25);

    // The remote hit replays bit-identically, and the local view of
    // the same directory agrees — the server wrote a normal entry.
    const std::optional<SimStats> remote_hit = remote_->lookup(digest);
    ASSERT_TRUE(remote_hit.has_value());
    EXPECT_EQ(sweep::toJson(*remote_hit).dump(),
              sweep::toJson(measured.stats).dump());
    const std::optional<SimStats> local_hit = local_->lookup(digest);
    ASSERT_TRUE(local_hit.has_value());
    EXPECT_EQ(sweep::toJson(*local_hit).dump(),
              sweep::toJson(measured.stats).dump());

    EXPECT_EQ(remote_->storedDigests(),
              std::vector<std::string>{digest});

    // Observed cost round-trips through the entry, singly and in bulk.
    const std::optional<double> cost = remote_->observedCost(digest);
    ASSERT_TRUE(cost.has_value());
    EXPECT_NEAR(*cost, 1.25, 1e-12);
    const std::map<std::string, double> costs = remote_->observedCosts();
    ASSERT_EQ(costs.size(), 1u);
    EXPECT_NEAR(costs.at(digest), 1.25, 1e-12);
    EXPECT_EQ(local_->observedCosts(), costs);
}

TEST_F(RemoteStoreTest, RemoteEntriesAreByteIdenticalToLocalOnes)
{
    const SmtConfig cfg = presets::baseSmt(2);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = sweep::measurementDigest(cfg, opts);
    const DataPoint measured = measure(cfg, opts);

    remote_->store(digest, cfg, opts, measured.stats, 0.5);
    const std::string entry_path = dir_.path() + "/" + digest + ".json";
    std::string remote_bytes;
    {
        std::ifstream in(entry_path, std::ios::binary);
        remote_bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_FALSE(remote_bytes.empty());

    fs::remove(entry_path);
    local_->store(digest, cfg, opts, measured.stats, 0.5);
    std::string local_bytes;
    {
        std::ifstream in(entry_path, std::ios::binary);
        local_bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    EXPECT_EQ(remote_bytes, local_bytes);
}

TEST_F(RemoteStoreTest, CorruptEntriesAreMissesNotErrors)
{
    const std::string digest(32, 'c');
    {
        std::ofstream out(dir_.path() + "/" + digest + ".json");
        out << "{\"digest\": \"" << digest << "\", truncated";
    }
    EXPECT_FALSE(remote_->lookup(digest).has_value());
    EXPECT_FALSE(local_->lookup(digest).has_value());
    // A corrupt entry is not done work.
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::Pending);
}

TEST_F(RemoteStoreTest, ServerRejectsDigestMismatchedUploads)
{
    const std::string digest(32, 'd');
    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    req.method = "PUT";
    req.target = "/v1/entries/" + digest;
    req.body = "{\"digest\": \"" + digest + "\", \"stats\": {}}";
    // A digest for *different* bytes: the upload must be rejected and
    // nothing committed.
    req.headers.set("X-Content-Digest",
                    sweep::contentDigest("other bytes"));
    auto resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 400);
    EXPECT_TRUE(remote_->storedDigests().empty());

    // And a PUT whose body is an entry for some other digest is also
    // rejected, even with a correct content digest.
    req.body = "{\"digest\": \"" + std::string(32, 'e')
               + "\", \"stats\": {}}";
    req.headers.set("X-Content-Digest",
                    sweep::contentDigest(req.body));
    resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 400);
}

TEST_F(RemoteStoreTest, MarkerStateMachineMatchesLocalSemantics)
{
    const std::string digest(32, 'a');
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::Pending);
    EXPECT_EQ(remote_->readMarkerText(digest), "");

    remote_->markInProgress(digest);
    // This process is alive on the server's host, so both views agree.
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::InProgress);
    EXPECT_EQ(local_->state(digest), sweep::WorkState::InProgress);
    EXPECT_FALSE(remote_->readMarkerText(digest).empty());

    remote_->clearInProgress(digest);
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::Pending);

    remote_->markOrphaned(digest);
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::Orphaned);
    EXPECT_EQ(local_->state(digest), sweep::WorkState::Orphaned);
}

TEST_F(RemoteStoreTest, ClaimCasAdmitsExactlyOneAdopter)
{
    const std::string digest(32, 'b');
    remote_->markOrphaned(digest);
    const std::string marker = remote_->readMarkerText(digest);
    ASSERT_FALSE(marker.empty());

    // First adopter wins; the marker now names this process.
    EXPECT_TRUE(remote_->tryAdopt(digest, marker));
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::InProgress);

    // A retry of the same claim (the winner's response was torn and
    // the client resent it) must still read as success.
    EXPECT_TRUE(remote_->tryAdopt(digest, marker));

    // A rival — someone else's marker bytes are on the digest now —
    // holding the stale orphan marker loses.
    sweep::Json rival = sweep::Json::object();
    rival.set("pid", sweep::Json(std::uint64_t{999999999}));
    rival.set("host", sweep::Json("elsewhere"));
    static_cast<sweep::LocalDirStore *>(local_.get())
        ->writeMarker(digest, rival);
    EXPECT_FALSE(remote_->tryAdopt(digest, marker));

    // Done work cannot be claimed at all.
    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string done_digest = sweep::measurementDigest(cfg, opts);
    remote_->store(done_digest, cfg, opts, measure(cfg, opts).stats);
    EXPECT_FALSE(
        remote_->tryAdopt(done_digest,
                          remote_->readMarkerText(done_digest)));
    EXPECT_EQ(remote_->state(done_digest), sweep::WorkState::Done);
}

TEST_F(RemoteStoreTest, ManifestRoundTrips)
{
    EXPECT_FALSE(remote_->readManifest().has_value());
    sweep::Json manifest = sweep::Json::object();
    manifest.set("experiment", sweep::Json("smoke"));
    manifest.set("shardCount", sweep::Json(2u));
    remote_->writeManifest(manifest);

    const std::optional<sweep::Json> read = remote_->readManifest();
    ASSERT_TRUE(read.has_value());
    EXPECT_TRUE(*read == manifest);
    const std::optional<sweep::Json> local_read = local_->readManifest();
    ASSERT_TRUE(local_read.has_value());
    EXPECT_TRUE(*local_read == manifest);

    // The manifest is not an entry.
    EXPECT_TRUE(remote_->storedDigests().empty());
}

TEST(RemoteStore, UnreachableServerDegradesToMisses)
{
    // Nothing listens on this ephemeral port once the server that
    // owned it stops.
    net::HttpServer server;
    ASSERT_TRUE(server.start("127.0.0.1", 0,
                             [](const net::HttpRequest &) {
                                 return net::HttpResponse();
                             }));
    const std::uint16_t dead_port = server.port();
    server.stop();

    std::unique_ptr<sweep::ResultStore> store = sweep::openStore(
        "http://127.0.0.1:" + std::to_string(dead_port));
    const std::string digest(32, 'f');
    EXPECT_FALSE(store->lookup(digest).has_value());
    EXPECT_EQ(store->state(digest), sweep::WorkState::Pending);
    EXPECT_TRUE(store->storedDigests().empty());
    EXPECT_FALSE(store->readManifest().has_value());
}

// ---- Bearer auth -----------------------------------------------------------

TEST(StoreAuth, ConstantTimeEqualityIsCorrect)
{
    EXPECT_TRUE(sweep::tokenEquals("", ""));
    EXPECT_TRUE(sweep::tokenEquals("secret", "secret"));
    EXPECT_FALSE(sweep::tokenEquals("secret", "secreT"));
    EXPECT_FALSE(sweep::tokenEquals("secret", "secret2"));
    EXPECT_FALSE(sweep::tokenEquals("secret", ""));
    EXPECT_FALSE(sweep::tokenEquals("", "secret"));
}

/** A token-protected smtstore on loopback. */
class AuthStoreTest : public ::testing::Test
{
  protected:
    AuthStoreTest()
        : dir_("auth"), token_("s3kr1t-token"),
          service_(dir_.path(), false, token_)
    {
    }

    void SetUp() override
    {
        std::string error;
        ASSERT_TRUE(server_.start(
            "127.0.0.1", 0,
            [this](const net::HttpRequest &req) {
                return service_.handle(req);
            },
            &error))
            << error;
        url_ = "http://127.0.0.1:" + std::to_string(server_.port());
    }

    std::optional<net::HttpResponse>
    raw(const std::string &method, const std::string &target,
        const std::string &auth_header, const std::string &body = "")
    {
        net::HttpClient client("127.0.0.1", server_.port());
        net::HttpRequest req;
        req.method = method;
        req.target = target;
        req.body = body;
        if (!auth_header.empty())
            req.headers.set("Authorization", auth_header);
        return client.request(req);
    }

    std::optional<net::HttpResponse>
    rawGet(const std::string &target, const std::string &auth_header)
    {
        return raw("GET", target, auth_header);
    }

    TempDir dir_;
    std::string token_;
    sweep::StoreService service_;
    net::HttpServer server_;
    std::string url_;
};

TEST_F(AuthStoreTest, MissingOrWrongTokenIs401OnEveryRoute)
{
    for (const std::string &target :
         {std::string("/v1/ping"), std::string("/v1/entries"),
          std::string("/v1/manifest"), std::string("/v1/stats"),
          "/v1/markers/" + std::string(32, 'a')}) {
        // No credentials at all.
        std::optional<net::HttpResponse> resp = rawGet(target, "");
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->status, 401);
        EXPECT_EQ(resp->headers.get("WWW-Authenticate"), "Bearer");

        // A wrong token, and a right token under the wrong scheme.
        resp = rawGet(target, "Bearer not-the-token");
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->status, 401);
        resp = rawGet(target, "Basic " + token_);
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->status, 401);
    }

    // POST /v1/trace is a write route and sits behind the same gate:
    // an unauthenticated peer must not be able to fill the disk with
    // span files.
    const std::string span_line =
        "{\"ts\": 1.0, \"event\": \"run\", \"trace\": \"feedface00112233\"}\n";
    for (const std::string &auth :
         {std::string(), std::string("Bearer not-the-token"),
          "Basic " + token_}) {
        const std::optional<net::HttpResponse> resp =
            raw("POST", "/v1/trace", auth, span_line);
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->status, 401);
    }

    // The real token opens the door (on both routes).
    std::optional<net::HttpResponse> resp =
        rawGet("/v1/ping", "Bearer " + token_);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 200);
    resp = raw("POST", "/v1/trace", "Bearer " + token_, span_line);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 200);
}

TEST_F(AuthStoreTest, TokenedClientWorksTokenlessClientDegradesToMisses)
{
    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = sweep::measurementDigest(cfg, opts);
    const DataPoint measured = measure(cfg, opts);

    // An authenticated client has full store semantics...
    std::unique_ptr<sweep::ResultStore> good =
        sweep::openStore(url_, token_);
    good->store(digest, cfg, opts, measured.stats, 0.5);
    ASSERT_TRUE(good->lookup(digest).has_value());
    EXPECT_EQ(good->state(digest), sweep::WorkState::Done);

    // ...while a tokenless (or wrong-token) client sees only misses —
    // never errors, and never data.
    std::unique_ptr<sweep::ResultStore> bad = sweep::openStore(url_);
    EXPECT_FALSE(bad->lookup(digest).has_value());
    EXPECT_EQ(bad->state(digest), sweep::WorkState::Pending);
    EXPECT_TRUE(bad->storedDigests().empty());
    EXPECT_FALSE(bad->readManifest().has_value());

    // The ping probe reports the failure (and the ping document
    // advertises the auth mode to authenticated clients).
    const auto *bad_remote =
        static_cast<sweep::RemoteResultStore *>(bad.get());
    std::string error;
    EXPECT_FALSE(bad_remote->ping(&error));
    EXPECT_NE(error.find("401"), std::string::npos);
    const std::optional<net::HttpResponse> ping =
        rawGet("/v1/ping", "Bearer " + token_);
    ASSERT_TRUE(ping.has_value());
    EXPECT_NE(ping->body.find("\"auth\": \"bearer\""),
              std::string::npos);
}

TEST_F(AuthStoreTest, StatsRouteServesLiveCountersBehindTheToken)
{
    // The ping document advertises the stats capability.
    const std::optional<net::HttpResponse> ping =
        rawGet("/v1/ping", "Bearer " + token_);
    ASSERT_TRUE(ping.has_value());
    EXPECT_NE(ping->body.find("\"stats\": true"), std::string::npos);

    // Baseline snapshot through the typed client.
    std::unique_ptr<sweep::ResultStore> client =
        sweep::openStore(url_, token_);
    auto *remote = static_cast<sweep::RemoteResultStore *>(client.get());
    std::string error;
    const std::optional<sweep::Json> before = remote->stats(&error);
    ASSERT_TRUE(before.has_value()) << error;
    EXPECT_EQ(before->at("service").asString(), "smtstore");
    ASSERT_TRUE(before->has("counters"));
    const auto counterOf = [](const sweep::Json &snap,
                              const std::string &name) -> std::uint64_t {
        const sweep::Json &counters = snap.at("counters");
        return counters.has(name) ? counters.at(name).asUInt() : 0;
    };

    // Drive real traffic: one miss, one PUT, one hit.
    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = sweep::measurementDigest(cfg, opts);
    EXPECT_FALSE(client->lookup(digest).has_value()); // miss.
    client->store(digest, cfg, opts, measure(cfg, opts).stats, 0.5);
    EXPECT_TRUE(client->lookup(digest).has_value()); // hit.

    const std::optional<sweep::Json> after = remote->stats(&error);
    ASSERT_TRUE(after.has_value()) << error;
    EXPECT_GE(counterOf(*after, "store.requests.entries"),
              counterOf(*before, "store.requests.entries") + 3);
    EXPECT_GE(counterOf(*after, "store.entries.hits"),
              counterOf(*before, "store.entries.hits") + 1);
    EXPECT_GE(counterOf(*after, "store.entries.misses"),
              counterOf(*before, "store.entries.misses") + 1);
    EXPECT_GT(counterOf(*after, "store.bytes_in.entries"), 0u);

    // Latency histograms ride the same snapshot.
    ASSERT_TRUE(after->has("histograms"));
    const sweep::Json &hist = after->at("histograms");
    ASSERT_TRUE(hist.has("store.latency_us.entries"));
    EXPECT_GE(hist.at("store.latency_us.entries").at("samples").asUInt(),
              3u);
}

// ---- Trace ingest and the access log ---------------------------------------

TEST_F(RemoteStoreTest, TraceIngestPersistsSpansVerbatimPerId)
{
    // The ping document advertises the capability.
    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest ping;
    ping.target = "/v1/ping";
    std::optional<net::HttpResponse> resp = client.request(ping);
    ASSERT_TRUE(resp.has_value());
    EXPECT_NE(resp->body.find("\"trace\": true"), std::string::npos);

    // A batch mixing: two spans naming their trace id, one valid span
    // with no id (falls back to the X-Smt-Trace header), one span
    // whose id would escape the traces directory (falls back to the
    // header too — the id is a file name), and one torn line
    // (skipped).
    const std::string own1 =
        "{\"ts\": 1.0, \"event\": \"run\", \"trace\": \"tracepost01\"}";
    const std::string own2 =
        "{\"ts\": 2.0, \"event\": \"stored\", \"trace\": \"tracepost01\"}";
    const std::string bare = "{\"ts\": 3.0, \"event\": \"hit\"}";
    const std::string evil =
        "{\"ts\": 4.0, \"event\": \"x\", \"trace\": \"../../escape\"}";
    net::HttpRequest req;
    req.method = "POST";
    req.target = "/v1/trace";
    req.headers.set(obs::kTraceHeader, "headerfallback1");
    req.body = own1 + "\n" + own2 + "\n" + bare + "\n" + evil + "\n"
               + "{\"torn\": \n";
    resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 200);
    EXPECT_NE(resp->body.find("\"accepted\": 4"), std::string::npos);
    EXPECT_NE(resp->body.find("\"skipped\": 1"), std::string::npos);

    // Per-id capture files hold the lines verbatim.
    const auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        return std::string(std::istreambuf_iterator<char>(in), {});
    };
    EXPECT_EQ(slurp(dir_.path() + "/traces/tracepost01.jsonl"),
              own1 + "\n" + own2 + "\n");
    EXPECT_EQ(slurp(dir_.path() + "/traces/headerfallback1.jsonl"),
              bare + "\n" + evil + "\n");
    EXPECT_FALSE(
        fs::exists(dir_.path() + "/traces/../../escape.jsonl"));

    // A second batch appends instead of truncating.
    req.body = own1 + "\n";
    resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(slurp(dir_.path() + "/traces/tracepost01.jsonl"),
              own1 + "\n" + own2 + "\n" + own1 + "\n");

    // The route is POST-only.
    net::HttpRequest get;
    get.target = "/v1/trace";
    resp = client.request(get);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 405);

    // The typed client wrapper reports success/failure.
    auto *remote = static_cast<sweep::RemoteResultStore *>(remote_.get());
    EXPECT_TRUE(remote->postTrace(own1 + "\n"));
    EXPECT_TRUE(remote->postTrace("")); // nothing to flush: trivially ok.
}

TEST_F(AuthStoreTest, AccessLogRecordsEveryExchangeWithItsTraceId)
{
    const std::string log_path = dir_.path() + "/access.jsonl";
    std::string log_error;
    ASSERT_TRUE(service_.setAccessLog(log_path, &log_error))
        << log_error;

    // Three exchanges: an authenticated ping carrying a trace id, an
    // authenticated miss, and a rejected tokenless probe — all three
    // must appear, including the 401 (operators audit those).
    {
        net::HttpClient client("127.0.0.1", server_.port());
        net::HttpRequest req;
        req.target = "/v1/ping";
        req.headers.set("Authorization", "Bearer " + token_);
        req.headers.set(obs::kTraceHeader, "feedface00112233");
        ASSERT_TRUE(client.request(req).has_value());
    }
    ASSERT_TRUE(
        rawGet("/v1/entries/" + std::string(32, 'a'), "Bearer " + token_)
            .has_value());
    ASSERT_TRUE(rawGet("/v1/ping", "").has_value()); // 401.

    // The log parses as an smttrace access-record stream.
    obs::TraceSet set;
    std::string error;
    ASSERT_TRUE(set.addFile(log_path, &error)) << error;
    EXPECT_EQ(set.skipped, 0u);
    ASSERT_EQ(set.access.size(), 3u);

    const obs::AccessRecord &ping = set.access[0];
    EXPECT_EQ(ping.route, "ping");
    EXPECT_EQ(ping.method, "GET");
    EXPECT_EQ(ping.target, "/v1/ping");
    EXPECT_EQ(ping.status, 200);
    EXPECT_EQ(ping.trace, "feedface00112233");
    EXPECT_GT(ping.ts, 0.0);
    EXPECT_GT(ping.bytesOut, 0u);

    const obs::AccessRecord &miss = set.access[1];
    EXPECT_EQ(miss.route, "entries");
    EXPECT_EQ(miss.status, 404);
    EXPECT_EQ(miss.trace, "");

    const obs::AccessRecord &denied = set.access[2];
    EXPECT_EQ(denied.status, 401);
}

// ---- Transfer compression --------------------------------------------------

TEST_F(RemoteStoreTest, PingAdvertisesEncodings)
{
    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    req.target = "/v1/ping";
    const std::optional<net::HttpResponse> resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_NE(resp->body.find("x-smt-lz"), std::string::npos);
}

TEST_F(RemoteStoreTest, EntryGetHonoursAcceptEncoding)
{
    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = sweep::measurementDigest(cfg, opts);
    local_->store(digest, cfg, opts, measure(cfg, opts).stats);
    const std::optional<std::string> entry_bytes =
        static_cast<sweep::LocalDirStore *>(local_.get())
            ->cache()
            .readEntryText(digest);
    ASSERT_TRUE(entry_bytes.has_value());

    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    req.target = "/v1/entries/" + digest;

    // Without Accept-Encoding (an old client): identity bytes.
    std::optional<net::HttpResponse> resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->headers.get("Content-Encoding").empty());
    EXPECT_EQ(resp->body, *entry_bytes);

    // With it: a smaller body that decodes to the same bytes, under
    // an ETag that still digests the *uncompressed* entry.
    req.headers.set("Accept-Encoding", kLzEncodingName);
    resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->headers.get("Content-Encoding"), kLzEncodingName);
    EXPECT_LT(resp->body.size(), entry_bytes->size());
    const std::optional<std::string> decoded =
        lzDecompress(resp->body, 1 << 20);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, *entry_bytes);
    EXPECT_EQ(resp->headers.get("ETag"),
              "\"" + sweep::contentDigest(*entry_bytes) + "\"");

    // The RemoteResultStore read path (which asks for compression)
    // replays the stats bit-identically through the codec.
    const std::optional<SimStats> hit = remote_->lookup(digest);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(sweep::toJson(*hit).dump(),
              sweep::toJson(*local_->lookup(digest)).dump());
}

TEST_F(RemoteStoreTest, CompressedPutIsVerifiedAgainstTrueBytes)
{
    const SmtConfig cfg = presets::baseSmt(2);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = sweep::measurementDigest(cfg, opts);
    const DataPoint measured = measure(cfg, opts);

    // The client negotiates x-smt-lz via ping and compresses its PUT;
    // the server must store the *uncompressed* canonical entry, byte-
    // identical to what a local store would write.
    remote_->store(digest, cfg, opts, measured.stats, 0.5);
    const std::optional<std::string> stored =
        static_cast<sweep::LocalDirStore *>(local_.get())
            ->cache()
            .readEntryText(digest);
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(stored->substr(0, 1), "{"); // plaintext on disk.
    const std::optional<SimStats> hit = local_->lookup(digest);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(sweep::toJson(*hit).dump(),
              sweep::toJson(measured.stats).dump());

    // A compressed PUT whose stream is corrupt is rejected and
    // nothing is committed.
    const std::string other(32, 'e');
    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    req.method = "PUT";
    req.target = "/v1/entries/" + other;
    req.body = "this is not an SLZ1 stream";
    req.headers.set("Content-Encoding", kLzEncodingName);
    req.headers.set("X-Content-Digest", sweep::contentDigest("x"));
    std::optional<net::HttpResponse> resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 400);
    EXPECT_FALSE(local_->lookup(other).has_value());

    // An encoding the server never advertised is refused as such.
    req.headers.set("Content-Encoding", "gzip");
    resp = client.request(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 415);
}

TEST(RemoteStore, CorruptCompressedGetBodyIsAMiss)
{
    // A byzantine server: claims x-smt-lz but sends garbage. The
    // client must read it as a miss, exactly like a corrupt entry.
    const std::string digest(32, 'a');
    net::HttpServer server;
    ASSERT_TRUE(server.start(
        "127.0.0.1", 0, [](const net::HttpRequest &) {
            net::HttpResponse resp;
            resp.status = 200;
            resp.headers.set("Content-Encoding", kLzEncodingName);
            resp.body = "decidedly not compressed bytes";
            return resp;
        }));
    std::unique_ptr<sweep::ResultStore> store = sweep::openStore(
        "http://127.0.0.1:" + std::to_string(server.port()));
    EXPECT_FALSE(store->lookup(digest).has_value());
}

// ---- Marker TTL leases over the wire ---------------------------------------

TEST_F(RemoteStoreTest, ExpiredMarkerLeaseOrphansAcrossHosts)
{
    const std::string digest(32, 'a');
    const double now = std::chrono::duration<double>(
                           std::chrono::system_clock::now()
                               .time_since_epoch())
                           .count();
    auto foreign_marker = [&](double deadline) {
        sweep::Json marker = sweep::Json::object();
        marker.set("pid", sweep::Json(std::uint64_t{999999999}));
        marker.set("host", sweep::Json("elsewhere"));
        marker.set("deadline", sweep::Json(deadline));
        static_cast<sweep::LocalDirStore *>(local_.get())
            ->writeMarker(digest, marker);
    };

    // A live lease from an unprobeable foreign host: in progress.
    foreign_marker(now + 60.0);
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::InProgress);

    // Expired, but within the clock-skew slack (default 10 s): still
    // presumed live — skew must not orphan healthy workers.
    foreign_marker(now - 2.0);
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::InProgress);

    // Expired beyond the slack: orphaned for every observer, with no
    // coordinator involved and no pid probe possible.
    foreign_marker(now - 3600.0);
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::Orphaned);
    EXPECT_EQ(local_->state(digest), sweep::WorkState::Orphaned);

    // And adoptable through the ordinary claim CAS.
    EXPECT_TRUE(
        remote_->tryAdopt(digest, remote_->readMarkerText(digest)));
    EXPECT_EQ(remote_->state(digest), sweep::WorkState::InProgress);
}

TEST_F(RemoteStoreTest, TypeConfusedMarkersNeverCrashAnyone)
{
    // Markers come from peers: a {pid: -1} or {host: 7} document must
    // classify as *something* (orphaned / in-progress), never abort
    // the shared server or an observing worker.
    const std::string digest(32, 'c');
    net::HttpClient client("127.0.0.1", server_.port());
    const std::vector<std::string> hostile = {
        "{\"pid\": -1, \"host\": \"h\"}",
        "{\"pid\": 1.5, \"host\": 7}",
        "{\"pid\": \"what\", \"host\": [\"x\"]}",
        "{\"host\": \"h\"}",
    };
    for (const std::string &body : hostile) {
        net::HttpRequest req;
        req.method = "PUT";
        req.target = "/v1/markers/" + digest;
        req.body = body;
        const std::optional<net::HttpResponse> resp =
            client.request(req);
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->status, 204);
        const sweep::WorkState state = remote_->state(digest);
        EXPECT_TRUE(state == sweep::WorkState::Orphaned
                    || state == sweep::WorkState::InProgress);
        remote_->tryAdopt(digest, remote_->readMarkerText(digest));
        remote_->clearInProgress(digest);
    }

    // A type-confused claim body is a 400, not a server abort.
    net::HttpRequest bad;
    bad.method = "POST";
    bad.target = "/v1/claims/" + digest;
    bad.body = "{\"expect\": 5, \"marker\": []}";
    const std::optional<net::HttpResponse> resp = client.request(bad);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 400);
}

TEST_F(RemoteStoreTest, BulkMarkerRefreshLeasesManyDigestsAtOnce)
{
    const std::string a(32, 'a'), b(32, 'b');
    remote_->refreshMarkers({a, b}, 60.0);
    EXPECT_EQ(remote_->state(a), sweep::WorkState::InProgress);
    EXPECT_EQ(remote_->state(b), sweep::WorkState::InProgress);
    EXPECT_TRUE(
        sweep::sameMarkerOwner(remote_->readMarkerText(a),
                               sweep::makeSelfMarker()));

    // Done work keeps no lease: a refresh racing the entry commit
    // must not resurrect the cleared marker.
    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string done = sweep::measurementDigest(cfg, opts);
    remote_->store(done, cfg, opts, measure(cfg, opts).stats);
    remote_->refreshMarkers({done}, 60.0);
    EXPECT_EQ(remote_->readMarkerText(done), "");
    EXPECT_EQ(remote_->state(done), sweep::WorkState::Done);
}

TEST(RemoteStore, BulkRefreshFallsBackToPutsOnOldServers)
{
    // An "old" server: the store service minus the bulk route.
    TempDir dir("oldserver");
    sweep::StoreService service(dir.path());
    net::HttpServer server;
    ASSERT_TRUE(server.start(
        "127.0.0.1", 0, [&service](const net::HttpRequest &req) {
            if (req.method == "POST" && req.target == "/v1/markers") {
                net::HttpResponse resp;
                resp.status = 404;
                return resp;
            }
            return service.handle(req);
        }));
    std::unique_ptr<sweep::ResultStore> store = sweep::openStore(
        "http://127.0.0.1:" + std::to_string(server.port()));

    const std::string a(32, 'a'), b(32, 'b');
    store->refreshMarkers({a, b}, 60.0);
    EXPECT_EQ(store->state(a), sweep::WorkState::InProgress);
    EXPECT_EQ(store->state(b), sweep::WorkState::InProgress);
}

// ---- The ssh launcher ------------------------------------------------------

TEST(SshLauncher, ShellQuotingAndCommandConstruction)
{
    EXPECT_EQ(dist::shellQuoteArg("plain"), "'plain'");
    EXPECT_EQ(dist::shellQuoteArg("a b"), "'a b'");
    EXPECT_EQ(dist::shellQuoteArg("it's"), "'it'\\''s'");

    const std::vector<std::string> argv =
        dist::sshArgv("ssh", "user@hostA",
                      {"/opt/smtsweep", "--shard", "0/2"});
    ASSERT_EQ(argv.size(), 5u);
    EXPECT_EQ(argv[0], "ssh");
    EXPECT_EQ(argv[1], "-o");
    EXPECT_EQ(argv[2], "BatchMode=yes");
    EXPECT_EQ(argv[3], "user@hostA");
    EXPECT_EQ(argv[4], "exec '/opt/smtsweep' '--shard' '0/2'");

    EXPECT_EQ(dist::parseHostList("a,b,,user@c"),
              (std::vector<std::string>{"a", "b", "user@c"}));
    EXPECT_TRUE(dist::parseHostList("").empty());
}

TEST(SshLauncher, CapturesHeartbeatsAndForwardsOutput)
{
    // A stub ssh that ignores its host and runs the command locally:
    // the whole pipe/capture path works without an sshd.
    TempDir dir("fakessh");
    const std::string stub = dir.path() + "/fake-ssh";
    {
        std::ofstream out(stub);
        out << "#!/bin/sh\n"
               "# args: -o BatchMode=yes HOST COMMAND\n"
               "shift 3\n"
               "exec /bin/sh -c \"$1\"\n";
    }
    ::chmod(stub.c_str(), 0755);

    dist::SshWorkerLauncher launcher({"ignored-host"}, stub);
    EXPECT_TRUE(launcher.capturesProgress());

    const std::string heartbeat =
        "{\"shard\":0,\"done\":3,\"total\":4,\"hits\":1,\"stolen\":2,"
        "\"wall\":0.5,\"finished\":true}";
    const long handle = launcher.launch(
        0, {"/bin/sh", "-c",
            "echo '" + heartbeat + "'; echo not-a-record; exit 7"});

    int exit_code = -1;
    launcher.wait(handle, exit_code);
    EXPECT_EQ(exit_code, 7);

    dist::ProgressRecord rec;
    ASSERT_TRUE(launcher.latestProgress(handle, rec));
    EXPECT_EQ(rec.pointsDone, 3u);
    EXPECT_EQ(rec.pointsTotal, 4u);
    EXPECT_EQ(rec.cacheHits, 1u);
    EXPECT_EQ(rec.stolen, 2u);
    EXPECT_TRUE(rec.finished);
}

TEST(SshLauncher, StoreTokenRidesStdinAndNeverArgv)
{
    const std::string token = "super-secret-store-token";

    // The command construction: with a token, the remote shell reads
    // it from stdin into the environment; nothing token-shaped is in
    // the argv ps would show on either host.
    const std::vector<std::string> argv = dist::sshArgv(
        "ssh", "hostA", {"/opt/smtsweep", "--shard", "0/2"},
        /*token_on_stdin=*/true);
    for (const std::string &arg : argv)
        EXPECT_EQ(arg.find(token), std::string::npos);
    EXPECT_NE(argv.back().find("IFS= read -r SMTSTORE_TOKEN"),
              std::string::npos);
    EXPECT_NE(argv.back().find("export SMTSTORE_TOKEN"),
              std::string::npos);

    // The trace id is exported the same way tokens travel — inside
    // the remote command — because sshd drops arbitrary foreign
    // environment variables. Unlike the token it is not secret, so
    // riding argv is fine.
    const std::vector<std::string> traced = dist::sshArgv(
        "ssh", "hostA", {"/opt/smtsweep", "--shard", "0/2"},
        /*token_on_stdin=*/true, /*trace_id=*/"feedface00112233");
    EXPECT_NE(
        traced.back().find("SMTSWEEP_TRACE_ID='feedface00112233'"),
        std::string::npos);
    EXPECT_NE(traced.back().find("export SMTSWEEP_TRACE_ID"),
              std::string::npos);
    // The export happens before exec so the worker inherits it.
    EXPECT_LT(traced.back().find("SMTSWEEP_TRACE_ID"),
              traced.back().find("exec "));
    // Without a trace id, nothing trace-shaped is in the command.
    EXPECT_EQ(argv.back().find("SMTSWEEP_TRACE_ID"),
              std::string::npos);

    // End to end through a stub ssh: the worker sees the token in
    // SMTSTORE_TOKEN, and the stub's own argv never carried it.
    TempDir dir("sshtoken");
    const std::string stub = dir.path() + "/fake-ssh";
    const std::string argv_log = dir.path() + "/argv.txt";
    const std::string token_out = dir.path() + "/token.txt";
    {
        std::ofstream out(stub);
        out << "#!/bin/sh\n"
               "printf '%s\\n' \"$@\" > " << argv_log << "\n"
               "shift 3\n"
               "exec /bin/sh -c \"$1\"\n";
    }
    ::chmod(stub.c_str(), 0755);

    dist::SshWorkerLauncher launcher({"ignored-host"}, stub);
    launcher.setStoreToken(token);
    const long handle = launcher.launch(
        0, {"/bin/sh", "-c",
            "printf '%s' \"$SMTSTORE_TOKEN\" > " + token_out});
    int exit_code = -1;
    launcher.wait(handle, exit_code);
    EXPECT_EQ(exit_code, 0);

    std::string delivered;
    {
        std::ifstream in(token_out);
        delivered.assign(std::istreambuf_iterator<char>(in), {});
    }
    EXPECT_EQ(delivered, token);

    std::string logged_argv;
    {
        std::ifstream in(argv_log);
        logged_argv.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_FALSE(logged_argv.empty());
    EXPECT_EQ(logged_argv.find(token), std::string::npos);
}

// ---- The acceptance bar ----------------------------------------------------

TEST(RemoteStore, TwoShardSweepOverLoopbackMergesBitIdenticalToSerial)
{
    const sweep::NamedExperiment *smoke =
        sweep::findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);

    // The reference: a serial, cache-less sweep.
    sweep::RunnerOptions serial;
    serial.measure = tinyOptions();
    serial.measure.parallel = false;
    const sweep::SweepOutcome reference =
        sweep::runSweep(smoke->spec, serial);

    // An in-process smtstore, hardened as it would be on an untrusted
    // network: bearer auth required, compression negotiated (the
    // client always compresses entry PUTs against a server that
    // advertises x-smt-lz).
    TempDir dir("loopback");
    const std::string token = "loopback-acceptance-token";
    sweep::StoreService service(dir.path(), false, token);
    net::HttpServer server;
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0,
                             [&service](const net::HttpRequest &req) {
                                 return service.handle(req);
                             },
                             &error))
        << error;
    const std::string url =
        "http://127.0.0.1:" + std::to_string(server.port());

    // ...backing both workers of a 2-shard run: every result, marker,
    // and heartbeat-visible byte crosses the wire, authenticated and
    // compressed.
    sweep::RunnerOptions shard_opts;
    shard_opts.measure = tinyOptions();
    shard_opts.cacheDir = url;
    shard_opts.storeToken = token;
    const dist::ShardRunResult s0 =
        dist::runShard(smoke->spec, shard_opts, 0, 2);
    const dist::ShardRunResult s1 =
        dist::runShard(smoke->spec, shard_opts, 1, 2);
    EXPECT_EQ(s0.points + s1.points, reference.points.size());
    EXPECT_EQ(s0.cacheHits + s1.cacheHits, 0u);

    // The merge: a pure replay of the remote store.
    sweep::RunnerOptions merge_opts = shard_opts;
    merge_opts.requireCached = true; // would abort on any miss.
    const sweep::SweepOutcome merged =
        sweep::runSweep(smoke->spec, merge_opts);
    EXPECT_EQ(merged.cacheHits, merged.points.size());
    EXPECT_EQ(merged.cacheMisses, 0u);

    ASSERT_EQ(merged.points.size(), reference.points.size());
    for (std::size_t i = 0; i < merged.points.size(); ++i) {
        EXPECT_EQ(merged.points[i].digest, reference.points[i].digest);
        EXPECT_EQ(sweep::toJson(merged.points[i].data.stats).dump(),
                  sweep::toJson(reference.points[i].data.stats).dump());
    }
}

TEST(RemoteStore, TracedShardedSweepClosesTheLedgerOverLoopback)
{
    // The profiling acceptance bar: a 2-shard authed sweep with
    // --trace-out and a server access log yields a merged trace in
    // which every grid digest reaches a terminal state, the worker
    // ledger closes (busy + idle == window), the spans the workers
    // flushed to POST /v1/trace dedupe against their local copies,
    // and the Chrome export is valid trace-event JSON.
    const sweep::NamedExperiment *smoke =
        sweep::findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);

    TempDir dir("tracedsweep");
    const std::string token = "traced-sweep-token";
    sweep::StoreService service(dir.path(), false, token);
    const std::string access_path = dir.path() + "/access.jsonl";
    ASSERT_TRUE(service.setAccessLog(access_path));
    net::HttpServer server;
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0,
                             [&service](const net::HttpRequest &req) {
                                 return service.handle(req);
                             },
                             &error))
        << error;
    const std::string url =
        "http://127.0.0.1:" + std::to_string(server.port());

    const std::string trace_path = dir.path() + "/sweep-trace.jsonl";
    std::size_t total_points = 0;
    std::string trace_id;
    {
        // Both shards share one writer, exactly like local dist mode
        // (one append-mode file, one trace id).
        obs::TraceWriter writer(trace_path);
        trace_id = writer.traceId();
        sweep::RunnerOptions opts;
        opts.measure = tinyOptions();
        opts.cacheDir = url;
        opts.storeToken = token;
        opts.trace = &writer;
        const dist::ShardRunResult s0 =
            dist::runShard(smoke->spec, opts, 0, 2);
        const dist::ShardRunResult s1 =
            dist::runShard(smoke->spec, opts, 1, 2);
        total_points = s0.points + s1.points;
    }
    ASSERT_GT(total_points, 0u);

    // Merge the worker-local file, the server-side /v1/trace capture
    // the workers flushed, and the server's access log — the exact
    // file set a cross-host profile hands to smttrace.
    const std::string capture =
        dir.path() + "/traces/" + trace_id + ".jsonl";
    ASSERT_TRUE(fs::exists(capture))
        << "workers never flushed spans to POST /v1/trace";
    obs::TraceSet set;
    ASSERT_TRUE(set.addFile(trace_path, &error)) << error;
    ASSERT_TRUE(set.addFile(capture, &error)) << error;
    ASSERT_TRUE(set.addFile(access_path, &error)) << error;
    EXPECT_EQ(set.skipped, 0u);
    // Every span in the server capture is a byte-identical copy of a
    // local one: the dedupe must have collapsed them all.
    EXPECT_GE(set.duplicates, total_points);

    const obs::TraceAnalysis analysis =
        obs::analyzeTrace(set, trace_id);
    EXPECT_EQ(analysis.traceId, trace_id);

    // Every grid digest reached a terminal state.
    EXPECT_EQ(analysis.digests.size(), total_points);
    EXPECT_EQ(analysis.nonTerminal, 0u);
    EXPECT_EQ(analysis.terminalStored, total_points);

    // The ledger closes for every worker, and utilization is sane.
    ASSERT_FALSE(analysis.workers.empty());
    for (const obs::WorkerLedger &w : analysis.workers) {
        EXPECT_NEAR(w.busySeconds + w.idleSeconds, w.windowSeconds,
                    1e-6);
        EXPECT_GE(w.utilization(), 0.0);
        EXPECT_LE(w.utilization(), 1.0);
    }

    // The access log joined: store latency percentiles exist for the
    // entries route, and every record carried this sweep's trace id.
    ASSERT_FALSE(analysis.routes.empty());
    bool saw_entries = false;
    for (const obs::RouteLatency &r : analysis.routes)
        if (r.route == "entries") {
            saw_entries = true;
            EXPECT_GT(r.count, 0u);
            EXPECT_GE(r.maxUs, r.p50Us);
        }
    EXPECT_TRUE(saw_entries);

    // The Chrome export is valid trace-event JSON with one complete
    // event per run.
    const sweep::Json chrome = obs::chromeTrace(set, trace_id);
    sweep::Json parsed;
    ASSERT_TRUE(sweep::Json::parse(chrome.dump(2), parsed));
    EXPECT_EQ(parsed.at("displayTimeUnit").asString(), "ms");
    std::size_t completes = 0;
    const sweep::Json &events = parsed.at("traceEvents");
    for (std::size_t i = 0; i < events.size(); ++i)
        if (events[i].at("ph").asString() == "X")
            ++completes;
    EXPECT_EQ(completes, total_points);

    // And the machine-readable summary agrees with the analysis.
    const sweep::Json summary = obs::analysisSummary(analysis, set);
    EXPECT_EQ(summary.at("schema").asString(), "smt-trace-v1");
    EXPECT_EQ(summary.at("digests").at("nonTerminal").asUInt(), 0u);
    EXPECT_EQ(summary.at("digests").at("total").asUInt(), total_points);
}

} // namespace
} // namespace smt
