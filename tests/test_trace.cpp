/**
 * @file
 * Tests for the sweep-trace analysis library (obs/trace_analysis):
 * the tolerant JSONL reader (torn/malformed/foreign lines skipped and
 * counted, byte-identical duplicates collapsed), digest lifecycle
 * reconstruction, the closed per-worker busy/idle ledger, store
 * latency percentiles joined by trace id, and the Chrome trace-event
 * export.
 *
 * All inputs are synthetic JSONL built in-memory: the contract under
 * test is the line format the TraceWriter and the store's access log
 * actually emit, so field names here mirror those writers exactly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "obs/trace_analysis.hh"
#include "sweep/json.hh"

namespace smt
{
namespace
{

/** Build one trace-span line the way obs::TraceWriter lays it out. */
std::string
span(const std::string &event, const std::string &trace,
     const std::string &digest, double ts, double mono,
     double dur_us = -1.0, const std::string &host = "h1",
     std::uint64_t pid = 100, double seconds = -1.0)
{
    sweep::Json j = sweep::Json::object();
    j.set("ts", sweep::Json(ts));
    j.set("mono", sweep::Json(mono));
    j.set("event", sweep::Json(event));
    j.set("trace", sweep::Json(trace));
    if (!digest.empty())
        j.set("digest", sweep::Json(digest));
    j.set("pid", sweep::Json(pid));
    if (!host.empty())
        j.set("host", sweep::Json(host));
    if (seconds >= 0.0)
        j.set("seconds", sweep::Json(seconds));
    if (dur_us >= 0.0)
        j.set("dur_us", sweep::Json(dur_us));
    return j.dump() + "\n";
}

/** Build one access-log line the way StoreService::logAccess does. */
std::string
accessLine(const std::string &route, const std::string &trace,
           int status, double latency_us, double ts = 100.0)
{
    sweep::Json j = sweep::Json::object();
    j.set("ts", sweep::Json(ts));
    j.set("mono", sweep::Json(1.0));
    j.set("route", sweep::Json(route));
    j.set("method", sweep::Json(status == 409 ? "PUT" : "GET"));
    j.set("target", sweep::Json("/v1/" + route + "/x"));
    j.set("status", sweep::Json(static_cast<std::int64_t>(status)));
    j.set("bytes_in", sweep::Json(std::uint64_t(0)));
    j.set("bytes_out", sweep::Json(std::uint64_t(10)));
    j.set("latency_us", sweep::Json(latency_us));
    if (!trace.empty())
        j.set("trace", sweep::Json(trace));
    return j.dump() + "\n";
}

const std::string kTrace = "feedface00112233";
const std::string kD1 = std::string(32, '1');
const std::string kD2 = std::string(32, '2');
const std::string kD3 = std::string(32, '3');
const std::string kD4 = std::string(32, '4');

// ---- Tolerant reader -------------------------------------------------------

TEST(TraceSet, SkipsTornMalformedAndForeignLinesWithoutAborting)
{
    obs::TraceSet set;
    std::string text;
    text += span("run", kTrace, kD1, 100.0, 5.0, 2e6);
    text += "{\"ts\": 100.5, \"event\": \"run\", \"tra"; // torn mid-write.
    text += "\n";
    text += "not json at all\n";
    text += "{\"foreign\": \"object\", \"ts\": 1}\n"; // neither shape.
    text += "\r\n";                                  // blank: not a line.
    text += accessLine("entries", kTrace, 200, 150.0);
    set.addText(text);

    EXPECT_EQ(set.events.size(), 1u);
    EXPECT_EQ(set.access.size(), 1u);
    EXPECT_EQ(set.lines, 5u);
    EXPECT_EQ(set.skipped, 3u);
    EXPECT_EQ(set.duplicates, 0u);

    // Windows line endings don't leak into parsed fields.
    obs::TraceSet crlf;
    std::string line = span("stored", kTrace, kD1, 100.0, 5.0);
    line.insert(line.size() - 1, "\r");
    crlf.addText(line);
    ASSERT_EQ(crlf.events.size(), 1u);
    EXPECT_EQ(crlf.events[0].event, "stored");
}

TEST(TraceSet, ByteIdenticalDuplicatesCollapseAcrossFiles)
{
    // The same span legitimately lands in the worker's local file and
    // the store's server-side /v1/trace capture; analysis must count
    // it once.
    const std::string line = span("run", kTrace, kD1, 100.0, 5.0, 2e6);
    obs::TraceSet set;
    set.addText(line + span("stored", kTrace, kD1, 100.1, 5.1, 80.0));
    set.addText(line); // second "file": the server capture.

    EXPECT_EQ(set.events.size(), 2u);
    EXPECT_EQ(set.duplicates, 1u);
    EXPECT_EQ(set.lines, 3u);
}

TEST(TraceSet, MissingFileIsAnErrorNotACrash)
{
    obs::TraceSet set;
    std::string error;
    EXPECT_FALSE(set.addFile("/nonexistent/trace.jsonl", &error));
    EXPECT_FALSE(error.empty());
}

// ---- Lifecycle reconstruction ----------------------------------------------

TEST(TraceAnalysis, ReconstructsTerminalAndNonTerminalLifecycles)
{
    obs::TraceSet set;
    std::string text;
    // d1: the full cold path.
    text += span("queued", kTrace, kD1, 100.0, 1.0);
    text += span("claimed", kTrace, kD1, 100.1, 1.1, 50.0);
    text += span("run", kTrace, kD1, 102.0, 3.0, 1.9e6, "h1", 100, 1.9);
    text += span("stored", kTrace, kD1, 102.1, 3.1, 70.0);
    // d2: a cache hit.
    text += span("hit", kTrace, kD2, 100.2, 1.2, 40.0);
    // d3: claimed and run but never stored — a lost worker.
    text += span("claimed", kTrace, kD3, 100.3, 1.3, 50.0);
    text += span("run", kTrace, kD3, 103.0, 4.0, 2.7e6, "h1", 100, 2.7);
    set.addText(text);

    const obs::TraceAnalysis a = obs::analyzeTrace(set);
    EXPECT_EQ(a.traceId, kTrace);
    ASSERT_EQ(a.digests.size(), 3u);
    EXPECT_EQ(a.terminalStored, 1u);
    EXPECT_EQ(a.terminalHit, 1u);
    EXPECT_EQ(a.nonTerminal, 1u);

    for (const obs::DigestTimeline &d : a.digests) {
        if (d.digest == kD1) {
            EXPECT_TRUE(d.queued);
            EXPECT_TRUE(d.claimed);
            EXPECT_TRUE(d.run);
            EXPECT_TRUE(d.stored);
            EXPECT_EQ(d.terminal(), "stored");
        } else if (d.digest == kD2) {
            EXPECT_TRUE(d.hit);
            EXPECT_EQ(d.terminal(), "hit");
        } else {
            EXPECT_EQ(d.digest, kD3);
            EXPECT_TRUE(d.run);
            EXPECT_EQ(d.terminal(), "");
        }
    }
}

TEST(TraceAnalysis, EmptyTraceIdPicksTheIdWithTheMostSpans)
{
    obs::TraceSet set;
    std::string text;
    text += span("run", "aaaa", kD1, 100.0, 1.0, 1e6);
    text += span("stored", "aaaa", kD1, 100.1, 1.1, 60.0);
    text += span("hit", "aaaa", kD2, 100.2, 1.2, 40.0);
    text += span("hit", "bbbb", kD3, 200.0, 1.0, 40.0);
    set.addText(text);

    const obs::TraceAnalysis a = obs::analyzeTrace(set);
    EXPECT_EQ(a.traceId, "aaaa");
    EXPECT_EQ(a.digests.size(), 2u);

    // An explicit id restricts the view to that sweep.
    const obs::TraceAnalysis b = obs::analyzeTrace(set, "bbbb");
    EXPECT_EQ(b.traceId, "bbbb");
    ASSERT_EQ(b.digests.size(), 1u);
    EXPECT_EQ(b.digests[0].digest, kD3);
}

// ---- The worker ledger closes ----------------------------------------------

TEST(TraceAnalysis, BusyPlusIdleEqualsTheWindowEvenWithOverlappingRuns)
{
    // Pool-parallel runs overlap in the worker's mono timeline:
    //   d1 runs [1.0, 3.0], d2 runs [2.0, 4.0].
    // Summing durations gives 4.0s of "busy" inside a 3.2s window;
    // the ledger must take the interval union (3.0s) instead.
    obs::TraceSet set;
    std::string text;
    text += span("claimed", kTrace, kD1, 100.0, 1.0, 50.0);
    text += span("run", kTrace, kD1, 102.0, 3.0, 2e6, "h1", 100, 2.0);
    text += span("run", kTrace, kD2, 103.0, 4.0, 2e6, "h1", 100, 2.0);
    text += span("stored", kTrace, kD1, 103.1, 4.1, 70.0);
    text += span("stored", kTrace, kD2, 103.2, 4.2, 70.0);
    set.addText(text);

    const obs::TraceAnalysis a = obs::analyzeTrace(set);
    ASSERT_EQ(a.workers.size(), 1u);
    const obs::WorkerLedger &w = a.workers[0];
    EXPECT_EQ(w.worker, "h1/100");
    EXPECT_EQ(w.runs, 2u);
    EXPECT_NEAR(w.windowSeconds, 3.2, 1e-9);
    EXPECT_NEAR(w.busySeconds, 3.0, 1e-9);
    EXPECT_NEAR(w.idleSeconds, 0.2, 1e-9);
    // The closure identity the report relies on.
    EXPECT_NEAR(w.busySeconds + w.idleSeconds, w.windowSeconds, 1e-9);
    EXPECT_GE(w.utilization(), 0.0);
    EXPECT_LE(w.utilization(), 1.0);
    EXPECT_NEAR(w.utilization(), 3.0 / 3.2, 1e-9);
}

TEST(TraceAnalysis, RunsLongerThanTheWindowAreClampedIntoIt)
{
    // A single-event worker window, or a dur_us reaching before the
    // first observed mono, must not drive idle time negative.
    obs::TraceSet set;
    std::string text;
    text += span("run", kTrace, kD1, 100.0, 2.0, 9e6, "h1", 100, 9.0);
    text += span("stored", kTrace, kD1, 100.1, 2.1, 70.0);
    set.addText(text);

    const obs::TraceAnalysis a = obs::analyzeTrace(set);
    ASSERT_EQ(a.workers.size(), 1u);
    const obs::WorkerLedger &w = a.workers[0];
    EXPECT_GE(w.idleSeconds, 0.0);
    EXPECT_LE(w.busySeconds, w.windowSeconds + 1e-9);
    EXPECT_NEAR(w.busySeconds + w.idleSeconds, w.windowSeconds, 1e-9);
}

// ---- Store latency and claim contention ------------------------------------

TEST(TraceAnalysis, RouteLatencyPercentilesJoinOnTheTraceId)
{
    obs::TraceSet set;
    std::string text;
    text += span("hit", kTrace, kD1, 100.0, 1.0, 40.0);
    for (int i = 1; i <= 10; ++i)
        text += accessLine("entries", kTrace, 200, i * 100.0);
    // A foreign sweep's traffic on the same store must not pollute
    // this sweep's percentiles.
    text += accessLine("entries", "othertrace", 200, 1e9);
    // Claim CAS: three requests, one lost race. Latencies differ so
    // the lines aren't byte-identical (which would dedupe them).
    text += accessLine("claims", kTrace, 200, 50.0);
    text += accessLine("claims", kTrace, 200, 51.0);
    text += accessLine("claims", kTrace, 409, 52.0);
    set.addText(text);

    const obs::TraceAnalysis a = obs::analyzeTrace(set);
    EXPECT_EQ(a.claimRequests, 3u);
    EXPECT_EQ(a.claimConflicts, 1u);

    const obs::RouteLatency *entries = nullptr;
    for (const obs::RouteLatency &r : a.routes)
        if (r.route == "entries")
            entries = &r;
    ASSERT_NE(entries, nullptr);
    EXPECT_EQ(entries->count, 10u);
    EXPECT_NEAR(entries->p50Us, 500.0, 1e-9);
    EXPECT_NEAR(entries->p90Us, 900.0, 1e-9);
    EXPECT_NEAR(entries->p99Us, 1000.0, 1e-9);
    EXPECT_NEAR(entries->maxUs, 1000.0, 1e-9);
}

// ---- Summary and report ----------------------------------------------------

TEST(TraceAnalysis, SummaryCarriesTheSchemaAndTheStallLedger)
{
    obs::TraceSet set;
    std::string text;
    text += span("sweep_start", kTrace, "", 99.0, 0.5);
    text += span("run", kTrace, kD1, 100.0, 1.0, 1e6, "h1", 100, 1.0);
    text += span("stored", kTrace, kD1, 100.1, 1.1, 60.0);
    text += span("sweep_done", kTrace, "", 101.0, 2.0);
    set.addText(text);

    const obs::TraceAnalysis a = obs::analyzeTrace(set);
    sweep::Json stalls = sweep::Json::object();
    stalls.set("totalStalledSlots", sweep::Json(std::uint64_t(42)));
    const sweep::Json doc = obs::analysisSummary(a, set, &stalls);

    EXPECT_EQ(doc.at("schema").asString(), "smt-trace-v1");
    EXPECT_EQ(doc.at("trace").asString(), kTrace);
    EXPECT_EQ(doc.at("digests").at("total").asUInt(), 1u);
    EXPECT_EQ(doc.at("digests").at("stored").asUInt(), 1u);
    EXPECT_EQ(doc.at("digests").at("nonTerminal").asUInt(), 0u);
    ASSERT_EQ(doc.at("workers").size(), 1u);
    EXPECT_EQ(doc.at("workers")[0].at("worker").asString(), "h1/100");
    ASSERT_TRUE(doc.has("stalls"));
    EXPECT_EQ(doc.at("stalls").at("totalStalledSlots").asUInt(), 42u);

    // The whole summary survives a serialization round trip.
    sweep::Json parsed;
    ASSERT_TRUE(sweep::Json::parse(doc.dump(2), parsed));
    EXPECT_EQ(parsed.at("schema").asString(), "smt-trace-v1");

    // The human report mentions the worker and the terminal tally.
    const std::string report = obs::analysisReport(a, set);
    EXPECT_NE(report.find("h1/100"), std::string::npos);
    EXPECT_NE(report.find("stored"), std::string::npos);
}

// ---- Chrome export ---------------------------------------------------------

TEST(ChromeTrace, OverlappingRunsFanOutIntoLanesUnderOneProcess)
{
    obs::TraceSet set;
    std::string text;
    text += span("sweep_start", kTrace, "", 99.0, 0.5, -1.0, "", 1);
    text += span("run", kTrace, kD1, 102.0, 3.0, 2e6, "h1", 100, 2.0);
    text += span("run", kTrace, kD2, 103.0, 4.0, 2e6, "h1", 100, 2.0);
    text += span("run", kTrace, kD3, 105.5, 6.5, 1e6, "h1", 100, 1.0);
    text += span("stored", kTrace, kD1, 103.1, 4.1, 70.0);
    set.addText(text);

    const sweep::Json doc = obs::chromeTrace(set);
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const sweep::Json &events = doc.at("traceEvents");
    ASSERT_GT(events.size(), 0u);

    std::size_t metadata = 0, completes = 0, instants = 0;
    std::set<std::uint64_t> run_tids;
    double min_ts = 1e18;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const sweep::Json &ev = events[i];
        const std::string ph = ev.at("ph").asString();
        if (ph == "M") {
            ++metadata;
            EXPECT_EQ(ev.at("name").asString(), "process_name");
            continue;
        }
        min_ts = std::min(min_ts, ev.at("ts").asDouble());
        if (ph == "X") {
            ++completes;
            run_tids.insert(ev.at("tid").asUInt());
            EXPECT_GE(ev.at("ts").asDouble(), 0.0);
            EXPECT_GT(ev.at("dur").asDouble(), 0.0);
        } else if (ph == "i") {
            ++instants;
        }
    }
    // One process-name record per track (coordinator + worker).
    EXPECT_EQ(metadata, 2u);
    EXPECT_EQ(completes, 3u);
    EXPECT_GE(instants, 2u); // sweep_start + stored at least.
    // d1/d2 overlap so they need two lanes; d3 starts after d1 ends
    // and reuses a freed lane — never a third.
    EXPECT_EQ(run_tids.size(), 2u);
    // Timestamps are relative µs: the earliest event sits at zero.
    EXPECT_NEAR(min_ts, 0.0, 1.0);
}

} // namespace
} // namespace smt
