/**
 * @file
 * Tests for the statistics package: derived metrics, aggregation, and
 * table rendering.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "stats/table.hh"

namespace smt
{
namespace
{

TEST(SimStats, IpcComputation)
{
    SimStats s;
    s.cycles = 1000;
    s.committedInstructions = 2500;
    EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
}

TEST(SimStats, ZeroCyclesSafe)
{
    SimStats s;
    EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(s.branchMispredictRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.wrongPathFetchedFraction(), 0.0);
    EXPECT_DOUBLE_EQ(s.avgQueuePopulation(), 0.0);
}

TEST(SimStats, UselessIssueFraction)
{
    SimStats s;
    s.issuedInstructions = 100;
    s.issuedWrongPath = 4;
    s.optimisticSquashes = 3;
    EXPECT_DOUBLE_EQ(s.uselessIssueFraction(), 0.07);
}

TEST(SimStats, CacheRates)
{
    CacheStats c;
    c.accesses = 200;
    c.misses = 50;
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
    EXPECT_DOUBLE_EQ(c.mpki(1000), 50.0);
}

TEST(SimStats, AddAggregates)
{
    SimStats a;
    a.cycles = 10;
    a.committedInstructions = 20;
    a.icache.accesses = 5;
    a.icache.misses = 1;
    a.condBranches = 4;
    a.combinedQueuePopulation.sample(10);

    SimStats b;
    b.cycles = 30;
    b.committedInstructions = 60;
    b.icache.accesses = 15;
    b.icache.misses = 3;
    b.condBranches = 8;
    b.combinedQueuePopulation.sample(20);

    a.add(b);
    EXPECT_EQ(a.cycles, 40u);
    EXPECT_EQ(a.committedInstructions, 80u);
    EXPECT_EQ(a.icache.accesses, 20u);
    EXPECT_EQ(a.icache.misses, 4u);
    EXPECT_EQ(a.condBranches, 12u);
    EXPECT_DOUBLE_EQ(a.avgQueuePopulation(), 15.0);
    EXPECT_DOUBLE_EQ(a.ipc(), 2.0);
}

TEST(SimStats, ReportContainsKeyLines)
{
    SimStats s;
    s.cycles = 100;
    s.committedInstructions = 200;
    const std::string report = s.report();
    EXPECT_NE(report.find("IPC"), std::string::npos);
    EXPECT_NE(report.find("2.00"), std::string::npos);
    EXPECT_NE(report.find("I-cache miss rate"), std::string::npos);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"3", "4"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("# demo\n"), std::string::npos);
    EXPECT_NE(csv.find("a,b\n"), std::string::npos);
    EXPECT_NE(csv.find("1,2\n"), std::string::npos);
    EXPECT_NE(csv.find("3,4\n"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(2.456, 2), "2.46");
    EXPECT_EQ(fmtDouble(2.0, 1), "2.0");
    EXPECT_EQ(fmtPercent(0.123, 1), "12.3%");
    EXPECT_EQ(fmtPercent(0.5, 0), "50%");
}

} // namespace
} // namespace smt
