/**
 * @file
 * Property-based sweeps: invariants that must hold for *every* machine
 * configuration and workload, checked across the paper's whole
 * configuration space with parameterized gtest.
 *
 * Invariants:
 *  - determinism: identical (config, mix, seed) -> identical statistics;
 *  - register conservation: free + architectural + in-flight = total,
 *    at any point in execution (validateInvariants);
 *  - program order: committed instructions of each thread are exactly
 *    the oracle's correct-path stream (asserted inside commit);
 *  - accounting sanity: committed <= issued <= fetched bounds, fractions
 *    within [0,1], queue population <= capacity.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace smt
{
namespace
{

/** (threads, fetch policy, fetch partitioning index, issue policy). */
using ConfigPoint = std::tuple<unsigned, FetchPolicy, unsigned, IssuePolicy>;

SmtConfig
makeConfig(const ConfigPoint &point)
{
    const auto [threads, fetch_policy, partition, issue_policy] = point;
    SmtConfig cfg = presets::baseSmt(threads);
    cfg.fetchPolicy = fetch_policy;
    cfg.issuePolicy = issue_policy;
    switch (partition) {
      case 0: presets::setFetchPartition(cfg, 1, 8); break;
      case 1: presets::setFetchPartition(cfg, 2, 4); break;
      case 2: presets::setFetchPartition(cfg, 2, 8); break;
      default: presets::setFetchPartition(cfg, 4, 2); break;
    }
    return cfg;
}

std::string
pointName(const ::testing::TestParamInfo<ConfigPoint> &info)
{
    const auto [threads, fp, part, ip] = info.param;
    std::string s = std::to_string(threads) + "T_";
    s += toString(fp);
    s += "_p" + std::to_string(part) + "_";
    s += toString(ip);
    return s;
}

class ConfigSweep : public ::testing::TestWithParam<ConfigPoint>
{
};

TEST_P(ConfigSweep, RunsWithInvariantsIntact)
{
    const SmtConfig cfg = makeConfig(GetParam());
    Simulator sim(cfg, mixForRun(cfg.numThreads, 1));
    for (int chunk = 0; chunk < 8; ++chunk) {
        sim.run(800);
        sim.core().validateInvariants();
    }
    const SimStats &s = sim.stats();
    EXPECT_GT(s.committedInstructions, 0u);
    EXPECT_LE(s.committedInstructions, s.fetchedInstructions);
    EXPECT_LE(s.wrongPathFetchedFraction(), 1.0);
    EXPECT_LE(s.uselessIssueFraction(), 1.0);
    EXPECT_LE(s.intIQFullFraction(), 1.0);
    EXPECT_LE(s.avgQueuePopulation(),
              cfg.intQueueEntries + cfg.fpQueueEntries);
}

TEST_P(ConfigSweep, Deterministic)
{
    const SmtConfig cfg = makeConfig(GetParam());
    Simulator a(cfg, mixForRun(cfg.numThreads, 2));
    Simulator b(cfg, mixForRun(cfg.numThreads, 2));
    a.run(4000);
    b.run(4000);
    EXPECT_EQ(a.stats().committedInstructions,
              b.stats().committedInstructions);
    EXPECT_EQ(a.stats().issuedInstructions, b.stats().issuedInstructions);
    EXPECT_EQ(a.stats().fetchedWrongPath, b.stats().fetchedWrongPath);
    EXPECT_EQ(a.stats().optimisticSquashes, b.stats().optimisticSquashes);
    EXPECT_EQ(a.stats().dcache.misses, b.stats().dcache.misses);
    EXPECT_EQ(a.stats().icache.misses, b.stats().icache.misses);
}

INSTANTIATE_TEST_SUITE_P(
    FetchPolicySpace, ConfigSweep,
    ::testing::Combine(::testing::Values(1u, 3u, 8u),
                       ::testing::Values(FetchPolicy::RoundRobin,
                                         FetchPolicy::BrCount,
                                         FetchPolicy::MissCount,
                                         FetchPolicy::ICount,
                                         FetchPolicy::IQPosn),
                       ::testing::Values(0u, 2u),
                       ::testing::Values(IssuePolicy::OldestFirst)),
    pointName);

INSTANTIATE_TEST_SUITE_P(
    IssuePolicySpace, ConfigSweep,
    ::testing::Combine(::testing::Values(2u, 6u),
                       ::testing::Values(FetchPolicy::ICount),
                       ::testing::Values(1u, 3u),
                       ::testing::Values(IssuePolicy::OldestFirst,
                                         IssuePolicy::OptLast,
                                         IssuePolicy::SpecLast,
                                         IssuePolicy::BranchFirst)),
    pointName);

// ---- Structural knob sweeps ------------------------------------------------

class KnobSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(KnobSweep, TinyRegisterFilesNeverBreakInvariants)
{
    // Squeeze the renaming pool hard: correctness must be unaffected.
    SmtConfig cfg = presets::baseSmt(4);
    cfg.excessRegisters = GetParam();
    Simulator sim(cfg, mixForRun(4, 3));
    sim.run(5000);
    sim.core().validateInvariants();
    EXPECT_GT(sim.stats().committedInstructions, 100u);
}

INSTANTIATE_TEST_SUITE_P(ExcessRegisters, KnobSweep,
                         ::testing::Values(4u, 12u, 40u, 100u, 300u));

class QueueSweep : public ::testing::TestWithParam<std::pair<unsigned,
                                                             unsigned>>
{
};

TEST_P(QueueSweep, QueueGeometryVariantsRun)
{
    const auto [entries, window] = GetParam();
    SmtConfig cfg = presets::icount28(4);
    cfg.intQueueEntries = entries;
    cfg.fpQueueEntries = entries;
    cfg.iqSearchWindow = window;
    Simulator sim(cfg, mixForRun(4, 4));
    sim.run(5000);
    sim.core().validateInvariants();
    EXPECT_GT(sim.stats().committedInstructions, 500u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, QueueSweep,
    ::testing::Values(std::pair<unsigned, unsigned>{8, 8},
                      std::pair<unsigned, unsigned>{32, 16},
                      std::pair<unsigned, unsigned>{64, 32},
                      std::pair<unsigned, unsigned>{64, 64},
                      std::pair<unsigned, unsigned>{128, 32}));

class SpeculationSweep
    : public ::testing::TestWithParam<std::tuple<SpeculationMode, bool,
                                                 bool>>
{
};

TEST_P(SpeculationSweep, RestrictionCombinationsStaySound)
{
    const auto [mode, itag, perfect] = GetParam();
    SmtConfig cfg = presets::icount28(3);
    cfg.speculation = mode;
    cfg.itagEarlyLookup = itag;
    cfg.perfectBranchPrediction = perfect;
    Simulator sim(cfg, mixForRun(3, 5));
    sim.run(6000);
    sim.core().validateInvariants();
    EXPECT_GT(sim.stats().committedInstructions, 200u);
    if (perfect) {
        EXPECT_EQ(sim.stats().fetchedWrongPath, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Restrictions, SpeculationSweep,
    ::testing::Combine(::testing::Values(SpeculationMode::Full,
                                         SpeculationMode::NoPassBranch,
                                         SpeculationMode::NoWrongPathIssue),
                       ::testing::Bool(), ::testing::Bool()));

// ---- Seed robustness ----------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, EveryProgramSeedExecutesSoundly)
{
    SmtConfig cfg = presets::baseSmt(2);
    cfg.seed = GetParam();
    Simulator sim(cfg, {Benchmark::Xlisp, Benchmark::Tomcatv});
    sim.run(6000);
    sim.core().validateInvariants();
    EXPECT_GT(sim.stats().committedInstructions, 500u);
    EXPECT_GT(sim.stats().condBranches, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u,
                                           0xDEADBEEFu));

} // namespace
} // namespace smt
