/**
 * @file
 * Tests for the observability layer: the metrics registry (atomic
 * counters under contention, histogram bucket-edge placement, JSON
 * snapshot round-trip) and the JSONL trace writer (well-formed lines,
 * stable trace id, environment inheritance for worker processes).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sweep/json.hh"

namespace smt
{
namespace
{

namespace fs = std::filesystem;

/** A scratch file path removed when the test ends. */
class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_((fs::temp_directory_path()
                 / ("smtobs_test_" + tag + "_"
                    + std::to_string(std::random_device{}())))
                    .string())
    {
    }

    ~TempFile()
    {
        std::error_code ec;
        fs::remove(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// ---- Counters and gauges ---------------------------------------------------

TEST(Metrics, ConcurrentIncrementsAreLossless)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("test.hits");

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t)
        workers.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    for (std::thread &w : workers)
        w.join();

    EXPECT_EQ(c.value(), kThreads * kPerThread);
    // Same name, same instrument: the reference is stable.
    EXPECT_EQ(&reg.counter("test.hits"), &c);
    EXPECT_EQ(reg.counter("test.hits").value(), kThreads * kPerThread);
}

TEST(Metrics, GaugeTracksLevelNotVolume)
{
    obs::Registry reg;
    obs::Gauge &g = reg.gauge("test.live");
    g.add(3);
    g.add(-1);
    EXPECT_EQ(g.value(), 2);
    g.set(-7);
    EXPECT_EQ(g.value(), -7);
}

// ---- Histogram bucket edges ------------------------------------------------

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds)
{
    obs::Registry reg;
    obs::LatencyHistogram &h = reg.histogram("test.lat", {10, 100});

    h.observe(0);    // first bucket.
    h.observe(10);   // exactly on a bound: still that bucket.
    h.observe(11);   // just past: next bucket.
    h.observe(100);  // last finite bound.
    h.observe(101);  // overflow bucket.
    h.observe(~0ull); // far overflow.

    const std::vector<std::uint64_t> counts = h.counts();
    ASSERT_EQ(counts.size(), 3u); // two bounds + overflow.
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 2u);
    EXPECT_EQ(h.samples(), 6u);

    // Re-registration keeps the first bounds and the same instrument.
    EXPECT_EQ(&reg.histogram("test.lat", {1, 2, 3}), &h);
    EXPECT_EQ(h.bounds().size(), 2u);

    // The default request-latency bounds are sorted and nontrivial.
    const std::vector<std::uint64_t> defaults =
        obs::defaultLatencyBoundsUs();
    ASSERT_GE(defaults.size(), 2u);
    for (std::size_t i = 1; i < defaults.size(); ++i)
        EXPECT_LT(defaults[i - 1], defaults[i]);
}

// ---- Snapshot round-trip ---------------------------------------------------

TEST(Metrics, SnapshotRoundTripsThroughJsonText)
{
    obs::Registry reg;
    reg.counter("a.requests").inc(42);
    reg.counter("b.errors"); // registered but never incremented.
    reg.gauge("live").set(3);
    obs::LatencyHistogram &h = reg.histogram("lat", {5, 50});
    h.observe(4);
    h.observe(40);
    h.observe(400);

    const sweep::Json snap = reg.snapshot();
    sweep::Json parsed;
    ASSERT_TRUE(sweep::Json::parse(snap.dump(), parsed));

    EXPECT_EQ(parsed.at("counters").at("a.requests").asUInt(), 42u);
    EXPECT_EQ(parsed.at("counters").at("b.errors").asUInt(), 0u);
    EXPECT_EQ(parsed.at("gauges").at("live").asInt(), 3);
    const sweep::Json &lat = parsed.at("histograms").at("lat");
    EXPECT_EQ(lat.at("bounds").size(), 2u);
    EXPECT_EQ(lat.at("counts").size(), 3u);
    EXPECT_EQ(lat.at("counts")[0].asUInt(), 1u);
    EXPECT_EQ(lat.at("counts")[1].asUInt(), 1u);
    EXPECT_EQ(lat.at("counts")[2].asUInt(), 1u);
    EXPECT_EQ(lat.at("samples").asUInt(), 3u);
    EXPECT_EQ(lat.at("sum").asUInt(), 444u);
}

// ---- Trace writer ----------------------------------------------------------

TEST(Trace, EmitsOneWellFormedJsonObjectPerLine)
{
    TempFile file("trace");
    std::string trace_id;
    {
        obs::TraceWriter writer(file.path());
        trace_id = writer.traceId();
        EXPECT_FALSE(trace_id.empty());

        sweep::Json fields = sweep::Json::object();
        fields.set("digest", sweep::Json(std::string(32, 'a')));
        writer.emit("queued", std::move(fields));
        writer.emit("stored", sweep::Json());
    }

    std::ifstream in(file.path());
    std::string line;
    std::vector<sweep::Json> events;
    while (std::getline(in, line)) {
        sweep::Json j;
        ASSERT_TRUE(sweep::Json::parse(line, j)) << line;
        events.push_back(std::move(j));
    }
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].at("event").asString(), "queued");
    EXPECT_EQ(events[0].at("trace").asString(), trace_id);
    EXPECT_EQ(events[0].at("digest").asString(), std::string(32, 'a'));
    EXPECT_GT(events[0].at("ts").asDouble(), 0.0);
    EXPECT_EQ(events[1].at("event").asString(), "stored");
    EXPECT_EQ(events[1].at("trace").asString(), trace_id);

    // A second writer on the same path appends rather than truncates.
    {
        obs::TraceWriter more(file.path(), trace_id);
        more.emit("resumed", sweep::Json());
    }
    std::ifstream again(file.path());
    std::size_t lines = 0;
    while (std::getline(again, line))
        ++lines;
    EXPECT_EQ(lines, 3u);
}

TEST(Trace, IdComesFromTheEnvironmentWhenNotGiven)
{
    TempFile file("env");
    ::setenv(obs::kTraceEnvVar, "feedface00112233", 1);
    {
        obs::TraceWriter writer(file.path());
        EXPECT_EQ(writer.traceId(), "feedface00112233");
    }
    ::unsetenv(obs::kTraceEnvVar);

    // Without the environment, ids are minted fresh and distinct.
    obs::TraceWriter a(file.path());
    obs::TraceWriter b(file.path());
    EXPECT_NE(a.traceId(), b.traceId());
    EXPECT_EQ(a.traceId().size(), 16u);
}

TEST(Trace, ExplicitIdOutranksTheEnvironment)
{
    // Precedence: explicit constructor arg > SMTSWEEP_TRACE_ID >
    // fresh — a tool's --trace flag must win over an inherited
    // coordinator id.
    TempFile file("prec");
    ::setenv(obs::kTraceEnvVar, "feedface00112233", 1);
    {
        obs::TraceWriter writer(file.path(), "explicit-id");
        EXPECT_EQ(writer.traceId(), "explicit-id");
    }
    // An empty env var counts as unset, never as an empty id.
    ::setenv(obs::kTraceEnvVar, "", 1);
    {
        obs::TraceWriter writer(file.path());
        EXPECT_FALSE(writer.traceId().empty());
    }
    ::unsetenv(obs::kTraceEnvVar);
}

TEST(Trace, EmitStampsBothClocksAndReturnsTheExactLine)
{
    TempFile file("clocks");
    obs::TraceWriter writer(file.path());
    sweep::Json fields = sweep::Json::object();
    fields.set("dur_us", sweep::Json(1250.0));
    const std::string line = writer.emit("run", std::move(fields));

    // The return value is the written line, byte for byte (minus the
    // newline) — the contract store-side ingest dedup relies on.
    std::ifstream in(file.path());
    std::string written;
    ASSERT_TRUE(std::getline(in, written));
    EXPECT_EQ(written, line);

    sweep::Json j;
    ASSERT_TRUE(sweep::Json::parse(line, j));
    EXPECT_GT(j.at("ts").asDouble(), 0.0);
    EXPECT_GT(j.at("mono").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(j.at("dur_us").asDouble(), 1250.0);

    // The monotonic clock never steps backwards between events.
    const double m0 = obs::monoSeconds();
    const double m1 = obs::monoSeconds();
    EXPECT_GE(m1, m0);
}

TEST(Trace, ValidTraceIdRejectsFileSystemMetacharacters)
{
    // Trace ids become server-side file names (traces/<id>.jsonl);
    // anything that could traverse or break out must be rejected.
    EXPECT_TRUE(obs::validTraceId("feedface00112233"));
    EXPECT_TRUE(obs::validTraceId("A-b_9"));
    EXPECT_TRUE(obs::validTraceId(obs::newTraceId()));
    EXPECT_FALSE(obs::validTraceId(""));
    EXPECT_FALSE(obs::validTraceId("../../etc/passwd"));
    EXPECT_FALSE(obs::validTraceId("a/b"));
    EXPECT_FALSE(obs::validTraceId("a.b"));
    EXPECT_FALSE(obs::validTraceId("a b"));
    EXPECT_FALSE(obs::validTraceId(std::string(65, 'a')));
    EXPECT_TRUE(obs::validTraceId(std::string(64, 'a')));
}

} // namespace
} // namespace smt
