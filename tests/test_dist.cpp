/**
 * @file
 * Tests for the distributed sweep subsystem: shard planning
 * (disjointness, completeness, stability, balance), the hardened
 * result store (in-progress markers, orphan detection, manifest),
 * progress aggregation, and the acceptance bar — a sharded run merged
 * from a shared store is bit-identical to a serial sweep.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <thread>

#include "dist/coordinator.hh"
#include "dist/progress.hh"
#include "dist/shard.hh"
#include "sweep/digest.hh"
#include "sweep/experiments.hh"
#include "sweep/result_store.hh"
#include "sweep/runner.hh"
#include "sweep/serialize.hh"

namespace smt::dist
{
namespace
{

namespace fs = std::filesystem;
using sweep::NamedExperiment;
using sweep::SweepPoint;

/** Tiny budgets so a whole grid measures in well under a second. */
MeasureOptions
tinyOptions()
{
    MeasureOptions opts;
    opts.cyclesPerRun = 1200;
    opts.warmupCycles = 300;
    opts.runs = 2;
    return opts;
}

/** A scratch directory removed when the test ends. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((fs::temp_directory_path()
                 / ("smtdist_test_" + tag + "_"
                    + std::to_string(std::random_device{}())))
                    .string())
    {
        fs::create_directories(path_);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::vector<SweepPoint>
fig5Grid()
{
    const NamedExperiment *fig5 = sweep::findExperiment("fig5");
    EXPECT_NE(fig5, nullptr);
    return fig5->spec.expand(tinyOptions());
}

// ---- Shard planning --------------------------------------------------------

TEST(ShardPlan, PartitionIsDisjointAndComplete)
{
    const std::vector<SweepPoint> grid = fig5Grid();
    for (unsigned shards : {1u, 2u, 3u, 7u}) {
        const ShardPlan plan = planShards(grid, shards);
        ASSERT_EQ(plan.shardOf.size(), grid.size());
        ASSERT_EQ(plan.members.size(), shards);

        // Every point is owned by exactly one shard, and the members
        // lists are exactly the inverse of shardOf.
        std::set<std::size_t> seen;
        for (unsigned s = 0; s < shards; ++s) {
            for (std::size_t idx : plan.members[s]) {
                EXPECT_EQ(plan.shardOf[idx], s);
                EXPECT_TRUE(seen.insert(idx).second)
                    << "point " << idx << " in two shards";
            }
        }
        EXPECT_EQ(seen.size(), grid.size());
    }
}

TEST(ShardPlan, StableAcrossRunsAndPointOrderings)
{
    const std::vector<SweepPoint> grid = fig5Grid();
    const ShardPlan plan = planShards(grid, 3);
    EXPECT_EQ(planShards(grid, 3).shardOfDigest, plan.shardOfDigest);

    // Reversing and shuffling the points must not move any digest to
    // a different shard: the plan is a function of the digest set.
    std::vector<SweepPoint> reversed(grid.rbegin(), grid.rend());
    EXPECT_EQ(planShards(reversed, 3).shardOfDigest, plan.shardOfDigest);

    std::vector<SweepPoint> shuffled = grid;
    std::mt19937 rng(7);
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    EXPECT_EQ(planShards(shuffled, 3).shardOfDigest, plan.shardOfDigest);

    // And the per-point ownership follows each point's digest.
    const ShardPlan rplan = planShards(reversed, 3);
    for (std::size_t i = 0; i < reversed.size(); ++i) {
        const std::string digest = sweep::measurementDigest(
            reversed[i].config, reversed[i].options);
        EXPECT_EQ(rplan.shardOf[i], plan.shardOfDigest.at(digest));
    }
}

TEST(ShardPlan, BalancesEstimatedCost)
{
    const std::vector<SweepPoint> grid = fig5Grid();
    const ShardPlan plan = planShards(grid, 4);

    // The greedy LPT bound: no two bins differ by more than the
    // largest single unit of work.
    double max_unit = 0.0;
    for (const SweepPoint &p : grid)
        max_unit = std::max(max_unit, estimatedPointCost(p));
    const auto [lo, hi] =
        std::minmax_element(plan.cost.begin(), plan.cost.end());
    EXPECT_LE(*hi - *lo, max_unit);
    EXPECT_GT(*lo, 0.0) << "a shard was left without work";
}

TEST(ShardPlan, DuplicateDigestsShareAShard)
{
    std::vector<SweepPoint> grid = fig5Grid();
    // Append a copy of an existing point: same digest, so it must
    // land in its twin's shard rather than being balanced separately.
    grid.push_back(grid[3]);
    const ShardPlan plan = planShards(grid, 5);
    EXPECT_EQ(plan.shardOf.back(), plan.shardOf[3]);
}

TEST(ShardPlan, ObservedCostsOutrankEstimates)
{
    const std::vector<SweepPoint> grid = fig5Grid();
    const ShardPlan base = planShards(grid, 3);

    // Hints that invert reality: the digests the estimator thinks are
    // cheap become the most expensive. The plan must follow the hints
    // (the hinted costs land in plan.cost), stay a pure function of
    // them, and differ from the unhinted plan.
    CostHints hints;
    double weight = 1000.0;
    for (auto it = base.shardOfDigest.rbegin();
         it != base.shardOfDigest.rend(); ++it) {
        hints[it->first] = weight;
        weight *= 0.5;
    }
    const ShardPlan hinted = planShards(grid, 3, hints);
    EXPECT_EQ(planShards(grid, 3, hints).shardOfDigest,
              hinted.shardOfDigest);

    double total_hinted = 0.0;
    for (const auto &[digest, cost] : hints)
        total_hinted += cost;
    double total_planned = 0.0;
    for (double c : hinted.cost)
        total_planned += c;
    EXPECT_NEAR(total_planned, total_hinted, 1e-6);

    // LPT balance holds under the hinted weights too.
    double max_unit = 0.0;
    for (const auto &[digest, cost] : hints)
        max_unit = std::max(max_unit, cost);
    const auto [lo, hi] =
        std::minmax_element(hinted.cost.begin(), hinted.cost.end());
    EXPECT_LE(*hi - *lo, max_unit);
}

TEST(ShardPlan, CostHintsRoundTripThroughManifests)
{
    sweep::Json manifest = sweep::Json::object();
    sweep::Json costs = sweep::Json::object();
    costs.set(std::string(32, 'a'), sweep::Json(1.5));
    costs.set(std::string(32, 'b'), sweep::Json(0.25));
    costs.set(std::string(32, 'c'), sweep::Json(-1.0)); // ignored.
    manifest.set("observedCosts", std::move(costs));

    const CostHints hints = costHintsFromManifest(manifest);
    ASSERT_EQ(hints.size(), 2u);
    EXPECT_NEAR(hints.at(std::string(32, 'a')), 1.5, 1e-12);
    EXPECT_NEAR(hints.at(std::string(32, 'b')), 0.25, 1e-12);

    EXPECT_TRUE(costHintsFromManifest(sweep::Json::object()).empty());
}

TEST(ShardPlan, MoreShardsThanWorkLeavesTrailingShardsEmpty)
{
    const NamedExperiment *smoke = sweep::findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);
    const std::vector<SweepPoint> grid = smoke->spec.expand(tinyOptions());
    const ShardPlan plan = planShards(grid, grid.size() + 3);
    std::size_t populated = 0;
    for (const auto &members : plan.members)
        populated += members.empty() ? 0 : 1;
    EXPECT_EQ(populated, grid.size());
}

// ---- Result store ----------------------------------------------------------

TEST(ResultStore, MarkersDriveWorkStates)
{
    TempDir dir("store");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());

    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = sweep::measurementDigest(cfg, opts);

    EXPECT_EQ(store->state(digest), sweep::WorkState::Pending);

    store->markInProgress(digest);
    EXPECT_EQ(store->state(digest), sweep::WorkState::InProgress);

    // store() persists the entry and clears the marker.
    const DataPoint measured = measure(cfg, opts);
    store->store(digest, cfg, opts, measured.stats);
    EXPECT_EQ(store->state(digest), sweep::WorkState::Done);
    EXPECT_FALSE(
        fs::exists(dir.path() + "/" + digest + ".inprogress"));

    const std::optional<SimStats> hit = store->lookup(digest);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(sweep::toJson(*hit).dump(),
              sweep::toJson(measured.stats).dump());
    EXPECT_EQ(store->storedDigests(),
              std::vector<std::string>{digest});
}

TEST(ResultStore, DeadWritersAreOrphans)
{
    TempDir dir("orphan");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());
    const std::string digest(32, 'b');

    // A marker left by a crashed process on this host: its pid cannot
    // be alive (Linux pids are bounded well below this value).
    char host[256] = {};
    ASSERT_EQ(::gethostname(host, sizeof host - 1), 0);
    {
        std::ofstream marker(dir.path() + "/" + digest + ".inprogress");
        marker << "{\"pid\": 999999999, \"host\": \"" << host << "\"}";
    }
    EXPECT_EQ(store->state(digest), sweep::WorkState::Orphaned);

    // A marker from a foreign host cannot be probed: presumed live.
    {
        std::ofstream marker(dir.path() + "/" + digest + ".inprogress");
        marker << "{\"pid\": 999999999, \"host\": \"elsewhere\"}";
    }
    EXPECT_EQ(store->state(digest), sweep::WorkState::InProgress);

    // A torn marker (crash mid-write) is an orphan, not an error.
    {
        std::ofstream marker(dir.path() + "/" + digest + ".inprogress");
        marker << "{\"pid\": 99";
    }
    EXPECT_EQ(store->state(digest), sweep::WorkState::Orphaned);
}

TEST(ResultStore, DeclaredOrphansAndClaimCas)
{
    TempDir dir("cas");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());
    const std::string digest(32, 'd');

    // A coordinator-declared orphan is orphaned for every observer,
    // whatever host probes it (pid 0 can never be alive).
    store->markOrphaned(digest);
    EXPECT_EQ(store->state(digest), sweep::WorkState::Orphaned);

    // CAS: the first adopter presenting the current marker bytes
    // wins and owns the work; its own retry reads as success; a rival
    // with the stale bytes loses.
    const std::string marker = store->readMarkerText(digest);
    ASSERT_FALSE(marker.empty());
    EXPECT_TRUE(store->tryAdopt(digest, marker));
    EXPECT_EQ(store->state(digest), sweep::WorkState::InProgress);
    EXPECT_TRUE(store->tryAdopt(digest, marker));
    sweep::Json rival = sweep::Json::object();
    rival.set("pid", sweep::Json(std::uint64_t{999999999}));
    rival.set("host", sweep::Json("elsewhere"));
    static_cast<sweep::LocalDirStore *>(store.get())
        ->writeMarker(digest, rival);
    EXPECT_FALSE(store->tryAdopt(digest, marker));

    // Finished work is not adoptable, and declaring it orphaned is a
    // no-op.
    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string done = sweep::measurementDigest(cfg, opts);
    store->store(done, cfg, opts, measure(cfg, opts).stats);
    store->markOrphaned(done);
    EXPECT_EQ(store->state(done), sweep::WorkState::Done);
    EXPECT_FALSE(store->tryAdopt(done, store->readMarkerText(done)));
}

TEST(ResultStore, ObservedCostRoundTrips)
{
    TempDir dir("cost");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());
    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = sweep::measurementDigest(cfg, opts);

    EXPECT_FALSE(store->observedCost(digest).has_value());
    store->store(digest, cfg, opts, measure(cfg, opts).stats, 2.5);
    const std::optional<double> cost = store->observedCost(digest);
    ASSERT_TRUE(cost.has_value());
    EXPECT_NEAR(*cost, 2.5, 1e-12);

    // Entries stored without timing (pure replays) report none.
    const std::string untimed(32, 'e');
    store->store(untimed, cfg, opts, measure(cfg, opts).stats);
    EXPECT_FALSE(store->observedCost(untimed).has_value());
}

TEST(ResultStore, ManifestRoundTripsAndIsNotAnEntry)
{
    TempDir dir("manifest");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());
    EXPECT_FALSE(store->readManifest().has_value());

    sweep::Json manifest = sweep::Json::object();
    manifest.set("experiment", sweep::Json("smoke"));
    manifest.set("shardCount", sweep::Json(2u));
    store->writeManifest(manifest);

    const std::optional<sweep::Json> read = store->readManifest();
    ASSERT_TRUE(read.has_value());
    EXPECT_TRUE(*read == manifest);

    // The manifest file must not read as a cached result.
    EXPECT_TRUE(store->storedDigests().empty());
}

TEST(ResultStore, TokenResolutionPrecedenceAndFirstLine)
{
    TempDir dir("token");
    const std::string path = dir.path() + "/token";
    {
        std::ofstream out(path);
        out << "  tok-123 \n# provisioned 2026-07\n";
    }
    // The file contract is "first line, trimmed" — later lines must
    // never leak into the Authorization header.
    EXPECT_EQ(sweep::resolveStoreToken("", path), "tok-123");
    // An explicit token outranks the file...
    EXPECT_EQ(sweep::resolveStoreToken("explicit", path), "explicit");
    // ...and the environment backstops both (how workers receive it).
    ASSERT_EQ(::setenv("SMTSTORE_TOKEN", " env-tok \n", 1), 0);
    EXPECT_EQ(sweep::resolveStoreToken("", ""), "env-tok");
    ::unsetenv("SMTSTORE_TOKEN");
    EXPECT_EQ(sweep::resolveStoreToken("", ""), "");
}

// ---- Marker TTL leases -----------------------------------------------------

/** Seconds since the epoch on the system clock (what deadlines use). */
double
epochNow()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** A marker from an unprobeable foreign host with a given deadline —
 *  the cross-host worker-death case only the TTL can detect. */
void
writeForeignMarker(sweep::ResultStore &store, const std::string &digest,
                   double deadline)
{
    sweep::Json marker = sweep::Json::object();
    marker.set("pid", sweep::Json(std::uint64_t{999999999}));
    marker.set("host", sweep::Json("elsewhere"));
    marker.set("deadline", sweep::Json(deadline));
    static_cast<sweep::LocalDirStore &>(store).writeMarker(digest,
                                                           marker);
}

TEST(MarkerTtl, ExpiryIsJudgedWithClockSkewSlack)
{
    TempDir dir("ttl");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());
    const std::string digest(32, 'a');

    // Live lease: in progress, however unprobeable the host is.
    writeForeignMarker(*store, digest, epochNow() + 60.0);
    EXPECT_EQ(store->state(digest), sweep::WorkState::InProgress);

    // Expired — but by less than the slack (default 10 s): clock skew
    // between hosts must not orphan a healthy worker.
    writeForeignMarker(*store, digest, epochNow() - 2.0);
    EXPECT_EQ(store->state(digest), sweep::WorkState::InProgress);

    // Expired beyond the slack: orphaned, no coordinator involved.
    writeForeignMarker(*store, digest, epochNow() - 3600.0);
    EXPECT_EQ(store->state(digest), sweep::WorkState::Orphaned);

    // The slack is tunable (tests and skew-hostile deployments):
    // under a tiny slack the same 2-second expiry is already death.
    ASSERT_EQ(::setenv("SMTSWEEP_MARKER_SLACK", "0.5", 1), 0);
    writeForeignMarker(*store, digest, epochNow() - 2.0);
    EXPECT_EQ(store->state(digest), sweep::WorkState::Orphaned);
    ::unsetenv("SMTSWEEP_MARKER_SLACK");

    // Markers without a deadline (an older writer) keep the old
    // semantics: foreign hosts are presumed live.
    sweep::Json legacy = sweep::Json::object();
    legacy.set("pid", sweep::Json(std::uint64_t{999999999}));
    legacy.set("host", sweep::Json("elsewhere"));
    static_cast<sweep::LocalDirStore *>(store.get())
        ->writeMarker(digest, legacy);
    EXPECT_EQ(store->state(digest), sweep::WorkState::InProgress);
}

TEST(MarkerTtl, HeartbeatKeepsLeasesFreshUntilRemoved)
{
    TempDir dir("heartbeat");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());
    const std::string digest(32, 'b');

    const double ttl = 0.3;
    store->markInProgress(digest, ttl);
    const std::string first = store->readMarkerText(digest);
    ASSERT_FALSE(first.empty());

    sweep::MarkerHeartbeat heartbeat(*store, ttl);
    heartbeat.add(digest);
    // Several refresh cadences later the lease has been rewritten
    // with a later deadline (same owner, fresher bytes).
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const std::string refreshed = store->readMarkerText(digest);
    ASSERT_FALSE(refreshed.empty());
    EXPECT_NE(refreshed, first);
    const sweep::Json a = sweep::Json::parseOrDie(first);
    const sweep::Json b = sweep::Json::parseOrDie(refreshed);
    EXPECT_GT(b.at("deadline").asDouble(), a.at("deadline").asDouble());
    EXPECT_EQ(a.at("pid").asUInt(), b.at("pid").asUInt());
    EXPECT_TRUE(sweep::sameMarkerOwner(refreshed, a));

    // After remove() the marker is left alone — clearing it sticks.
    // (A beat snapshotted just before remove() may still land; give
    // it a cadence to drain before clearing.)
    heartbeat.remove(digest);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    store->clearInProgress(digest);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_EQ(store->readMarkerText(digest), "");
}

TEST(MarkerTtl, StealLoopAdoptsExpiredLeasesWithoutACoordinator)
{
    // The cross-host death scenario, coordinator declaration disabled:
    // a worker on another host (unprobeable pid) took shard 0, marked
    // its digests, and was kill -9'd — all that remains is its markers
    // with expired leases. A surviving shard-1 worker's steal loop
    // must adopt and measure every one of them from the marker TTL
    // alone.
    const NamedExperiment *smoke = sweep::findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);

    TempDir dir("ttlsteal");
    sweep::RunnerOptions ropts;
    ropts.measure = tinyOptions();
    ropts.cacheDir = dir.path();

    const std::vector<SweepPoint> grid =
        smoke->spec.expand(ropts.measure);
    const ShardPlan plan = planShards(grid, 2);
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());
    std::size_t dead_digests = 0;
    for (const auto &[digest, shard] : plan.shardOfDigest) {
        if (shard != 0)
            continue;
        writeForeignMarker(*store, digest, epochNow() - 3600.0);
        ++dead_digests;
    }
    ASSERT_GT(dead_digests, 0u);

    ShardWorkerOptions wopts;
    wopts.index = 1;
    wopts.count = 2;
    wopts.steal.enabled = true;
    wopts.steal.waitSeconds = 5.0;
    const ShardRunResult r = runShard(smoke->spec, ropts, wopts);
    EXPECT_EQ(r.stolen, dead_digests);

    // Nothing left behind: every digest in the grid is Done and the
    // merge replays entirely from the store.
    for (const auto &[digest, shard] : plan.shardOfDigest) {
        (void)shard;
        EXPECT_EQ(store->state(digest), sweep::WorkState::Done);
    }
    sweep::RunnerOptions merge = ropts;
    merge.requireCached = true;
    const sweep::SweepOutcome merged =
        sweep::runSweep(smoke->spec, merge);
    EXPECT_EQ(merged.cacheMisses, 0u);
}

// ---- Progress --------------------------------------------------------------

TEST(Progress, WriterRecordsAndReaderAggregates)
{
    TempDir dir("progress");
    const std::string p0 = dir.path() + "/shard-0.jsonl";
    const std::string p1 = dir.path() + "/shard-1.jsonl";

    {
        ProgressWriter w0(p0, 0, 3);
        w0.update(1, 1);
        w0.update(2, 1);
        ProgressWriter w1(p1, 1, 2);
        w1.update(1, 0);
        w1.finish(2, 0);
    }

    ProgressRecord r0, r1;
    ASSERT_TRUE(readLatestProgress(p0, r0));
    ASSERT_TRUE(readLatestProgress(p1, r1));
    EXPECT_EQ(r0.pointsDone, 2u);
    EXPECT_EQ(r0.pointsTotal, 3u);
    EXPECT_EQ(r0.cacheHits, 1u);
    EXPECT_FALSE(r0.finished);
    EXPECT_TRUE(r1.finished);

    const ProgressSummary sum = aggregateProgress({r0, r1});
    EXPECT_EQ(sum.pointsDone, 4u);
    EXPECT_EQ(sum.pointsTotal, 5u);
    EXPECT_EQ(sum.cacheHits, 1u);
    EXPECT_EQ(sum.shardsReporting, 2u);
    EXPECT_EQ(sum.shardsFinished, 1u);

    // 4 points in 8s -> 2s per point -> 1 left -> eta 2s.
    EXPECT_NEAR(sum.etaSeconds(8.0), 2.0, 1e-9);
    EXPECT_FALSE(renderProgressLine(sum, 2, 8.0).empty());
}

TEST(Progress, TornTrailingLinesAreIgnored)
{
    TempDir dir("torn");
    const std::string path = dir.path() + "/shard-0.jsonl";
    {
        ProgressWriter w(path, 0, 4);
        w.update(3, 2);
    }
    { // Simulate a crash mid-append.
        std::ofstream out(path, std::ios::app);
        out << "{\"shard\":0,\"done\":4,\"tot";
    }
    ProgressRecord rec;
    ASSERT_TRUE(readLatestProgress(path, rec));
    EXPECT_EQ(rec.pointsDone, 3u);

    ProgressSummary empty;
    EXPECT_LT(empty.etaSeconds(1.0), 0.0); // no rate yet -> unknown.
    EXPECT_FALSE(readLatestProgress(dir.path() + "/absent.jsonl", rec));
}

// ---- The acceptance bar ----------------------------------------------------

TEST(Dist, WorkerArgvForwardsTheTraceFileAndNeverTheToken)
{
    dist::DistOptions opts;
    opts.shards = 2;
    opts.smtsweepPath = "/opt/smtsweep";
    opts.ropts.cacheDir = "http://store:8377";
    opts.ropts.storeToken = "super-secret-token";

    const auto has = [](const std::vector<std::string> &argv,
                        const std::string &flag) {
        return std::find(argv.begin(), argv.end(), flag) != argv.end();
    };
    const auto value_after = [](const std::vector<std::string> &argv,
                                const std::string &flag) -> std::string {
        const auto it = std::find(argv.begin(), argv.end(), flag);
        return it != argv.end() && it + 1 != argv.end() ? *(it + 1)
                                                        : "";
    };

    // A traced sweep hands the worker its trace file — the fix for
    // dist-mode span loss, where workers silently emitted nothing.
    const std::vector<std::string> traced = dist::workerShardArgs(
        opts, "smoke", 4, 1, true, "", "/tmp/trace.jsonl.shard1");
    EXPECT_EQ(value_after(traced, "--trace-out"),
              "/tmp/trace.jsonl.shard1");
    EXPECT_EQ(value_after(traced, "--store-url"), "http://store:8377");
    EXPECT_EQ(value_after(traced, "--shard"), "1/2");

    // An untraced sweep passes no --trace-out at all.
    const std::vector<std::string> untraced =
        dist::workerShardArgs(opts, "smoke", 4, 0, true, "", "");
    EXPECT_FALSE(has(untraced, "--trace-out"));

    // The token travels out of band (stdin / environment), never in
    // an argv that ps would show.
    for (const std::vector<std::string> &argv : {traced, untraced})
        for (const std::string &arg : argv)
            EXPECT_EQ(arg.find("super-secret-token"),
                      std::string::npos);

    // A directory locator forwards as --cache-dir instead.
    opts.ropts.cacheDir = "/shared/cache";
    const std::vector<std::string> local_store =
        dist::workerShardArgs(opts, "smoke", 1, 0, true, "", "");
    EXPECT_EQ(value_after(local_store, "--cache-dir"), "/shared/cache");
    EXPECT_FALSE(has(local_store, "--store-url"));
}

TEST(Dist, ShardedRunMergedFromSharedStoreMatchesSerialBitForBit)
{
    const NamedExperiment *smoke = sweep::findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);

    // The reference: a serial, cache-less sweep.
    sweep::RunnerOptions serial;
    serial.measure = tinyOptions();
    serial.measure.parallel = false;
    const sweep::SweepOutcome reference =
        runSweep(smoke->spec, serial);

    // Two shard runs (the worker protocol, in-process) into one store.
    TempDir dir("merge");
    sweep::RunnerOptions shard_opts;
    shard_opts.measure = tinyOptions();
    shard_opts.cacheDir = dir.path();
    const ShardRunResult s0 = runShard(smoke->spec, shard_opts, 0, 2);
    const ShardRunResult s1 = runShard(smoke->spec, shard_opts, 1, 2);
    EXPECT_EQ(s0.points + s1.points, reference.points.size());
    EXPECT_EQ(s0.cacheHits + s1.cacheHits, 0u);

    // The merge: a pure replay of the shared store.
    sweep::RunnerOptions merge_opts = shard_opts;
    merge_opts.requireCached = true; // would abort on any miss.
    const sweep::SweepOutcome merged =
        runSweep(smoke->spec, merge_opts);
    EXPECT_EQ(merged.cacheHits, merged.points.size());
    EXPECT_EQ(merged.cacheMisses, 0u);

    ASSERT_EQ(merged.points.size(), reference.points.size());
    for (std::size_t i = 0; i < merged.points.size(); ++i) {
        EXPECT_EQ(merged.points[i].digest, reference.points[i].digest);
        EXPECT_EQ(sweep::toJson(merged.points[i].data.stats).dump(),
                  sweep::toJson(reference.points[i].data.stats).dump());
    }
}

TEST(Dist, SurvivingWorkerAdoptsOrphanedDigestsInsteadOfRelaunch)
{
    const NamedExperiment *smoke = sweep::findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);

    // The reference: a serial, cache-less sweep.
    sweep::RunnerOptions serial;
    serial.measure = tinyOptions();
    serial.measure.parallel = false;
    const sweep::SweepOutcome reference = runSweep(smoke->spec, serial);

    TempDir dir("steal");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());
    const std::vector<SweepPoint> grid =
        smoke->spec.expand(tinyOptions());
    const ShardPlan plan = planShards(grid, 2);

    // Shard 0's worker "died" before finishing anything; the
    // coordinator declared its digests orphaned.
    std::size_t shard0_uniques = 0;
    for (const auto &[digest, shard] : plan.shardOfDigest) {
        if (shard == 0) {
            store->markOrphaned(digest);
            ++shard0_uniques;
        }
    }
    ASSERT_GT(shard0_uniques, 0u);

    // Shard 1 runs with stealing: it must finish its own slice, then
    // adopt and measure every orphan rather than leaving them behind.
    sweep::RunnerOptions ropts;
    ropts.measure = tinyOptions();
    ropts.cacheDir = dir.path();
    ShardWorkerOptions wopts;
    wopts.index = 1;
    wopts.count = 2;
    wopts.steal.enabled = true;
    wopts.steal.waitSeconds = 5.0;
    wopts.steal.pollSeconds = 0.01;
    const ShardRunResult r = runShard(smoke->spec, ropts, wopts);
    EXPECT_EQ(r.stolen, shard0_uniques);

    for (const auto &[digest, shard] : plan.shardOfDigest)
        EXPECT_EQ(store->state(digest), sweep::WorkState::Done)
            << digest << " of shard " << shard;

    // The merged result is still bit-identical to the serial run.
    sweep::RunnerOptions merge_opts = ropts;
    merge_opts.requireCached = true;
    const sweep::SweepOutcome merged = runSweep(smoke->spec, merge_opts);
    ASSERT_EQ(merged.points.size(), reference.points.size());
    for (std::size_t i = 0; i < merged.points.size(); ++i) {
        EXPECT_EQ(merged.points[i].digest, reference.points[i].digest);
        EXPECT_EQ(sweep::toJson(merged.points[i].data.stats).dump(),
                  sweep::toJson(reference.points[i].data.stats).dump());
    }
}

TEST(Dist, WorkersFollowTheManifestAssignmentWhenItMatches)
{
    const NamedExperiment *smoke = sweep::findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);
    TempDir dir("manifest_assign");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());

    const std::vector<SweepPoint> grid =
        smoke->spec.expand(tinyOptions());
    const ShardPlan plan = planShards(grid, 2);

    // A manifest that swaps every assignment relative to the local
    // plan: workers must obey it, not re-derive their own.
    sweep::Json manifest = sweep::Json::object();
    manifest.set("experiment", sweep::Json("smoke"));
    manifest.set("shardCount", sweep::Json(2u));
    sweep::Json points = sweep::Json::array();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        sweep::Json p = sweep::Json::object();
        p.set("digest", sweep::Json(plan.digests[i]));
        p.set("shard", sweep::Json(1u - plan.shardOf[i]));
        points.push(std::move(p));
    }
    manifest.set("points", std::move(points));
    store->writeManifest(manifest);

    sweep::RunnerOptions ropts;
    ropts.measure = tinyOptions();
    ropts.cacheDir = dir.path();
    const ShardRunResult r0 = runShard(smoke->spec, ropts, 0, 2);

    // Shard 0 measured exactly the digests the manifest gave it —
    // i.e. the *other* half of the local plan.
    std::set<std::string> expected;
    for (const auto &[digest, shard] : plan.shardOfDigest) {
        if (shard == 1)
            expected.insert(digest);
    }
    EXPECT_EQ(r0.points, expected.size());
    for (const std::string &digest : store->storedDigests())
        EXPECT_TRUE(expected.count(digest)) << digest;
}

TEST(Dist, AuditArtifactClassifiesManifestWork)
{
    TempDir dir("audit");
    std::unique_ptr<sweep::ResultStore> store =
        sweep::openLocalStore(dir.path());

    const SmtConfig cfg = presets::baseSmt(1);
    const MeasureOptions opts = tinyOptions();
    const std::string done = sweep::measurementDigest(cfg, opts);
    store->store(done, cfg, opts, measure(cfg, opts).stats);
    const std::string orphaned(32, 'a');
    store->markOrphaned(orphaned);
    const std::string pending(32, 'b');

    sweep::Json manifest = sweep::Json::object();
    manifest.set("experiment", sweep::Json("smoke"));
    manifest.set("shardCount", sweep::Json(2u));
    sweep::Json points = sweep::Json::array();
    unsigned shard = 0;
    for (const std::string &digest : {done, orphaned, pending}) {
        sweep::Json p = sweep::Json::object();
        p.set("digest", sweep::Json(digest));
        p.set("shard", sweep::Json(shard++ % 2));
        points.push(std::move(p));
    }
    manifest.set("points", std::move(points));
    store->writeManifest(manifest);

    bool ok = false;
    const sweep::Json doc = auditArtifact(dir.path(), "", ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(doc.at("experiment").asString(), "smoke");
    EXPECT_EQ(doc.at("unique").asUInt(), 3u);
    const sweep::Json &counts = doc.at("counts");
    EXPECT_EQ(counts.at("done").asUInt(), 1u);
    EXPECT_EQ(counts.at("orphaned").asUInt(), 1u);
    EXPECT_EQ(counts.at("pending").asUInt(), 1u);
    EXPECT_EQ(counts.at("inProgress").asUInt(), 0u);
    EXPECT_EQ(doc.at("digests").size(), 3u);

    bool bad_ok = true;
    TempDir empty("audit_empty");
    const sweep::Json no_manifest =
        auditArtifact(empty.path(), "", bad_ok);
    EXPECT_FALSE(bad_ok);
    EXPECT_TRUE(no_manifest.has("error"));
}

TEST(Dist, ShardWorkersReportProgressTheCoordinatorCanRead)
{
    const NamedExperiment *smoke = sweep::findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);

    TempDir dir("heartbeat");
    fs::create_directories(dir.path() + "/progress");
    sweep::RunnerOptions ropts;
    ropts.measure = tinyOptions();
    ropts.cacheDir = dir.path();

    const std::string path = progressPath(dir.path(), 0);
    const ShardRunResult r = runShard(smoke->spec, ropts, 0, 2, path);

    ProgressRecord rec;
    ASSERT_TRUE(readLatestProgress(path, rec));
    EXPECT_TRUE(rec.finished);
    EXPECT_EQ(rec.pointsDone, r.points);
    EXPECT_EQ(rec.pointsTotal, r.points);
    EXPECT_EQ(rec.cacheHits, r.cacheHits);
}

} // namespace
} // namespace smt::dist
