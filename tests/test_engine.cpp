/**
 * @file
 * Core-engine dispatch tests: the specialized (devirtualized-policy)
 * engines must be cycle-identical to the generic virtual-dispatch
 * engine for every registered policy pair, the registry dispatch table
 * must fall back to generic when a policy name is re-registered
 * (plugin safety), the fetch candidate insertion sort must match
 * std::sort's strict-total-order result, and the steady-state hot path
 * must not allocate (instruction pool and oracle ring audits).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "core/stages/fetch.hh"
#include "policy/fetch_policies.hh"
#include "policy/registry.hh"
#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace smt
{
namespace
{

// ---- Specialized vs generic: cycle identity --------------------------------

struct PolicyPair
{
    const char *fetch;
    const char *issue;
};

/** Every (fetch, issue) pair the paper registers an engine for. */
constexpr PolicyPair kRegisteredPairs[] = {
    {"RR", "OLDEST_FIRST"},
    {"BRCOUNT", "OLDEST_FIRST"},
    {"MISSCOUNT", "OLDEST_FIRST"},
    {"ICOUNT", "OLDEST_FIRST"},
    {"IQPOSN", "OLDEST_FIRST"},
    {"ICOUNT+MISSCOUNT", "OLDEST_FIRST"},
    {"ICOUNT", "OPT_LAST"},
    {"ICOUNT", "SPEC_LAST"},
    {"ICOUNT", "BRANCH_FIRST"},
};

/** The stat fields a single divergent cycle anywhere would disturb. */
struct StatKey
{
    std::uint64_t cycles, committed, fetched, fetchedWrongPath, issued,
        issuedWrongPath, optimisticSquashes, mispredicts, dcacheMisses;

    static StatKey
    of(const SimStats &s)
    {
        return {s.cycles,
                s.committedInstructions,
                s.fetchedInstructions,
                s.fetchedWrongPath,
                s.issuedInstructions,
                s.issuedWrongPath,
                s.optimisticSquashes,
                s.condBranchMispredicts,
                s.dcache.misses};
    }

    bool
    operator==(const StatKey &o) const
    {
        return cycles == o.cycles && committed == o.committed &&
               fetched == o.fetched &&
               fetchedWrongPath == o.fetchedWrongPath &&
               issued == o.issued &&
               issuedWrongPath == o.issuedWrongPath &&
               optimisticSquashes == o.optimisticSquashes &&
               mispredicts == o.mispredicts &&
               dcacheMisses == o.dcacheMisses;
    }
};

TEST(EngineMatrix, SpecializedIsCycleIdenticalToGenericForAllPairs)
{
    for (const PolicyPair &pair : kRegisteredPairs) {
        SmtConfig cfg = presets::baseSmt(4);
        cfg.fetchPolicyName = pair.fetch;
        cfg.issuePolicyName = pair.issue;

        Simulator spec(cfg, mixForRun(4, 0), 0, CoreDispatch::Auto);
        Simulator gen(cfg, mixForRun(4, 0), 0,
                      CoreDispatch::ForceGeneric);

        EXPECT_STREQ(spec.core().engineKind(), "specialized")
            << pair.fetch << "." << pair.issue;
        EXPECT_STREQ(gen.core().engineKind(), "generic")
            << pair.fetch << "." << pair.issue;

        spec.run(6000);
        gen.run(6000);
        EXPECT_TRUE(StatKey::of(spec.stats()) == StatKey::of(gen.stats()))
            << "stats diverged for " << pair.fetch << "." << pair.issue;
        spec.core().validateInvariants();
        gen.core().validateInvariants();
    }
}

TEST(EngineMatrix, RegistryListsEveryRegisteredPair)
{
    const auto names =
        policy::PolicyRegistry::instance().coreEngineNames();
    for (const PolicyPair &pair : kRegisteredPairs) {
        const bool found =
            std::any_of(names.begin(), names.end(), [&](const auto &e) {
                return e.first == pair.fetch && e.second == pair.issue;
            });
        EXPECT_TRUE(found) << pair.fetch << "." << pair.issue;
        EXPECT_NE(policy::PolicyRegistry::instance().findCoreEngine(
                      pair.fetch, pair.issue),
                  nullptr);
    }
}

// ---- Plugin safety: re-registration evicts the specialization ---------------

TEST(EngineDispatch, ReRegisteringAPolicyNameFallsBackToGeneric)
{
    auto &reg = policy::PolicyRegistry::instance();

    // A "plugin" replaces ICOUNT's behaviour. Keeping the specialized
    // engines would silently run the builtin's baked-in code instead.
    reg.registerFetchPolicy("ICOUNT", [] {
        return std::make_unique<policy::ICountPolicy>();
    });
    EXPECT_EQ(reg.findCoreEngine("ICOUNT", "OLDEST_FIRST"), nullptr);
    EXPECT_NE(reg.findCoreEngine("RR", "OLDEST_FIRST"), nullptr);

    SmtConfig cfg = presets::icount28(2);
    Simulator sim(cfg, mixForRun(2, 0));
    EXPECT_STREQ(sim.core().engineKind(), "generic");

    // Restore the builtin dispatch table for the rest of the process.
    registerBuiltinCoreEngines(reg);
    EXPECT_NE(reg.findCoreEngine("ICOUNT", "OLDEST_FIRST"), nullptr);
    Simulator again(cfg, mixForRun(2, 0));
    EXPECT_STREQ(again.core().engineKind(), "specialized");
}

// ---- Fetch candidate ordering ----------------------------------------------

TEST(FetchSort, MatchesStdSortOnEveryPermutation)
{
    // (key, rr) is a strict total order (rr ranks are unique), so the
    // insertion sort must agree with std::sort from any input
    // permutation — including key ties broken by rr.
    const std::array<FetchCandidate, 5> base = {{
        {2.0, 1, 0},
        {2.0, 0, 1},
        {1.0, 3, 2},
        {7.0, 2, 3},
        {1.0, 4, 4},
    }};
    std::array<unsigned, 5> idx = {0, 1, 2, 3, 4};
    do {
        std::array<FetchCandidate, 5> mine;
        for (unsigned i = 0; i < 5; ++i)
            mine[i] = base[idx[i]];
        std::array<FetchCandidate, 5> ref = mine;

        sortFetchCandidates(mine.data(), 5);
        std::sort(ref.begin(), ref.end(),
                  [](const FetchCandidate &a, const FetchCandidate &b) {
                      if (a.key != b.key)
                          return a.key < b.key;
                      return a.rr < b.rr;
                  });
        for (unsigned i = 0; i < 5; ++i)
            ASSERT_EQ(mine[i].tid, ref[i].tid);
    } while (std::next_permutation(idx.begin(), idx.end()));
}

TEST(FetchSort, KeyTiesBreakTowardLowerRoundRobinRank)
{
    std::array<FetchCandidate, 3> cands = {{
        {5.0, 2, 7},
        {5.0, 0, 3},
        {5.0, 1, 5},
    }};
    sortFetchCandidates(cands.data(), 3);
    EXPECT_EQ(cands[0].tid, 3);
    EXPECT_EQ(cands[1].tid, 5);
    EXPECT_EQ(cands[2].tid, 7);
}

// ---- Steady-state allocation audit ------------------------------------------

TEST(AllocationAudit, InstPoolStopsGrowingAfterWarmup)
{
    SmtConfig cfg = presets::icount28(4);
    Simulator sim(cfg, mixForRun(4, 0));
    sim.run(30000); // reach the in-flight high-water mark.

    const std::size_t highWater = sim.core().poolAllocated();
    sim.run(20000);
    EXPECT_EQ(sim.core().poolAllocated(), highWater)
        << "DynInst allocations on the steady-state path";
}

TEST(AllocationAudit, EightThreadMachineAlsoStabilizes)
{
    SmtConfig cfg = presets::icount28(8);
    Simulator sim(cfg, mixForRun(8, 0));
    // The 8-thread machine hits rare deep wrong-path bursts that nudge
    // the in-flight record up past cycle 40k; it plateaus by 50k.
    sim.run(60000);
    const std::size_t highWater = sim.core().poolAllocated();
    sim.run(20000);
    EXPECT_EQ(sim.core().poolAllocated(), highWater)
        << "DynInst allocations on the steady-state path";
}

} // namespace
} // namespace smt
