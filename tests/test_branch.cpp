/**
 * @file
 * Tests for the branch-prediction machinery: BTB (associativity, LRU,
 * thread-id tagging), gshare PHT (learning, history handling, squash
 * repair), return stack, and the combined predictor facade including
 * perfect mode.
 */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "common/rng.hh"
#include "branch/pht.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "config/config.hh"

namespace smt
{
namespace
{

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(256, 4, true);
    EXPECT_EQ(btb.lookup(0, 0x1000), nullptr);
    btb.update(0, 0x1000, 0x2000, false);
    const Btb::Entry *e = btb.lookup(0, 0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->target, 0x2000u);
    EXPECT_FALSE(e->isReturn);
}

TEST(Btb, ThreadIdsPreventCrossThreadHits)
{
    Btb btb(256, 4, true);
    btb.update(0, 0x1000, 0x2000, false);
    EXPECT_EQ(btb.lookup(1, 0x1000), nullptr);
}

TEST(Btb, WithoutThreadIdsPhantomHitsHappen)
{
    Btb btb(256, 4, false);
    btb.update(0, 0x1000, 0x2000, false);
    const Btb::Entry *e = btb.lookup(1, 0x1000);
    ASSERT_NE(e, nullptr); // phantom: thread 1 sees thread 0's entry.
    EXPECT_EQ(e->target, 0x2000u);
}

TEST(Btb, UpdateRefreshesTarget)
{
    Btb btb(256, 4, true);
    btb.update(0, 0x1000, 0x2000, false);
    btb.update(0, 0x1000, 0x3000, false);
    EXPECT_EQ(btb.lookup(0, 0x1000)->target, 0x3000u);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(256, 4, true);
    // Five different pcs mapping to the same set (64 sets): stride
    // 64 * 4 bytes between pcs that share the index.
    const Addr stride = 64 * kInstBytes;
    for (unsigned i = 0; i < 5; ++i)
        btb.update(0, 0x1000 + i * stride, 0x2000 + i, false);
    // The first entry (LRU) must be gone; the last four must hit.
    EXPECT_EQ(btb.lookup(0, 0x1000), nullptr);
    for (unsigned i = 1; i < 5; ++i)
        EXPECT_NE(btb.lookup(0, 0x1000 + i * stride), nullptr);
}

TEST(Pht, LearnsABiasedBranch)
{
    Pht pht(2048);
    const Addr pc = 0x4000;
    // Train strongly taken (same history each time: keep history fixed
    // by updating with the snapshot we read).
    for (int i = 0; i < 8; ++i)
        pht.update(pc, 0, true);
    // With zero history the prediction must be taken.
    EXPECT_TRUE(pht.predict(0, pc));
}

TEST(Pht, CountersAreSharedAcrossThreads)
{
    Pht pht(2048);
    const Addr pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        pht.update(pc, 0, true);
    // Thread 3 with identical (zero) history hits the same counter.
    EXPECT_TRUE(pht.predict(3, pc));
}

TEST(Pht, HistoryIsPerThread)
{
    Pht pht(2048);
    pht.pushHistory(0, true);
    pht.pushHistory(0, true);
    EXPECT_EQ(pht.history(0), 3u);
    EXPECT_EQ(pht.history(1), 0u);
}

TEST(Pht, RestoreHistoryAppendsActualOutcome)
{
    Pht pht(2048);
    pht.pushHistory(0, true); // history = 1.
    const std::uint64_t snapshot = pht.history(0);
    pht.pushHistory(0, true); // mispredicted speculation.
    pht.pushHistory(0, false);
    pht.restoreHistory(0, snapshot, false);
    EXPECT_EQ(pht.history(0), 2u); // (1 << 1) | 0.
}

TEST(Pht, HistoryMaskBoundsIndex)
{
    Pht pht(2048);
    for (int i = 0; i < 100; ++i)
        pht.pushHistory(0, true);
    EXPECT_LE(pht.history(0), pht.historyMask());
}

TEST(Ras, PushPopLifo)
{
    ReturnStack ras(12);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, WrapsSilentlyOnOverflow)
{
    ReturnStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // The two oldest entries were overwritten; the newest four remain.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
}

TEST(Ras, CheckpointRestore)
{
    ReturnStack ras(12);
    ras.push(0x100);
    const unsigned cp = ras.tosCheckpoint();
    ras.push(0x200); // wrong-path push.
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), 0x100u);
}

class PredictorTest : public ::testing::Test
{
  protected:
    SmtConfig cfg_;
};

TEST_F(PredictorTest, CondBranchTakenNeedsBtbForTarget)
{
    BranchPredictor bp(cfg_);
    StaticInst br;
    br.op = OpClass::CondBranch;
    br.target = 0x9000;

    // Train the shared PHT toward taken for this pc.
    for (int i = 0; i < 8; ++i)
        bp.resolveCondBranch(0, 0x5000, bp.pht().history(0), true, 0x9000);

    // The resolve also installed the BTB entry, so now we predict
    // taken with the right target.
    const FetchPrediction fp = bp.predict(0, 0x5000, br, false, 0);
    EXPECT_TRUE(fp.predTaken);
    EXPECT_EQ(fp.predTarget, 0x9000u);
}

TEST_F(PredictorTest, TakenPredictionWithColdBtbIsMisfetch)
{
    BranchPredictor bp(cfg_);
    StaticInst br;
    br.op = OpClass::CondBranch;
    br.target = 0x9000;
    // Train the PHT only (no BTB install): update with taken but via
    // pht directly.
    for (int i = 0; i < 8; ++i)
        bp.pht().update(0x5000, 0, true);
    const FetchPrediction fp = bp.predict(0, 0x5000, br, false, 0);
    EXPECT_TRUE(fp.predTaken);
    EXPECT_EQ(fp.predTarget, kNoAddr); // target unknown: misfetch.
}

TEST_F(PredictorTest, CallPushesAndReturnPops)
{
    BranchPredictor bp(cfg_);
    StaticInst call;
    call.op = OpClass::Call;
    call.target = 0x8000;
    bp.btb().update(0, 0x5000, 0x8000, false);
    (void)bp.predict(0, 0x5000, call, true, 0x8000);

    StaticInst ret;
    ret.op = OpClass::Return;
    const FetchPrediction fp = bp.predict(0, 0x8100, ret, true, 0x5004);
    EXPECT_TRUE(fp.predTaken);
    EXPECT_EQ(fp.predTarget, 0x5004u); // pc + 4 of the call.
}

TEST_F(PredictorTest, ReturnStacksArePerThread)
{
    BranchPredictor bp(cfg_);
    StaticInst call;
    call.op = OpClass::Call;
    call.target = 0x8000;
    (void)bp.predict(0, 0x5000, call, true, 0x8000);

    StaticInst ret;
    ret.op = OpClass::Return;
    const FetchPrediction fp = bp.predict(1, 0x8100, ret, true, 0);
    // Thread 1's stack is cold: no usable prediction.
    EXPECT_EQ(fp.predTarget, kNoAddr);
}

TEST_F(PredictorTest, PerfectModeReturnsOracleOutcome)
{
    cfg_.perfectBranchPrediction = true;
    BranchPredictor bp(cfg_);
    StaticInst br;
    br.op = OpClass::CondBranch;
    br.target = 0x9000;
    FetchPrediction fp = bp.predict(0, 0x5000, br, true, 0x9000);
    EXPECT_TRUE(fp.predTaken);
    EXPECT_EQ(fp.predTarget, 0x9000u);
    fp = bp.predict(0, 0x5000, br, false, 0x9000);
    EXPECT_FALSE(fp.predTaken);
}

TEST_F(PredictorTest, SquashRepairRestoresHistoryAndRas)
{
    BranchPredictor bp(cfg_);
    StaticInst br;
    br.op = OpClass::CondBranch;
    br.target = 0x9000;

    bp.ras(0).push(0xAAA0);
    const FetchPrediction fp = bp.predict(0, 0x5000, br, false, 0);

    // Wrong-path activity corrupts both structures.
    bp.pht().pushHistory(0, true);
    bp.ras(0).push(0xBBB0);

    bp.squashRepair(0, fp.historySnapshot, /*actual_taken=*/true,
                    fp.rasCheckpoint);
    EXPECT_EQ(bp.pht().history(0),
              ((fp.historySnapshot << 1) | 1) & bp.pht().historyMask());
    EXPECT_EQ(bp.ras(0).pop(), 0xAAA0u);
}

TEST_F(PredictorTest, GshareBiasLearningAccuracy)
{
    // A branch taken 90% of the time should be mispredicted roughly 10%
    // of the time once the counters settle.
    BranchPredictor bp(cfg_);
    StaticInst br;
    br.op = OpClass::CondBranch;
    br.target = 0x9000;
    Rng rng(11);
    unsigned mispredicts = 0;
    const unsigned n = 4000;
    for (unsigned i = 0; i < n; ++i) {
        const bool actual = rng.chance(0.9);
        const FetchPrediction fp = bp.predict(0, 0x5000, br, actual, 0x9000);
        if (fp.predTaken != actual)
            ++mispredicts;
        bp.resolveCondBranch(0, 0x5000, fp.historySnapshot, actual, 0x9000);
    }
    const double rate = static_cast<double>(mispredicts) / n;
    EXPECT_GT(rate, 0.03);
    EXPECT_LT(rate, 0.22);
}

} // namespace
} // namespace smt
